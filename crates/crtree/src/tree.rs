//! The CR-tree proper: an STR-bulk-loaded R-tree whose child keys are
//! 4-byte quantized relative MBRs instead of 16-byte float rectangles.
//!
//! Sibling QRMBRs are stored contiguously (parallel to the sibling nodes
//! themselves), so one 64-byte cache line serves 16 child overlap tests —
//! the CR-tree's core claim (Kim, Cha & Kwon, SIGMOD 2001). Leaf entries
//! carry quantized point keys; candidates that pass the integer pre-test
//! are confirmed against the base table, restoring exactness.

use sj_base::geom::Rect;
use sj_base::index::SpatialIndex;
use sj_base::table::{EntryId, PointTable};
use sj_rtree::str_order;

use crate::quant::{q_intersects, qmbr, qquery, quantize, Qmbr};

pub const DEFAULT_FANOUT: usize = 16;

#[derive(Clone, Copy, Debug)]
struct Node {
    /// Reference MBR: children's QRMBRs are relative to this.
    mbr: Rect,
    /// Leaf: range into the leaf-entry arrays. Internal: range into
    /// `nodes` (and, in parallel, `child_qmbrs`).
    start: u32,
    len: u32,
    leaf: bool,
}

/// See module docs.
///
/// ```
/// use sj_base::{PointTable, Rect, SpatialIndex};
/// use sj_crtree::CRTree;
///
/// let mut table = PointTable::default();
/// for i in 0..1000 {
///     table.push((i % 32) as f32 * 10.0, (i / 32) as f32 * 10.0);
/// }
/// let mut tree = CRTree::default();
/// tree.build(&table);
/// // The compressed tree is smaller than one float rect per point.
/// assert!(tree.memory_bytes() < 1000 * 16);
///
/// let mut hits = Vec::new();
/// tree.query(&table, &Rect::new(0.0, 0.0, 10.0, 10.0), &mut hits);
/// assert_eq!(hits.len(), 4); // (0,0), (10,0), (0,10), (10,10)
/// ```
pub struct CRTree {
    fanout: usize,
    nodes: Vec<Node>,
    /// `child_qmbrs[i]` is node `i`'s MBR quantized relative to its
    /// *parent's* reference MBR; siblings are contiguous.
    child_qmbrs: Vec<Qmbr>,
    /// Leaf entries: quantized point keys (relative to the owning leaf's
    /// reference MBR) plus the base-table handle.
    leaf_qx: Vec<u8>,
    leaf_qy: Vec<u8>,
    leaf_id: Vec<EntryId>,
    root: Option<u32>,
    scratch: Vec<u32>,
}

impl Default for CRTree {
    fn default() -> Self {
        Self::new(DEFAULT_FANOUT)
    }
}

impl CRTree {
    /// # Panics
    /// Panics if `fanout < 2`.
    pub fn new(fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        CRTree {
            fanout,
            nodes: Vec::new(),
            child_qmbrs: Vec::new(),
            leaf_qx: Vec::new(),
            leaf_qy: Vec::new(),
            leaf_id: Vec::new(),
            root: None,
            scratch: Vec::new(),
        }
    }

    pub fn fanout(&self) -> usize {
        self.fanout
    }

    pub fn height(&self) -> usize {
        let Some(mut ni) = self.root else { return 0 };
        let mut h = 1;
        while !self.nodes[ni as usize].leaf {
            ni = self.nodes[ni as usize].start;
            h += 1;
        }
        h
    }

    fn report_subtree(&self, ni: u32, emit: &mut dyn FnMut(EntryId)) {
        let n = &self.nodes[ni as usize];
        if n.leaf {
            let s = n.start as usize;
            for &id in &self.leaf_id[s..s + n.len as usize] {
                emit(id);
            }
        } else {
            for c in n.start..n.start + n.len {
                self.report_subtree(c, emit);
            }
        }
    }

    /// Depth-first query descent. Recursive — height is logarithmic in the
    /// fanout — so the per-query hot path allocates nothing.
    fn query_subtree(
        &self,
        ni: u32,
        table: &PointTable,
        region: &Rect,
        emit: &mut dyn FnMut(EntryId),
    ) {
        let n = &self.nodes[ni as usize];
        if region.contains_rect(&n.mbr) {
            self.report_subtree(ni, emit);
            return;
        }
        // Quantize the query once per node, relative to its reference
        // MBR; children are then tested with integer compares only.
        let q = qquery(region, &n.mbr);
        if n.leaf {
            let s = n.start as usize;
            for i in s..s + n.len as usize {
                let (qx, qy) = (self.leaf_qx[i], self.leaf_qy[i]);
                // Integer pre-test (conservative), then exact confirm
                // against the base table.
                if qx >= q[0] && qx <= q[2] && qy >= q[1] && qy <= q[3] {
                    let id = self.leaf_id[i];
                    if region.contains_point(table.x(id), table.y(id)) {
                        emit(id);
                    }
                }
            }
        } else {
            for c in n.start..n.start + n.len {
                if q_intersects(&self.child_qmbrs[c as usize], &q) {
                    self.query_subtree(c, table, region, emit);
                }
            }
        }
    }
}

impl SpatialIndex for CRTree {
    fn name(&self) -> &str {
        "CR-Tree"
    }

    fn build(&mut self, table: &PointTable) {
        self.nodes.clear();
        self.child_qmbrs.clear();
        self.leaf_qx.clear();
        self.leaf_qy.clear();
        self.leaf_id.clear();
        self.root = None;
        // Bulk load live rows only (tombstones from churn are skipped).
        let xs = table.xs();
        let ys = table.ys();
        self.scratch.clear();
        self.scratch.extend(table.iter().map(|(id, _)| id));
        let n = self.scratch.len();
        if n == 0 {
            return;
        }
        str_order(
            &mut self.scratch,
            self.fanout,
            |i| xs[i as usize],
            |i| ys[i as usize],
        );

        // Leaf level: compute each leaf's reference MBR, then quantize its
        // points relative to it.
        self.leaf_qx.reserve(n);
        self.leaf_qy.reserve(n);
        self.leaf_id.reserve(n);
        let mut level: Vec<Node> = Vec::with_capacity(n.div_ceil(self.fanout));
        let mut start = 0usize;
        while start < n {
            let len = self.fanout.min(n - start);
            let ids = &self.scratch[start..start + len];
            let mut mbr = Rect::at_point(xs[ids[0] as usize], ys[ids[0] as usize]);
            for &i in &ids[1..] {
                mbr.expand_to(xs[i as usize], ys[i as usize]);
            }
            for &i in ids {
                self.leaf_qx.push(quantize(xs[i as usize], mbr.x1, mbr.x2));
                self.leaf_qy.push(quantize(ys[i as usize], mbr.y1, mbr.y2));
                self.leaf_id.push(i);
            }
            level.push(Node {
                mbr,
                start: start as u32,
                len: len as u32,
                leaf: true,
            });
            start += len;
        }

        // Upper levels: identical to the R-tree, but each child placed in
        // the arena also records its QRMBR relative to the new parent.
        while level.len() > 1 {
            let mut order: Vec<u32> = (0..level.len() as u32).collect();
            str_order(
                &mut order,
                self.fanout,
                |i| {
                    let m = &level[i as usize].mbr;
                    (m.x1 + m.x2) * 0.5
                },
                |i| {
                    let m = &level[i as usize].mbr;
                    (m.y1 + m.y2) * 0.5
                },
            );
            let mut parents: Vec<Node> = Vec::with_capacity(level.len().div_ceil(self.fanout));
            for chunk in order.chunks(self.fanout) {
                let start = self.nodes.len() as u32;
                let mut mbr = level[chunk[0] as usize].mbr;
                for &ci in chunk {
                    mbr = mbr.union(&level[ci as usize].mbr);
                }
                for &ci in chunk {
                    let child = level[ci as usize];
                    self.nodes.push(child);
                    self.child_qmbrs.push(qmbr(&child.mbr, &mbr));
                }
                parents.push(Node {
                    mbr,
                    start,
                    len: chunk.len() as u32,
                    leaf: false,
                });
            }
            level = parents;
        }
        let root = level[0];
        self.nodes.push(root);
        // Root has no parent; its own qmbr slot is unused but keeps the
        // arrays parallel.
        self.child_qmbrs.push([0, 0, u8::MAX, u8::MAX]);
        self.root = Some(self.nodes.len() as u32 - 1);
    }

    fn for_each_in(&self, table: &PointTable, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        let Some(root) = self.root else { return };
        if !region.intersects(&self.nodes[root as usize].mbr) {
            return;
        }
        self.query_subtree(root, table, region, emit);
    }

    fn memory_bytes(&self) -> usize {
        // Allocated-capacity convention (see the trait docs).
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.child_qmbrs.capacity() * std::mem::size_of::<Qmbr>()
            + self.leaf_qx.capacity()
            + self.leaf_qy.capacity()
            + self.leaf_id.capacity() * std::mem::size_of::<EntryId>()
    }

    fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync> {
        Box::new(CRTree::new(self.fanout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::geom::Point;
    use sj_base::index::ScanIndex;
    use sj_base::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    fn random_table(n: usize, seed: u64) -> PointTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        t
    }

    fn sorted_query(idx: &dyn SpatialIndex, t: &PointTable, r: &Rect) -> Vec<EntryId> {
        let mut out = Vec::new();
        idx.query(t, r, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn agrees_with_full_scan() {
        let t = random_table(3_000, 12);
        let mut tree = CRTree::default();
        tree.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let mut rng = Xoshiro256::seeded(13);
        for _ in 0..100 {
            let c = Point::new(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
            let r = Rect::centered_square(c, 75.0);
            assert_eq!(sorted_query(&tree, &t, &r), sorted_query(&scan, &t, &r));
        }
    }

    #[test]
    fn agrees_with_scan_on_boundary_heavy_queries() {
        // Queries whose edges slice through quantization cells stress the
        // conservative rounding.
        let t = random_table(2_000, 14);
        let mut tree = CRTree::default();
        tree.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        for r in [
            Rect::new(0.0, 0.0, 0.5, SIDE),
            Rect::new(123.456, 0.0, 123.457, SIDE),
            Rect::new(0.0, 999.5, SIDE, 1_000.0),
            Rect::new(500.0, 500.0, 500.0, 500.0),
        ] {
            assert_eq!(
                sorted_query(&tree, &t, &r),
                sorted_query(&scan, &t, &r),
                "{r:?}"
            );
        }
    }

    #[test]
    fn clustered_points_are_handled() {
        // All points inside one quantization cell of the root: the integer
        // pre-test degenerates to all-pass, the exact filter must save us.
        let mut t = PointTable::default();
        let mut rng = Xoshiro256::seeded(15);
        for _ in 0..500 {
            t.push(
                500.0 + rng.range_f32(0.0, 0.001),
                500.0 + rng.range_f32(0.0, 0.001),
            );
        }
        let mut tree = CRTree::default();
        tree.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let r = Rect::new(500.0, 500.0, 500.0005, 500.0005);
        assert_eq!(sorted_query(&tree, &t, &r), sorted_query(&scan, &t, &r));
    }

    #[test]
    fn memory_is_smaller_than_rtree() {
        let t = random_table(10_000, 16);
        let mut cr = CRTree::default();
        cr.build(&t);
        let mut r = sj_rtree::RTree::default();
        use sj_base::index::SpatialIndex as _;
        r.build(&t);
        assert!(
            cr.memory_bytes() < r.memory_bytes(),
            "CR {} >= R {}",
            cr.memory_bytes(),
            r.memory_bytes()
        );
    }

    #[test]
    fn empty_table_is_fine() {
        let mut tree = CRTree::default();
        let t = PointTable::default();
        tree.build(&t);
        assert!(sorted_query(&tree, &t, &Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn full_space_query_returns_all() {
        let t = random_table(777, 17);
        let mut tree = CRTree::default();
        tree.build(&t);
        assert_eq!(sorted_query(&tree, &t, &Rect::space(SIDE)).len(), 777);
    }
}
