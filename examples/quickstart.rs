//! Quickstart: index a point set with the paper's tuned Simple Grid and
//! run a few range queries.
//!
//! Run: `cargo run --release --example quickstart`

use spatial_joins::prelude::*;

fn main() {
    // A base table of 100 000 points in a 22 000² space, like the paper's
    // default workload (positions here from the uniform generator).
    let params = WorkloadParams {
        num_points: 100_000,
        ..WorkloadParams::default()
    };
    let mut workload = UniformWorkload::new(params);
    let set = workload.init();
    let table: &PointTable = &set.positions;

    // The winner of the paper: Simple Grid, refactored layout,
    // overlap-range queries, bs = 20, cps = 64.
    let mut grid = SimpleGrid::tuned(params.space_side);
    grid.build(table);
    println!(
        "indexed {} points in a {:.0}^2 space ({} KiB of grid memory)",
        table.len(),
        params.space_side,
        grid.memory_bytes() / 1024
    );

    // Range queries: 400×400 windows centred on the first few objects.
    let mut results = Vec::new();
    for id in 0..5u32 {
        let center = table.point(id);
        let region = Rect::centered_square(center, params.query_side)
            .clipped_to(&Rect::space(params.space_side));
        results.clear();
        grid.query(table, &region, &mut results);
        println!(
            "object {id} at ({:.0}, {:.0}): {} neighbours in its 400x400 window",
            center.x,
            center.y,
            results.len()
        );
    }

    // Cross-check one query against the ground-truth full scan.
    let scan = ScanIndex::new();
    let region = Rect::centered_square(table.point(0), params.query_side)
        .clipped_to(&Rect::space(params.space_side));
    let mut expect = Vec::new();
    scan.query(table, &region, &mut expect);
    results.clear();
    grid.query(table, &region, &mut results);
    results.sort_unstable();
    expect.sort_unstable();
    assert_eq!(results, expect, "grid and scan disagree");
    println!(
        "grid result verified against full scan ({} matches)",
        results.len()
    );
}
