//! # sj-crtree
//!
//! The cache-conscious R-tree (CR-tree) of Kim, Cha & Kwon (SIGMOD 2001),
//! one of the four static indexes the paper evaluates. Child MBRs are
//! compressed to 4-byte quantized relative MBRs ([`quant`]), quadrupling
//! the keys per cache line; the tree is STR-bulk-packed per tick like its
//! uncompressed sibling in `sj-rtree`.

pub mod quant;
mod tree;

pub use quant::{decompress, q_intersects, qmbr, qquery, quantize, Qmbr, LEVELS};
pub use tree::{CRTree, DEFAULT_FANOUT};
