//! Property-based tests for the core geometry and RNG.

use proptest::prelude::*;
use sj_core::geom::{Point, Rect, Vec2};
use sj_core::rng::Xoshiro256;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f32..1000.0, 0.0f32..1000.0, 0.0f32..500.0, 0.0f32..500.0)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #[test]
    fn intersects_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn containment_implies_intersection(a in arb_rect(), b in arb_rect()) {
        if a.contains_rect(&b) {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn clip_result_is_inside_bounds(a in arb_rect()) {
        let bounds = Rect::new(200.0, 200.0, 1200.0, 1200.0);
        if a.intersects(&bounds) {
            let c = a.clipped_to(&bounds);
            prop_assert!(bounds.contains_rect(&c));
            prop_assert!(a.contains_rect(&c));
        }
    }

    #[test]
    fn contained_points_are_inside_both_halves(r in arb_rect(), px in 0.0f32..1500.0, py in 0.0f32..1500.0) {
        // Point containment is exactly the conjunction of interval tests.
        let expect = px >= r.x1 && px <= r.x2 && py >= r.y1 && py <= r.y2;
        prop_assert_eq!(r.contains_point(px, py), expect);
    }

    #[test]
    fn centered_square_is_centered(cx in 0.0f32..1000.0, cy in 0.0f32..1000.0, side in 0.1f32..500.0) {
        let r = Rect::centered_square(Point::new(cx, cy), side);
        prop_assert!(r.contains_point(cx, cy));
        // The subtraction (c + h) - (c - h) loses precision proportional
        // to the coordinate magnitude, not the side length.
        let tol = (cx.abs().max(cy.abs()) + side) * 8.0 * f32::EPSILON;
        prop_assert!((r.width() - side).abs() <= tol);
        prop_assert!((r.height() - side).abs() <= tol);
    }

    #[test]
    fn clamp_len_never_exceeds_max(vx in -500.0f32..500.0, vy in -500.0f32..500.0, max in 0.0f32..300.0) {
        let v = Vec2::new(vx, vy).clamp_len(max);
        prop_assert!(v.len() <= max.max(Vec2::new(vx, vy).len().min(max)) + 1e-3);
    }

    #[test]
    fn rng_range_f32_respects_bounds(seed in any::<u64>(), lo in -100.0f32..100.0, span in 0.0f32..200.0) {
        let mut rng = Xoshiro256::seeded(seed);
        for _ in 0..50 {
            let v = rng.range_f32(lo, lo + span);
            prop_assert!(v >= lo && v <= lo + span);
        }
    }

    #[test]
    fn rng_range_usize_respects_bound(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = Xoshiro256::seeded(seed);
        for _ in 0..50 {
            prop_assert!(rng.range_usize(n) < n);
        }
    }
}
