//@ path: crates/x/src/lib.rs
pub fn fan_out() -> u32 {
    let mut total = 0;
    std::thread::scope(|s| {
        let h = s.spawn(|| 1 + 1);
        total = h.join().unwrap_or(0);
    });
    total
}
