//@ path: crates/x/src/lib.rs
pub fn first(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    unsafe { *xs.as_ptr() }
}
