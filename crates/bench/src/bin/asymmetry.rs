//! Asymmetry sweep — the bipartite R ⋈ S join across population ratios.
//!
//! The canonical two-dataset setting of the related work (Tsitsigkos &
//! Mamoulis, *Parallel In-Memory Evaluation of Spatial Joins*) is a small,
//! fast query relation probing a large data relation. This binary sweeps
//! |R|/|S| ∈ {1/100, 1/10, 1, 10} for every benchmarkable technique and
//! reports the per-tick phase breakdown per cell; each cell's join is
//! asserted scan-equal (same checksum and pair count as the quadratic
//! reference) before its timing is trusted.
//!
//! The relation workloads come from `--join` (default
//! `bipartite:uniformxuniform`); a spec with an explicit `:ratio<K>`
//! restricts the sweep to the |R|/|S| = 1/K cell. `--points N` sets the
//! larger relation's population — the smaller relation scales with the
//! ratio — and R's seed is decorrelated from S's exactly as
//! [`JoinSpec::query_rel_params`] does for the registry runners.
//!
//! Run: `cargo run -p sj-bench --release --bin asymmetry
//! [--join bipartite:<R>x<S>[:ratio<K>]] [--ticks N] [--threads N] [--csv|--json]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::stats_line;
use sj_bench::run_asymmetric_cell;
use sj_bench::table::{secs, Table};
use sj_core::technique::{TechniqueKind, TechniqueSpec};
use sj_workload::{JoinSpec, WorkloadSpec};

/// The swept |R|/|S| cells: `(label, r_scale, s_scale)` — each relation's
/// population is `points / scale`, so the larger relation always runs at
/// the configured `--points`.
const RATIOS: [(&str, u32, u32); 4] = [
    ("1/100", 100, 1),
    ("1/10", 10, 1),
    ("1", 1, 1),
    ("10", 1, 10),
];

fn main() {
    let opts = CommonOpts::parse();
    let params = opts.uniform_params();
    let exec = opts.exec_mode();

    if let Some(w) = opts.workload {
        // The relation workloads come from the --join spec; a lone
        // --workload would be silently ignored here, so reject it.
        eprintln!(
            "--workload {} is not supported by asymmetry: name the relation \
             workloads in the join spec instead (--join bipartite:<R>x<S>)",
            w.name()
        );
        std::process::exit(2);
    }
    let (r_spec, s_spec, pinned_ratio) = match opts.join_spec() {
        JoinSpec::SelfJoin => {
            if opts.join.is_some() {
                eprintln!("--join self is not supported: asymmetry sweeps bipartite joins only");
                std::process::exit(2);
            }
            let uniform =
                WorkloadSpec::parse("uniform").expect("\"uniform\" is a registered workload name");
            (uniform, uniform, None)
        }
        // An explicit :ratio<K> pins the sweep to the |R|/|S| = 1/K cell.
        JoinSpec::Bipartite { r, s, ratio } => (r, s, (ratio.get() != 1).then_some(ratio.get())),
        JoinSpec::Intersect => {
            eprintln!(
                "--join intersect:rects is not supported by asymmetry: the sweep is \
                 over bipartite point joins (use table2 for the intersection join)"
            );
            std::process::exit(2);
        }
    };
    let specs = opts.techniques(TechniqueSpec::is_benchmarkable);

    if !opts.json {
        println!(
            "# Asymmetry: bipartite {} \u{22c8} {}, larger relation at {} points",
            r_spec.name(),
            s_spec.name(),
            params.num_points,
        );
    }
    let mut t = Table::new(vec![
        "|R|/|S|",
        "Method",
        "Build (s)",
        "Query (s)",
        "Update (s)",
    ]);
    // The cells to run: the standard sweep, or — for a pinned :ratio<K>
    // (any K, not just the swept ones) — that single |R| = |S|/K cell.
    let pinned_label;
    let cells: Vec<(&str, u32, u32)> = match pinned_ratio {
        None => RATIOS.to_vec(),
        Some(k) => {
            pinned_label = format!("1/{k}");
            vec![(pinned_label.as_str(), k, 1)]
        }
    };
    for (label, r_scale, s_scale) in cells {
        let r_points = (params.num_points / r_scale).max(1);
        let s_points = (params.num_points / s_scale).max(1);

        // Per-cell scan-equality gate: every technique must compute the
        // reference join bit for bit before its timing means anything.
        let reference = run_asymmetric_cell(
            r_spec,
            s_spec,
            r_points,
            s_points,
            &params,
            TechniqueKind::Scan.spec(),
            exec,
        );
        assert!(
            reference.result_pairs > 0,
            "ratio {label}: reference join found nothing"
        );

        for spec in &specs {
            let stats =
                run_asymmetric_cell(r_spec, s_spec, r_points, s_points, &params, *spec, exec);
            assert_eq!(
                (stats.checksum, stats.result_pairs),
                (reference.checksum, reference.result_pairs),
                "ratio {label}: {} disagrees with the scan",
                spec.name()
            );
            if opts.json {
                println!(
                    "{}",
                    stats_line(
                        "asymmetry",
                        &spec.name(),
                        Some(("r_over_s", s_scale as f64 / r_scale as f64)),
                        &stats
                    )
                );
            } else {
                t.row(vec![
                    label.to_string(),
                    spec.label(),
                    secs(stats.avg_build_seconds()),
                    secs(stats.avg_query_seconds()),
                    secs(stats.avg_update_seconds()),
                ]);
            }
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }
}
