//! Grid configuration: the two structural layouts (Figure 3), the two
//! query algorithms (Algorithms 1 and 2), and the paper's five tuning
//! stages that step from the original to the fully tuned implementation.

/// Physical layout of the grid's cell directory and buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Figure 3a, as implemented in the original framework: the directory
    /// is an array of 16-byte (count, bucket-pointer) pairs; each bucket is
    /// a 32-byte header owning a doubly-linked list of 24-byte nodes, each
    /// node holding one entry pointer.
    Original,
    /// Figure 3b, the paper's refactoring: directory cells are a single
    /// 8-byte bucket pointer; entries are stored inline in the buckets
    /// (16-byte header + `bs` × 8-byte entries).
    Inline,
    /// Extension (paper §3.1 mentions but deliberately skips it, to keep
    /// the secondary-index assumption): coordinates are copied next to the
    /// entry handles inside buckets, removing the base-table hop during
    /// filtering. Measured by the `ablation` bench.
    InlineCoords,
}

/// Which range-query algorithm the grid runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryAlgo {
    /// Algorithm 1: traverse *all* `cps²` grid cells and test each against
    /// the query region.
    FullScan,
    /// Algorithm 2: compute the sub-range of cells overlapping the query
    /// region and traverse only those.
    RangeScan,
}

/// The paper's cumulative improvement stages (Table 2 lower half, Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The original implementation: `Layout::Original`, full-directory
    /// scan, bs = 4, cps = 13 (the optimum found in Figure 1).
    Original,
    /// "+restructured": pointer-only directory and inline buckets.
    Restructured,
    /// "+querying": Algorithm 2 replaces the full-directory scan.
    Querying,
    /// "+bs tuned": bucket size re-tuned to 20 (Figure 5a).
    BsTuned,
    /// "+cps tuned": grid granularity re-tuned to 64 (Figure 5b) — the
    /// final, best-performing configuration.
    CpsTuned,
}

impl Stage {
    /// All stages, in the paper's order of application.
    pub const ALL: [Stage; 5] = [
        Stage::Original,
        Stage::Restructured,
        Stage::Querying,
        Stage::BsTuned,
        Stage::CpsTuned,
    ];

    /// Display label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Original => "Original",
            Stage::Restructured => "+restructured",
            Stage::Querying => "+querying",
            Stage::BsTuned => "+bs tuned",
            Stage::CpsTuned => "+cps tuned",
        }
    }
}

/// Full grid configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridConfig {
    /// Grid cells per side ("cps"); the directory holds `cps²` cells.
    pub cells_per_side: u32,
    /// Bucket capacity in entries ("bs").
    pub bucket_size: u32,
    pub layout: Layout,
    pub query_algo: QueryAlgo,
}

impl GridConfig {
    /// The optimal parameters of the *original* implementation, as found by
    /// both the original study and the paper's reproduction (Figure 1):
    /// bs = 4, cps = 13.
    pub const ORIGINAL_BS: u32 = 4;
    pub const ORIGINAL_CPS: u32 = 13;
    /// The re-tuned parameters of the refactored implementation
    /// (Figure 5): bs = 20, cps = 64.
    pub const TUNED_BS: u32 = 20;
    pub const TUNED_CPS: u32 = 64;

    /// Configuration for one of the paper's cumulative stages.
    pub fn stage(stage: Stage) -> GridConfig {
        match stage {
            Stage::Original => GridConfig {
                cells_per_side: Self::ORIGINAL_CPS,
                bucket_size: Self::ORIGINAL_BS,
                layout: Layout::Original,
                query_algo: QueryAlgo::FullScan,
            },
            Stage::Restructured => GridConfig {
                layout: Layout::Inline,
                ..Self::stage(Stage::Original)
            },
            Stage::Querying => GridConfig {
                query_algo: QueryAlgo::RangeScan,
                ..Self::stage(Stage::Restructured)
            },
            Stage::BsTuned => GridConfig {
                bucket_size: Self::TUNED_BS,
                ..Self::stage(Stage::Querying)
            },
            Stage::CpsTuned => GridConfig {
                cells_per_side: Self::TUNED_CPS,
                ..Self::stage(Stage::BsTuned)
            },
        }
    }

    /// The final tuned configuration (alias for the last stage).
    pub fn tuned() -> GridConfig {
        Self::stage(Stage::CpsTuned)
    }

    /// Validate the configuration (positive cps/bs; bs bounded to keep
    /// bucket slot arithmetic in range).
    pub fn validate(&self) -> Result<(), String> {
        if self.cells_per_side == 0 {
            return Err("cells_per_side must be > 0".into());
        }
        if self.bucket_size == 0 {
            return Err("bucket_size must be > 0".into());
        }
        if self.bucket_size > 4096 {
            return Err("bucket_size must be <= 4096".into());
        }
        if self.cells_per_side > 4096 {
            return Err("cells_per_side must be <= 4096".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_cumulative() {
        let orig = GridConfig::stage(Stage::Original);
        assert_eq!(orig.layout, Layout::Original);
        assert_eq!(orig.query_algo, QueryAlgo::FullScan);
        assert_eq!(orig.bucket_size, 4);
        assert_eq!(orig.cells_per_side, 13);

        let restructured = GridConfig::stage(Stage::Restructured);
        assert_eq!(restructured.layout, Layout::Inline);
        assert_eq!(restructured.query_algo, QueryAlgo::FullScan);

        let querying = GridConfig::stage(Stage::Querying);
        assert_eq!(querying.query_algo, QueryAlgo::RangeScan);
        assert_eq!(querying.bucket_size, 4);

        let bs = GridConfig::stage(Stage::BsTuned);
        assert_eq!(bs.bucket_size, 20);
        assert_eq!(bs.cells_per_side, 13);

        let cps = GridConfig::stage(Stage::CpsTuned);
        assert_eq!(cps.bucket_size, 20);
        assert_eq!(cps.cells_per_side, 64);
        assert_eq!(cps, GridConfig::tuned());
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = GridConfig::tuned();
        c.cells_per_side = 0;
        assert!(c.validate().is_err());
        c = GridConfig::tuned();
        c.bucket_size = 0;
        assert!(c.validate().is_err());
        assert!(GridConfig::tuned().validate().is_ok());
    }

    #[test]
    fn labels_match_figure_4() {
        assert_eq!(Stage::Original.label(), "Original");
        assert_eq!(Stage::CpsTuned.label(), "+cps tuned");
        assert_eq!(Stage::ALL.len(), 5);
    }
}
