//! Property-based cross-crate tests: on arbitrary point sets and
//! arbitrary query rectangles, every index returns exactly the same
//! entries as the ground-truth full scan.

use proptest::prelude::*;
use spatial_joins::prelude::*;

const SIDE: f32 = 1_000.0;

fn arb_points() -> impl Strategy<Value = Vec<(f32, f32)>> {
    prop::collection::vec((0.0f32..=SIDE, 0.0f32..=SIDE), 0..400)
}

fn arb_query() -> impl Strategy<Value = (f32, f32, f32, f32)> {
    // Center plus extents; built so x1 <= x2, y1 <= y2 after clipping.
    (0.0f32..=SIDE, 0.0f32..=SIDE, 0.0f32..=400.0, 0.0f32..=400.0)
}

fn table_of(points: &[(f32, f32)]) -> PointTable {
    let mut t = PointTable::default();
    for &(x, y) in points {
        t.push(x, y);
    }
    t
}

/// Tombstone every row whose bit in `mask` (mod 64) is set.
fn remove_masked(t: &mut PointTable, mask: u64) {
    for id in 0..t.len() as EntryId {
        if mask >> (id % 64) & 1 == 1 {
            t.remove(id);
        }
    }
}

fn query_region((cx, cy, w, h): (f32, f32, f32, f32)) -> Rect {
    let r = Rect::new(cx - w * 0.5, cy - h * 0.5, cx + w * 0.5, cy + h * 0.5);
    r.clipped_to(&Rect::space(SIDE))
}

fn sorted(idx: &dyn SpatialIndex, t: &PointTable, r: &Rect) -> Vec<EntryId> {
    let mut out = Vec::new();
    idx.query(t, r, &mut out);
    out.sort_unstable();
    out
}

fn check_all(points: Vec<(f32, f32)>, q: (f32, f32, f32, f32)) {
    check_all_masked(points, q, 0);
}

fn check_all_masked(points: Vec<(f32, f32)>, q: (f32, f32, f32, f32), remove_mask: u64) {
    let mut t = table_of(&points);
    remove_masked(&mut t, remove_mask);
    let t = t;
    let region = query_region(q);
    let scan = ScanIndex::new();
    let expected = sorted(&scan, &t, &region);

    let mut indexes: Vec<Box<dyn SpatialIndex>> = vec![
        Box::new(BinarySearchJoin::new()),
        Box::new(VecSearchJoin::new()),
        Box::new(RTree::new(4)),
        Box::new(CRTree::new(4)),
        Box::new(LinearKdTrie::new(SIDE)),
        Box::new(DynRTree::new(4)),
        Box::new(QuadTree::new(SIDE, 4)),
        Box::new(IncrementalGrid::new(16, 4, SIDE)),
    ];
    for stage in Stage::ALL {
        indexes.push(Box::new(SimpleGrid::at_stage(stage, SIDE)));
    }
    for index in indexes.iter_mut() {
        index.build(&t);
        let got = sorted(index.as_ref(), &t, &region);
        assert_eq!(
            got,
            expected,
            "{} disagrees with scan on {region:?}",
            index.name()
        );
        for &id in &got {
            assert!(t.is_live(id), "{} reported dead row {id}", index.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_index_agrees_with_scan(points in arb_points(), q in arb_query()) {
        check_all(points, q);
    }

    #[test]
    fn every_index_agrees_with_scan_under_tombstones(
        points in arb_points(),
        q in arb_query(),
        remove_mask in 0u64..=u64::MAX,
    ) {
        // Arbitrary subsets of rows tombstoned (churn departures): every
        // index must build over the survivors only and still agree with
        // the (liveness-filtered) scan, and no dead row may ever be
        // reported.
        check_all_masked(points, q, remove_mask);
    }

    #[test]
    fn agreement_with_degenerate_queries(points in arb_points(), cx in 0.0f32..=SIDE, cy in 0.0f32..=SIDE) {
        // Zero-area queries: only points exactly on (cx, cy) match.
        check_all(points, (cx, cy, 0.0, 0.0));
    }

    #[test]
    fn agreement_with_clustered_points(
        cluster in (0.0f32..=SIDE, 0.0f32..=SIDE),
        offsets in prop::collection::vec((-1.0f32..=1.0, -1.0f32..=1.0), 0..200),
        q in arb_query(),
    ) {
        // Everything within ±1 unit of one spot: stresses quantized
        // structures and bucket overflow chains.
        let points: Vec<(f32, f32)> = offsets
            .iter()
            .map(|&(dx, dy)| {
                ((cluster.0 + dx).clamp(0.0, SIDE), ((cluster.1 + dy).clamp(0.0, SIDE)))
            })
            .collect();
        check_all(points, q);
    }

    #[test]
    fn agreement_with_boundary_points(
        xs in prop::collection::vec(prop::sample::select(vec![0.0f32, SIDE, SIDE * 0.5]), 0..50),
        q in arb_query(),
    ) {
        // Points exactly on the space boundary and centre lines.
        let points: Vec<(f32, f32)> = xs.iter().enumerate()
            .map(|(i, &x)| (x, if i % 2 == 0 { 0.0 } else { SIDE }))
            .collect();
        check_all(points, q);
    }
}
