//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements exactly the API subset the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) over functions whose arguments are `pat in strategy` bindings;
//! - [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   `Range` / `RangeInclusive` and tuples of strategies;
//! - [`arbitrary::any`], [`collection::vec`], [`sample::select`],
//!   [`strategy::Just`];
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! immediately, printing the case number and the test's deterministic seed.
//! Generation is fully deterministic per (test name, case index), so a
//! failure reproduces on every run.

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` — only `cases` matters here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; keep that so un-configured
            // suites get the same coverage.
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64 stream, seeded from the test name and the
    /// case index so every test/case pair sees an independent sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform in `[0, 1)` with 53 bits of mantissa.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift rejection-free mapping; bias is negligible for
            // test-case generation.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Mirror of `proptest::strategy::Strategy`: something that can produce
    /// values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// `strategy.prop_map(f)` adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Numeric types that can be drawn uniformly from half-open and closed
    /// ranges. Backs the `Range`/`RangeInclusive` strategy impls.
    pub trait SampleUniform: Copy {
        fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
        fn sample_closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo < hi, "empty strategy range");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    lo.wrapping_add(rng.below(span) as $t)
                }
                fn sample_closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    if span == u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add(rng.below(span + 1) as $t)
                    }
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo < hi, "empty strategy range");
                    let v = lo as f64 + rng.unit_f64() * (hi as f64 - lo as f64);
                    // f32 rounding of the f64 midpoint math can land exactly
                    // on `hi`; keep the half-open contract.
                    let v = v as $t;
                    if v >= hi { lo } else { v }
                }
                fn sample_closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo <= hi, "empty strategy range");
                    // Hit the endpoints with small but real probability so
                    // boundary bugs surface.
                    match rng.below(64) {
                        0 => lo,
                        1 => hi,
                        _ => {
                            let v = (lo as f64 + rng.unit_f64() * (hi as f64 - lo as f64)) as $t;
                            v.clamp(lo, hi)
                        }
                    }
                }
            }
        )*};
    }

    impl_sample_uniform_float!(f32, f64);

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_closed(*self.start(), *self.end(), rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Mirror of `proptest::arbitrary::any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Mirror of `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Mirror of `proptest::sample::select`: pick one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of `proptest::prelude::prop`, which re-exports the crate root
    /// so tests can write `prop::collection::vec(..)` / `prop::sample::select(..)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Mirror of `proptest::proptest!`. Each enclosed `#[test] fn name(bindings)`
/// becomes an ordinary test that generates `cases` deterministic inputs and
/// runs the body on each; a panic reports the failing case number via the
/// panic message context printed below.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __pt_case in 0..__pt_cfg.cases {
                    let mut __pt_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __pt_case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);
                    )+
                    let __pt_run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(msg) = __pt_run() {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __pt_case + 1,
                            __pt_cfg.cases,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Mirror of `proptest::prop_assert!`: fails the current case (by returning
/// an `Err` the harness turns into a panic with case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Mirror of `proptest::prop_assume!`: in this shim an unmet assumption just
/// skips the rest of the case (treated as success rather than re-drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
