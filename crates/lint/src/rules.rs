//! The rule set: every diagnostic `sj-lint` can emit, each grounded in a
//! repo invariant that used to be enforced by reviewer memory.
//!
//! Rules are lexical pattern checks over [`crate::lexer::Lexed`] token
//! streams — deliberately so: each rule is a page of code a reviewer can
//! audit, and false positives are handled by the explicit, justified
//! allow mechanism (`lint-allow.toml` / inline markers, see
//! [`crate::allow`]) rather than by weakening the pattern. DESIGN.md §12
//! documents every rule's invariant and the burn-down that made the tree
//! clean.
//!
//! Scoping vocabulary:
//! - **non-test code**: tokens outside `#[cfg(test)]` items in files that
//!   are not under `tests/`, `benches/`, or `examples/` (the lexer's
//!   [`crate::lexer::test_mask`] provides the intra-file mask);
//! - **approved files**: rules with a sanctioned home (`Instant::now` in
//!   the driver's timed phases, `#[target_feature]` in the dispatch
//!   module) carry the path allowlist in the rule itself, because those
//!   exemptions are architecture, not incident — moving the code moves
//!   the rule.

use crate::lexer::{test_mask, Comment, Lexed, Token, TokenKind};

/// One finding: rule, file, 1-based line, human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub msg: String,
}

/// Static description of a rule, for `--list-rules` and DESIGN.md §12.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    pub name: &'static str,
    /// Rule family: `determinism`, `safety`, `hygiene`, or `numeric`.
    pub family: &'static str,
    /// One-line summary of what the rule flags.
    pub summary: &'static str,
    /// The repo invariant the rule protects.
    pub invariant: &'static str,
}

/// Every rule, in reporting order. `unused-allow` is the engine's own
/// meta-diagnostic (an allowlist that can only shrink needs the shrink
/// enforced); it lives in the table so `--list-rules` and the allowlist
/// validator know it, but it is emitted by [`crate::allow`], not here.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "hash-iteration",
        family: "determinism",
        summary: "HashMap/HashSet in non-test code",
        invariant: "result paths iterate in deterministic order; hash iteration order varies \
                    per process and breaks bit-identical seed-42 goldens",
    },
    RuleInfo {
        name: "instant-outside-driver",
        family: "determinism",
        summary: "Instant::now() outside the driver's timed phases",
        invariant: "wall-clock sampling is confined to crates/base/src/driver.rs (the timed \
                    phases) and crates/base/src/par.rs (the mini-join scheduler's load \
                    accounting) so those stay the only timing authorities",
    },
    RuleInfo {
        name: "bare-thread-spawn",
        family: "determinism",
        summary: "std::thread::spawn outside sj_base::par",
        invariant: "parallelism goes through sj_base::par's scoped sharding, whose commutative \
                    checksum merge keeps results bit-identical to sequential",
    },
    RuleInfo {
        name: "safety-comment",
        family: "safety",
        summary: "unsafe without an adjacent // SAFETY: comment",
        invariant: "every unsafe block/fn/impl states the proof obligation it discharges \
                    (// SAFETY: above the block, or a # Safety doc section)",
    },
    RuleInfo {
        name: "target-feature-dispatch",
        family: "safety",
        summary: "#[target_feature] outside the runtime-dispatch module",
        invariant: "feature-gated fns are reachable only via sj_base::simd's \
                    is_x86_feature_detected! dispatch, so no illegal-instruction path exists",
    },
    RuleInfo {
        name: "no-unwrap",
        family: "hygiene",
        summary: ".unwrap() in non-test library code",
        invariant: "library panics carry a reason: expect(\"why this cannot fail\") or Result \
                    propagation, never a bare unwrap",
    },
    RuleInfo {
        name: "expect-justification",
        family: "hygiene",
        summary: ".expect(..) with an empty or trivial message",
        invariant: "an expect message is a proof sketch of infallibility, not a grunt; it must \
                    say why the value cannot be absent",
    },
    RuleInfo {
        name: "driver-config-ctor",
        family: "hygiene",
        summary: "struct-literal DriverConfig construction",
        invariant: "DriverConfig is built via its ctors (new/with_exec) so field growth cannot \
                    silently skip call sites",
    },
    RuleInfo {
        name: "registry-techniques",
        family: "hygiene",
        summary: "bench binary importing a technique crate directly",
        invariant: "bench binaries obtain techniques from sj_core::technique::registry(); \
                    direct sj_grid/sj_rtree/... imports bypass the registry line-up",
    },
    RuleInfo {
        name: "entry-id-cast",
        family: "numeric",
        summary: "`as EntryId` cast outside sj_base::table",
        invariant: "EntryId narrowing lives behind table::entry_id() (debug-checked); scattered \
                    `as` casts silently truncate once tables pass u32::MAX rows",
    },
    RuleInfo {
        name: "float-eq",
        family: "numeric",
        summary: "==/!= against a float literal or NAN/INFINITY",
        invariant: "exact float comparison is only meaningful where exactness is argued \
                    (allowlisted per site); elsewhere it is a rounding bug waiting",
    },
    RuleInfo {
        name: "unused-allow",
        family: "meta",
        summary: "allowlist or inline allow that suppresses nothing",
        invariant: "the allowlist can only shrink: an allow whose diagnostic no longer fires \
                    must be deleted, keeping every suppression auditable",
    },
];

pub fn rule_names() -> impl Iterator<Item = &'static str> {
    RULES.iter().map(|r| r.name)
}

pub fn is_rule(name: &str) -> bool {
    rule_names().any(|r| r == name)
}

/// Context for linting one file. `rel` uses forward slashes relative to
/// the workspace root (fixtures pass virtual paths to exercise the
/// path-scoped rules).
pub struct FileCtx<'a> {
    pub rel: &'a str,
    pub lexed: &'a Lexed,
}

impl FileCtx<'_> {
    /// Files whose whole content is test/demo context: integration tests,
    /// benches, examples, and the lint fixtures themselves.
    fn is_test_file(&self) -> bool {
        let r = self.rel;
        r.starts_with("tests/")
            || r.starts_with("examples/")
            || r.contains("/tests/")
            || r.contains("/benches/")
            || r.contains("/examples/")
    }
}

/// Run every rule over one file.
pub fn check_file(ctx: &FileCtx) -> Vec<Diagnostic> {
    let toks = &ctx.lexed.tokens;
    let mask = test_mask(ctx.lexed);
    let all_test = ctx.is_test_file();
    // `in_code(i)`: token i is non-test library code.
    let in_code = |i: usize| !all_test && !mask[i];

    let mut out = Vec::new();
    let mut diag = |rule: &'static str, line: u32, msg: String| {
        out.push(Diagnostic {
            rule,
            file: ctx.rel.to_string(),
            line,
            msg,
        });
    };

    let ident_at = |i: usize, name: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    };
    let punct_at = |i: usize, p: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
    };

    for (i, tok) in toks.iter().enumerate() {
        match tok.kind {
            TokenKind::Ident => match tok.text.as_str() {
                // --- determinism ---------------------------------------
                "HashMap" | "HashSet" if in_code(i) => diag(
                    "hash-iteration",
                    tok.line,
                    format!(
                        "{} in non-test code: hash iteration order is nondeterministic; use \
                         Vec/BTreeMap/BTreeSet or justify via the allowlist",
                        tok.text
                    ),
                ),
                "Instant"
                    if punct_at(i + 1, "::")
                        && ident_at(i + 2, "now")
                        && in_code(i)
                        && ctx.rel != "crates/base/src/driver.rs"
                        && ctx.rel != "crates/base/src/par.rs" =>
                {
                    diag(
                        "instant-outside-driver",
                        tok.line,
                        "Instant::now() outside the driver's timed phases: wall-clock belongs \
                         to crates/base/src/driver.rs (timed phases) and crates/base/src/par.rs \
                         (scheduler load accounting)"
                            .into(),
                    );
                }
                "thread"
                    if punct_at(i + 1, "::")
                        && ident_at(i + 2, "spawn")
                        && in_code(i)
                        && ctx.rel != "crates/base/src/par.rs" =>
                {
                    diag(
                        "bare-thread-spawn",
                        tok.line,
                        "bare thread::spawn: parallel code goes through sj_base::par's scoped \
                         sharding (std::thread::scope + commutative merge)"
                            .into(),
                    );
                }
                // --- safety --------------------------------------------
                // Applies in test code too: an unproven unsafe block in a
                // test can still be UB.
                "unsafe" if !has_safety_comment(&ctx.lexed.comments, tok, toks, i) => {
                    diag(
                        "safety-comment",
                        tok.line,
                        "unsafe without an adjacent // SAFETY: comment (or # Safety doc \
                         section for unsafe fns): state the discharged proof obligation"
                            .into(),
                    );
                }
                "target_feature"
                    if punct_at(i.wrapping_sub(1), "[") && ctx.rel != "crates/base/src/simd.rs" =>
                {
                    diag(
                        "target-feature-dispatch",
                        tok.line,
                        "#[target_feature] outside crates/base/src/simd.rs: feature-gated fns \
                         must sit behind the is_x86_feature_detected! dispatch module"
                            .into(),
                    );
                }
                // --- API hygiene ---------------------------------------
                "unwrap"
                    if punct_at(i.wrapping_sub(1), ".") && punct_at(i + 1, "(") && in_code(i) =>
                {
                    diag(
                        "no-unwrap",
                        tok.line,
                        ".unwrap() in non-test library code: use expect(\"why this cannot \
                         fail\") or propagate the error"
                            .into(),
                    );
                }
                "expect"
                    if punct_at(i.wrapping_sub(1), ".") && punct_at(i + 1, "(") && in_code(i) =>
                {
                    if let Some(arg) = toks.get(i + 2) {
                        if arg.kind == TokenKind::Str && arg.text.trim().len() < 8 {
                            diag(
                                "expect-justification",
                                tok.line,
                                format!(
                                    ".expect({:?}): the message must say why the value cannot \
                                     be absent (>= 8 chars of justification)",
                                    arg.text
                                ),
                            );
                        }
                    }
                }
                // Type positions (`-> DriverConfig {`, `impl DriverConfig {`,
                // `for DriverConfig {`, `: DriverConfig {`) are not literals.
                "DriverConfig"
                    if punct_at(i + 1, "{")
                        && in_code(i)
                        && ctx.rel != "crates/base/src/driver.rs"
                        && !punct_at(i.wrapping_sub(1), "->")
                        && !punct_at(i.wrapping_sub(1), ":")
                        && !ident_at(i.wrapping_sub(1), "impl")
                        && !ident_at(i.wrapping_sub(1), "for") =>
                {
                    diag(
                        "driver-config-ctor",
                        tok.line,
                        "struct-literal DriverConfig construction: use DriverConfig::new / \
                         with_exec so new fields cannot skip call sites"
                            .into(),
                    );
                }
                "sj_grid" | "sj_rtree" | "sj_crtree" | "sj_kdtrie" | "sj_binsearch"
                | "sj_quadtree" | "sj_sweep"
                    if ctx.rel.starts_with("crates/bench/src/bin/") && in_code(i) =>
                {
                    diag(
                        "registry-techniques",
                        tok.line,
                        format!(
                            "bench binary imports {} directly: techniques come from \
                             sj_core::technique::registry() (allowlist deliberate custom sweeps)",
                            tok.text
                        ),
                    );
                }
                // --- numeric discipline --------------------------------
                "as" if ident_at(i + 1, "EntryId")
                    && in_code(i)
                    && ctx.rel != "crates/base/src/table.rs" =>
                {
                    diag(
                        "entry-id-cast",
                        tok.line,
                        "`as EntryId` outside sj_base::table: use table::entry_id() so the \
                         narrowing stays debug-checked in one place"
                            .into(),
                    );
                }
                _ => {}
            },
            TokenKind::Punct
                if (tok.text == "==" || tok.text == "!=")
                    && in_code(i)
                    && (is_float_operand(toks.get(i + 1)) || float_operand_before(toks, i)) =>
            {
                diag(
                    "float-eq",
                    tok.line,
                    format!(
                        "float `{}` comparison: exact float equality needs an argued, \
                         allowlisted site (or compare with an epsilon)",
                        tok.text
                    ),
                );
            }
            _ => {}
        }
    }
    out
}

/// Is this token a float operand for the `float-eq` rule: a float literal,
/// or the tail of `f32::NAN` / `f64::INFINITY`-style constant paths?
fn is_float_operand(tok: Option<&Token>) -> bool {
    match tok {
        Some(t) if matches!(t.kind, TokenKind::Num { float: true }) => true,
        Some(t) if t.kind == TokenKind::Ident => {
            matches!(
                t.text.as_str(),
                "NAN" | "INFINITY" | "NEG_INFINITY" | "f32" | "f64"
            )
        }
        _ => false,
    }
}

/// The left operand of `toks[op]`, skipping a closing paren chain is too
/// clever for a lint — just inspect the single preceding token (covers
/// `1.0 == x` and `f32::NAN == y`; `x.fract() == 0.0` is caught by the
/// right-operand check).
fn float_operand_before(toks: &[Token], op: usize) -> bool {
    op > 0 && is_float_operand(toks.get(op - 1))
}

/// `// SAFETY:` adjacency for the `unsafe` token at `toks[i]`.
///
/// Accepted evidence, in the spirit of std's convention:
/// - a comment whose text (after trimming) starts with `SAFETY:`, ending
///   on the `unsafe` line or up to 6 lines above it (SAFETY comments often
///   span a few lines and may sit above an attribute);
/// - for `unsafe fn` / `unsafe impl` / `unsafe trait` items: a doc
///   comment containing a `# Safety` section within 40 lines above (the
///   doc block for a fn with attributes in between can be long).
fn has_safety_comment(comments: &[Comment], tok: &Token, toks: &[Token], i: usize) -> bool {
    let line = tok.line;
    let direct = comments.iter().any(|c| {
        c.end_line <= line
            && c.end_line + 6 > line
            && c.text
                .trim_start()
                .trim_start_matches(['/', '!'])
                .trim_start()
                .starts_with("SAFETY:")
    });
    if direct {
        return true;
    }
    let is_item = toks.get(i + 1).is_some_and(|t| {
        t.kind == TokenKind::Ident && matches!(t.text.as_str(), "fn" | "impl" | "trait")
    });
    is_item
        && comments
            .iter()
            .any(|c| c.end_line <= line && c.end_line + 40 > line && c.text.contains("# Safety"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        check_file(&FileCtx { rel, lexed: &lexed })
    }

    fn rules_fired(rel: &str, src: &str) -> Vec<&'static str> {
        run(rel, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn every_rule_name_is_unique_and_kebab() {
        let names: Vec<_> = rule_names().collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'), "{n}");
        }
    }

    #[test]
    fn hash_iteration_respects_test_scope() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        assert_eq!(
            rules_fired("crates/base/src/x.rs", src),
            ["hash-iteration", "hash-iteration"]
        );
        // Same content inside a cfg(test) mod: clean.
        let test_src = format!("#[cfg(test)]\nmod tests {{\n{src}\n}}\n");
        assert!(rules_fired("crates/base/src/x.rs", &test_src).is_empty());
        // Or in an integration-test file: clean.
        assert!(rules_fired("crates/base/tests/x.rs", src).is_empty());
    }

    #[test]
    fn instant_now_is_driver_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(
            rules_fired("crates/bench/src/lib.rs", src),
            ["instant-outside-driver"]
        );
        assert!(rules_fired("crates/base/src/driver.rs", src).is_empty());
        // The mini-join scheduler's load accounting is the other sanctioned
        // timing site (moving the code moves the rule).
        assert!(rules_fired("crates/base/src/par.rs", src).is_empty());
        // `Instant::elapsed` etc. untouched.
        assert!(rules_fired(
            "crates/bench/src/lib.rs",
            "fn f(t: Instant) { t.elapsed(); }"
        )
        .is_empty());
    }

    #[test]
    fn scoped_spawn_is_fine_bare_spawn_is_not() {
        assert_eq!(
            rules_fired(
                "crates/x/src/lib.rs",
                "fn f() { std::thread::spawn(|| {}); }"
            ),
            ["bare-thread-spawn"]
        );
        assert!(rules_fired(
            "crates/x/src/lib.rs",
            "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }"
        )
        .is_empty());
    }

    #[test]
    fn safety_comment_required_even_in_tests() {
        let bad = "fn f() { unsafe { danger() } }";
        assert_eq!(rules_fired("crates/x/src/lib.rs", bad), ["safety-comment"]);
        assert_eq!(rules_fired("tests/x.rs", bad), ["safety-comment"]);
        let good = "fn f() {\n    // SAFETY: bounds checked above.\n    unsafe { danger() }\n}";
        assert!(rules_fired("crates/x/src/lib.rs", good).is_empty());
        let doc =
            "/// Does a thing.\n///\n/// # Safety\n/// Caller checks AVX2.\npub unsafe fn g() {}";
        assert!(rules_fired("crates/x/src/lib.rs", doc).is_empty());
        // A SAFETY comment inside a *string* is not evidence.
        let tricked = "fn f() { let s = \"// SAFETY: nope\"; unsafe { danger() } }";
        assert_eq!(
            rules_fired("crates/x/src/lib.rs", tricked),
            ["safety-comment"]
        );
    }

    #[test]
    fn target_feature_confined_to_simd() {
        let src = "#[target_feature(enable = \"avx2\")]\n/// # Safety\n/// x\npub unsafe fn f() {}";
        assert!(rules_fired("crates/x/src/lib.rs", src).contains(&"target-feature-dispatch"));
        assert!(!rules_fired("crates/base/src/simd.rs", src).contains(&"target-feature-dispatch"));
    }

    #[test]
    fn unwrap_and_expect_rules() {
        assert_eq!(
            rules_fired("crates/x/src/lib.rs", "fn f() { x().unwrap(); }"),
            ["no-unwrap"]
        );
        // unwrap_or / unwrap_or_else are different idents: clean.
        assert!(rules_fired("crates/x/src/lib.rs", "fn f() { x().unwrap_or(0); }").is_empty());
        // Tests may unwrap.
        assert!(rules_fired(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nmod t { fn f() { x().unwrap(); } }"
        )
        .is_empty());
        assert_eq!(
            rules_fired("crates/x/src/lib.rs", "fn f() { x().expect(\"\"); }"),
            ["expect-justification"]
        );
        assert_eq!(
            rules_fired("crates/x/src/lib.rs", "fn f() { x().expect(\"hm\"); }"),
            ["expect-justification"]
        );
        assert!(rules_fired(
            "crates/x/src/lib.rs",
            "fn f() { x().expect(\"lengths checked equal above\"); }"
        )
        .is_empty());
        // Non-literal argument: no judgement.
        assert!(rules_fired("crates/x/src/lib.rs", "fn f() { x().expect(msg); }").is_empty());
    }

    #[test]
    fn driver_config_literal_vs_ctor() {
        assert_eq!(
            rules_fired(
                "crates/core/src/lib.rs",
                "fn f() { let c = DriverConfig { ticks: 1, warmup: 0, exec: e }; }"
            ),
            ["driver-config-ctor"]
        );
        assert!(rules_fired(
            "crates/core/src/lib.rs",
            "fn f() { let c = DriverConfig::new(1, 0); }"
        )
        .is_empty());
        assert!(rules_fired(
            "crates/base/src/driver.rs",
            "fn f() { let c = DriverConfig { ticks: 1, warmup: 0, exec: e }; }"
        )
        .is_empty());
    }

    #[test]
    fn bench_bins_must_not_import_technique_crates() {
        let src = "use sj_grid::GridConfig;\nfn main() {}";
        assert_eq!(
            rules_fired("crates/bench/src/bin/foo.rs", src),
            ["registry-techniques"]
        );
        // The same import in the harness lib (which wraps the registry) is fine.
        assert!(rules_fired("crates/bench/src/lib.rs", src).is_empty());
        assert!(rules_fired(
            "crates/bench/src/bin/foo.rs",
            "use sj_core::technique::registry;\nfn main() { registry(); }"
        )
        .is_empty());
    }

    #[test]
    fn entry_id_casts_confined_to_table() {
        let src = "fn f(i: usize) -> EntryId { i as EntryId }";
        assert_eq!(
            rules_fired("crates/grid/src/grid.rs", src),
            ["entry-id-cast"]
        );
        assert!(rules_fired("crates/base/src/table.rs", src).is_empty());
        // Casting *from* other types untouched.
        assert!(rules_fired(
            "crates/grid/src/grid.rs",
            "fn f(i: u64) -> u32 { i as u32 }"
        )
        .is_empty());
    }

    #[test]
    fn float_eq_literal_and_constants() {
        assert_eq!(
            rules_fired("crates/x/src/lib.rs", "fn f(x: f32) -> bool { x == 0.0 }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_fired("crates/x/src/lib.rs", "fn f(x: f32) -> bool { 1.5 != x }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_fired(
                "crates/x/src/lib.rs",
                "fn f(x: f32) -> bool { x == f32::NAN }"
            ),
            ["float-eq"]
        );
        // Integer equality untouched; float inequality comparisons untouched.
        assert!(rules_fired("crates/x/src/lib.rs", "fn f(x: u32) -> bool { x == 0 }").is_empty());
        assert!(rules_fired("crates/x/src/lib.rs", "fn f(x: f32) -> bool { x <= 0.5 }").is_empty());
    }
}
