//! Property-based tests for the core geometry and RNG.

use proptest::prelude::*;
use sj_base::geom::{Point, Rect, Vec2};
use sj_base::rng::Xoshiro256;
use sj_base::simd::{filter_overlap, filter_overlap_each_scalar};
use sj_base::table::MovingSet;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f32..1000.0, 0.0f32..1000.0, 0.0f32..500.0, 0.0f32..500.0)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

/// A coordinate drawn from a small lattice so that rectangle edges tie
/// *exactly* with each other a large fraction of the time — the `>=`
/// vs `>` mistakes only show on equal bits.
fn arb_lattice_coord() -> impl Strategy<Value = f32> {
    prop::sample::select(vec![0.0f32, 50.0, 100.0, 150.0, 200.0, 99.999, 100.001])
}

/// A rectangle on the tie lattice; zero-extent sides are frequent (the
/// lattice reuses values), so degenerate line/point rects appear often.
fn arb_tie_rect() -> impl Strategy<Value = Rect> {
    (
        arb_lattice_coord(),
        arb_lattice_coord(),
        arb_lattice_coord(),
        arb_lattice_coord(),
    )
        .prop_map(|(a, b, c, d)| Rect::new(a.min(c), b.min(d), a.max(c), b.max(d)))
}

proptest! {
    #[test]
    fn intersects_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn containment_implies_intersection(a in arb_rect(), b in arb_rect()) {
        if a.contains_rect(&b) {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn clip_result_is_inside_bounds(a in arb_rect()) {
        let bounds = Rect::new(200.0, 200.0, 1200.0, 1200.0);
        if a.intersects(&bounds) {
            let c = a.clipped_to(&bounds);
            prop_assert!(bounds.contains_rect(&c));
            prop_assert!(a.contains_rect(&c));
        }
    }

    #[test]
    fn contained_points_are_inside_both_halves(r in arb_rect(), px in 0.0f32..1500.0, py in 0.0f32..1500.0) {
        // Point containment is exactly the conjunction of interval tests.
        let expect = px >= r.x1 && px <= r.x2 && py >= r.y1 && py <= r.y2;
        prop_assert_eq!(r.contains_point(px, py), expect);
    }

    #[test]
    fn centered_square_is_centered(cx in 0.0f32..1000.0, cy in 0.0f32..1000.0, side in 0.1f32..500.0) {
        let r = Rect::centered_square(Point::new(cx, cy), side);
        prop_assert!(r.contains_point(cx, cy));
        // The subtraction (c + h) - (c - h) loses precision proportional
        // to the coordinate magnitude, not the side length.
        let tol = (cx.abs().max(cy.abs()) + side) * 8.0 * f32::EPSILON;
        prop_assert!((r.width() - side).abs() <= tol);
        prop_assert!((r.height() - side).abs() <= tol);
    }

    #[test]
    fn clamp_len_never_exceeds_max(vx in -500.0f32..500.0, vy in -500.0f32..500.0, max in 0.0f32..300.0) {
        let v = Vec2::new(vx, vy).clamp_len(max);
        prop_assert!(v.len() <= max.max(Vec2::new(vx, vy).len().min(max)) + 1e-3);
    }

    #[test]
    fn rng_range_f32_respects_bounds(seed in any::<u64>(), lo in -100.0f32..100.0, span in 0.0f32..200.0) {
        let mut rng = Xoshiro256::seeded(seed);
        for _ in 0..50 {
            let v = rng.range_f32(lo, lo + span);
            prop_assert!(v >= lo && v <= lo + span);
        }
    }

    #[test]
    fn rng_range_usize_respects_bound(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = Xoshiro256::seeded(seed);
        for _ in 0..50 {
            prop_assert!(rng.range_usize(n) < n);
        }
    }

    // --- Edge cases: degenerate (zero-area) rectangles -------------------

    #[test]
    fn degenerate_rect_intersects_iff_containing_rect_covers_it(
        px in 0.0f32..1500.0,
        py in 0.0f32..1500.0,
        b in arb_rect(),
    ) {
        // A zero-area rect behaves exactly like its single point: closed
        // rectangle semantics make point containment and intersection agree.
        let point_rect = Rect::new(px, py, px, py);
        prop_assert_eq!(point_rect.intersects(&b), b.contains_point(px, py));
        prop_assert_eq!(b.intersects(&point_rect), b.contains_point(px, py));
        prop_assert!(point_rect.intersects(&point_rect), "self-intersection must hold");
        prop_assert!(point_rect.contains_rect(&point_rect));
    }

    #[test]
    fn degenerate_rect_union_and_clip_are_consistent(a in arb_rect(), px in 0.0f32..1500.0, py in 0.0f32..1500.0) {
        let point_rect = Rect::new(px, py, px, py);
        let u = a.union(&point_rect);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_point(px, py));
        if a.contains_point(px, py) {
            let c = point_rect.clipped_to(&a);
            prop_assert_eq!(c, point_rect, "clipping a contained point rect is the identity");
        }
    }

    // --- Edge cases: touching-boundary overlap ties ----------------------

    #[test]
    fn rects_sharing_only_an_edge_still_intersect(
        x in 0.0f32..500.0, y in 0.0f32..500.0, w in 0.1f32..200.0, h in 0.1f32..200.0,
    ) {
        // Closed rectangles: a shared edge (or corner) is a tie that counts
        // as overlap. This is the semantics every index must agree on for
        // query windows whose border passes exactly through a point.
        let left = Rect::new(x, y, x + w, y + h);
        let right = Rect::new(x + w, y, x + w + w, y + h); // shares the x = x+w edge
        prop_assert!(left.intersects(&right));
        prop_assert!(right.intersects(&left));

        let above = Rect::new(x, y + h, x + w, y + h + h); // shares the y = y+h edge
        prop_assert!(left.intersects(&above));

        let corner = Rect::new(x + w, y + h, x + w + w, y + h + h); // single shared corner
        prop_assert!(left.intersects(&corner));
        prop_assert!(corner.intersects(&left));
    }

    #[test]
    fn boundary_points_are_inside_on_both_sides(r in arb_rect()) {
        // All four corners and edge midpoints of a closed rect are contained.
        let (mx, my) = ((r.x1 + r.x2) * 0.5, (r.y1 + r.y2) * 0.5);
        for (px, py) in [
            (r.x1, r.y1), (r.x2, r.y1), (r.x1, r.y2), (r.x2, r.y2),
            (mx, r.y1), (mx, r.y2), (r.x1, my), (r.x2, my),
        ] {
            prop_assert!(r.contains_point(px, py), "boundary point ({px},{py}) not in {r:?}");
        }
    }

    // --- Predicate oracles: closed-interval semantics, tie lattice -------

    #[test]
    fn intersects_matches_the_interval_oracle(a in arb_tie_rect(), b in arb_tie_rect()) {
        // The intersects predicate is exactly the conjunction of two
        // closed-interval overlap tests — the scalar oracle every index
        // and the SIMD overlap kernel must reproduce, ties included.
        let expect = a.x1 <= b.x2 && b.x1 <= a.x2 && a.y1 <= b.y2 && b.y1 <= a.y2;
        prop_assert_eq!(a.intersects(&b), expect, "{:?} vs {:?}", a, b);
        prop_assert_eq!(b.intersects(&a), expect);
    }

    #[test]
    fn contains_rect_matches_the_interval_oracle(a in arb_tie_rect(), b in arb_tie_rect()) {
        let expect = a.x1 <= b.x1 && b.x2 <= a.x2 && a.y1 <= b.y1 && b.y2 <= a.y2;
        prop_assert_eq!(a.contains_rect(&b), expect, "{:?} vs {:?}", a, b);
        // Containment is intersection strengthened, even for zero-area b.
        if expect {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn contains_point_matches_the_degenerate_intersection(
        r in arb_tie_rect(),
        px in arb_lattice_coord(),
        py in arb_lattice_coord(),
    ) {
        // The two predicate axes agree where they overlap: a point is
        // within-range exactly when its zero-area rect intersects.
        let degenerate = Rect::new(px, py, px, py);
        prop_assert_eq!(r.contains_point(px, py), r.intersects(&degenerate));
        prop_assert_eq!(r.contains_point(px, py), r.contains_rect(&degenerate));
    }

    #[test]
    fn try_new_accepts_exactly_the_ordered_finite_corners(
        x1 in prop::sample::select(vec![0.0f32, 1.0, 5.0, f32::NAN]),
        y1 in prop::sample::select(vec![0.0f32, 2.0, 7.0, f32::NAN]),
        w in -3.0f32..3.0,
        h in -3.0f32..3.0,
    ) {
        let (x2, y2) = (x1 + w, y1 + h);
        match Rect::try_new(x1, y1, x2, y2) {
            Some(r) => {
                // Accepted ⟺ both axes ordered (NaN fails every
                // comparison, so any NaN corner is rejected).
                prop_assert!(x1 <= x2 && y1 <= y2);
                prop_assert_eq!((r.x1, r.y1, r.x2, r.y2), (x1, y1, x2, y2));
                prop_assert!(r.intersects(&r), "every valid rect self-intersects");
            }
            None => prop_assert!(!(x1 <= x2 && y1 <= y2)),
        }
    }

    // --- SIMD overlap kernel vs the scalar oracle ------------------------

    #[test]
    fn simd_overlap_filter_matches_the_intersects_oracle(
        rects in prop::collection::vec(arb_tie_rect(), 0..70),
        region in arb_tie_rect(),
    ) {
        // Column lengths straddle the 8-lane AVX2 and 4-lane SSE2 block
        // boundaries; rows tie with the region edges constantly and many
        // are degenerate. The dispatched kernel, the scalar kernel, and
        // Rect::intersects must agree bit for bit — same rows, same order.
        let x1s: Vec<f32> = rects.iter().map(|r| r.x1).collect();
        let y1s: Vec<f32> = rects.iter().map(|r| r.y1).collect();
        let x2s: Vec<f32> = rects.iter().map(|r| r.x2).collect();
        let y2s: Vec<f32> = rects.iter().map(|r| r.y2).collect();
        let mut dispatched = Vec::new();
        filter_overlap(&x1s, &y1s, &x2s, &y2s, &region, 40, &mut dispatched);
        let mut scalar = Vec::new();
        filter_overlap_each_scalar(&x1s, &y1s, &x2s, &y2s, &region, 40, &mut |e| scalar.push(e));
        let oracle: Vec<u32> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&region))
            .map(|(i, _)| 40 + i as u32)
            .collect();
        prop_assert_eq!(&dispatched, &oracle);
        prop_assert_eq!(&scalar, &oracle);
    }

    // --- Edge cases: negative-velocity reflection in MovingSet -----------

    #[test]
    fn negative_velocity_reflects_off_the_lower_walls(
        x in 0.0f32..100.0, y in 0.0f32..100.0,
        vx in -400.0f32..0.0, vy in -400.0f32..0.0,
    ) {
        // Objects near the origin moving with negative velocity cross the
        // lower boundary; the bounce must reflect the position back inside
        // and flip the velocity sign on the crossed axes.
        let space = Rect::space(1_000.0);
        let mut s = MovingSet::default();
        s.push(Point::new(x, y), Vec2::new(vx, vy));
        s.advance_bouncing(&space);
        let p = s.positions.point(0);
        prop_assert!(space.contains_point(p.x, p.y), "escaped to {p:?}");
        let v = s.velocity(0);
        if x + vx < space.x1 {
            prop_assert!(v.x >= 0.0, "x-velocity not flipped after lower-wall bounce");
            prop_assert!((p.x - (space.x1 + (space.x1 - (x + vx)))).abs() < 1e-3);
        } else {
            prop_assert_eq!(v.x, vx);
        }
        if y + vy < space.y1 {
            prop_assert!(v.y >= 0.0, "y-velocity not flipped after lower-wall bounce");
        } else {
            prop_assert_eq!(v.y, vy);
        }
    }

    #[test]
    fn repeated_bounces_never_escape_for_any_velocity(
        x in 0.0f32..=200.0, y in 0.0f32..=200.0,
        vx in -150.0f32..=150.0, vy in -150.0f32..=150.0,
    ) {
        let space = Rect::space(200.0);
        let mut s = MovingSet::default();
        s.push(Point::new(x, y), Vec2::new(vx, vy));
        for step in 0..64 {
            s.advance_bouncing(&space);
            let p = s.positions.point(0);
            prop_assert!(
                space.contains_point(p.x, p.y),
                "escaped at step {step}: {p:?} with v=({vx},{vy})"
            );
        }
    }

    #[test]
    fn removal_never_perturbs_surviving_entry_ids(
        seed in 0u64..=u64::MAX,
        n in 1usize..200,
        remove_mask in 0u64..=u64::MAX,
    ) {
        // The tombstone contract behind churn workloads: however many rows
        // are removed, in whatever order, every surviving EntryId still
        // resolves to exactly the row it did before — positions,
        // velocities, and handles are all untouched.
        let mut rng = Xoshiro256::seeded(seed);
        let mut s = MovingSet::default();
        for _ in 0..n {
            s.push(
                Point::new(rng.range_f32(0.0, 500.0), rng.range_f32(0.0, 500.0)),
                Vec2::new(rng.range_f32(-5.0, 5.0), rng.range_f32(-5.0, 5.0)),
            );
        }
        let before: Vec<(Point, Vec2)> = (0..n as u32)
            .map(|id| (s.positions.point(id), s.velocity(id)))
            .collect();
        let doomed: Vec<u32> = (0..n as u32).filter(|id| remove_mask >> (id % 64) & 1 == 1).collect();
        for &id in &doomed {
            prop_assert!(s.remove(id));
        }
        prop_assert_eq!(s.live_len(), n - doomed.len());
        for id in 0..n as u32 {
            prop_assert_eq!(s.is_live(id), !doomed.contains(&id));
            // Dead or alive, the slot's contents are frozen in place.
            prop_assert_eq!(s.positions.point(id), before[id as usize].0);
            prop_assert_eq!(s.velocity(id), before[id as usize].1);
        }
        // Live iteration yields exactly the survivors, in id order.
        let live: Vec<u32> = s.positions.iter().map(|(id, _)| id).collect();
        let expect: Vec<u32> = (0..n as u32).filter(|id| !doomed.contains(id)).collect();
        prop_assert_eq!(live, expect);
    }
}
