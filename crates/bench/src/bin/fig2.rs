//! Figure 2 — reproduced performance of the static indexes:
//! Binary Search, R-Tree, CR-Tree, Linearized KD-Trie and (original)
//! Simple Grid across three workload sweeps.
//!
//! (a) fraction of points issuing queries: 0.1 .. 0.9 (uniform);
//! (b) number of hotspots: 1 .. 1000, log scale (Gaussian);
//! (c) number of points: 10K .. 90K (uniform).
//!
//! Expected shape: Simple Grid (original) worst everywhere — behind even
//! Binary Search; the three tree indexes clustered together at the top.
//!
//! Run: `cargo run -p sj-bench --release --bin fig2 [--ticks N] [--csv]`

use sj_bench::cli::CommonOpts;
use sj_bench::table::{secs, Table};
use sj_bench::{run_gaussian, run_uniform, Technique};

fn headers() -> Vec<String> {
    let mut h = vec!["x".to_string()];
    h.extend(Technique::FIGURE2.iter().map(|t| t.label()));
    h
}

fn main() {
    let opts = CommonOpts::parse();

    println!("# Figure 2a: scaling the query rate (uniform, 50K points)");
    let mut t = Table::new(headers());
    for frac in [0.1f32, 0.3, 0.5, 0.7, 0.9] {
        let mut params = opts.uniform_params();
        params.frac_queriers = frac;
        let mut row = vec![format!("{frac}")];
        for tech in Technique::FIGURE2 {
            row.push(secs(run_uniform(&params, tech).avg_tick_seconds()));
        }
        t.row(row);
    }
    println!("{}", t.render(opts.csv));

    println!("# Figure 2b: scaling the number of hotspots (Gaussian, 50K points)");
    let mut t = Table::new(headers());
    for hotspots in [1u32, 10, 100, 1000] {
        let mut params = opts.gaussian_params();
        params.hotspots = hotspots;
        let mut row = vec![hotspots.to_string()];
        for tech in Technique::FIGURE2 {
            row.push(secs(run_gaussian(&params, tech).avg_tick_seconds()));
        }
        t.row(row);
    }
    println!("{}", t.render(opts.csv));

    println!("# Figure 2c: scaling the number of points (uniform)");
    let mut t = Table::new(headers());
    for points in [10_000u32, 30_000, 50_000, 70_000, 90_000] {
        let mut params = opts.uniform_params();
        params.num_points = points;
        let mut row = vec![points.to_string()];
        for tech in Technique::FIGURE2 {
            row.push(secs(run_uniform(&params, tech).avg_tick_seconds()));
        }
        t.row(row);
    }
    println!("{}", t.render(opts.csv));
}
