//! The static, STR-bulk-loaded R-tree.
//!
//! Rebuilt from the base table every tick (static index nested loop
//! category). The tree is an arena of nodes; children of a node are
//! contiguous, so traversal touches sibling MBRs sequentially — the
//! in-memory optimization the original framework applied to all tree
//! techniques.

use sj_base::geom::Rect;
use sj_base::index::SpatialIndex;
use sj_base::table::{EntryId, PointTable};

use crate::str_pack::str_order;

/// Default fanout; parameter sweeps in the original study land in the
/// 8–32 range for in-memory R-trees over points.
pub const DEFAULT_FANOUT: usize = 16;

#[derive(Clone, Copy, Debug)]
struct Node {
    mbr: Rect,
    /// Leaf: range into `leaf_x/leaf_y/leaf_id`. Internal: range into
    /// `nodes`.
    start: u32,
    len: u32,
    leaf: bool,
}

/// See module docs.
///
/// ```
/// use sj_base::{PointTable, Rect, SpatialIndex};
/// use sj_rtree::RTree;
///
/// let mut table = PointTable::default();
/// for i in 0..100 {
///     table.push(i as f32, i as f32);
/// }
/// let mut tree = RTree::default();
/// tree.build(&table);
///
/// let mut hits = Vec::new();
/// tree.query(&table, &Rect::new(10.0, 10.0, 19.5, 19.5), &mut hits);
/// assert_eq!(hits.len(), 10); // points 10..=19
/// ```
pub struct RTree {
    fanout: usize,
    nodes: Vec<Node>,
    /// Leaf entries, SoA: coordinates are copied into the leaves at build
    /// time (tree techniques carry their keys; only the grid and binary
    /// search techniques re-read the base table while filtering).
    leaf_x: Vec<f32>,
    leaf_y: Vec<f32>,
    leaf_id: Vec<EntryId>,
    root: Option<u32>,
    /// Scratch for build (reused across ticks).
    scratch: Vec<u32>,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new(DEFAULT_FANOUT)
    }
}

impl RTree {
    /// # Panics
    /// Panics if `fanout < 2`.
    pub fn new(fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        RTree {
            fanout,
            nodes: Vec::new(),
            leaf_x: Vec::new(),
            leaf_y: Vec::new(),
            leaf_id: Vec::new(),
            root: None,
            scratch: Vec::new(),
        }
    }

    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Height of the tree (0 for empty, 1 for a single leaf root).
    pub fn height(&self) -> usize {
        let Some(mut ni) = self.root else { return 0 };
        let mut h = 1;
        while !self.nodes[ni as usize].leaf {
            ni = self.nodes[ni as usize].start;
            h += 1;
        }
        h
    }

    fn leaf_mbr(&self, start: usize, len: usize) -> Rect {
        let mut r = Rect::at_point(self.leaf_x[start], self.leaf_y[start]);
        for i in start + 1..start + len {
            r.expand_to(self.leaf_x[i], self.leaf_y[i]);
        }
        r
    }

    /// Emit every entry under `ni` without point tests (the fast path when
    /// the query fully contains a node's MBR).
    fn report_subtree(&self, ni: u32, emit: &mut dyn FnMut(EntryId)) {
        let n = &self.nodes[ni as usize];
        if n.leaf {
            let s = n.start as usize;
            for &id in &self.leaf_id[s..s + n.len as usize] {
                emit(id);
            }
        } else {
            for c in n.start..n.start + n.len {
                self.report_subtree(c, emit);
            }
        }
    }

    /// Depth-first query descent. Recursive — height is logarithmic in the
    /// fanout — so the per-query hot path allocates nothing. The caller
    /// checked that `region` intersects this node's MBR.
    fn query_subtree(&self, ni: u32, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        let n = &self.nodes[ni as usize];
        if region.contains_rect(&n.mbr) {
            self.report_subtree(ni, emit);
        } else if n.leaf {
            let s = n.start as usize;
            for i in s..s + n.len as usize {
                if region.contains_point(self.leaf_x[i], self.leaf_y[i]) {
                    emit(self.leaf_id[i]);
                }
            }
        } else {
            for c in n.start..n.start + n.len {
                if region.intersects(&self.nodes[c as usize].mbr) {
                    self.query_subtree(c, region, emit);
                }
            }
        }
    }
}

impl SpatialIndex for RTree {
    fn name(&self) -> &str {
        "R-Tree"
    }

    fn build(&mut self, table: &PointTable) {
        self.nodes.clear();
        self.leaf_x.clear();
        self.leaf_y.clear();
        self.leaf_id.clear();
        self.root = None;
        // Bulk load live rows only: tombstoned (churned-out) rows are
        // invisible to a static rebuild.
        let xs = table.xs();
        let ys = table.ys();
        self.scratch.clear();
        self.scratch.extend(table.iter().map(|(id, _)| id));
        let n = self.scratch.len();
        if n == 0 {
            return;
        }
        str_order(
            &mut self.scratch,
            self.fanout,
            |i| xs[i as usize],
            |i| ys[i as usize],
        );

        self.leaf_x.reserve(n);
        self.leaf_y.reserve(n);
        self.leaf_id.reserve(n);
        for &i in &self.scratch {
            self.leaf_x.push(xs[i as usize]);
            self.leaf_y.push(ys[i as usize]);
            self.leaf_id.push(i);
        }

        let mut level: Vec<Node> = Vec::with_capacity(n.div_ceil(self.fanout));
        let mut start = 0usize;
        while start < n {
            let len = self.fanout.min(n - start);
            level.push(Node {
                mbr: self.leaf_mbr(start, len),
                start: start as u32,
                len: len as u32,
                leaf: true,
            });
            start += len;
        }

        // Upper levels: STR-order the child nodes by MBR centre, append
        // them contiguously into the arena, and wrap runs of `fanout` in
        // parent nodes, until a single root remains.
        while level.len() > 1 {
            let mut order: Vec<u32> = (0..level.len() as u32).collect();
            str_order(
                &mut order,
                self.fanout,
                |i| {
                    let m = &level[i as usize].mbr;
                    (m.x1 + m.x2) * 0.5
                },
                |i| {
                    let m = &level[i as usize].mbr;
                    (m.y1 + m.y2) * 0.5
                },
            );
            let mut parents: Vec<Node> = Vec::with_capacity(level.len().div_ceil(self.fanout));
            for chunk in order.chunks(self.fanout) {
                let start = self.nodes.len() as u32;
                let mut mbr = level[chunk[0] as usize].mbr;
                for &ci in chunk {
                    let child = level[ci as usize];
                    mbr = mbr.union(&child.mbr);
                    self.nodes.push(child);
                }
                parents.push(Node {
                    mbr,
                    start,
                    len: chunk.len() as u32,
                    leaf: false,
                });
            }
            level = parents;
        }
        let root = level[0];
        self.nodes.push(root);
        self.root = Some(self.nodes.len() as u32 - 1);
    }

    fn for_each_in(&self, _table: &PointTable, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        let Some(root) = self.root else { return };
        if !region.intersects(&self.nodes[root as usize].mbr) {
            return;
        }
        self.query_subtree(root, region, emit);
    }

    fn memory_bytes(&self) -> usize {
        // Allocated-capacity convention (see the trait docs).
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.leaf_x.capacity() * 4
            + self.leaf_y.capacity() * 4
            + self.leaf_id.capacity() * std::mem::size_of::<EntryId>()
    }

    fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync> {
        Box::new(RTree::new(self.fanout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::geom::Point;
    use sj_base::index::ScanIndex;
    use sj_base::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    fn random_table(n: usize, seed: u64) -> PointTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        t
    }

    fn sorted_query(idx: &dyn SpatialIndex, t: &PointTable, r: &Rect) -> Vec<EntryId> {
        let mut out = Vec::new();
        idx.query(t, r, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn agrees_with_full_scan() {
        let t = random_table(3_000, 42);
        let mut tree = RTree::default();
        tree.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let mut rng = Xoshiro256::seeded(1);
        for _ in 0..100 {
            let c = Point::new(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
            let r = Rect::centered_square(c, 90.0);
            assert_eq!(sorted_query(&tree, &t, &r), sorted_query(&scan, &t, &r));
        }
    }

    #[test]
    fn various_fanouts_agree() {
        let t = random_table(1_111, 8);
        let r = Rect::new(100.0, 100.0, 420.0, 300.0);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let expected = sorted_query(&scan, &t, &r);
        for fanout in [2, 3, 8, 64] {
            let mut tree = RTree::new(fanout);
            tree.build(&t);
            assert_eq!(sorted_query(&tree, &t, &r), expected, "fanout {fanout}");
        }
    }

    #[test]
    fn height_is_logarithmic() {
        let t = random_table(4_096, 2);
        let mut tree = RTree::new(16);
        tree.build(&t);
        // 4096 points / fanout 16 = 256 leaves; 256/16 = 16; 16/16 = 1.
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn empty_and_tiny_tables() {
        let mut tree = RTree::default();
        let t = PointTable::default();
        tree.build(&t);
        assert!(sorted_query(&tree, &t, &Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert_eq!(tree.height(), 0);

        let mut t1 = PointTable::default();
        t1.push(5.0, 5.0);
        tree.build(&t1);
        assert_eq!(tree.height(), 1);
        assert_eq!(
            sorted_query(&tree, &t1, &Rect::new(0.0, 0.0, 10.0, 10.0)),
            vec![0]
        );
        assert!(sorted_query(&tree, &t1, &Rect::new(6.0, 6.0, 10.0, 10.0)).is_empty());
    }

    #[test]
    fn query_containing_root_reports_everything() {
        let t = random_table(500, 77);
        let mut tree = RTree::default();
        tree.build(&t);
        let out = sorted_query(&tree, &t, &Rect::space(SIDE));
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn disjoint_query_is_empty_and_cheap() {
        let t = random_table(500, 77);
        let mut tree = RTree::default();
        tree.build(&t);
        let out = sorted_query(&tree, &t, &Rect::new(2_000.0, 2_000.0, 3_000.0, 3_000.0));
        assert!(out.is_empty());
    }

    #[test]
    fn rebuild_reflects_moved_points() {
        let mut t = random_table(100, 4);
        let mut tree = RTree::default();
        tree.build(&t);
        t.set_position(0, 999.0, 999.0);
        tree.build(&t);
        let out = sorted_query(&tree, &t, &Rect::new(998.0, 998.0, 1_000.0, 1_000.0));
        assert!(out.contains(&0));
    }

    #[test]
    fn duplicate_points_are_all_reported() {
        let mut t = PointTable::default();
        for _ in 0..50 {
            t.push(10.0, 10.0);
        }
        let mut tree = RTree::default();
        tree.build(&t);
        let out = sorted_query(&tree, &t, &Rect::new(10.0, 10.0, 10.0, 10.0));
        assert_eq!(out.len(), 50);
    }
}
