//! Table 2 — execution breakdown (build / query / update, average seconds
//! per tick) at the default workload: 50 % queriers, 50 % updaters,
//! 50 K points, uniform.
//!
//! Upper half: the four static indexes with the grid as originally
//! implemented. Lower half: the grid after each cumulative improvement.
//! Expected shape: grid build always cheapest; original grid query ≈ 5–6×
//! the tree indexes; "+cps tuned" grid query at or below the trees.
//!
//! Run: `cargo run -p sj-bench --release --bin table2 [--ticks N] [--csv]`

use sj_bench::cli::CommonOpts;
use sj_bench::table::{secs, Table};
use sj_bench::{run_uniform, Technique};
use sj_grid::Stage;

fn main() {
    let opts = CommonOpts::parse();
    let params = opts.uniform_params();

    let rows: Vec<(String, Technique)> = vec![
        ("R-Tree".into(), Technique::RTree),
        ("CR-Tree".into(), Technique::CRTree),
        ("Lin. KD-Trie".into(), Technique::LinearKdTrie),
        ("Simple Grid".into(), Technique::Grid(Stage::Original)),
        ("+restructured".into(), Technique::Grid(Stage::Restructured)),
        ("+querying".into(), Technique::Grid(Stage::Querying)),
        ("+bs tuned".into(), Technique::Grid(Stage::BsTuned)),
        ("+cps tuned".into(), Technique::Grid(Stage::CpsTuned)),
    ];

    println!(
        "# Table 2: breakdown, {}% queries and updates, {} points",
        (params.frac_queriers * 100.0) as u32,
        params.num_points
    );
    let mut t = Table::new(vec!["Method", "Build (s)", "Query (s)", "Update (s)"]);
    for (label, tech) in rows {
        let stats = run_uniform(&params, tech);
        t.row(vec![
            label,
            secs(stats.avg_build_seconds()),
            secs(stats.avg_query_seconds()),
            secs(stats.avg_update_seconds()),
        ]);
    }
    println!("{}", t.render(opts.csv));
}
