//! LSD radix sort for the throwaway-index rebuild.
//!
//! The linearized kd-trie is rebuilt every tick (a "short-lived throwaway
//! index"), so build speed is part of the technique. Keys are `u64`s whose
//! high 32 bits are the kd-trie code and whose low 32 bits carry the entry
//! handle; four counting-sort passes over the code bytes order the array
//! without comparisons.

/// Sort `keys` ascending by their **high 32 bits** (the code), reusing
/// `scratch` as the ping-pong buffer. Stable, O(4·n).
pub fn sort_by_code(keys: &mut Vec<u64>, scratch: &mut Vec<u64>) {
    let n = keys.len();
    if n <= 1 {
        return;
    }
    scratch.clear();
    scratch.resize(n, 0);
    let mut counts = [0usize; 256];
    // Code bytes sit at shifts 32, 40, 48, 56.
    for pass in 0..4u32 {
        let shift = 32 + pass * 8;
        counts.fill(0);
        for &k in keys.iter() {
            counts[((k >> shift) & 0xFF) as usize] += 1;
        }
        // Skip passes where all keys share the byte (common for small
        // spaces: high code bytes are often constant).
        if counts.contains(&n) {
            continue;
        }
        let mut sum = 0usize;
        for c in counts.iter_mut() {
            let tmp = *c;
            *c = sum;
            sum += tmp;
        }
        for &k in keys.iter() {
            let b = ((k >> shift) & 0xFF) as usize;
            scratch[counts[b]] = k;
            counts[b] += 1;
        }
        std::mem::swap(keys, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::rng::Xoshiro256;

    fn is_sorted_by_code(keys: &[u64]) -> bool {
        keys.windows(2).all(|w| (w[0] >> 32) <= (w[1] >> 32))
    }

    #[test]
    fn sorts_random_keys() {
        let mut rng = Xoshiro256::seeded(99);
        let mut keys: Vec<u64> = (0..10_000).map(|_| rng.next_u64()).collect();
        let mut scratch = Vec::new();
        sort_by_code(&mut keys, &mut scratch);
        assert!(is_sorted_by_code(&keys));
    }

    #[test]
    fn matches_std_sort() {
        let mut rng = Xoshiro256::seeded(7);
        let mut keys: Vec<u64> = (0..5_000).map(|_| rng.next_u64()).collect();
        let mut expected = keys.clone();
        expected.sort_unstable_by_key(|k| k >> 32);
        let mut scratch = Vec::new();
        sort_by_code(&mut keys, &mut scratch);
        let got: Vec<u32> = keys.iter().map(|k| (k >> 32) as u32).collect();
        let want: Vec<u32> = expected.iter().map(|k| (k >> 32) as u32).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn stable_for_equal_codes() {
        // Keys with the same code must keep their low-bits order.
        let mut keys: Vec<u64> = (0..100).map(|i| (42u64 << 32) | i).collect();
        let mut scratch = Vec::new();
        sort_by_code(&mut keys, &mut scratch);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(*k & 0xFFFF_FFFF, i as u64);
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let mut scratch = Vec::new();
        let mut empty: Vec<u64> = vec![];
        sort_by_code(&mut empty, &mut scratch);
        assert!(empty.is_empty());
        let mut one = vec![0xDEAD_BEEF_0000_0001];
        sort_by_code(&mut one, &mut scratch);
        assert_eq!(one, vec![0xDEAD_BEEF_0000_0001]);
    }

    #[test]
    fn already_sorted_input_is_preserved() {
        let mut keys: Vec<u64> = (0..1_000u64).map(|i| i << 32).collect();
        let expected = keys.clone();
        let mut scratch = Vec::new();
        sort_by_code(&mut keys, &mut scratch);
        assert_eq!(keys, expected);
    }

    #[test]
    fn low_bits_do_not_affect_order() {
        let mut keys = vec![(1u64 << 32) | 0xFFFF_FFFF, (2u64 << 32), (1u64 << 32)];
        let mut scratch = Vec::new();
        sort_by_code(&mut keys, &mut scratch);
        assert_eq!(keys[2] >> 32, 2);
        assert_eq!(keys[0] >> 32, 1);
        assert_eq!(keys[1] >> 32, 1);
        // Stability: the 0xFFFF_FFFF low half came first in the input.
        assert_eq!(keys[0] & 0xFFFF_FFFF, 0xFFFF_FFFF);
    }
}
