//! Criterion microbenchmark: per-tick index (re)build cost for every
//! technique — the "Build" column of Table 2 in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_core::table::PointTable;
use sj_core::technique::registry;
use sj_workload::{UniformWorkload, WorkloadParams};
use std::hint::black_box;

fn build_table(n: u32) -> (PointTable, f32) {
    let params = WorkloadParams {
        num_points: n,
        ..WorkloadParams::default()
    };
    let mut w = UniformWorkload::new(params);
    let set = sj_core::Workload::init(&mut w);
    (set.positions, params.space_side)
}

fn bench_builds(c: &mut Criterion) {
    let (table, side) = build_table(50_000);
    let mut group = c.benchmark_group("build_50k");
    group.sample_size(10);
    for spec in registry()
        .into_iter()
        .filter(|s| s.is_benchmarkable() && !s.is_batch())
    {
        let mut tech = spec.build(side);
        let index = tech.as_index_mut().expect("batch specs filtered out");
        group.bench_function(BenchmarkId::from_parameter(spec.label()), |b| {
            b.iter(|| {
                index.build(black_box(&table));
                black_box(index.memory_bytes())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
