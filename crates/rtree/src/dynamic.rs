//! Incrementally maintained R-tree (Guttman's original insert algorithm
//! with quadratic split).
//!
//! Extension beyond the paper: the static category rebuilds per tick, and
//! one may ask how much of the tree techniques' performance comes from STR
//! packing versus the R-tree principle itself. This incremental tree
//! answers that: the `ablation` bench compares its build time and query
//! quality against [`crate::RTree`]'s bulk load. Deletion is deliberately
//! out of scope (the static join category never deletes).

use sj_base::geom::Rect;
use sj_base::index::SpatialIndex;
use sj_base::table::{EntryId, PointTable};

const NO_PARENT: u32 = u32::MAX;

#[derive(Clone, Debug)]
enum Kind {
    /// `(x, y, id)` point entries.
    Leaf(Vec<(f32, f32, EntryId)>),
    /// Child node indices.
    Internal(Vec<u32>),
}

#[derive(Clone, Debug)]
struct Node {
    mbr: Rect,
    parent: u32,
    kind: Kind,
}

/// See module docs.
pub struct DynRTree {
    nodes: Vec<Node>,
    root: u32,
    max_entries: usize,
    min_entries: usize,
}

impl Default for DynRTree {
    fn default() -> Self {
        Self::new(crate::DEFAULT_FANOUT)
    }
}

#[inline]
fn enlargement(mbr: &Rect, x: f32, y: f32) -> f32 {
    let grown = Rect {
        x1: mbr.x1.min(x),
        y1: mbr.y1.min(y),
        x2: mbr.x2.max(x),
        y2: mbr.y2.max(y),
    };
    grown.area() - mbr.area()
}

impl DynRTree {
    /// # Panics
    /// Panics if `max_entries < 4` (quadratic split needs room to satisfy
    /// the minimum-fill invariant).
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "max_entries must be at least 4");
        let min_entries = (max_entries / 2).max(2);
        DynRTree {
            nodes: vec![Node {
                mbr: Rect::default(),
                parent: NO_PARENT,
                kind: Kind::Leaf(Vec::new()),
            }],
            root: 0,
            max_entries,
            min_entries,
        }
    }

    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node {
            mbr: Rect::default(),
            parent: NO_PARENT,
            kind: Kind::Leaf(Vec::new()),
        });
        self.root = 0;
    }

    pub fn len_entries(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                Kind::Leaf(es) => es.len(),
                Kind::Internal(_) => 0,
            })
            .sum()
    }

    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut ni = self.root;
        loop {
            match &self.nodes[ni as usize].kind {
                Kind::Leaf(_) => return h,
                Kind::Internal(cs) => {
                    ni = cs[0];
                    h += 1;
                }
            }
        }
    }

    /// Insert one point entry.
    pub fn insert(&mut self, x: f32, y: f32, id: EntryId) {
        // Guttman ChooseLeaf: descend by least enlargement (ties: area).
        let mut ni = self.root;
        loop {
            match &self.nodes[ni as usize].kind {
                Kind::Leaf(_) => break,
                Kind::Internal(children) => {
                    let mut best = children[0];
                    let mut best_enl = f32::INFINITY;
                    let mut best_area = f32::INFINITY;
                    for &c in children {
                        let m = &self.nodes[c as usize].mbr;
                        let enl = enlargement(m, x, y);
                        let area = m.area();
                        if enl < best_enl || (enl == best_enl && area < best_area) {
                            best = c;
                            best_enl = enl;
                            best_area = area;
                        }
                    }
                    ni = best;
                }
            }
        }

        let first_entry = self.leaf_len(ni) == 0;
        match &mut self.nodes[ni as usize].kind {
            Kind::Leaf(es) => es.push((x, y, id)),
            Kind::Internal(_) => unreachable!("ChooseLeaf ended on internal node"),
        }
        if first_entry {
            self.nodes[ni as usize].mbr = Rect::at_point(x, y);
        } else {
            self.nodes[ni as usize].mbr.expand_to(x, y);
        }
        self.propagate_mbr(ni);

        if self.leaf_len(ni) > self.max_entries {
            self.split(ni);
        }
    }

    fn leaf_len(&self, ni: u32) -> usize {
        match &self.nodes[ni as usize].kind {
            Kind::Leaf(es) => es.len(),
            Kind::Internal(cs) => cs.len(),
        }
    }

    /// Recompute ancestors' MBRs after `ni` grew.
    fn propagate_mbr(&mut self, mut ni: u32) {
        let mut mbr = self.nodes[ni as usize].mbr;
        while self.nodes[ni as usize].parent != NO_PARENT {
            let p = self.nodes[ni as usize].parent;
            let merged = self.nodes[p as usize].mbr.union(&mbr);
            if merged == self.nodes[p as usize].mbr {
                return; // no further growth upward
            }
            self.nodes[p as usize].mbr = merged;
            mbr = merged;
            ni = p;
        }
    }

    /// Quadratic split of an overflowing node, cascading upward.
    fn split(&mut self, ni: u32) {
        // Extract the overflowing entry set as (mbr, payload) pairs.
        enum Item {
            Point(f32, f32, EntryId),
            Child(u32),
        }
        let (items, is_leaf): (Vec<(Rect, Item)>, bool) =
            match std::mem::replace(&mut self.nodes[ni as usize].kind, Kind::Leaf(Vec::new())) {
                Kind::Leaf(es) => (
                    es.into_iter()
                        .map(|(x, y, id)| (Rect::at_point(x, y), Item::Point(x, y, id)))
                        .collect(),
                    true,
                ),
                Kind::Internal(cs) => (
                    cs.into_iter()
                        .map(|c| (self.nodes[c as usize].mbr, Item::Child(c)))
                        .collect(),
                    false,
                ),
            };

        // PickSeeds: the pair wasting the most area together.
        let n = items.len();
        let (mut s1, mut s2, mut worst) = (0usize, 1usize, f32::NEG_INFINITY);
        for i in 0..n {
            for j in i + 1..n {
                let waste =
                    items[i].0.union(&items[j].0).area() - items[i].0.area() - items[j].0.area();
                if waste > worst {
                    worst = waste;
                    s1 = i;
                    s2 = j;
                }
            }
        }

        let mut group_a: Vec<usize> = vec![s1];
        let mut group_b: Vec<usize> = vec![s2];
        let mut mbr_a = items[s1].0;
        let mut mbr_b = items[s2].0;
        let mut rest: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();

        // PickNext: assign the item with the largest preference difference.
        while let Some(pos) = {
            if rest.is_empty() {
                None
            } else if group_a.len() + rest.len() <= self.min_entries
                || group_b.len() + rest.len() <= self.min_entries
            {
                // All remaining items are forced into the deficient group;
                // which group that is is decided below, so any pick works.
                Some(0)
            } else {
                let mut best_pos = 0;
                let mut best_diff = f32::NEG_INFINITY;
                for (k, &i) in rest.iter().enumerate() {
                    let da = mbr_a.union(&items[i].0).area() - mbr_a.area();
                    let db = mbr_b.union(&items[i].0).area() - mbr_b.area();
                    let diff = (da - db).abs();
                    if diff > best_diff {
                        best_diff = diff;
                        best_pos = k;
                    }
                }
                Some(best_pos)
            }
        } {
            let i = rest.swap_remove(pos);
            let force_a = group_a.len() + rest.len() < self.min_entries;
            let force_b = group_b.len() + rest.len() < self.min_entries;
            let da = mbr_a.union(&items[i].0).area() - mbr_a.area();
            let db = mbr_b.union(&items[i].0).area() - mbr_b.area();
            let to_a = if force_a {
                true
            } else if force_b {
                false
            } else if da != db {
                da < db
            } else {
                group_a.len() <= group_b.len()
            };
            if to_a {
                mbr_a = mbr_a.union(&items[i].0);
                group_a.push(i);
            } else {
                mbr_b = mbr_b.union(&items[i].0);
                group_b.push(i);
            }
        }

        // Node `ni` keeps group A; a fresh sibling gets group B.
        let sibling = self.nodes.len() as u32;
        let make_kind = |group: &[usize], items: &[(Rect, Item)]| -> Kind {
            if is_leaf {
                Kind::Leaf(
                    group
                        .iter()
                        .map(|&i| match items[i].1 {
                            Item::Point(x, y, id) => (x, y, id),
                            Item::Child(_) => unreachable!(),
                        })
                        .collect(),
                )
            } else {
                Kind::Internal(
                    group
                        .iter()
                        .map(|&i| match items[i].1 {
                            Item::Child(c) => c,
                            Item::Point(..) => unreachable!(),
                        })
                        .collect(),
                )
            }
        };
        let kind_a = make_kind(&group_a, &items);
        let kind_b = make_kind(&group_b, &items);
        let parent = self.nodes[ni as usize].parent;
        self.nodes[ni as usize].kind = kind_a;
        self.nodes[ni as usize].mbr = mbr_a;
        self.nodes.push(Node {
            mbr: mbr_b,
            parent,
            kind: kind_b,
        });
        // Reparent B's children.
        if let Kind::Internal(cs) = &self.nodes[sibling as usize].kind {
            for c in cs.clone() {
                self.nodes[c as usize].parent = sibling;
            }
        }

        if parent == NO_PARENT {
            // Root split: grow the tree by one level.
            let new_root = self.nodes.len() as u32;
            let mbr = mbr_a.union(&mbr_b);
            self.nodes.push(Node {
                mbr,
                parent: NO_PARENT,
                kind: Kind::Internal(vec![ni, sibling]),
            });
            self.nodes[ni as usize].parent = new_root;
            self.nodes[sibling as usize].parent = new_root;
            self.root = new_root;
        } else {
            match &mut self.nodes[parent as usize].kind {
                Kind::Internal(cs) => cs.push(sibling),
                Kind::Leaf(_) => unreachable!("parent of split node is a leaf"),
            }
            self.nodes[parent as usize].mbr = self.nodes[parent as usize].mbr.union(&mbr_b);
            self.propagate_mbr(parent);
            if self.leaf_len(parent) > self.max_entries {
                self.split(parent);
            }
        }
    }

    /// Depth-first query descent. Recursive — height is logarithmic in the
    /// fanout — so the per-query hot path allocates nothing.
    fn query_subtree(&self, ni: u32, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        let node = &self.nodes[ni as usize];
        if !region.intersects(&node.mbr) {
            return;
        }
        match &node.kind {
            Kind::Leaf(es) => {
                for &(x, y, id) in es {
                    if region.contains_point(x, y) {
                        emit(id);
                    }
                }
            }
            Kind::Internal(cs) => {
                for &c in cs {
                    self.query_subtree(c, region, emit);
                }
            }
        }
    }
}

impl SpatialIndex for DynRTree {
    fn name(&self) -> &str {
        "R-Tree (incremental)"
    }

    fn build(&mut self, table: &PointTable) {
        self.clear();
        for (id, p) in table.iter() {
            self.insert(p.x, p.y, id);
        }
    }

    fn for_each_in(&self, _table: &PointTable, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        if self.len_entries() == 0 {
            return;
        }
        self.query_subtree(self.root, region, emit);
    }

    fn memory_bytes(&self) -> usize {
        // Allocated-capacity convention (see the trait docs): the node
        // arena at its capacity, plus every existing node's entry/child
        // allocation at its capacity.
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| match &n.kind {
                    Kind::Leaf(es) => es.capacity() * std::mem::size_of::<(f32, f32, EntryId)>(),
                    Kind::Internal(cs) => cs.capacity() * 4,
                })
                .sum::<usize>()
    }

    fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync> {
        Box::new(DynRTree::new(self.max_entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::geom::Point;
    use sj_base::index::ScanIndex;
    use sj_base::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    fn random_table(n: usize, seed: u64) -> PointTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        t
    }

    fn sorted_query(idx: &dyn SpatialIndex, t: &PointTable, r: &Rect) -> Vec<EntryId> {
        let mut out = Vec::new();
        idx.query(t, r, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn agrees_with_full_scan() {
        let t = random_table(2_000, 6);
        let mut tree = DynRTree::default();
        tree.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let mut rng = Xoshiro256::seeded(2);
        for _ in 0..50 {
            let c = Point::new(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
            let r = Rect::centered_square(c, 100.0);
            assert_eq!(sorted_query(&tree, &t, &r), sorted_query(&scan, &t, &r));
        }
    }

    #[test]
    fn all_entries_retained_through_splits() {
        let t = random_table(5_000, 10);
        let mut tree = DynRTree::new(8);
        tree.build(&t);
        assert_eq!(tree.len_entries(), 5_000);
        assert_eq!(sorted_query(&tree, &t, &Rect::space(SIDE)).len(), 5_000);
    }

    #[test]
    fn tree_height_grows_logarithmically() {
        let t = random_table(4_000, 3);
        let mut tree = DynRTree::new(16);
        tree.build(&t);
        let h = tree.height();
        assert!((3..=5).contains(&h), "height {h}");
    }

    #[test]
    fn sequential_inserts_along_a_line() {
        // Degenerate input (collinear points) exercises zero-area splits.
        let mut t = PointTable::default();
        for i in 0..500 {
            t.push(i as f32, 0.0);
        }
        let mut tree = DynRTree::new(4);
        tree.build(&t);
        assert_eq!(tree.len_entries(), 500);
        let out = sorted_query(&tree, &t, &Rect::new(100.0, 0.0, 200.0, 0.0));
        assert_eq!(out.len(), 101);
    }

    #[test]
    fn duplicate_points_survive_splits() {
        let mut t = PointTable::default();
        for _ in 0..100 {
            t.push(7.0, 7.0);
        }
        let mut tree = DynRTree::new(4);
        tree.build(&t);
        assert_eq!(
            sorted_query(&tree, &t, &Rect::new(7.0, 7.0, 7.0, 7.0)).len(),
            100
        );
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let tree = DynRTree::default();
        let t = PointTable::default();
        assert!(sorted_query(&tree, &t, &Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "max_entries")]
    fn tiny_fanout_is_rejected() {
        let _ = DynRTree::new(3);
    }
}
