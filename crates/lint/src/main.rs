//! The `sj-lint` binary.
//!
//! ```text
//! sj-lint [--list-rules] [--json] [--deny] [--root DIR] [FILE...]
//! ```
//!
//! - `--list-rules` prints every rule with its family, summary, and the
//!   invariant it protects, then exits 0.
//! - `--json` emits one machine-readable JSON object per diagnostic
//!   (`{"rule":..,"file":..,"line":..,"msg":..}`) instead of the human
//!   `file:line: [rule] msg` lines.
//! - `--deny` is the explicit CI spelling: diagnostics are always
//!   denying (exit 1) — the flag exists so the workflow reads as intent,
//!   like `-D warnings`.
//! - `--root DIR` overrides workspace-root discovery (the nearest
//!   ancestor whose `Cargo.toml` declares `[workspace]`).
//! - `FILE...` restricts the scan to specific files (relative to the
//!   root); unused-allow detection is skipped for partial scans.
//!
//! Exit codes: 0 clean, 1 diagnostics reported, 2 usage/IO/config error
//! (malformed allowlist, unknown rule in a marker, unreadable file).

use sj_lint::rules::RULES;

fn usage() -> ! {
    eprintln!("usage: sj-lint [--list-rules] [--json] [--deny] [--root DIR] [FILE...]");
    std::process::exit(2);
}

/// Minimal JSON string escaping for `--json` output (the binary is
/// dependency-free by design; this mirrors `sj_bench::report`'s writer).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn list_rules() {
    let width = RULES.iter().map(|r| r.name.len()).max().unwrap_or(0);
    for rule in RULES {
        println!(
            "{:<width$}  [{}] {}",
            rule.name,
            rule.family,
            rule.summary,
            width = width
        );
        println!(
            "{:<width$}  invariant: {}",
            "",
            rule.invariant,
            width = width
        );
    }
}

fn main() {
    let mut json = false;
    let mut list = false;
    let mut root_arg: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list = true,
            // Diagnostics always deny; the flag is the CI-readable spelling.
            "--deny" => {}
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(dir),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if !arg.starts_with('-') => paths.push(arg),
            _ => usage(),
        }
    }

    if list {
        list_rules();
        return;
    }

    let root = match root_arg {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|e| {
                eprintln!("sj-lint: cannot determine working directory: {e}");
                std::process::exit(2);
            });
            sj_lint::find_root(&cwd).unwrap_or_else(|| {
                eprintln!(
                    "sj-lint: no workspace root found above {} (pass --root DIR)",
                    cwd.display()
                );
                std::process::exit(2);
            })
        }
    };

    let outcome = sj_lint::lint_tree(&root, &paths).unwrap_or_else(|e| {
        eprintln!("sj-lint: {e}");
        std::process::exit(2);
    });

    for d in &outcome.diagnostics {
        if json {
            println!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"msg\":\"{}\"}}",
                json_escape(d.rule),
                json_escape(&d.file),
                d.line,
                json_escape(&d.msg)
            );
        } else {
            println!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.msg);
        }
    }
    if !json {
        println!(
            "sj-lint: {} file(s) scanned, {} diagnostic(s), {} allowlist entr{}",
            outcome.files_scanned,
            outcome.diagnostics.len(),
            outcome.allow_entries,
            if outcome.allow_entries == 1 {
                "y"
            } else {
                "ies"
            }
        );
    }
    if !outcome.diagnostics.is_empty() {
        std::process::exit(1);
    }
}
