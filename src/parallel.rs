//! Extension beyond the paper: a parallel query phase.
//!
//! The paper's setting is deliberately single-threaded ("even
//! single-threaded settings", §4). This module adds the natural next step
//! the paper's conclusions invite: once the implementation is
//! cache-efficient, the query phase is embarrassingly parallel — queries
//! only read the index and the base table. Build and update phases remain
//! sequential, queriers are sharded across `std::thread::scope` workers, and
//! the order-independent checksum makes cross-thread result merging a
//! `wrapping_add`.
//!
//! Enable with `--features parallel`.

use std::time::Instant;

use sj_core::driver::{fold_pair, DriverConfig, RunStats, TickActions, TickTimes, Workload};
use sj_core::geom::Rect;
use sj_core::index::SpatialIndex;

/// Like [`sj_core::driver::run_join`], but the query phase fans out over
/// `threads` workers. Results (pair counts and checksum) are identical to
/// the sequential driver for the same workload seed.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn run_join_parallel<W, I>(
    workload: &mut W,
    index: &mut I,
    cfg: DriverConfig,
    threads: usize,
) -> RunStats
where
    W: Workload + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    assert!(threads > 0, "threads must be > 0");
    let mut set = workload.init();
    let space = workload.space();
    let query_side = workload.query_side();

    let mut stats = RunStats::default();
    let mut actions = TickActions::default();

    let total_ticks = cfg.warmup + cfg.ticks;
    for tick in 0..total_ticks {
        let measured = tick >= cfg.warmup;
        actions.clear();
        workload.plan_tick(tick, &set, &mut actions);

        let t0 = Instant::now();
        index.build(&set.positions);
        let build = t0.elapsed();

        let t0 = Instant::now();
        let chunk = actions.queriers.len().div_ceil(threads).max(1);
        let positions = &set.positions;
        let index_ref: &I = index;
        let shard_results: Vec<(u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = actions
                .queriers
                .chunks(chunk)
                .map(|shard| {
                    scope.spawn(move || {
                        let mut pairs = 0u64;
                        let mut checksum = 0u64;
                        for &q in shard {
                            let region = Rect::centered_square(positions.point(q), query_side)
                                .clipped_to(&space);
                            // Sink fold, like the sequential driver: no
                            // per-query result materialization in any shard.
                            index_ref.for_each_in(positions, &region, &mut |r| {
                                pairs += 1;
                                checksum = fold_pair(checksum, q, r);
                            });
                        }
                        (pairs, checksum)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query shard panicked"))
                .collect()
        });
        let query = t0.elapsed();

        let t0 = Instant::now();
        for &(id, vx, vy) in &actions.velocity_updates {
            set.set_velocity(id, sj_core::geom::Vec2::new(vx, vy));
        }
        workload.advance(&mut set);
        let update = t0.elapsed();

        if measured {
            stats.ticks.push(TickTimes {
                build,
                query,
                update,
            });
            for (pairs, checksum) in shard_results {
                stats.result_pairs += pairs;
                stats.checksum = stats.checksum.wrapping_add(checksum);
            }
            stats.queries += actions.queriers.len() as u64;
            stats.updates += actions.velocity_updates.len() as u64;
        }
    }
    stats.index_bytes = index.memory_bytes();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_core::driver::run_join;
    use sj_grid::SimpleGrid;
    use sj_workload::{UniformWorkload, WorkloadParams};

    fn params() -> WorkloadParams {
        WorkloadParams {
            num_points: 2_000,
            space_side: 8_000.0,
            ticks: 3,
            ..WorkloadParams::default()
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let cfg = DriverConfig {
            ticks: 3,
            warmup: 1,
        };
        let sequential = {
            let mut w = UniformWorkload::new(params());
            let mut g = SimpleGrid::tuned(params().space_side);
            run_join(&mut w, &mut g, cfg)
        };
        for threads in [1, 2, 4, 7] {
            let mut w = UniformWorkload::new(params());
            let mut g = SimpleGrid::tuned(params().space_side);
            let par = run_join_parallel(&mut w, &mut g, cfg, threads);
            assert_eq!(
                par.result_pairs, sequential.result_pairs,
                "threads={threads}"
            );
            assert_eq!(par.checksum, sequential.checksum, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "threads")]
    fn zero_threads_is_rejected() {
        let mut w = UniformWorkload::new(params());
        let mut g = SimpleGrid::tuned(params().space_side);
        let _ = run_join_parallel(&mut w, &mut g, DriverConfig::default(), 0);
    }
}
