//! Minimal argument parsing shared by the figure/table binaries.
//!
//! Hand-rolled (≈60 lines) instead of pulling a CLI crate: the harness
//! only needs a handful of `--key value` flags.

use sj_workload::{GaussianParams, WorkloadParams};

/// Options common to every harness binary.
#[derive(Clone, Debug, Default)]
pub struct CommonOpts {
    /// Measured ticks per configuration. Defaults to a scaled-down count
    /// so the full suite completes in minutes; `--paper` restores
    /// Table 1's 100/120 ticks.
    pub ticks: Option<u32>,
    pub points: Option<u32>,
    pub seed: Option<u64>,
    /// Emit machine-readable CSV instead of aligned text.
    pub csv: bool,
    /// Use the paper's full tick counts.
    pub paper: bool,
}

/// Scaled-down default tick count for harness runs.
pub const QUICK_TICKS: u32 = 8;

impl CommonOpts {
    /// Parse from `std::env::args`. Prints usage and exits on `--help` or
    /// malformed input.
    pub fn parse() -> CommonOpts {
        Self::parse_from(std::env::args().skip(1))
    }

    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> CommonOpts {
        let mut opts = CommonOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut take = |name: &str| -> String {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match arg.as_str() {
                "--ticks" => opts.ticks = Some(parse_num(&take("--ticks"), "--ticks")),
                "--points" => opts.points = Some(parse_num(&take("--points"), "--points")),
                "--seed" => opts.seed = Some(parse_num(&take("--seed"), "--seed")),
                "--csv" => opts.csv = true,
                "--paper" => opts.paper = true,
                "--help" | "-h" => {
                    eprintln!(
                        "options:\n  --ticks N   measured ticks per config (default {QUICK_TICKS}; --paper for Table 1 counts)\n  --points N  number of moving objects (default 50000)\n  --seed N    workload seed\n  --csv       machine-readable output\n  --paper     full paper-scale tick counts"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// Table 1 uniform defaults with this CLI's overrides applied.
    pub fn uniform_params(&self) -> WorkloadParams {
        let defaults = WorkloadParams::default();
        WorkloadParams {
            ticks: self.ticks.unwrap_or(if self.paper { 100 } else { QUICK_TICKS }),
            num_points: self.points.unwrap_or(defaults.num_points),
            seed: self.seed.unwrap_or(defaults.seed),
            ..defaults
        }
    }

    /// Table 1 Gaussian defaults with this CLI's overrides applied.
    pub fn gaussian_params(&self) -> GaussianParams {
        GaussianParams {
            base: WorkloadParams {
                ticks: self.ticks.unwrap_or(if self.paper { 120 } else { QUICK_TICKS }),
                ..self.uniform_params()
            },
            ..GaussianParams::default()
        }
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {s}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CommonOpts {
        CommonOpts::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick_scale() {
        let opts = parse(&[]);
        let p = opts.uniform_params();
        assert_eq!(p.ticks, QUICK_TICKS);
        assert_eq!(p.num_points, 50_000);
        assert!(!opts.csv);
    }

    #[test]
    fn paper_restores_full_ticks() {
        let opts = parse(&["--paper"]);
        assert_eq!(opts.uniform_params().ticks, 100);
        assert_eq!(opts.gaussian_params().base.ticks, 120);
    }

    #[test]
    fn explicit_flags_win() {
        let opts = parse(&["--ticks", "5", "--points", "1234", "--seed", "9", "--csv"]);
        let p = opts.uniform_params();
        assert_eq!(p.ticks, 5);
        assert_eq!(p.num_points, 1_234);
        assert_eq!(p.seed, 9);
        assert!(opts.csv);
    }
}
