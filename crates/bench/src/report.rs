//! JSON-lines reporting for the harness binaries (`--json`).
//!
//! One flat JSON object per technique run, so future sessions can append
//! per-PR results to `BENCH_*.json` files and track the performance
//! trajectory without parsing aligned text. Hand-rolled (the container has
//! no serde): strings are escaped, numbers use Rust's shortest round-trip
//! formatting, and the checksum is emitted as a hex *string* because JSON
//! numbers cannot carry 64 bits losslessly. Non-finite floats have no JSON
//! representation at all — `NaN`/`inf` tokens are invalid JSON — so
//! [`JsonLine::num`] emits `null` for them (and debug-asserts, since a
//! non-finite timing is always an upstream bug); the suite parser
//! ([`crate::json`]) rejects both the bare tokens and, at the comparison
//! layer, the `null`s.

use sj_core::driver::RunStats;

/// Builder for one JSON line. Keys are written in insertion order.
#[derive(Debug)]
pub struct JsonLine {
    buf: String,
    /// Keys written so far — duplicate keys are legal JSON but parse as
    /// last-one-wins, silently hiding a harness bug; guarded in debug.
    #[cfg(debug_assertions)]
    keys: Vec<String>,
}

impl JsonLine {
    /// Start a record for the given harness binary ("fig2", "table2", …).
    pub fn new(bench: &str) -> JsonLine {
        let mut line = JsonLine {
            buf: String::from("{"),
            #[cfg(debug_assertions)]
            keys: Vec::new(),
        };
        line.push_key("bench");
        line.push_string(bench);
        line
    }

    fn push_key(&mut self, key: &str) {
        #[cfg(debug_assertions)]
        {
            assert!(
                !self.keys.iter().any(|k| k == key),
                "duplicate JSON key {key:?}: a reader would keep only the last value"
            );
            self.keys.push(key.to_string());
        }
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.push_string(key);
        self.buf.push(':');
    }

    fn push_string(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Append a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonLine {
        self.push_key(key);
        self.push_string(value);
        self
    }

    /// Append a float field. The harness reports wall-clock seconds and
    /// counts, which are always finite — but a NaN or infinity from an
    /// upstream bug must not poison the output: bare `NaN`/`inf` tokens
    /// are invalid JSON (Rust's `{}` formatting would emit exactly those),
    /// so non-finite values are emitted as `null`, which parses cleanly
    /// and is then rejected downstream by `bench_compare` with a clear
    /// error naming the field.
    pub fn num(mut self, key: &str, value: f64) -> JsonLine {
        self.push_key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Append an integer field.
    pub fn int(mut self, key: &str, value: u64) -> JsonLine {
        self.push_key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Append the standard [`RunStats`] fields: per-phase averages, pair
    /// and query counts, the join checksum (hex string), and the index
    /// footprint.
    pub fn stats(self, stats: &RunStats) -> JsonLine {
        self.num("avg_tick_s", stats.avg_tick_seconds())
            .num("build_s", stats.avg_build_seconds())
            .num("query_s", stats.avg_query_seconds())
            .num("update_s", stats.avg_update_seconds())
            .int("pairs", stats.result_pairs)
            .int("queries", stats.queries)
            .int("updates", stats.updates)
            .int("removals", stats.removals)
            .int("inserts", stats.inserts)
            .str("checksum", &format!("{:#x}", stats.checksum))
            .int("index_bytes", stats.index_bytes as u64)
    }

    /// Close the object and return the line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// The standard per-run record every harness binary emits under `--json`:
/// bench section, canonical technique name, an optional swept parameter,
/// and the [`RunStats`] fields. Going through this single constructor
/// keeps the JSON schema identical across binaries.
pub fn stats_line(
    bench: &str,
    technique: &str,
    sweep: Option<(&str, f64)>,
    stats: &RunStats,
) -> String {
    let mut line = JsonLine::new(bench).str("technique", technique);
    if let Some((key, value)) = sweep {
        line = line.num(key, value);
    }
    line.stats(stats).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_core::driver::TickTimes;
    use std::time::Duration;

    #[test]
    fn fields_appear_in_order_with_escaping() {
        let line = JsonLine::new("fig2")
            .str("technique", "Simple Grid \"quoted\"\n")
            .num("x", 0.5)
            .int("n", 3)
            .finish();
        assert_eq!(
            line,
            r#"{"bench":"fig2","technique":"Simple Grid \"quoted\"\n","x":0.5,"n":3}"#
        );
    }

    #[test]
    fn stats_fields_round_trip_the_checksum_as_hex() {
        let stats = RunStats {
            ticks: vec![TickTimes {
                build: Duration::from_millis(10),
                query: Duration::from_millis(20),
                update: Duration::from_millis(30),
            }],
            result_pairs: 42,
            checksum: u64::MAX,
            queries: 7,
            updates: 3,
            removals: 2,
            inserts: 1,
            index_bytes: 1024,
            tile_load: None,
        };
        let line = JsonLine::new("t").stats(&stats).finish();
        assert!(line.contains(r#""pairs":42"#), "{line}");
        assert!(line.contains(r#""removals":2"#), "{line}");
        assert!(line.contains(r#""inserts":1"#), "{line}");
        assert!(
            line.contains(r#""checksum":"0xffffffffffffffff""#),
            "{line}"
        );
        assert!(line.contains(r#""build_s":0.01"#), "{line}");
        assert!(line.starts_with('{') && line.ends_with('}'));
    }

    #[test]
    fn zero_tick_runs_emit_finite_zero_averages() {
        // A warmup-only (ticks = 0) run has no measured ticks; the
        // averages are defined as 0.0 — an unguarded empty mean would
        // produce a NaN, which `num` would have to degrade to `null`.
        let stats = RunStats::default();
        assert!(stats.ticks.is_empty());
        let line = JsonLine::new("t").stats(&stats).finish();
        for key in ["avg_tick_s", "build_s", "query_s", "update_s"] {
            assert!(line.contains(&format!("\"{key}\":0")), "{line}");
        }
        assert!(!line.contains("NaN") && !line.contains("null"), "{line}");
    }

    #[test]
    fn non_finite_numbers_degrade_to_null_not_invalid_json() {
        // Rust's shortest round-trip formatting would write the bare
        // tokens `NaN` / `inf` / `-inf` — invalid JSON that would silently
        // poison a BENCH_*.json trajectory. The builder emits `null`
        // instead, which any JSON parser accepts and the comparator
        // rejects loudly (see crate::json and crate::compare tests).
        let line = JsonLine::new("t")
            .num("bad", f64::NAN)
            .num("pos", f64::INFINITY)
            .num("neg", f64::NEG_INFINITY)
            .num("ok", 1.5)
            .finish();
        assert_eq!(
            line,
            r#"{"bench":"t","bad":null,"pos":null,"neg":null,"ok":1.5}"#
        );
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate JSON key")]
    fn duplicate_keys_are_rejected_in_debug() {
        // Duplicate keys are legal JSON but parse last-one-wins — a
        // harness binary emitting the same field twice would silently
        // shadow the first value. The builder catches it at write time.
        let _ = JsonLine::new("t").num("x", 1.0).num("x", 2.0);
    }

    #[test]
    fn stats_line_carries_the_optional_sweep_field() {
        let stats = RunStats::default();
        let with = stats_line("fig2a", "binsearch", Some(("frac_queriers", 0.5)), &stats);
        assert!(
            with.starts_with(r#"{"bench":"fig2a","technique":"binsearch","frac_queriers":0.5,"#)
        );
        let without = stats_line("table2", "crtree", None, &stats);
        assert!(without.starts_with(r#"{"bench":"table2","technique":"crtree","avg_tick_s":"#));
    }

    #[test]
    fn control_characters_are_u_escaped() {
        let line = JsonLine::new("b").str("k", "a\u{1}b").finish();
        assert!(line.contains("a\\u0001b"), "{line}");
    }
}
