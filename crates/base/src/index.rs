//! The spatial-index abstraction shared by every join technique.

use crate::geom::Rect;
use crate::table::{entry_id, EntryId, ExtentTable, PointTable};

/// A static secondary index over a [`PointTable`], in the paper's *static
/// index nested loop join* category: the index is rebuilt from the base
/// table every tick and probed once per range query.
///
/// The required query method is the sink-based [`SpatialIndex::for_each_in`]:
/// implementations invoke `emit` once per matching row, straight from their
/// scan loops, so the driver can fold results into its checksum without
/// materializing a candidate buffer — buffer traffic is exactly the kind of
/// implementation detail the paper shows dominating in main memory. The
/// `Vec`-collecting [`SpatialIndex::query`] is a provided adapter on top.
pub trait SpatialIndex {
    /// Short display name used in benchmark tables ("Simple Grid", …).
    fn name(&self) -> &str;

    /// Rebuild the index from the base table, reusing internal buffers
    /// wherever possible (rebuild cost is Table 2's "Build" column, so
    /// avoidable allocation would distort the measurement).
    fn build(&mut self, table: &PointTable);

    /// Range query: call `emit` with the handle of every row whose point
    /// lies in `region` (closed-rectangle semantics), in **no particular
    /// order**. `table` is the same base table passed to the most recent
    /// [`SpatialIndex::build`]; secondary indexes dereference entry handles
    /// into it when they must filter candidates exactly.
    fn for_each_in(&self, table: &PointTable, region: &Rect, emit: &mut dyn FnMut(EntryId));

    /// Range query collecting the matches into `out` (appended, in no
    /// particular order). Provided adapter over
    /// [`SpatialIndex::for_each_in`]; callers that need determinism across
    /// techniques sort the buffer.
    fn query(&self, table: &PointTable, region: &Rect, out: &mut Vec<EntryId>) {
        self.for_each_in(table, region, &mut |e| out.push(e));
    }

    /// Bytes of index memory held after the last build, excluding the base
    /// table.
    ///
    /// **Convention: allocated capacity.** Every implementation counts the
    /// bytes its owned allocations actually hold resident (`Vec::capacity`,
    /// not `len`) — directory, arenas, nodes, scratch that survives the
    /// build. Before this was pinned down, implementations mixed live-`len`
    /// and capacity accounting (and one counted a liveness bitmap the
    /// others didn't), so footprints were not comparable across techniques.
    /// Capacity is the honest answer to "what does it cost to keep this
    /// index around": reused arenas keep their high-water mark between
    /// builds, and that memory is held whether or not the last build filled
    /// it.
    ///
    /// Two invariants the registry-wide sanity test
    /// (`tests/memory_accounting.rs`) pins for every index technique:
    /// the result is **> 0** after a build over a non-empty table (except
    /// for [`ScanIndex`], which owns nothing and reports 0), and it is
    /// **monotone** in the population for freshly built instances.
    ///
    /// The paper's §3.1 *live structure* arithmetic (bytes per point at a
    /// given bucket size) is a different quantity; the grid keeps it
    /// available as `SimpleGrid::live_bytes`.
    fn memory_bytes(&self) -> usize;

    /// Whether this index implements the **intersects** predicate over
    /// extent entries — the second axis of the join predicate
    /// (`within-range` over points | `intersects` over rectangles). The
    /// default is `false`: point-only techniques need no change, and the
    /// driver refuses to route an intersection join through them. An
    /// implementation returning `true` must override both
    /// [`SpatialIndex::build_extents`] and
    /// [`SpatialIndex::for_each_intersecting`].
    fn supports_intersect(&self) -> bool {
        false
    }

    /// Rebuild the index from an extent base table — the `intersects`
    /// counterpart of [`SpatialIndex::build`]. Only called when
    /// [`SpatialIndex::supports_intersect`] is `true`; the default
    /// panics so a missing override cannot silently return empty joins.
    fn build_extents(&mut self, _table: &ExtentTable) {
        panic!("{}: no intersects-predicate support", self.name());
    }

    /// Intersection query: call `emit` with the handle of every live row
    /// whose rectangle intersects `region` (closed semantics — touching
    /// edges do intersect), in no particular order. `table` is the table
    /// passed to the most recent [`SpatialIndex::build_extents`]. Only
    /// called when [`SpatialIndex::supports_intersect`] is `true`.
    fn for_each_intersecting(
        &self,
        _table: &ExtentTable,
        _region: &Rect,
        _emit: &mut dyn FnMut(EntryId),
    ) {
        panic!("{}: no intersects-predicate support", self.name());
    }

    /// An independent instance of this technique for a space-partitioned
    /// tile worker (see `crate::par::tiled_index_build`): same
    /// configuration and tuning parameters, fresh private state, nothing
    /// shared with `self`. Mirrors [`crate::batch::BatchJoin::fork`];
    /// implementations typically reconstruct from their stored
    /// configuration, so forking a never-built prototype is cheap. `Sync`
    /// because the pooled mini-join scheduler may probe one tile's fork
    /// from several workers at once — like the prototype itself, forks are
    /// plain data once built.
    fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync>;
}

/// Ground-truth "index": a full scan of the base table. Quadratic in the
/// join, useless for performance — but every other technique is tested and
/// property-checked against it.
#[derive(Debug, Default, Clone)]
pub struct ScanIndex;

impl ScanIndex {
    pub fn new() -> Self {
        ScanIndex
    }
}

impl SpatialIndex for ScanIndex {
    fn name(&self) -> &str {
        "Full Scan"
    }

    fn build(&mut self, _table: &PointTable) {}

    fn for_each_in(&self, table: &PointTable, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        let xs = table.xs();
        let ys = table.ys();
        if table.all_live() {
            for i in 0..xs.len() {
                if region.contains_point(xs[i], ys[i]) {
                    emit(entry_id(i));
                }
            }
        } else {
            // Churn workloads leave tombstones in the table; a scan is the
            // one "index" that sees them and must filter.
            let live = table.live_mask();
            for i in 0..xs.len() {
                if live[i] && region.contains_point(xs[i], ys[i]) {
                    emit(entry_id(i));
                }
            }
        }
    }

    fn supports_intersect(&self) -> bool {
        true
    }

    fn build_extents(&mut self, _table: &ExtentTable) {}

    fn for_each_intersecting(
        &self,
        table: &ExtentTable,
        region: &Rect,
        emit: &mut dyn FnMut(EntryId),
    ) {
        if table.all_live() {
            // Churn-free tables go through the SIMD overlap kernel — the
            // extent counterpart of the point scan's column filter.
            crate::simd::filter_overlap_each(
                table.x1s(),
                table.y1s(),
                table.x2s(),
                table.y2s(),
                region,
                0,
                emit,
            );
        } else {
            let (x1s, y1s) = (table.x1s(), table.y1s());
            let (x2s, y2s) = (table.x2s(), table.y2s());
            let live = table.live_mask();
            for i in 0..x1s.len() {
                if live[i]
                    && region.x1 <= x2s[i]
                    && x1s[i] <= region.x2
                    && region.y1 <= y2s[i]
                    && y1s[i] <= region.y2
                {
                    emit(entry_id(i));
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        // The scan owns no allocation at all — the one legitimate zero
        // under the allocated-capacity convention.
        0
    }

    fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync> {
        Box::new(ScanIndex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;

    fn sample_table() -> PointTable {
        let mut t = PointTable::default();
        for (x, y) in [(0.0, 0.0), (5.0, 5.0), (10.0, 10.0), (5.0, 20.0)] {
            t.push(x, y);
        }
        t
    }

    #[test]
    fn scan_finds_exactly_the_contained_points() {
        let t = sample_table();
        let idx = ScanIndex::new();
        let mut out = Vec::new();
        idx.query(&t, &Rect::new(4.0, 4.0, 11.0, 11.0), &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn scan_includes_boundary_points() {
        let t = sample_table();
        let idx = ScanIndex::new();
        let mut out = Vec::new();
        idx.query(&t, &Rect::new(0.0, 0.0, 5.0, 5.0), &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn empty_region_matches_point_on_it() {
        let t = sample_table();
        let idx = ScanIndex::new();
        let mut out = Vec::new();
        idx.query(&t, &Rect::new(5.0, 5.0, 5.0, 5.0), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn dead_rows_are_never_reported() {
        let mut t = sample_table();
        t.remove(1);
        let idx = ScanIndex::new();
        let mut out = Vec::new();
        idx.query(&t, &Rect::new(0.0, 0.0, 20.0, 20.0), &mut out);
        assert_eq!(out, vec![0, 2, 3]);
    }

    fn sample_extents() -> ExtentTable {
        let mut t = ExtentTable::default();
        for (x1, y1, x2, y2) in [
            (0.0, 0.0, 2.0, 2.0),
            (4.0, 4.0, 6.0, 6.0),
            (10.0, 10.0, 12.0, 12.0),
            (5.0, 20.0, 7.0, 22.0),
        ] {
            t.push(Rect::new(x1, y1, x2, y2));
        }
        t
    }

    #[test]
    fn scan_intersects_finds_exactly_the_overlapping_rects() {
        let t = sample_extents();
        let idx = ScanIndex::new();
        let mut out = Vec::new();
        idx.for_each_intersecting(&t, &Rect::new(5.0, 5.0, 11.0, 11.0), &mut |e| out.push(e));
        assert_eq!(out, vec![1, 2]);
        // Touching edges intersect: the query corner meets rect 0's corner.
        out.clear();
        idx.for_each_intersecting(&t, &Rect::new(2.0, 2.0, 3.0, 3.0), &mut |e| out.push(e));
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn scan_intersects_skips_dead_rows() {
        let mut t = sample_extents();
        t.remove(1);
        let idx = ScanIndex::new();
        let mut out = Vec::new();
        idx.for_each_intersecting(&t, &Rect::new(0.0, 0.0, 30.0, 30.0), &mut |e| out.push(e));
        assert_eq!(out, vec![0, 2, 3]);
    }

    #[test]
    fn scan_advertises_intersect_support() {
        assert!(ScanIndex::new().supports_intersect());
        assert!(ScanIndex::new().fork().supports_intersect());
    }

    #[test]
    fn query_centered_on_nothing_is_empty() {
        let t = sample_table();
        let idx = ScanIndex::new();
        let mut out = Vec::new();
        idx.query(
            &t,
            &Rect::centered_square(Point::new(100.0, 100.0), 4.0),
            &mut out,
        );
        assert!(out.is_empty());
    }
}
