//! The load-bearing integration property: every technique in the registry
//! — both join categories, every grid improvement stage, the quadratic
//! reference scan — computes the *identical* join on the identical
//! workload: different speeds, same answer. Without this, the paper's
//! performance comparison would be comparing different computations.
//!
//! The line-up comes exclusively from [`spatial_joins::technique::registry`];
//! adding a technique to the registry automatically adds it to every test
//! here — and since PR 4 the workload axis comes from
//! [`spatial_joins::workload::workload_registry`] the same way, so the
//! matrix grows automatically on both sides, churn workloads included.

use spatial_joins::prelude::*;

fn run_uniform_spec(spec: TechniqueSpec, params: WorkloadParams) -> RunStats {
    let mut workload = UniformWorkload::new(params);
    let mut tech = spec.build(params.space_side);
    tech.run(&mut workload, DriverConfig::new(params.ticks, 1))
}

fn run_gaussian_spec(spec: TechniqueSpec, params: GaussianParams) -> RunStats {
    let mut workload = GaussianWorkload::new(params);
    let mut tech = spec.build(params.base.space_side);
    tech.run(&mut workload, DriverConfig::new(params.base.ticks, 1))
}

#[test]
fn all_registry_techniques_agree_on_uniform_workload() {
    let params = WorkloadParams {
        num_points: 3_000,
        ticks: 4,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    };
    let mut reference = None;
    for spec in registry() {
        let stats = run_uniform_spec(spec, params);
        assert!(stats.result_pairs > 0, "{} found nothing", spec.name());
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} computed a different join", spec.name())
            }
        }
    }
}

#[test]
fn all_registry_techniques_agree_on_gaussian_workload() {
    let params = GaussianParams {
        base: WorkloadParams {
            num_points: 3_000,
            ticks: 4,
            space_side: 8_000.0,
            ..WorkloadParams::default()
        },
        hotspots: 5,
        sigma: 400.0,
    };
    let mut reference = None;
    for spec in registry() {
        let stats = run_gaussian_spec(spec, params);
        assert!(stats.result_pairs > 0, "{} found nothing", spec.name());
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} computed a different join", spec.name())
            }
        }
    }
}

#[test]
fn agreement_holds_across_query_fractions() {
    for frac in [0.1f32, 0.9] {
        let params = WorkloadParams {
            num_points: 2_000,
            ticks: 3,
            space_side: 8_000.0,
            frac_queriers: frac,
            ..WorkloadParams::default()
        };
        let a = run_uniform_spec(TechniqueSpec::parse("grid:inline").unwrap(), params);
        let b = run_uniform_spec(TechniqueSpec::parse("rtree:str").unwrap(), params);
        assert_eq!(a.checksum, b.checksum, "frac_queriers = {frac}");
        assert_eq!(a.queries, b.queries);
    }
}

#[test]
fn batch_plane_sweep_computes_the_same_join_as_the_indexes() {
    // The specialized-join category goes through the set-at-a-time
    // executor inside the shared tick loop — its join must be identical.
    let params = WorkloadParams {
        num_points: 3_000,
        ticks: 4,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    };
    let indexed = run_uniform_spec(TechniqueSpec::parse("grid:inline").unwrap(), params);
    let swept = run_uniform_spec(TechniqueKind::Sweep.spec(), params);
    assert!(TechniqueKind::Sweep.spec().is_batch());
    assert_eq!(swept.result_pairs, indexed.result_pairs);
    assert_eq!(swept.checksum, indexed.checksum);
    assert_eq!(swept.queries, indexed.queries);
}

#[test]
fn all_registry_techniques_agree_on_road_grid_workload() {
    // The simulation-workload substitute: skewed line-concentrated
    // density must not break any technique.
    use spatial_joins::workload::RoadGridWorkload;
    let params = WorkloadParams {
        num_points: 3_000,
        ticks: 4,
        space_side: 8_000.0,
        max_speed: 150.0,
        ..WorkloadParams::default()
    };
    let mut reference = None;
    for spec in registry() {
        let mut workload = RoadGridWorkload::with_defaults(params);
        let mut tech = spec.build(params.space_side);
        let stats = tech.run(&mut workload, DriverConfig::new(params.ticks, 1));
        assert!(stats.result_pairs > 0, "{} found nothing", spec.name());
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} differs on the road grid", spec.name())
            }
        }
    }
}

#[test]
fn all_registry_techniques_agree_on_every_registry_workload() {
    // The full technique x workload matrix — every technique must compute
    // the identical join on every named workload, including the churn
    // variants where the population itself turns over (tombstoned rows
    // must be invisible to every index and both batch joins, and arrivals
    // must appear in every technique on the same tick).
    let params = WorkloadParams {
        num_points: 1_500,
        ticks: 4,
        space_side: 8_000.0,
        max_speed: 150.0,
        ..WorkloadParams::default()
    };
    for wspec in workload_registry() {
        let mut reference = None;
        for spec in registry() {
            let mut workload = wspec.build(params);
            let mut tech = spec.build(params.space_side);
            let stats = tech.run(&mut *workload, DriverConfig::new(params.ticks, 1));
            assert!(
                stats.result_pairs > 0,
                "{} found nothing on {}",
                spec.name(),
                wspec.name()
            );
            assert_eq!(
                stats.removals > 0 || stats.inserts > 0,
                wspec.has_churn(),
                "{} on {}: churn counters disagree with the spec",
                spec.name(),
                wspec.name()
            );
            let key = (stats.result_pairs, stats.checksum, stats.queries);
            match reference {
                None => reference = Some(key),
                Some(expect) => assert_eq!(
                    key,
                    expect,
                    "{} computed a different join on {}",
                    spec.name(),
                    wspec.name()
                ),
            }
        }
    }
}

/// The join shapes the matrix tests sweep: the paper's self-join plus two
/// bipartite population ratios (equal relations, and the canonical small
/// query relation at |R| = |S|/10).
fn join_shapes() -> Vec<JoinSpec> {
    let equal = JoinSpec::bipartite(
        WorkloadSpec::parse("uniform").unwrap(),
        WorkloadSpec::parse("gaussian:h3").unwrap(),
    );
    vec![
        JoinSpec::SelfJoin,
        equal,
        equal.with_ratio(std::num::NonZeroU32::new(10).unwrap()),
    ]
}

#[test]
fn all_registry_techniques_agree_on_every_join_shape() {
    // Technique x join-shape matrix: per shape, every technique — both
    // categories — computes the identical join. For bipartite shapes the
    // index is built over S and probed from R, so this is the
    // load-bearing proof that no index implementation conflates the two
    // relations (e.g. by dereferencing querier ids into its own table).
    let params = WorkloadParams {
        num_points: 2_000,
        ticks: 4,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    };
    for jspec in join_shapes() {
        let mut reference = None;
        for spec in registry() {
            let stats = sj_bench::run_joined_spec(
                jspec,
                WorkloadKind::Uniform.spec(),
                &params,
                spec,
                ExecMode::Sequential,
            );
            assert!(
                stats.result_pairs > 0,
                "{} found nothing on {}",
                spec.name(),
                jspec.name()
            );
            let key = (stats.result_pairs, stats.checksum, stats.queries);
            match reference {
                None => reference = Some(key),
                Some(expect) => assert_eq!(
                    key,
                    expect,
                    "{} computed a different join on {}",
                    spec.name(),
                    jspec.name()
                ),
            }
        }
    }
}

#[test]
fn bipartite_ratio_changes_the_join_but_not_the_agreement() {
    // The ratio axis must be a real axis: shrinking R changes the
    // computation (fewer queriers, different pairs) while scan-equality
    // above holds per cell. Also pins |R| scaling: at ratio 10 the query
    // count drops to a tenth of the equal-population run's.
    let params = WorkloadParams {
        num_points: 2_000,
        ticks: 4,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    };
    let shapes = join_shapes();
    let run = |jspec| {
        sj_bench::run_joined_spec(
            jspec,
            WorkloadKind::Uniform.spec(),
            &params,
            TechniqueSpec::parse("grid:inline").unwrap(),
            ExecMode::Sequential,
        )
    };
    let self_join = run(shapes[0]);
    let equal = run(shapes[1]);
    let tenth = run(shapes[2]);
    assert_ne!(self_join.checksum, equal.checksum);
    assert_ne!(equal.checksum, tenth.checksum);
    // Queriers are Bernoulli-sampled per row, so counts are only
    // proportional on expectation: |R| = 2000 vs 200 at 50 % queriers over
    // 4 ticks ≈ 4000 vs 400 queries.
    let ratio = equal.queries as f64 / tenth.queries as f64;
    assert!(
        (8.0..12.0).contains(&ratio),
        "|R| should scale queries ~10:1, got {ratio} ({} vs {})",
        equal.queries,
        tenth.queries
    );
}

#[test]
fn churn_relations_churn_independently_in_bipartite_joins() {
    // A churn workload on one side only must keep the other relation's
    // population frozen — and the runs must still agree across techniques
    // (covered by the matrix; here we pin the churn accounting).
    let params = WorkloadParams {
        num_points: 1_500,
        ticks: 4,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    };
    let churned_s = JoinSpec::bipartite(
        WorkloadSpec::parse("uniform").unwrap(),
        WorkloadSpec::parse("churn:uniform").unwrap(),
    );
    let frozen = JoinSpec::bipartite(
        WorkloadSpec::parse("uniform").unwrap(),
        WorkloadSpec::parse("uniform").unwrap(),
    );
    let run = |jspec| {
        sj_bench::run_joined_spec(
            jspec,
            WorkloadKind::Uniform.spec(),
            &params,
            TechniqueSpec::parse("grid:incremental").unwrap(),
            ExecMode::Sequential,
        )
    };
    let churned = run(churned_s);
    assert!(churned.removals > 0 && churned.inserts > 0);
    let still = run(frozen);
    assert_eq!(still.removals + still.inserts, 0);
}

#[test]
fn churn_changes_the_join_but_not_the_agreement() {
    // Sanity that churn:uniform is actually a different computation from
    // uniform (otherwise the matrix above would be vacuous on that axis).
    let params = WorkloadParams {
        num_points: 2_000,
        ticks: 4,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    };
    let run = |spec_str: &str| {
        let mut w = WorkloadSpec::parse(spec_str).unwrap().build(params);
        let mut tech = TechniqueSpec::parse("grid:inline")
            .unwrap()
            .build(params.space_side);
        tech.run(&mut *w, DriverConfig::new(params.ticks, 1))
    };
    let frozen = run("uniform");
    let churned = run("churn:uniform");
    assert_ne!(frozen.checksum, churned.checksum);
    assert_eq!(frozen.removals + frozen.inserts, 0);
    assert!(churned.removals > 0 && churned.inserts > 0);
}

#[test]
fn agreement_holds_with_extreme_hotspot_density() {
    // One hotspot: everything piles into one cluster — worst case for
    // quantized structures (CR-tree, KD-trie) and coarse grids.
    let params = GaussianParams {
        base: WorkloadParams {
            num_points: 2_000,
            ticks: 3,
            space_side: 8_000.0,
            ..WorkloadParams::default()
        },
        hotspots: 1,
        sigma: 200.0,
    };
    let mut reference = None;
    for spec in registry() {
        let stats = run_gaussian_spec(spec, params);
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} differs at 1 hotspot", spec.name())
            }
        }
    }
}
