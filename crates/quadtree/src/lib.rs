//! # sj-quadtree
//!
//! A bucket point-region (PR) quadtree, bulk-built per tick: an extra
//! static-index baseline beyond the paper's four (quadtree-shaped
//! throwaway indexes appear in the original ten-technique study's
//! taxonomy; DESIGN.md §7 motivates its inclusion here).
//!
//! The space is recursively split into four equal quadrants until a
//! region holds at most `bucket_size` points (or the depth limit is hit —
//! duplicate points make unbounded splitting futile). Nodes live in a
//! flat arena with the four children of a node contiguous; leaf entries
//! are `(x, y, id)` columns grouped by leaf, so leaf scans are sequential.

use sj_base::geom::Rect;
use sj_base::index::SpatialIndex;
use sj_base::table::{EntryId, PointTable};

/// Default leaf capacity; in the same regime as the tuned grid's bs = 20.
pub const DEFAULT_BUCKET_SIZE: usize = 16;

/// Depth limit: 2⁻²⁴ of the space side is below f32 resolution anywhere
/// in the paper's coordinate ranges, so deeper splits cannot separate
/// points.
const MAX_DEPTH: u32 = 24;

const NO_CHILDREN: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    /// Index of the first of four contiguous children, or `NO_CHILDREN`
    /// for a leaf.
    child_base: u32,
    /// Leaf payload range in the entry columns (empty for internals).
    start: u32,
    len: u32,
}

/// See crate docs.
///
/// ```
/// use sj_base::{PointTable, Rect, SpatialIndex};
/// use sj_quadtree::QuadTree;
///
/// let mut table = PointTable::default();
/// table.push(1.0, 1.0);
/// table.push(999.0, 999.0);
///
/// let mut tree = QuadTree::with_default_bucket(1000.0);
/// tree.build(&table);
/// let mut hits = Vec::new();
/// tree.query(&table, &Rect::new(990.0, 990.0, 1000.0, 1000.0), &mut hits);
/// assert_eq!(hits, vec![1]);
/// ```
pub struct QuadTree {
    bucket_size: usize,
    space_side: f32,
    nodes: Vec<Node>,
    /// Four child node indices per internal node, at
    /// `child_index[node.child_base .. +4]` in SW, SE, NW, NE order
    /// (children are built depth-first, so they cannot be contiguous in
    /// `nodes` itself).
    child_index: Vec<u32>,
    leaf_x: Vec<f32>,
    leaf_y: Vec<f32>,
    leaf_id: Vec<EntryId>,
    /// Build scratch: entry ids being partitioned.
    scratch: Vec<EntryId>,
}

impl QuadTree {
    /// Quadtree over `[0, space_side]²`.
    ///
    /// # Panics
    /// Panics if `space_side` is not positive or `bucket_size` is zero.
    pub fn new(space_side: f32, bucket_size: usize) -> Self {
        assert!(space_side > 0.0, "space_side must be positive");
        assert!(bucket_size > 0, "bucket_size must be positive");
        QuadTree {
            bucket_size,
            space_side,
            nodes: Vec::new(),
            child_index: Vec::new(),
            leaf_x: Vec::new(),
            leaf_y: Vec::new(),
            leaf_id: Vec::new(),
            scratch: Vec::new(),
        }
    }

    pub fn with_default_bucket(space_side: f32) -> Self {
        Self::new(space_side, DEFAULT_BUCKET_SIZE)
    }

    /// Number of tree nodes after the last build.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Recursively build the subtree over `scratch[lo..hi]`; returns the
    /// node index. `cx`/`cy` is the region centre, `half` its half-side.
    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn build_node(
        &mut self,
        table: &PointTable,
        lo: usize,
        hi: usize,
        cx: f32,
        cy: f32,
        half: f32,
        depth: u32,
    ) -> u32 {
        let ni = self.nodes.len() as u32;
        self.nodes.push(Node {
            child_base: NO_CHILDREN,
            start: 0,
            len: 0,
        });

        if hi - lo <= self.bucket_size || depth >= MAX_DEPTH {
            let start = self.leaf_x.len() as u32;
            for &id in &self.scratch[lo..hi] {
                self.leaf_x.push(table.x(id));
                self.leaf_y.push(table.y(id));
                self.leaf_id.push(id);
            }
            self.nodes[ni as usize].start = start;
            self.nodes[ni as usize].len = (hi - lo) as u32;
            return ni;
        }

        // Partition scratch[lo..hi] into the four quadrants in place:
        // first split by y (south | north), then each half by x.
        let xs = table.xs();
        let ys = table.ys();
        let mid_y = partition(&mut self.scratch[lo..hi], |id| ys[id as usize] < cy) + lo;
        let mid_x_s = partition(&mut self.scratch[lo..mid_y], |id| xs[id as usize] < cx) + lo;
        let mid_x_n = partition(&mut self.scratch[mid_y..hi], |id| xs[id as usize] < cx) + mid_y;

        let q = half * 0.5;
        // Children are created depth-first, so they are NOT contiguous;
        // record each child index explicitly via a temporary array.
        let ranges = [
            (lo, mid_x_s),
            (mid_x_s, mid_y),
            (mid_y, mid_x_n),
            (mid_x_n, hi),
        ];
        let centers = [
            (cx - q, cy - q), // SW
            (cx + q, cy - q), // SE
            (cx - q, cy + q), // NW
            (cx + q, cy + q), // NE
        ];
        let mut children = [0u32; 4];
        for (k, (&(a, b), &(ccx, ccy))) in ranges.iter().zip(centers.iter()).enumerate() {
            children[k] = self.build_node(table, a, b, ccx, ccy, q, depth + 1);
        }
        // Store the four child indices in a side array appended to the
        // arena: children of node ni live at nodes[ni].child_base .. +4 in
        // `child_index`. To keep a single arena, children[] is encoded in
        // the nodes of a dedicated index block below.
        let base = self.child_index.len() as u32;
        self.child_index.extend_from_slice(&children);
        self.nodes[ni as usize].child_base = base;
        ni
    }

    /// Depth-first query descent. Recursive (depth ≤ MAX_DEPTH) so the
    /// per-query hot path allocates nothing.
    fn visit(
        &self,
        ni: u32,
        cx: f32,
        cy: f32,
        h: f32,
        region: &Rect,
        emit: &mut dyn FnMut(EntryId),
    ) {
        let node_rect = Rect::new(cx - h, cy - h, cx + h, cy + h);
        if !region.intersects(&node_rect) {
            return;
        }
        let node = self.nodes[ni as usize];
        if node.child_base == NO_CHILDREN {
            let s = node.start as usize;
            let e = s + node.len as usize;
            if region.contains_rect(&node_rect) {
                for &id in &self.leaf_id[s..e] {
                    emit(id);
                }
            } else {
                sj_base::simd::filter_range_gather_each(
                    &self.leaf_x[s..e],
                    &self.leaf_y[s..e],
                    &self.leaf_id[s..e],
                    region,
                    emit,
                );
            }
        } else {
            let q = h * 0.5;
            let base = node.child_base as usize;
            self.visit(self.child_index[base], cx - q, cy - q, q, region, emit);
            self.visit(self.child_index[base + 1], cx + q, cy - q, q, region, emit);
            self.visit(self.child_index[base + 2], cx - q, cy + q, q, region, emit);
            self.visit(self.child_index[base + 3], cx + q, cy + q, q, region, emit);
        }
    }
}

/// Stable-order in-place partition: moves elements satisfying `pred` to
/// the front, returns the split point. Order within groups is not
/// preserved (irrelevant for spatial grouping).
fn partition<T: Copy, F: Fn(T) -> bool>(slice: &mut [T], pred: F) -> usize {
    let mut i = 0usize;
    for j in 0..slice.len() {
        if pred(slice[j]) {
            slice.swap(i, j);
            i += 1;
        }
    }
    i
}

impl SpatialIndex for QuadTree {
    fn name(&self) -> &str {
        "Quadtree"
    }

    fn build(&mut self, table: &PointTable) {
        self.nodes.clear();
        self.child_index.clear();
        self.leaf_x.clear();
        self.leaf_y.clear();
        self.leaf_id.clear();
        self.scratch.clear();
        // Live rows only: churn tombstones never enter the tree.
        self.scratch.extend(table.iter().map(|(id, _)| id));
        let half = self.space_side * 0.5;
        let n = self.scratch.len();
        self.build_node(table, 0, n, half, half, half, 0);
    }

    fn for_each_in(&self, _table: &PointTable, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        if self.nodes.is_empty() {
            return;
        }
        let half = self.space_side * 0.5;
        // Recursion instead of a heap-allocated stack: the query path runs
        // once per query per tick, and depth is bounded by MAX_DEPTH.
        self.visit(0, half, half, half, region, emit);
    }

    fn memory_bytes(&self) -> usize {
        // Allocated-capacity convention (see the trait docs).
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.child_index.capacity() * 4
            + self.leaf_x.capacity() * 4
            + self.leaf_y.capacity() * 4
            + self.leaf_id.capacity() * std::mem::size_of::<EntryId>()
    }

    fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync> {
        Box::new(QuadTree::new(self.space_side, self.bucket_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::geom::Point;
    use sj_base::index::ScanIndex;
    use sj_base::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    fn random_table(n: usize, seed: u64) -> PointTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        t
    }

    fn sorted_query(idx: &dyn SpatialIndex, t: &PointTable, r: &Rect) -> Vec<EntryId> {
        let mut out = Vec::new();
        idx.query(t, r, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn agrees_with_full_scan() {
        let t = random_table(3_000, 50);
        let mut qt = QuadTree::with_default_bucket(SIDE);
        qt.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let mut rng = Xoshiro256::seeded(51);
        for _ in 0..100 {
            let c = Point::new(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
            let r = Rect::centered_square(c, 90.0);
            assert_eq!(sorted_query(&qt, &t, &r), sorted_query(&scan, &t, &r));
        }
    }

    #[test]
    fn duplicate_points_respect_depth_limit() {
        let mut t = PointTable::default();
        for _ in 0..500 {
            t.push(123.456, 654.321);
        }
        let mut qt = QuadTree::new(SIDE, 4);
        qt.build(&t);
        let out = sorted_query(&qt, &t, &Rect::new(123.0, 654.0, 124.0, 655.0));
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn full_space_query_returns_everything() {
        let t = random_table(700, 52);
        let mut qt = QuadTree::with_default_bucket(SIDE);
        qt.build(&t);
        assert_eq!(sorted_query(&qt, &t, &Rect::space(SIDE)).len(), 700);
    }

    #[test]
    fn empty_and_tiny_tables() {
        let mut qt = QuadTree::with_default_bucket(SIDE);
        let t = PointTable::default();
        qt.build(&t);
        assert!(sorted_query(&qt, &t, &Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        let mut t1 = PointTable::default();
        t1.push(2.0, 2.0);
        qt.build(&t1);
        assert_eq!(
            sorted_query(&qt, &t1, &Rect::new(0.0, 0.0, 5.0, 5.0)),
            vec![0]
        );
    }

    #[test]
    fn points_on_quadrant_boundaries_are_found() {
        // Points exactly on the central split lines.
        let mut t = PointTable::default();
        t.push(SIDE / 2.0, SIDE / 2.0);
        t.push(SIDE / 2.0, 10.0);
        t.push(10.0, SIDE / 2.0);
        let mut qt = QuadTree::new(SIDE, 1);
        qt.build(&t);
        assert_eq!(sorted_query(&qt, &t, &Rect::space(SIDE)).len(), 3);
        assert_eq!(
            sorted_query(
                &qt,
                &t,
                &Rect::new(SIDE / 2.0, SIDE / 2.0, SIDE / 2.0, SIDE / 2.0)
            ),
            vec![0]
        );
    }

    #[test]
    fn rebuild_reflects_movement() {
        let mut t = random_table(200, 53);
        let mut qt = QuadTree::with_default_bucket(SIDE);
        qt.build(&t);
        t.set_position(5, 1.0, 1.0);
        qt.build(&t);
        assert!(sorted_query(&qt, &t, &Rect::new(0.0, 0.0, 2.0, 2.0)).contains(&5));
    }

    #[test]
    fn tree_splits_under_load() {
        let t = random_table(5_000, 54);
        let mut qt = QuadTree::new(SIDE, 8);
        qt.build(&t);
        assert!(qt.num_nodes() > 100, "only {} nodes", qt.num_nodes());
    }
}
