//! # sj-workload
//!
//! Synthetic moving-object workloads for the iterated spatial join,
//! reproducing Table 1 of Šidlauskas & Jensen (PVLDB 2014) — a uniform
//! workload (random placement, random velocities, Bernoulli querier and
//! updater selection) and a Gaussian workload (objects clustered around
//! hotspots with mean-reverting Gaussian movement) — plus a road-grid
//! simulation stand-in and a [`ChurnWorkload`] wrapper that adds
//! population churn (seeded arrivals/departures) over any base workload.
//!
//! All of them implement [`sj_base::Workload`] and are deterministic
//! functions of their seed, so every join technique observes identical
//! trajectories, query sets, and churn sequences — the precondition for
//! the cross-technique result-checksum equality the integration tests
//! assert.
//!
//! Workloads are first-class citizens of the harness: [`WorkloadSpec`]
//! parses/names them (`"uniform"`, `"gaussian:h3"`, `"churn:roadgrid"`,
//! …) and [`workload_registry`] enumerates the full line-up, mirroring
//! the technique registry in `sj_core::technique`. The join *shape* is an
//! axis of its own: [`JoinSpec`] names self-joins and bipartite R ⋈ S
//! joins (`"self"`, `"bipartite:uniformxgaussian:h3:ratio10"`), pairing
//! two independent workloads as the query and data relations.

mod churn;
mod gaussian;
mod join;
mod params;
mod rects;
mod roadgrid;
mod spec;
pub mod trace;
mod uniform;

pub use churn::{ChurnParams, ChurnWorkload};
pub use gaussian::GaussianWorkload;
pub use join::{JoinSpec, ParseJoinError};
pub use params::{GaussianParams, ParamError, WorkloadParams};
pub use rects::RectsWorkload;
pub use roadgrid::RoadGridWorkload;
pub use spec::{
    workload_registry, ParseWorkloadError, WorkloadKind, WorkloadSpec, DEFAULT_HOTSPOTS,
};
pub use trace::{
    record, record_bipartite, record_extents, ExtentTrace, ExtentTraceWorkload, Trace,
    TraceWorkload,
};
pub use uniform::UniformWorkload;
