//! Property tests for the sink-based query API and the technique
//! registry: on arbitrary point sets and query rectangles, the required
//! `for_each_in` and the provided `query` adapter must report the same
//! match set for every registry technique, and spec strings must
//! round-trip through parse → name.

use proptest::prelude::*;
use spatial_joins::prelude::*;

const SIDE: f32 = 1_000.0;

fn arb_points() -> impl Strategy<Value = Vec<(f32, f32)>> {
    prop::collection::vec((0.0f32..=SIDE, 0.0f32..=SIDE), 0..300)
}

fn arb_query() -> impl Strategy<Value = (f32, f32, f32, f32)> {
    (0.0f32..=SIDE, 0.0f32..=SIDE, 0.0f32..=400.0, 0.0f32..=400.0)
}

fn table_of(points: &[(f32, f32)]) -> PointTable {
    let mut t = PointTable::default();
    for &(x, y) in points {
        t.push(x, y);
    }
    t
}

fn query_region((cx, cy, w, h): (f32, f32, f32, f32)) -> Rect {
    Rect::new(cx - w * 0.5, cy - h * 0.5, cx + w * 0.5, cy + h * 0.5).clipped_to(&Rect::space(SIDE))
}

/// `for_each_in` (sink) and `query` (Vec adapter) must agree — same ids,
/// same multiplicities — for every index technique in the registry.
fn check_sink_matches_adapter(points: Vec<(f32, f32)>, q: (f32, f32, f32, f32)) {
    let t = table_of(&points);
    let region = query_region(q);
    for spec in registry() {
        let mut tech = spec.build(SIDE);
        let Some(index) = tech.as_index_mut() else {
            continue; // batch techniques have no per-query interface
        };
        index.build(&t);
        let mut from_sink: Vec<EntryId> = Vec::new();
        index.for_each_in(&t, &region, &mut |id| from_sink.push(id));
        let mut from_adapter: Vec<EntryId> = Vec::new();
        index.query(&t, &region, &mut from_adapter);
        from_sink.sort_unstable();
        from_adapter.sort_unstable();
        assert_eq!(
            from_sink,
            from_adapter,
            "{}: sink and adapter disagree on {region:?}",
            spec.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn for_each_in_agrees_with_query_adapter(points in arb_points(), q in arb_query()) {
        check_sink_matches_adapter(points, q);
    }

    #[test]
    fn sink_agreement_with_degenerate_queries(
        points in arb_points(),
        cx in 0.0f32..=SIDE,
        cy in 0.0f32..=SIDE,
    ) {
        // Zero-area queries: only points exactly on (cx, cy) match.
        check_sink_matches_adapter(points, (cx, cy, 0.0, 0.0));
    }

    #[test]
    fn emitted_ids_are_exactly_the_scan_matches(points in arb_points(), q in arb_query()) {
        // The sink form against ground truth directly, without the adapter
        // in the loop.
        let t = table_of(&points);
        let region = query_region(q);
        let mut expected: Vec<EntryId> = Vec::new();
        ScanIndex::new().for_each_in(&t, &region, &mut |id| expected.push(id));
        expected.sort_unstable();
        for spec in registry() {
            let mut tech = spec.build(SIDE);
            let Some(index) = tech.as_index_mut() else { continue };
            index.build(&t);
            let mut got: Vec<EntryId> = Vec::new();
            index.for_each_in(&t, &region, &mut |id| got.push(id));
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{} disagrees with scan", spec.name());
        }
    }
}

#[test]
fn every_registry_spec_round_trips_through_parse_then_name() {
    for spec in registry() {
        let name = spec.name();
        let reparsed = TechniqueSpec::parse(&name)
            .unwrap_or_else(|e| panic!("canonical name {name:?} failed to parse: {e}"));
        assert_eq!(reparsed, spec, "{name} did not round-trip");
        assert_eq!(reparsed.name(), name);
    }
}

#[test]
fn par_modified_specs_round_trip_for_the_whole_registry() {
    for spec in registry() {
        for threads in [1usize, 2, 7, 32] {
            let par = spec.with_exec(ExecMode::parallel(threads).unwrap());
            let name = par.name();
            let reparsed = TechniqueSpec::parse(&name)
                .unwrap_or_else(|e| panic!("par name {name:?} failed to parse: {e}"));
            assert_eq!(reparsed, par, "{name} did not round-trip");
            assert_eq!(reparsed.name(), name);
            assert_eq!(reparsed.kind, spec.kind);
        }
    }
}

#[test]
fn registry_builds_match_their_spec_labels() {
    for spec in registry() {
        let tech = spec.build(SIDE);
        // Grid stages carry their configuration in the index name; every
        // other technique's runtime name equals the spec label.
        if spec.grid_stage().is_some() {
            assert!(
                tech.name().starts_with("Simple Grid"),
                "{} built {:?}",
                spec.name(),
                tech.name()
            );
        } else {
            assert_eq!(tech.name(), spec.label(), "{}", spec.name());
        }
    }
}
