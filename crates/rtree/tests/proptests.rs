//! Property-based tests for both R-tree variants: structural invariants
//! and agreement with a naive filter on arbitrary inputs and fanouts.

use proptest::prelude::*;
use sj_base::geom::Rect;
use sj_base::index::{ScanIndex, SpatialIndex};
use sj_base::table::PointTable;
use sj_rtree::{str_order, DynRTree, RTree};

const SIDE: f32 = 500.0;

fn arb_points() -> impl Strategy<Value = Vec<(f32, f32)>> {
    prop::collection::vec((0.0f32..=SIDE, 0.0f32..=SIDE), 0..300)
}

fn table_of(points: &[(f32, f32)]) -> PointTable {
    let mut t = PointTable::default();
    for &(x, y) in points {
        t.push(x, y);
    }
    t
}

fn sorted(idx: &dyn SpatialIndex, t: &PointTable, r: &Rect) -> Vec<u32> {
    let mut out = Vec::new();
    idx.query(t, r, &mut out);
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn str_tree_agrees_with_scan(
        points in arb_points(),
        fanout in 2usize..40,
        qx in 0.0f32..=SIDE, qy in 0.0f32..=SIDE, qw in 0.0f32..=250.0, qh in 0.0f32..=250.0,
    ) {
        let t = table_of(&points);
        let region = Rect::new(qx, qy, (qx + qw).min(SIDE), (qy + qh).min(SIDE));
        let mut tree = RTree::new(fanout);
        tree.build(&t);
        let scan = ScanIndex::new();
        prop_assert_eq!(sorted(&tree, &t, &region), sorted(&scan, &t, &region));
    }

    #[test]
    fn dynamic_tree_agrees_with_scan(
        points in arb_points(),
        fanout in 4usize..24,
        qx in 0.0f32..=SIDE, qy in 0.0f32..=SIDE, qw in 0.0f32..=250.0, qh in 0.0f32..=250.0,
    ) {
        let t = table_of(&points);
        let region = Rect::new(qx, qy, (qx + qw).min(SIDE), (qy + qh).min(SIDE));
        let mut tree = DynRTree::new(fanout);
        tree.build(&t);
        let scan = ScanIndex::new();
        prop_assert_eq!(sorted(&tree, &t, &region), sorted(&scan, &t, &region));
    }

    #[test]
    fn dynamic_tree_never_loses_entries(points in arb_points(), fanout in 4usize..24) {
        let t = table_of(&points);
        let mut tree = DynRTree::new(fanout);
        tree.build(&t);
        prop_assert_eq!(tree.len_entries(), points.len());
    }

    #[test]
    fn str_order_is_always_a_permutation(n in 0usize..500, fanout in 2usize..32, seed in any::<u64>()) {
        let mut rng = sj_base::rng::Xoshiro256::seeded(seed);
        let pts: Vec<(f32, f32)> =
            (0..n).map(|_| (rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE))).collect();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        str_order(&mut idx, fanout, |i| pts[i as usize].0, |i| pts[i as usize].1);
        let mut sorted_idx = idx.clone();
        sorted_idx.sort_unstable();
        prop_assert_eq!(sorted_idx, (0..n as u32).collect::<Vec<_>>());
    }
}
