//! Batch (set-at-a-time) join abstraction.
//!
//! The paper's focus is the *index nested loop* category: build an index,
//! probe it once per query. The underlying study also evaluates
//! *specialized join* techniques that consume the whole tick's query set
//! at once (e.g., a forward plane sweep) and need no index at all. This
//! trait captures that shape; `sj-sweep` implements it, and
//! [`crate::driver::run_batch_join`] drives it through the same tick loop
//! so results are directly comparable with the per-query techniques.

use crate::geom::Rect;
use crate::table::{EntryId, PointTable};

/// A set-at-a-time spatial join: all of a tick's range queries against
/// the current base table in one call.
pub trait BatchJoin {
    /// Display name for benchmark tables.
    fn name(&self) -> &str;

    /// Append every `(querier, matching object)` pair to `out`, in no
    /// particular order. `queries` carries `(querier id, region)` with
    /// closed-rectangle semantics, exactly as the per-query driver
    /// produces them.
    fn join(
        &mut self,
        table: &PointTable,
        queries: &[(EntryId, Rect)],
        out: &mut Vec<(EntryId, EntryId)>,
    );

    /// An independent instance of this technique for a parallel worker
    /// (see [`crate::par::shard_batch_join`]): same algorithm, private
    /// scratch state. Implementations are typically `Clone`, so this is
    /// one line; it must not share mutable state with `self`.
    fn fork(&self) -> Box<dyn BatchJoin + Send>;
}

/// Reference implementation: a nested loop over queries × points.
/// Quadratic and only used to validate the real batch techniques.
#[derive(Debug, Default, Clone)]
pub struct NaiveBatchJoin;

impl BatchJoin for NaiveBatchJoin {
    fn name(&self) -> &str {
        "Naive Nested Loop"
    }

    fn join(
        &mut self,
        table: &PointTable,
        queries: &[(EntryId, Rect)],
        out: &mut Vec<(EntryId, EntryId)>,
    ) {
        let xs = table.xs();
        let ys = table.ys();
        let live = table.live_mask();
        for &(q, region) in queries {
            for i in 0..xs.len() {
                if live[i] && region.contains_point(xs[i], ys[i]) {
                    out.push((q, i as EntryId));
                }
            }
        }
    }

    fn fork(&self) -> Box<dyn BatchJoin + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_join_finds_all_pairs() {
        let mut t = PointTable::default();
        t.push(1.0, 1.0);
        t.push(5.0, 5.0);
        t.push(9.0, 9.0);
        let queries = vec![
            (0u32, Rect::new(0.0, 0.0, 6.0, 6.0)),
            (2u32, Rect::new(8.0, 8.0, 10.0, 10.0)),
        ];
        let mut out = Vec::new();
        NaiveBatchJoin.join(&t, &queries, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(0, 0), (0, 1), (2, 2)]);
    }

    #[test]
    fn dead_rows_are_excluded_from_the_join() {
        let mut t = PointTable::default();
        t.push(1.0, 1.0);
        t.push(2.0, 2.0);
        t.remove(0);
        let queries = vec![(9u32, Rect::new(0.0, 0.0, 5.0, 5.0))];
        let mut out = Vec::new();
        NaiveBatchJoin.join(&t, &queries, &mut out);
        assert_eq!(out, vec![(9, 1)]);
    }

    #[test]
    fn empty_inputs_yield_empty_join() {
        let t = PointTable::default();
        let mut out = Vec::new();
        NaiveBatchJoin.join(&t, &[], &mut out);
        assert!(out.is_empty());
        let mut t2 = PointTable::default();
        t2.push(1.0, 1.0);
        NaiveBatchJoin.join(&t2, &[], &mut out);
        assert!(out.is_empty());
    }
}
