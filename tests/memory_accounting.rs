//! The footprint convention, proven registry-wide: every index technique
//! accounts its memory as **allocated capacity** (see
//! `SpatialIndex::memory_bytes`). Two consequences this suite pins for
//! every index in the registry:
//!
//! - a build over a non-empty table leaves a non-zero footprint (the one
//!   exception is the ground-truth scan, which owns no allocation at all
//!   and reports 0 by design);
//! - the footprint is monotone in the population for freshly built
//!   instances — more points can never report *less* resident memory.
//!
//! Before the convention existed, implementations mixed live-`len` and
//! capacity accounting (and one counted a liveness bitmap the others
//! didn't), so cross-technique footprint comparisons in the `memory`
//! harness were comparing different quantities.

use spatial_joins::prelude::*;

fn random_table(n: usize, seed: u64, side: f32) -> PointTable {
    use spatial_joins::core::rng::Xoshiro256;
    let mut rng = Xoshiro256::seeded(seed);
    let mut t = PointTable::with_capacity(n);
    for _ in 0..n {
        t.push(rng.range_f32(0.0, side), rng.range_f32(0.0, side));
    }
    t
}

const SIDE: f32 = 6_000.0;

/// Build a fresh instance of the spec's index over an `n`-point table and
/// return its footprint. `None` for batch techniques (no index to build).
fn footprint(spec: TechniqueSpec, n: usize) -> Option<usize> {
    let mut tech = spec.build(SIDE);
    let index = tech.as_index_mut()?;
    let table = random_table(n, 7, SIDE);
    index.build(&table);
    Some(index.memory_bytes())
}

#[test]
fn every_index_reports_nonzero_memory_after_build() {
    for spec in registry() {
        let Some(bytes) = footprint(spec, 1_000) else {
            continue; // batch technique: no index, no footprint
        };
        if spec.is_reference() {
            assert_eq!(bytes, 0, "the scan owns nothing and must report 0");
        } else {
            assert!(bytes > 0, "{}: zero footprint after build", spec.name());
        }
    }
}

#[test]
fn memory_is_monotone_in_the_population() {
    for spec in registry() {
        let (Some(small), Some(large)) = (footprint(spec, 800), footprint(spec, 3_200)) else {
            continue;
        };
        assert!(
            small <= large,
            "{}: footprint shrank with more points ({small} > {large})",
            spec.name()
        );
    }
}

#[test]
fn capacity_accounting_covers_rebuilds_over_shrinking_tables() {
    // Arenas are reused across builds and keep their high-water mark; the
    // capacity convention must reflect that — a rebuild over a smaller
    // table never reports more than the big build did, and (for real
    // indexes) never drops to zero either.
    for spec in registry() {
        let mut tech = spec.build(SIDE);
        let Some(index) = tech.as_index_mut() else {
            continue;
        };
        index.build(&random_table(2_000, 3, SIDE));
        let big = index.memory_bytes();
        index.build(&random_table(200, 4, SIDE));
        let shrunk = index.memory_bytes();
        assert!(
            shrunk <= big,
            "{}: rebuild over fewer points grew the footprint",
            spec.name()
        );
        if !spec.is_reference() {
            assert!(shrunk > 0, "{}: footprint vanished on rebuild", spec.name());
        }
    }
}
