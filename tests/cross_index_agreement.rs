//! The load-bearing integration property: all five join techniques (and
//! every grid improvement stage) compute the *identical* join on the
//! identical workload — different speeds, same answer. Without this, the
//! paper's performance comparison would be comparing different
//! computations.

use spatial_joins::prelude::*;

fn all_techniques(space_side: f32) -> Vec<Box<dyn SpatialIndex>> {
    let mut v: Vec<Box<dyn SpatialIndex>> = vec![
        Box::new(BinarySearchJoin::new()),
        Box::new(RTree::default()),
        Box::new(CRTree::default()),
        Box::new(LinearKdTrie::new(space_side)),
        Box::new(DynRTree::default()),
        Box::new(IncrementalGrid::tuned(space_side)),
        Box::new(QuadTree::with_default_bucket(space_side)),
        Box::new(VecSearchJoin::new()),
    ];
    for stage in Stage::ALL {
        v.push(Box::new(SimpleGrid::at_stage(stage, space_side)));
    }
    v
}

fn run_uniform(index: &mut dyn SpatialIndex, params: WorkloadParams) -> RunStats {
    let mut workload = UniformWorkload::new(params);
    run_join(&mut workload, index, DriverConfig { ticks: params.ticks, warmup: 1 })
}

fn run_gaussian(index: &mut dyn SpatialIndex, params: GaussianParams) -> RunStats {
    let mut workload = GaussianWorkload::new(params);
    run_join(&mut workload, index, DriverConfig { ticks: params.base.ticks, warmup: 1 })
}

#[test]
fn all_techniques_agree_on_uniform_workload() {
    let params = WorkloadParams {
        num_points: 3_000,
        ticks: 4,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    };
    let mut reference = None;
    for mut index in all_techniques(params.space_side) {
        let stats = run_uniform(index.as_mut(), params);
        assert!(stats.result_pairs > 0, "{} found nothing", index.name());
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} computed a different join", index.name())
            }
        }
    }
}

#[test]
fn all_techniques_agree_on_gaussian_workload() {
    let params = GaussianParams {
        base: WorkloadParams {
            num_points: 3_000,
            ticks: 4,
            space_side: 8_000.0,
            ..WorkloadParams::default()
        },
        hotspots: 5,
        sigma: 400.0,
    };
    let mut reference = None;
    for mut index in all_techniques(params.base.space_side) {
        let stats = run_gaussian(index.as_mut(), params);
        assert!(stats.result_pairs > 0, "{} found nothing", index.name());
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} computed a different join", index.name())
            }
        }
    }
}

#[test]
fn agreement_holds_across_query_fractions() {
    for frac in [0.1f32, 0.9] {
        let params = WorkloadParams {
            num_points: 2_000,
            ticks: 3,
            space_side: 8_000.0,
            frac_queriers: frac,
            ..WorkloadParams::default()
        };
        let mut grid = SimpleGrid::tuned(params.space_side);
        let mut rtree = RTree::default();
        let a = run_uniform(&mut grid, params);
        let b = run_uniform(&mut rtree, params);
        assert_eq!(a.checksum, b.checksum, "frac_queriers = {frac}");
        assert_eq!(a.queries, b.queries);
    }
}

#[test]
fn batch_plane_sweep_computes_the_same_join_as_the_indexes() {
    // The specialized-join category goes through a different driver
    // (set-at-a-time) — its join must still be identical.
    let params = WorkloadParams {
        num_points: 3_000,
        ticks: 4,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    };
    let indexed = {
        let mut grid = SimpleGrid::tuned(params.space_side);
        run_uniform(&mut grid, params)
    };
    let swept = {
        let mut workload = UniformWorkload::new(params);
        let mut sweep = PlaneSweepJoin::new();
        run_batch_join(
            &mut workload,
            &mut sweep,
            DriverConfig { ticks: params.ticks, warmup: 1 },
        )
    };
    assert_eq!(swept.result_pairs, indexed.result_pairs);
    assert_eq!(swept.checksum, indexed.checksum);
    assert_eq!(swept.queries, indexed.queries);
}

#[test]
fn all_techniques_agree_on_road_grid_workload() {
    // The simulation-workload substitute: skewed line-concentrated
    // density must not break any technique.
    use spatial_joins::workload::RoadGridWorkload;
    let params = WorkloadParams {
        num_points: 3_000,
        ticks: 4,
        space_side: 8_000.0,
        max_speed: 150.0,
        ..WorkloadParams::default()
    };
    let mut reference = None;
    for mut index in all_techniques(params.space_side) {
        let mut workload = RoadGridWorkload::with_defaults(params);
        let stats = run_join(
            &mut workload,
            index.as_mut(),
            DriverConfig { ticks: params.ticks, warmup: 1 },
        );
        assert!(stats.result_pairs > 0, "{} found nothing", index.name());
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} differs on the road grid", index.name())
            }
        }
    }
}

#[test]
fn agreement_holds_with_extreme_hotspot_density() {
    // One hotspot: everything piles into one cluster — worst case for
    // quantized structures (CR-tree, KD-trie) and coarse grids.
    let params = GaussianParams {
        base: WorkloadParams {
            num_points: 2_000,
            ticks: 3,
            space_side: 8_000.0,
            ..WorkloadParams::default()
        },
        hotspots: 1,
        sigma: 200.0,
    };
    let mut reference = None;
    for mut index in all_techniques(params.base.space_side) {
        let stats = run_gaussian(index.as_mut(), params);
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} differs at 1 hotspot", index.name())
            }
        }
    }
}
