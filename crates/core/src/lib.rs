//! # sj-core
//!
//! The user-facing core of the spatial-joins workspace (see the
//! repository's DESIGN.md): the full [`sj_base`] foundation re-exported
//! under one roof, plus the [`technique`] registry that names, parses, and
//! constructs every join technique in the workspace.
//!
//! Foundation modules (from `sj-base` — technique crates build against
//! that crate directly so this one can depend on *them* without a cycle):
//!
//! - [`geom`] — points, velocity vectors, closed axis-aligned rectangles;
//! - [`table`] — the structure-of-arrays base table that every *secondary*
//!   index references through 4-byte [`table::EntryId`] handles;
//! - [`index`] — the sink-based [`index::SpatialIndex`] trait plus the
//!   ground-truth [`index::ScanIndex`];
//! - [`batch`] — the set-at-a-time [`batch::BatchJoin`] trait;
//! - [`driver`] — the tick loop (build → query → update) with per-phase
//!   timing, reproducing the Sowell et al. framework the paper builds on;
//! - [`par`] — the parallel query phase ([`par::ExecMode`]) selected via
//!   [`driver::DriverConfig::exec`] or a spec's `@par<N>` / `@tiles<N>`
//!   modifier;
//! - [`tile`] — the space-partitioning geometry behind `@tiles<N>`: the
//!   [`tile::TileGrid`], extent replication, and the reference-point
//!   dedup rule;
//! - [`rng`] — self-contained deterministic xoshiro256++;
//! - [`trace`] — memory-access tracing hooks consumed by `sj-memsim`;
//! - [`stats`] — numeric summaries for the benchmark harness.
//!
//! Capstone module:
//!
//! - [`technique`] — [`technique::Technique`] (an index *or* a batch join
//!   behind one `run` entry point), [`technique::TechniqueSpec`] (parsed
//!   from strings like `"grid:inline"` or `"sweep"`), and
//!   [`technique::registry`], the single source of truth every benchmark
//!   binary, example, and cross-technique test iterates.
//!
//! ## Querying: the sink API
//!
//! [`index::SpatialIndex::for_each_in`] is the required query method:
//! implementations emit each matching [`table::EntryId`] straight from
//! their scan loops. The `Vec`-collecting [`index::SpatialIndex::query`]
//! is a provided adapter on top:
//!
//! ```
//! use sj_core::{PointTable, Rect, ScanIndex, SpatialIndex};
//!
//! let mut t = PointTable::default();
//! t.push(1.0, 1.0);
//! t.push(9.0, 9.0);
//! let idx = ScanIndex::new();
//!
//! let mut count = 0u32;
//! idx.for_each_in(&t, &Rect::new(0.0, 0.0, 5.0, 5.0), &mut |_id| count += 1);
//! assert_eq!(count, 1);
//!
//! let mut hits = Vec::new(); // the adapter, when a buffer is wanted
//! idx.query(&t, &Rect::new(0.0, 0.0, 5.0, 5.0), &mut hits);
//! assert_eq!(hits, vec![0]);
//! ```

pub use sj_base::{batch, driver, geom, index, par, rng, simd, stats, table, tile, trace};

pub mod technique;

pub use batch::{BatchJoin, NaiveBatchJoin};
pub use driver::{
    run_batch_join, run_bipartite_batch_join, run_bipartite_join, run_intersect_batch_join,
    run_intersect_join, run_join, DriverConfig, ExtentTickActions, ExtentWorkload, RunStats,
    TickActions, TickTimes, Workload,
};
pub use geom::{Point, Rect, Vec2};
pub use index::{ScanIndex, SpatialIndex};
pub use par::ExecMode;
pub use table::{EntryId, ExtentTable, MovingExtentSet, MovingSet, PointTable, Table};
pub use technique::{registry, ParseSpecError, Technique, TechniqueKind, TechniqueSpec};
