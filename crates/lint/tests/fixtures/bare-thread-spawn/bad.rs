//@ path: crates/x/src/lib.rs
pub fn fan_out() -> u32 {
    let handle = std::thread::spawn(|| 1 + 1);
    handle.join().unwrap_or(0)
}

// A hand-rolled tile worker pool is just as illegal as a single spawn:
// detached per-tile threads bypass sj_base::par's scoped sharding and its
// commutative checksum merge.
pub fn join_tiles(tiles: Vec<u64>) -> u64 {
    let mut handles = Vec::new();
    for tile in tiles {
        handles.push(std::thread::spawn(move || tile ^ 0x9e37));
    }
    handles
        .into_iter()
        .map(|h| h.join().unwrap_or(0))
        .fold(0, u64::wrapping_add)
}
