//! Property-based tests for the cache simulator: counter consistency and
//! hierarchy monotonicity on arbitrary access streams.

use proptest::prelude::*;
use sj_base::trace::Tracer;
use sj_memsim::{CacheSim, LevelConfig, LINE_BYTES};

fn small_sim() -> CacheSim {
    CacheSim::new(vec![
        LevelConfig {
            name: "L1",
            size_bytes: 1 << 10,
            assoc: 2,
        },
        LevelConfig {
            name: "L2",
            size_bytes: 4 << 10,
            assoc: 4,
        },
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lower_levels_see_only_upper_misses(addrs in prop::collection::vec(0u64..(1 << 20), 1..500)) {
        let mut sim = small_sim();
        for &a in &addrs {
            sim.read(a, 8);
        }
        let s = sim.stats();
        // The hierarchy filters: L2 misses <= L1 misses <= L1 accesses.
        prop_assert!(s.l1_misses <= s.l1_accesses);
        prop_assert!(s.l2_misses <= s.l1_misses);
        prop_assert_eq!(s.reads, addrs.len() as u64);
    }

    #[test]
    fn misses_bounded_by_distinct_lines_when_set_fits(addrs in prop::collection::vec(0u64..(4 << 10), 1..300)) {
        // Working set within L2 capacity: L2 misses are compulsory only,
        // i.e. bounded by the number of distinct lines touched.
        let mut sim = small_sim();
        for &a in &addrs {
            sim.read(a, 1);
        }
        let mut lines: Vec<u64> = addrs.iter().map(|a| a / LINE_BYTES).collect();
        lines.sort_unstable();
        lines.dedup();
        prop_assert!(sim.stats().l2_misses <= lines.len() as u64);
    }

    #[test]
    fn replaying_a_stream_twice_never_increases_miss_rate(addrs in prop::collection::vec(0u64..(1 << 16), 1..200)) {
        let mut once = small_sim();
        for &a in &addrs {
            once.read(a, 1);
        }
        let first = once.stats().l1_misses;
        // Second replay on the warm cache: misses can only grow by at most
        // the cold-run count again (never more than doubling).
        for &a in &addrs {
            once.read(a, 1);
        }
        let both = once.stats().l1_misses;
        prop_assert!(both <= first * 2);
    }

    #[test]
    fn instr_counter_is_exact(ns in prop::collection::vec(0u64..1_000, 0..100)) {
        let mut sim = small_sim();
        for &n in &ns {
            sim.instr(n);
        }
        prop_assert_eq!(sim.stats().instrs, ns.iter().sum::<u64>());
    }
}
