//! Small numeric summaries used by the driver and the benchmark harness.

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for fewer than two samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Five-number-ish summary of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub stddev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary::default();
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n: xs.len(),
            mean: mean(xs),
            stddev: stddev(xs),
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_and_stddev_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic example is sqrt(32/7).
        assert!((stddev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_tracks_extremes() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_singleton_has_zero_spread() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }
}
