//! # sj-base
//!
//! Foundation layer of the spatial-joins workspace (see DESIGN.md §1):
//! everything the individual join-technique crates need, and nothing that
//! depends on them. The user-facing `sj-core` crate re-exports all of this
//! and adds the technique registry on top — downstream code should import
//! `sj_core`, while technique implementations build against `sj_base` so
//! the registry can depend on *them* without a cycle.
//!
//! - [`geom`] — points, velocity vectors, closed axis-aligned rectangles;
//! - [`table`] — the structure-of-arrays base table that every *secondary*
//!   index references through 4-byte [`table::EntryId`] handles;
//! - [`index`] — the sink-based [`index::SpatialIndex`] trait plus the
//!   ground-truth [`index::ScanIndex`];
//! - [`batch`] — the set-at-a-time [`batch::BatchJoin`] trait;
//! - [`driver`] — the tick loop (build → query → update) with per-phase
//!   timing, reproducing the Sowell et al. framework the paper builds on;
//! - [`par`] — the non-sequential query phases ([`par::ExecMode`]: sharded
//!   per-query probing, strip-partitioned batch joins, and space-partitioned
//!   tiled execution) the driver runs under [`driver::DriverConfig::exec`];
//! - [`tile`] — the tiling geometry behind [`par::ExecMode::Partitioned`]:
//!   the [`tile::TileGrid`], extent replication, and the reference-point
//!   deduplication rule (DESIGN.md §13);
//! - [`rng`] — self-contained deterministic xoshiro256++;
//! - [`trace`] — memory-access tracing hooks consumed by `sj-memsim`;
//! - [`stats`] — numeric summaries for the benchmark harness.

pub mod batch;
pub mod driver;
pub mod geom;
pub mod index;
pub mod par;
pub mod rng;
pub mod simd;
pub mod stats;
pub mod table;
pub mod tile;
pub mod trace;

pub use batch::{BatchJoin, NaiveBatchJoin};
pub use driver::{
    run_batch_join, run_intersect_batch_join, run_intersect_join, run_join, DriverConfig,
    ExtentTickActions, ExtentWorkload, RunStats, TickActions, TickTimes, Workload,
};
pub use geom::{Point, Rect, Vec2};
pub use index::{ScanIndex, SpatialIndex};
pub use par::ExecMode;
pub use table::{EntryId, ExtentTable, MovingExtentSet, MovingSet, PointTable, Table};
pub use tile::TileGrid;
