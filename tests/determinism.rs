//! Reproducibility: every figure in EXPERIMENTS.md quotes a seed, so a
//! run must be a pure function of (seed, parameters, technique).

use spatial_joins::prelude::*;

/// Measured ticks used by [`run_once`]; the RunStats-shape test asserts the
/// driver records exactly this many per-phase entries.
const MEASURED_TICKS: u32 = 5;

fn run_once_with(seed: u64, exec: ExecMode) -> RunStats {
    let params = WorkloadParams {
        num_points: 2_000,
        ticks: MEASURED_TICKS,
        space_side: 8_000.0,
        seed,
        ..WorkloadParams::default()
    };
    let mut workload = UniformWorkload::new(params);
    let mut grid = SimpleGrid::tuned(params.space_side);
    run_join(
        &mut workload,
        &mut grid,
        DriverConfig::new(params.ticks, 1).with_exec(exec),
    )
}

fn run_once(seed: u64) -> RunStats {
    run_once_with(seed, ExecMode::Sequential)
}

#[test]
fn identical_seeds_reproduce_bit_identical_joins() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.result_pairs, b.result_pairs);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.updates, b.updates);
}

#[test]
fn different_seeds_give_different_joins() {
    let a = run_once(1);
    let b = run_once(2);
    assert_ne!(a.checksum, b.checksum);
}

#[test]
fn gaussian_workload_is_deterministic_too() {
    let mk = || {
        let params = GaussianParams {
            base: WorkloadParams {
                num_points: 1_500,
                ticks: 4,
                space_side: 8_000.0,
                seed: 7,
                ..WorkloadParams::default()
            },
            hotspots: 8,
            sigma: 300.0,
        };
        let mut workload = GaussianWorkload::new(params);
        let mut index = LinearKdTrie::new(params.base.space_side);
        run_join(&mut workload, &mut index, DriverConfig::new(4, 0))
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.result_pairs, b.result_pairs);
}

#[test]
fn rerun_with_same_seed_is_bit_identical_across_all_runstats_fields() {
    // Regression for the full RunStats shape, not just the checksum: every
    // countable field — pairs, queries, updates, index footprint, and the
    // per-phase tick record — must be bit-identical across two runs with the
    // same workload seed. Wall-clock durations inside TickTimes are the only
    // legitimately nondeterministic part of a run.
    for seed in [0u64, 42, u64::MAX] {
        let a = run_once(seed);
        let b = run_once(seed);
        assert_eq!(
            a.result_pairs, b.result_pairs,
            "seed {seed}: pair count drifted"
        );
        assert_eq!(a.checksum, b.checksum, "seed {seed}: checksum drifted");
        assert_eq!(a.queries, b.queries, "seed {seed}: query count drifted");
        assert_eq!(a.updates, b.updates, "seed {seed}: update count drifted");
        assert_eq!(
            a.index_bytes, b.index_bytes,
            "seed {seed}: index footprint drifted"
        );
        // Per-phase tick counts: one TickTimes entry per measured tick, with
        // all three phases (build/query/update) recorded in each.
        assert_eq!(
            a.ticks.len(),
            b.ticks.len(),
            "seed {seed}: measured tick count drifted"
        );
        assert_eq!(
            a.ticks.len(),
            MEASURED_TICKS as usize,
            "driver must record exactly cfg.ticks measured ticks"
        );
    }
}

#[test]
fn determinism_holds_across_every_registry_technique() {
    // The guarantee is workload-level, so it must hold no matter which
    // technique consumes the workload: same seed, same spec, same numbers.
    // The line-up comes exclusively from the registry.
    let params = WorkloadParams {
        num_points: 1_000,
        ticks: 3,
        space_side: 6_000.0,
        seed: 1234,
        ..WorkloadParams::default()
    };
    let cfg = DriverConfig::new(3, 1);
    let mut reference: Option<(u64, u64)> = None;
    for spec in registry() {
        let run = || {
            let mut w = UniformWorkload::new(params);
            let mut tech = spec.build(params.space_side);
            tech.run(&mut w, cfg)
        };
        let (a, b) = (run(), run());
        let name = spec.name();
        assert_eq!(a.checksum, b.checksum, "{name}: rerun checksum drifted");
        assert_eq!(
            a.result_pairs, b.result_pairs,
            "{name}: rerun pair count drifted"
        );
        // And all techniques must agree with each other on the join result.
        match reference {
            None => reference = Some((a.result_pairs, a.checksum)),
            Some((pairs, checksum)) => {
                assert_eq!(a.result_pairs, pairs, "{name} disagrees on pair count");
                assert_eq!(a.checksum, checksum, "{name} disagrees on checksum");
            }
        }
    }
}

#[test]
fn parallel_golden_checksum_is_stable_across_prs() {
    // Golden values for the parallel path: seed 42, 4 worker threads.
    // Sequential determinism alone would not catch a regression in the
    // cross-shard merge (say, a merge that became order- or
    // shard-boundary-dependent), because such a bug can still be
    // self-consistent between two parallel runs. Pinning the absolute
    // numbers — which equal the sequential goldens by the equivalence
    // guarantee — catches it on the spot.
    let par = run_once_with(42, ExecMode::parallel(4).unwrap());
    let seq = run_once(42);
    assert_eq!(seq.checksum, GOLDEN_CHECKSUM_SEED42, "sequential golden");
    assert_eq!(par.checksum, GOLDEN_CHECKSUM_SEED42, "parallel golden");
    assert_eq!(seq.result_pairs, GOLDEN_PAIRS_SEED42);
    assert_eq!(par.result_pairs, GOLDEN_PAIRS_SEED42);
    assert_eq!(par.queries, seq.queries);
    assert_eq!(par.updates, seq.updates);
}

#[test]
fn tiled_golden_checksum_is_stable_across_prs() {
    // The same goldens under @tiles4: the space-partitioned path has its
    // own merge (per-tile partials under the reference-point rule,
    // DESIGN.md §13), so pin it to the identical absolute numbers. A
    // tiling bug that dropped or double-emitted a boundary pair would be
    // self-consistent between two tiled runs — the pinned constant is
    // what catches it.
    let tiled = run_once_with(42, ExecMode::partitioned(4).unwrap());
    assert_eq!(tiled.checksum, GOLDEN_CHECKSUM_SEED42, "tiled golden");
    assert_eq!(tiled.result_pairs, GOLDEN_PAIRS_SEED42);
}

#[test]
fn pooled_golden_checksum_is_stable_across_prs() {
    // The pooled scheduler (DESIGN.md §14) adds a third merge discipline:
    // mini-join partials folded per worker, workers racing an atomic
    // cursor over the queue. Which worker drains which chunk is the one
    // genuinely nondeterministic thing in the repo — the commutative merge
    // is why the numbers still may not move. Pin @tiles4@par2 and the
    // adaptive tiling to the same absolute constants.
    let pooled = run_once_with(42, ExecMode::pooled(4, 2).unwrap());
    assert_eq!(pooled.checksum, GOLDEN_CHECKSUM_SEED42, "pooled golden");
    assert_eq!(pooled.result_pairs, GOLDEN_PAIRS_SEED42);
    let auto = run_once_with(42, ExecMode::adaptive_pooled(2).unwrap());
    assert_eq!(auto.checksum, GOLDEN_CHECKSUM_SEED42, "adaptive golden");
    assert_eq!(auto.result_pairs, GOLDEN_PAIRS_SEED42);
}

/// The join checksum/pair count of `run_once(42)`, any exec mode. If a
/// change legitimately alters the workload or the fold, re-pin both and
/// say why in the commit; an unexplained diff is a lost determinism
/// guarantee.
const GOLDEN_CHECKSUM_SEED42: u64 = 0xd73f085806b80ac8;
const GOLDEN_PAIRS_SEED42: u64 = 29_556;

fn run_churn_once(exec: ExecMode) -> RunStats {
    let params = WorkloadParams {
        num_points: 2_000,
        ticks: MEASURED_TICKS,
        space_side: 8_000.0,
        seed: 42,
        ..WorkloadParams::default()
    };
    let mut workload = WorkloadSpec::parse("churn:uniform").unwrap().build(params);
    let mut grid = SimpleGrid::tuned(params.space_side);
    run_join(
        &mut *workload,
        &mut grid,
        DriverConfig::new(params.ticks, 1).with_exec(exec),
    )
}

#[test]
fn churn_golden_checksum_is_stable_across_prs() {
    // The churn workload adds two more deterministic streams (departures,
    // arrivals) and a tombstone path through every index; pin the absolute
    // numbers so a drift in any of them — RNG consumption order, the
    // update-phase application order (velocities -> removals -> advance ->
    // inserts), or a handle that shifted — is caught on the spot, in both
    // exec modes.
    let seq = run_churn_once(ExecMode::Sequential);
    let par = run_churn_once(ExecMode::parallel(4).unwrap());
    assert_eq!(
        seq.checksum, GOLDEN_CHURN_CHECKSUM_SEED42,
        "sequential golden"
    );
    assert_eq!(
        par.checksum, GOLDEN_CHURN_CHECKSUM_SEED42,
        "parallel golden"
    );
    assert_eq!(seq.result_pairs, GOLDEN_CHURN_PAIRS_SEED42);
    assert_eq!(par.result_pairs, GOLDEN_CHURN_PAIRS_SEED42);
    assert_eq!(seq.removals, GOLDEN_CHURN_REMOVALS_SEED42);
    assert_eq!(seq.inserts, GOLDEN_CHURN_INSERTS_SEED42);
    assert_eq!(par.removals, seq.removals);
    assert_eq!(par.inserts, seq.inserts);
    // Tiled, tombstones included: a departed row must vanish from every
    // tile replica that held a copy of it.
    let tiled = run_churn_once(ExecMode::partitioned(4).unwrap());
    assert_eq!(tiled.checksum, GOLDEN_CHURN_CHECKSUM_SEED42, "tiled golden");
    assert_eq!(tiled.result_pairs, GOLDEN_CHURN_PAIRS_SEED42);
    assert_eq!(tiled.removals, GOLDEN_CHURN_REMOVALS_SEED42);
    assert_eq!(tiled.inserts, GOLDEN_CHURN_INSERTS_SEED42);
}

/// Goldens of `run_churn_once` (churn:uniform, seed 42, 5 measured ticks
/// after 1 warmup). Same re-pinning policy as the uniform goldens above.
const GOLDEN_CHURN_CHECKSUM_SEED42: u64 = 0x7db1b888cfcbf151;
const GOLDEN_CHURN_PAIRS_SEED42: u64 = 29_767;
const GOLDEN_CHURN_REMOVALS_SEED42: u64 = 198;
const GOLDEN_CHURN_INSERTS_SEED42: u64 = 190;

fn run_bipartite_once(exec: ExecMode) -> RunStats {
    let params = WorkloadParams {
        num_points: 2_000,
        ticks: MEASURED_TICKS,
        space_side: 8_000.0,
        seed: 42,
        ..WorkloadParams::default()
    };
    let jspec = JoinSpec::parse("bipartite:uniformxgaussian:h3:ratio10").unwrap();
    let (mut r, mut s) = jspec.build_pair(params).unwrap();
    let mut grid = SimpleGrid::tuned(params.space_side);
    run_bipartite_join(
        &mut *r,
        &mut *s,
        &mut grid,
        DriverConfig::new(params.ticks, 1).with_exec(exec),
    )
}

#[test]
fn bipartite_golden_checksum_is_stable_across_prs() {
    // The bipartite join adds a second relation with its own decorrelated
    // seed stream, a querier policy (R queries, S never does), and a
    // ratio-scaled population. Pin the absolute numbers in both exec
    // modes so any drift — R-seed derivation, plan order, the relation a
    // region is centred on vs. probed against — is caught on the spot.
    let seq = run_bipartite_once(ExecMode::Sequential);
    let par = run_bipartite_once(ExecMode::parallel(4).unwrap());
    assert_eq!(
        seq.checksum, GOLDEN_BIPARTITE_CHECKSUM_SEED42,
        "sequential golden"
    );
    assert_eq!(
        par.checksum, GOLDEN_BIPARTITE_CHECKSUM_SEED42,
        "parallel golden"
    );
    assert_eq!(seq.result_pairs, GOLDEN_BIPARTITE_PAIRS_SEED42);
    assert_eq!(par.result_pairs, GOLDEN_BIPARTITE_PAIRS_SEED42);
    assert_eq!(seq.queries, GOLDEN_BIPARTITE_QUERIES_SEED42);
    assert_eq!(par.queries, seq.queries);
    assert_eq!(par.updates, seq.updates);
    // And the space-partitioned path, against the same constants: R
    // centers assign queries to tiles, S rows replicate — none of it may
    // perturb the join.
    let tiled = run_bipartite_once(ExecMode::partitioned(4).unwrap());
    assert_eq!(
        tiled.checksum, GOLDEN_BIPARTITE_CHECKSUM_SEED42,
        "tiled golden"
    );
    assert_eq!(tiled.result_pairs, GOLDEN_BIPARTITE_PAIRS_SEED42);
    assert_eq!(tiled.queries, GOLDEN_BIPARTITE_QUERIES_SEED42);
}

/// Goldens of `run_bipartite_once` (bipartite:uniformxgaussian:h3:ratio10,
/// seed 42, 5 measured ticks after 1 warmup, grid:inline). Same re-pinning
/// policy as the goldens above.
const GOLDEN_BIPARTITE_CHECKSUM_SEED42: u64 = 0x19e0e6b6bb0038e7;
const GOLDEN_BIPARTITE_PAIRS_SEED42: u64 = 3_081;
const GOLDEN_BIPARTITE_QUERIES_SEED42: u64 = 502;

#[test]
fn checksum_is_independent_of_result_order() {
    // The R-tree and the grid enumerate results in very different orders;
    // agreement of checksums in the cross-index tests depends on the fold
    // being order independent. Pin that property directly.
    use spatial_joins::core::driver::fold_pair;
    let pairs = [(1u32, 9u32), (2, 8), (3, 7), (4, 6)];
    let forward = pairs.iter().fold(0u64, |c, &(q, r)| fold_pair(c, q, r));
    let backward = pairs
        .iter()
        .rev()
        .fold(0u64, |c, &(q, r)| fold_pair(c, q, r));
    assert_eq!(forward, backward);
}
