//! Property-based equivalence of the SIMD filter widths.
//!
//! The vectorized range filters ([`spatial_joins::core::simd`]) dispatch
//! at runtime between scalar, SSE2, and AVX2 code. Their contract is
//! *bit-identical* output: same candidates, same order, for any column
//! contents — including the boundary ties where `>=`-vs-`>` mistakes
//! hide. Coordinates are drawn from a small lattice around the query
//! edges so a large fraction of points land exactly on them.

use proptest::prelude::*;
use spatial_joins::core::simd::{filter_range, filter_range_gather, filter_range_scalar};
use spatial_joins::prelude::*;

/// The query region every case tests against; points are generated to
/// tie with its edges often.
const REGION: (f32, f32, f32, f32) = (100.0, 100.0, 200.0, 200.0);

/// A coordinate that is frequently *exactly* on a region edge: one of the
/// two edge values, a just-outside neighbour, or an interior/exterior
/// filler.
fn arb_edge_coord() -> impl Strategy<Value = f32> {
    prop::sample::select(vec![
        100.0f32, 200.0, 99.999, 200.001, 150.0, 0.0, 300.0, 100.0, 200.0,
    ])
}

fn arb_cols() -> impl Strategy<Value = Vec<(f32, f32)>> {
    // Lengths straddle the 8-lane AVX2 and 4-lane SSE2 block boundaries.
    prop::collection::vec((arb_edge_coord(), arb_edge_coord()), 0..70)
}

proptest! {
    #[test]
    fn dispatched_filter_matches_scalar_on_boundary_ties(points in arb_cols()) {
        let (xs, ys): (Vec<f32>, Vec<f32>) = points.into_iter().unzip();
        let region = Rect::new(REGION.0, REGION.1, REGION.2, REGION.3);
        let mut dispatched = Vec::new();
        filter_range(&xs, &ys, &region, 40, &mut dispatched);
        let mut scalar = Vec::new();
        filter_range_scalar(&xs, &ys, &region, 40, &mut scalar);
        prop_assert_eq!(dispatched, scalar);
    }

    #[test]
    fn dispatched_gather_matches_a_naive_loop(points in arb_cols()) {
        let (xs, ys): (Vec<f32>, Vec<f32>) = points.into_iter().unzip();
        let ids: Vec<EntryId> = (0..xs.len()).map(|i| 3 + 2 * i as EntryId).collect();
        let region = Rect::new(REGION.0, REGION.1, REGION.2, REGION.3);
        let mut dispatched = Vec::new();
        filter_range_gather(&xs, &ys, &ids, &region, &mut dispatched);
        let mut naive = Vec::new();
        for i in 0..xs.len() {
            if region.contains_point(xs[i], ys[i]) {
                naive.push(ids[i]);
            }
        }
        prop_assert_eq!(dispatched, naive);
    }
}

/// On x86_64 CPUs with AVX2, pin all three widths against each other
/// directly (the dispatcher only ever runs one of them per CPU).
#[cfg(target_arch = "x86_64")]
mod widths {
    use spatial_joins::core::simd::{
        filter_range_gather_each_sse2, filter_range_scalar, filter_range_sse2,
    };
    use spatial_joins::prelude::*;

    #[test]
    fn sse2_and_avx2_agree_with_scalar_on_a_dense_tie_lattice() {
        // Every combination of {edge, just-outside, interior} per axis,
        // tiled past both vector widths.
        let vals = [100.0f32, 200.0, 99.999, 200.001, 150.0];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for round in 0..3 {
            for &x in &vals {
                for &y in &vals {
                    xs.push(x + round as f32 * 0.0); // same lattice each round
                    ys.push(y);
                }
            }
        }
        let region = Rect::new(100.0, 100.0, 200.0, 200.0);
        let mut scalar = Vec::new();
        filter_range_scalar(&xs, &ys, &region, 0, &mut scalar);
        let mut sse2 = Vec::new();
        filter_range_sse2(&xs, &ys, &region, 0, &mut sse2);
        assert_eq!(sse2, scalar);
        let ids: Vec<EntryId> = (0..xs.len() as EntryId).collect();
        let mut gathered = Vec::new();
        filter_range_gather_each_sse2(&xs, &ys, &ids, &region, &mut |e| gathered.push(e));
        assert_eq!(gathered, scalar);
        if std::arch::is_x86_feature_detected!("avx2") {
            use spatial_joins::core::simd::{filter_range_avx2, filter_range_gather_each_avx2};
            let mut avx2 = Vec::new();
            // SAFETY: detection checked above.
            unsafe { filter_range_avx2(&xs, &ys, &region, 0, &mut avx2) };
            assert_eq!(avx2, scalar);
            let mut gathered = Vec::new();
            // SAFETY: detection checked above.
            unsafe {
                filter_range_gather_each_avx2(&xs, &ys, &ids, &region, &mut |e| gathered.push(e))
            };
            assert_eq!(gathered, scalar);
        }
    }
}
