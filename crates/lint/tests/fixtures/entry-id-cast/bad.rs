//@ path: crates/x/src/lib.rs
use sj_base::table::EntryId;

pub fn ids(n: usize) -> Vec<EntryId> {
    (0..n).map(|i| i as EntryId).collect()
}
