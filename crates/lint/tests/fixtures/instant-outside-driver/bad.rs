//@ path: crates/bench/src/bin/sweep.rs
use std::time::Instant;

fn main() {
    let started = Instant::now();
    println!("{}", started.elapsed().as_nanos());
}
