//! Property-based tests for the workload generators: structural
//! invariants over arbitrary parameter combinations.

use proptest::prelude::*;
use sj_base::driver::{TickActions, Workload};
use sj_base::geom::Vec2;
use sj_workload::{GaussianParams, GaussianWorkload, UniformWorkload, WorkloadParams};

fn arb_params() -> impl Strategy<Value = WorkloadParams> {
    (
        100u32..2_000,        // num_points
        1_000.0f32..20_000.0, // space_side
        0.0f32..300.0,        // max_speed
        0.0f32..=1.0,         // frac_queriers
        0.0f32..=1.0,         // frac_updaters
        any::<u64>(),         // seed
    )
        .prop_map(|(n, side, speed, fq, fu, seed)| WorkloadParams {
            ticks: 3,
            num_points: n,
            space_side: side,
            max_speed: speed,
            query_side: 400.0,
            frac_queriers: fq,
            frac_updaters: fu,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uniform_population_respects_all_bounds(params in arb_params()) {
        let mut w = UniformWorkload::new(params);
        let set = w.init();
        prop_assert_eq!(set.len(), params.num_points as usize);
        let space = w.space();
        for (id, p) in set.positions.iter() {
            prop_assert!(space.contains_point(p.x, p.y));
            prop_assert!(set.velocity(id).len() <= params.max_speed * 1.001 + 1e-3);
        }
    }

    #[test]
    fn planned_actions_reference_valid_objects(params in arb_params()) {
        let mut w = UniformWorkload::new(params);
        let set = w.init();
        let mut actions = TickActions::default();
        for tick in 0..3 {
            actions.clear();
            w.plan_tick(tick, &set, &mut actions);
            for &q in &actions.queriers {
                prop_assert!((q as usize) < set.len());
            }
            for &(id, vx, vy) in &actions.velocity_updates {
                prop_assert!((id as usize) < set.len());
                prop_assert!(Vec2::new(vx, vy).len() <= params.max_speed * 1.001 + 1e-3);
            }
        }
    }

    #[test]
    fn movement_stays_inside_space_for_many_ticks(params in arb_params()) {
        let mut w = UniformWorkload::new(params);
        let mut set = w.init();
        let space = w.space();
        let mut actions = TickActions::default();
        for tick in 0..10 {
            actions.clear();
            w.plan_tick(tick, &set, &mut actions);
            for &(id, vx, vy) in &actions.velocity_updates {
                set.set_velocity(id, Vec2::new(vx, vy));
            }
            w.advance(&mut set);
        }
        for (_, p) in set.positions.iter() {
            prop_assert!(space.contains_point(p.x, p.y), "escaped: {p:?}");
        }
    }

    #[test]
    fn gaussian_population_respects_bounds(
        base in arb_params(),
        hotspots in 1u32..64,
        sigma in 10.0f32..2_000.0,
    ) {
        let params = GaussianParams { base, hotspots, sigma };
        let mut w = GaussianWorkload::new(params);
        let set = w.init();
        let space = w.space();
        prop_assert_eq!(w.hotspots().len(), hotspots as usize);
        for (_, p) in set.positions.iter() {
            prop_assert!(space.contains_point(p.x, p.y));
        }
    }
}
