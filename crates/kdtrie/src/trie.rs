//! The linearized KD-trie index.
//!
//! Build: quantize every point to a 2×16-bit grid over the data space,
//! interleave into a 32-bit kd-trie code ([`crate::morton`]), radix-sort
//! the `(code, entry)` pairs ([`crate::radix`]). The sorted array *is* the
//! index — a throwaway structure rebuilt each tick (Dittrich et al.).
//!
//! Query: recursively descend the implicit trie, narrowing the sorted-array
//! segment at each split by binary search. Sub-tries whose cell range is
//! entirely inside the query are reported wholesale; segments below a
//! scan threshold are filtered point by point against the base table.

use sj_base::geom::Rect;
use sj_base::index::SpatialIndex;
use sj_base::table::{EntryId, PointTable};

use crate::morton::encode;
use crate::radix::sort_by_code;

/// Quantization resolution per axis.
const CELLS: u32 = 1 << 16;

/// Segments at or below this length are scanned directly instead of being
/// decomposed further; 16 entries ≈ one cache line of codes plus one of
/// ids, the point where descending costs more than filtering.
const SCAN_THRESHOLD: usize = 16;

/// See module docs.
///
/// ```
/// use sj_base::{PointTable, Rect, SpatialIndex};
/// use sj_kdtrie::LinearKdTrie;
///
/// let mut table = PointTable::default();
/// table.push(250.0, 250.0);
/// table.push(750.0, 750.0);
///
/// let mut trie = LinearKdTrie::new(1000.0); // space side
/// trie.build(&table);
///
/// let mut hits = Vec::new();
/// trie.query(&table, &Rect::new(700.0, 700.0, 800.0, 800.0), &mut hits);
/// assert_eq!(hits, vec![1]);
/// ```
pub struct LinearKdTrie {
    space_side: f32,
    /// Sorted kd-trie codes, parallel to `ids`.
    codes: Vec<u32>,
    ids: Vec<EntryId>,
    /// Build scratch (packed `(code << 32) | id` keys and radix buffer).
    keys: Vec<u64>,
    scratch: Vec<u64>,
}

impl LinearKdTrie {
    /// Create an index for points inside `[0, space_side]²`.
    ///
    /// # Panics
    /// Panics if `space_side` is not positive.
    pub fn new(space_side: f32) -> Self {
        assert!(space_side > 0.0, "space_side must be positive");
        LinearKdTrie {
            space_side,
            codes: Vec::new(),
            ids: Vec::new(),
            keys: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Cell of a coordinate (f64 math so the same formula serves points
    /// and query bounds identically).
    #[inline]
    fn quant(&self, v: f32) -> u32 {
        let t = v as f64 / self.space_side as f64 * CELLS as f64;
        (t.floor().max(0.0) as u32).min(CELLS - 1)
    }

    /// Real-space start of cell `c` along one axis.
    #[inline]
    fn cell_start(&self, c: u32) -> f64 {
        c as f64 * self.space_side as f64 / CELLS as f64
    }

    /// Largest cell range `[lo, hi]` whose real extent is certainly inside
    /// `[a, b]`, shrunk by one cell per side to absorb any f32→f64
    /// rounding at the edges. Returns `None` when nothing is certain.
    fn inner_range(&self, a: f32, b: f32) -> Option<(u32, u32)> {
        let mut lo = (a as f64 / self.space_side as f64 * CELLS as f64).ceil() as i64;
        let mut hi = (b as f64 / self.space_side as f64 * CELLS as f64).floor() as i64 - 1;
        lo += 1;
        hi -= 1;
        if lo < 0 || hi >= CELLS as i64 || lo > hi {
            return None;
        }
        let (lo, hi) = (lo as u32, hi as u32);
        // Verify the guarantee explicitly; the shrink above makes these
        // hold for all realistic inputs.
        if self.cell_start(lo) >= a as f64 && self.cell_start(hi + 1) <= b as f64 {
            Some((lo, hi))
        } else {
            None
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn visit(
        &self,
        table: &PointTable,
        region: &Rect,
        // Sorted-array segment of the current sub-trie.
        seg: std::ops::Range<usize>,
        depth: u32,
        // Cell bounds of the current sub-trie (inclusive).
        nx: (u32, u32),
        ny: (u32, u32),
        // Conservative outer query cells and certain inner query cells.
        outer_x: (u32, u32),
        outer_y: (u32, u32),
        inner_x: Option<(u32, u32)>,
        inner_y: Option<(u32, u32)>,
        emit: &mut dyn FnMut(EntryId),
    ) {
        if seg.is_empty() {
            return;
        }
        // Disjoint from the conservative query footprint: prune.
        if nx.1 < outer_x.0 || nx.0 > outer_x.1 || ny.1 < outer_y.0 || ny.0 > outer_y.1 {
            return;
        }
        // Certainly inside: report the whole segment without filtering.
        if let (Some(ix), Some(iy)) = (inner_x, inner_y) {
            if nx.0 >= ix.0 && nx.1 <= ix.1 && ny.0 >= iy.0 && ny.1 <= iy.1 {
                for &id in &self.ids[seg] {
                    emit(id);
                }
                return;
            }
        }
        // Small segment (or fully descended): exact filter via base table.
        if seg.len() <= SCAN_THRESHOLD || depth == 32 {
            for i in seg {
                let id = self.ids[i];
                if region.contains_point(table.x(id), table.y(id)) {
                    emit(id);
                }
            }
            return;
        }
        // Split the sub-trie on the next code bit; even depths split x
        // (x owns the more significant of each bit pair).
        let bit = 31 - depth;
        let codes = &self.codes[seg.clone()];
        let split = seg.start + codes.partition_point(|&c| (c >> bit) & 1 == 0);
        if depth.is_multiple_of(2) {
            let mid = (nx.0 + nx.1) / 2;
            self.visit(
                table,
                region,
                seg.start..split,
                depth + 1,
                (nx.0, mid),
                ny,
                outer_x,
                outer_y,
                inner_x,
                inner_y,
                emit,
            );
            self.visit(
                table,
                region,
                split..seg.end,
                depth + 1,
                (mid + 1, nx.1),
                ny,
                outer_x,
                outer_y,
                inner_x,
                inner_y,
                emit,
            );
        } else {
            let mid = (ny.0 + ny.1) / 2;
            self.visit(
                table,
                region,
                seg.start..split,
                depth + 1,
                nx,
                (ny.0, mid),
                outer_x,
                outer_y,
                inner_x,
                inner_y,
                emit,
            );
            self.visit(
                table,
                region,
                split..seg.end,
                depth + 1,
                nx,
                (mid + 1, ny.1),
                outer_x,
                outer_y,
                inner_x,
                inner_y,
                emit,
            );
        }
    }
}

impl SpatialIndex for LinearKdTrie {
    fn name(&self) -> &str {
        "Linearized KD-Trie"
    }

    fn build(&mut self, table: &PointTable) {
        let n = table.len();
        self.keys.clear();
        self.keys.reserve(n);
        let xs = table.xs();
        let ys = table.ys();
        let live = table.live_mask();
        for i in 0..n {
            // Live rows only: churn tombstones never get a code.
            if !live[i] {
                continue;
            }
            let code = encode(self.quant(xs[i]) as u16, self.quant(ys[i]) as u16);
            self.keys.push(((code as u64) << 32) | i as u64);
        }
        sort_by_code(&mut self.keys, &mut self.scratch);
        self.codes.clear();
        self.ids.clear();
        self.codes.reserve(n);
        self.ids.reserve(n);
        for &k in &self.keys {
            self.codes.push((k >> 32) as u32);
            self.ids.push(k as u32);
        }
    }

    fn for_each_in(&self, table: &PointTable, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        if self.ids.is_empty() {
            return;
        }
        let outer_x = (self.quant(region.x1), self.quant(region.x2));
        let outer_y = (self.quant(region.y1), self.quant(region.y2));
        let inner_x = self.inner_range(region.x1, region.x2);
        let inner_y = self.inner_range(region.y1, region.y2);
        self.visit(
            table,
            region,
            0..self.ids.len(),
            0,
            (0, CELLS - 1),
            (0, CELLS - 1),
            outer_x,
            outer_y,
            inner_x,
            inner_y,
            emit,
        );
    }

    fn memory_bytes(&self) -> usize {
        // Allocated-capacity convention (see the trait docs).
        self.codes.capacity() * 4 + self.ids.capacity() * std::mem::size_of::<EntryId>()
    }

    fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync> {
        Box::new(LinearKdTrie::new(self.space_side))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::geom::Point;
    use sj_base::index::ScanIndex;
    use sj_base::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    fn random_table(n: usize, seed: u64) -> PointTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        t
    }

    fn sorted_query(idx: &dyn SpatialIndex, t: &PointTable, r: &Rect) -> Vec<EntryId> {
        let mut out = Vec::new();
        idx.query(t, r, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn agrees_with_full_scan() {
        let t = random_table(3_000, 20);
        let mut trie = LinearKdTrie::new(SIDE);
        trie.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let mut rng = Xoshiro256::seeded(21);
        for _ in 0..100 {
            let c = Point::new(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
            let r = Rect::centered_square(c, 85.0);
            assert_eq!(sorted_query(&trie, &t, &r), sorted_query(&scan, &t, &r));
        }
    }

    #[test]
    fn boundary_queries_agree_with_scan() {
        let t = random_table(2_000, 22);
        let mut trie = LinearKdTrie::new(SIDE);
        trie.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        for r in [
            Rect::new(0.0, 0.0, SIDE, SIDE),
            Rect::new(0.0, 0.0, 0.0, SIDE),
            Rect::new(999.99, 0.0, 1_000.0, 1_000.0),
            Rect::new(250.0, 250.0, 250.0, 250.0),
            Rect::new(499.9999, 499.9999, 500.0001, 500.0001),
        ] {
            assert_eq!(
                sorted_query(&trie, &t, &r),
                sorted_query(&scan, &t, &r),
                "{r:?}"
            );
        }
    }

    #[test]
    fn codes_are_sorted_after_build() {
        let t = random_table(5_000, 23);
        let mut trie = LinearKdTrie::new(SIDE);
        trie.build(&t);
        assert!(trie.codes.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(trie.ids.len(), 5_000);
    }

    #[test]
    fn empty_table_is_fine() {
        let mut trie = LinearKdTrie::new(SIDE);
        let t = PointTable::default();
        trie.build(&t);
        assert!(sorted_query(&trie, &t, &Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn duplicate_points_are_all_found() {
        let mut t = PointTable::default();
        for _ in 0..100 {
            t.push(123.0, 456.0);
        }
        let mut trie = LinearKdTrie::new(SIDE);
        trie.build(&t);
        assert_eq!(
            sorted_query(&trie, &t, &Rect::new(123.0, 456.0, 123.0, 456.0)).len(),
            100
        );
    }

    #[test]
    fn inner_range_is_truly_inside() {
        let trie = LinearKdTrie::new(SIDE);
        if let Some((lo, hi)) = trie.inner_range(100.0, 300.0) {
            assert!(trie.cell_start(lo) >= 100.0);
            assert!(trie.cell_start(hi + 1) <= 300.0);
            assert!(lo <= hi);
        } else {
            panic!("a 200-unit interval spans thousands of cells");
        }
    }

    #[test]
    fn inner_range_empty_for_sub_cell_intervals() {
        let trie = LinearKdTrie::new(SIDE);
        // One cell is ~0.0153 units; a 0.001 interval contains no full cell.
        assert!(trie.inner_range(500.0, 500.001).is_none());
    }

    #[test]
    fn rebuild_reflects_movement() {
        let mut t = random_table(500, 24);
        let mut trie = LinearKdTrie::new(SIDE);
        trie.build(&t);
        t.set_position(7, 0.5, 0.5);
        trie.build(&t);
        let out = sorted_query(&trie, &t, &Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(out.contains(&7));
    }

    #[test]
    fn clustered_data_agrees_with_scan() {
        // Dense cluster: many equal codes exercise the depth-32 fallback.
        let mut rng = Xoshiro256::seeded(25);
        let mut t = PointTable::default();
        for _ in 0..2_000 {
            t.push(
                500.0 + rng.range_f32(0.0, 0.01),
                500.0 + rng.range_f32(0.0, 0.01),
            );
        }
        let mut trie = LinearKdTrie::new(SIDE);
        trie.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let r = Rect::new(500.0, 500.0, 500.005, 500.005);
        assert_eq!(sorted_query(&trie, &t, &r), sorted_query(&scan, &t, &r));
    }
}
