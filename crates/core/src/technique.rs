//! The unified technique registry.
//!
//! The paper compares join techniques from two categories the original
//! framework keeps behind different interfaces: *index nested loop*
//! techniques ([`SpatialIndex`]: build per tick, probe per query) and
//! *specialized* set-at-a-time joins ([`BatchJoin`]: the whole tick's
//! query set in one call). [`Technique`] collapses that split behind one
//! `run` entry point, and [`TechniqueSpec`] + [`registry`] make the full
//! line-up a single source of truth: benchmark binaries, examples, and the
//! cross-technique agreement tests all iterate the registry instead of
//! maintaining their own lists.
//!
//! A spec is a [`TechniqueKind`] (which technique) plus an [`ExecMode`]
//! (how its query phase executes). Spec strings are `family` or
//! `family:variant`, optionally followed by an execution modifier:
//! `@par<N>` shards the query set over N threads against one shared
//! index, `@tiles<N>` space-partitions the data into N tiles each with
//! its own private index (e.g. `"grid:inline"`, `"rtree:str@par8"`,
//! `"sweep@tiles4"`); [`TechniqueSpec::parse`] accepts them
//! case-sensitively, and [`TechniqueSpec::name`] returns the canonical
//! form, so specs round-trip. Every registry technique — both categories
//! — runs under any execution mode with bit-identical [`RunStats`] counts
//! (`tests/parallel_equivalence.rs`).

use std::fmt;
use std::num::NonZeroUsize;

use sj_base::batch::BatchJoin;
use sj_base::driver::{
    run_batch_join, run_bipartite_batch_join, run_bipartite_join, run_intersect_batch_join,
    run_intersect_join, run_join, DriverConfig, ExtentWorkload, RunStats, Workload,
};
use sj_base::index::{ScanIndex, SpatialIndex};
use sj_base::par::{ExecMode, Tiling};
use sj_binsearch::{BinarySearchJoin, VecSearchJoin};
use sj_crtree::CRTree;
use sj_grid::{IncrementalGrid, SimpleGrid, Stage};
use sj_kdtrie::LinearKdTrie;
use sj_quadtree::QuadTree;
use sj_rtree::{DynRTree, RTree};
use sj_sweep::PlaneSweepJoin;
use sj_twolayer::TwoLayerJoin;

/// The two join categories behind [`Technique`].
enum Impl {
    /// Index nested loop: rebuild per tick, one probe per query.
    Index(Box<dyn SpatialIndex + Send + Sync>),
    /// Specialized set-at-a-time join: no index, whole query set at once.
    Batch(Box<dyn BatchJoin + Send + Sync>),
}

/// A ready-to-run join technique from either of the paper's categories.
///
/// Obtained from [`TechniqueSpec::build`] (or assembled by hand around any
/// custom [`SpatialIndex`]/[`BatchJoin`] implementation via
/// [`Technique::index`]/[`Technique::batch`], e.g. a grid with swept
/// parameters). [`Technique::run`] drives it through a workload with the
/// category-appropriate driver; results are directly comparable because
/// both drivers share one tick loop.
///
/// A technique built from a spec with a `@par<N>` modifier remembers that
/// preference: [`Technique::run`] promotes a sequential
/// [`DriverConfig::exec`] to it, so `Technique::from_spec("grid@par8")`
/// runs parallel without further plumbing. An explicitly parallel
/// `DriverConfig` always wins.
pub struct Technique {
    imp: Impl,
    exec: ExecMode,
}

impl Technique {
    /// An index-nested-loop technique around `index`, sequential by
    /// default. The `Send + Sync` bounds are what let the parallel query
    /// phase probe the index from several workers; every index in the
    /// workspace is plain data and satisfies them implicitly.
    pub fn index(index: Box<dyn SpatialIndex + Send + Sync>) -> Technique {
        Technique {
            imp: Impl::Index(index),
            exec: ExecMode::Sequential,
        }
    }

    /// A set-at-a-time technique around `join`, sequential by default.
    pub fn batch(join: Box<dyn BatchJoin + Send + Sync>) -> Technique {
        Technique {
            imp: Impl::Batch(join),
            exec: ExecMode::Sequential,
        }
    }

    /// The same technique with a different preferred execution mode.
    pub fn with_exec(mut self, exec: ExecMode) -> Technique {
        self.exec = exec;
        self
    }

    /// The preferred execution mode (from the spec's `@par<N>` modifier,
    /// or [`ExecMode::Sequential`]).
    pub fn exec(&self) -> ExecMode {
        self.exec
    }

    /// The technique's display name (e.g. "R-Tree", "Plane Sweep").
    pub fn name(&self) -> &str {
        match &self.imp {
            Impl::Index(i) => i.name(),
            Impl::Batch(j) => j.name(),
        }
    }

    /// Drive this technique through `workload` for `cfg.ticks` measured
    /// ticks, dispatching to the category-appropriate driver. The query
    /// phase runs under `cfg.exec`, or under this technique's preferred
    /// mode when `cfg.exec` is sequential.
    pub fn run<W: Workload + ?Sized>(&mut self, workload: &mut W, cfg: DriverConfig) -> RunStats {
        let cfg = cfg.with_exec(cfg.exec.or(self.exec));
        match &mut self.imp {
            Impl::Index(i) => run_join(workload, i.as_mut(), cfg),
            Impl::Batch(j) => run_batch_join(workload, j.as_mut(), cfg),
        }
    }

    /// Drive this technique through a **bipartite** join R ⋈ S:
    /// `query_workload` drives the query relation R (one range query per
    /// planned live row, centred on that row), `data_workload` the data
    /// relation S (what indexes build over and joins probe). Same
    /// category dispatch and exec-mode promotion as [`Technique::run`];
    /// index techniques need no per-implementation support — they build
    /// over S and are probed from R — and batch techniques go through
    /// [`sj_base::batch::BatchJoin::join_two`].
    pub fn run_bipartite(
        &mut self,
        query_workload: &mut dyn Workload,
        data_workload: &mut dyn Workload,
        cfg: DriverConfig,
    ) -> RunStats {
        let cfg = cfg.with_exec(cfg.exec.or(self.exec));
        match &mut self.imp {
            Impl::Index(i) => run_bipartite_join(query_workload, data_workload, i.as_mut(), cfg),
            Impl::Batch(j) => {
                run_bipartite_batch_join(query_workload, data_workload, j.as_mut(), cfg)
            }
        }
    }

    /// Drive this technique through an **intersection join** over extent
    /// entries: every tick, each planned querier's own rectangle is
    /// joined against the whole extent table under the closed
    /// rectangle-overlap predicate (see DESIGN.md §15). Same category
    /// dispatch and exec-mode promotion as [`Technique::run`]. Panics
    /// before the first tick unless [`Technique::supports_intersect`].
    pub fn run_intersect<W: ExtentWorkload + ?Sized>(
        &mut self,
        workload: &mut W,
        cfg: DriverConfig,
    ) -> RunStats {
        let cfg = cfg.with_exec(cfg.exec.or(self.exec));
        match &mut self.imp {
            Impl::Index(i) => run_intersect_join(workload, i.as_mut(), cfg),
            Impl::Batch(j) => run_intersect_batch_join(workload, j.as_mut(), cfg),
        }
    }

    /// Whether this technique implements the intersects predicate over
    /// extent entries (either category; see
    /// [`sj_base::index::SpatialIndex::supports_intersect`]).
    pub fn supports_intersect(&self) -> bool {
        match &self.imp {
            Impl::Index(i) => i.supports_intersect(),
            Impl::Batch(j) => j.supports_intersect(),
        }
    }

    /// Parse `spec` and construct the technique for a data space of side
    /// `space_side` in one step.
    pub fn from_spec(spec: &str, space_side: f32) -> Result<Technique, ParseSpecError> {
        Ok(TechniqueSpec::parse(spec)?.build(space_side))
    }

    /// Whether this is a set-at-a-time (batch) technique.
    pub fn is_batch(&self) -> bool {
        matches!(self.imp, Impl::Batch(_))
    }

    /// The contained index, if this is an index technique.
    pub fn as_index(&self) -> Option<&dyn SpatialIndex> {
        match &self.imp {
            Impl::Index(i) => Some(i.as_ref() as &dyn SpatialIndex),
            Impl::Batch(_) => None,
        }
    }

    /// Mutable access to the contained index, if any.
    pub fn as_index_mut(&mut self) -> Option<&mut dyn SpatialIndex> {
        match &mut self.imp {
            Impl::Index(i) => Some(i.as_mut() as &mut dyn SpatialIndex),
            Impl::Batch(_) => None,
        }
    }
}

impl fmt::Debug for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.imp {
            Impl::Index(_) => "index",
            Impl::Batch(_) => "batch",
        };
        write!(f, "Technique({:?}, {kind}, {})", self.name(), self.exec)
    }
}

/// Error from [`TechniqueSpec::parse`]: the offending spec plus the full
/// list of canonical spec strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSpecError {
    pub spec: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown technique spec {:?} (expected one of: ",
            self.spec
        )?;
        for (i, s) in registry().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", s.name())?;
        }
        write!(
            f,
            "; any spec takes an optional execution modifier `@par<N>`, `@tiles<N>`, \
             `@tilesauto`, or a composed `@tiles<N|auto>@par<T>`, e.g. grid:inline@par8, \
             grid:inline@tiles4, or grid:inline@tiles4@par2)"
        )
    }
}

impl std::error::Error for ParseSpecError {}

/// A parseable, nameable handle for every technique in the workspace,
/// with its paper-tuned constructor. `Copy`, so lists of kinds are cheap
/// to filter and re-instantiate (a fresh technique per run keeps
/// measurements independent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TechniqueKind {
    /// Ground-truth full scan (`scan`) — quadratic, for validation only.
    Scan,
    /// Binary Search baseline (`binsearch`), paper §2.2.
    BinarySearch,
    /// Binary Search over sorted SoA columns with the SIMD filter
    /// (`binsearch:simd`) — this repository's extension.
    VecSearch,
    /// Simple Grid at one of the paper's cumulative improvement stages
    /// (`grid:original` … `grid:inline`).
    Grid(Stage),
    /// Incrementally maintained u-Grid (`grid:incremental`), the paper's
    /// reference \[8\].
    GridIncremental,
    /// STR-bulk-loaded static R-tree (`rtree:str`).
    RTreeStr,
    /// Incremental Guttman R-tree (`rtree:dyn`) — extension.
    RTreeDyn,
    /// Cache-conscious CR-tree (`crtree`).
    CRTree,
    /// Bucket PR-quadtree (`quadtree`) — extension.
    QuadTree,
    /// Linearized KD-trie (`kdtrie`).
    KdTrie,
    /// Index-free forward plane sweep (`sweep`) — the specialized join
    /// category; builds a batch [`Technique`].
    Sweep,
    /// Two-layer space-oriented partitioning join (`twolayer`,
    /// arXiv:2307.09256) — a batch technique for extent entries that
    /// emits every intersecting pair exactly once with zero
    /// deduplication; also answers point within-range joins via
    /// degenerate rectangles.
    TwoLayer,
}

/// Every technique in the workspace, in presentation order: the ground
/// truth, the paper's Figure 2 five (with the grid at each cumulative
/// stage), then the extensions. This is the single source of truth the
/// harness binaries and cross-technique tests iterate. All entries are
/// sequential; any of them accepts a parallel execution mode
/// ([`TechniqueSpec::with_exec`] or the `@par<N>` spec modifier).
pub fn registry() -> Vec<TechniqueSpec> {
    let mut v = vec![
        TechniqueKind::Scan,
        TechniqueKind::BinarySearch,
        TechniqueKind::RTreeStr,
        TechniqueKind::CRTree,
        TechniqueKind::KdTrie,
    ];
    v.extend(Stage::ALL.iter().map(|&s| TechniqueKind::Grid(s)));
    v.extend([
        TechniqueKind::GridIncremental,
        TechniqueKind::RTreeDyn,
        TechniqueKind::QuadTree,
        TechniqueKind::VecSearch,
        TechniqueKind::Sweep,
        TechniqueKind::TwoLayer,
    ]);
    v.into_iter().map(TechniqueKind::spec).collect()
}

impl TechniqueKind {
    /// Canonical base spec string (no execution modifier).
    pub const fn name(self) -> &'static str {
        match self {
            TechniqueKind::Scan => "scan",
            TechniqueKind::BinarySearch => "binsearch",
            TechniqueKind::VecSearch => "binsearch:simd",
            TechniqueKind::Grid(Stage::Original) => "grid:original",
            TechniqueKind::Grid(Stage::Restructured) => "grid:restructured",
            TechniqueKind::Grid(Stage::Querying) => "grid:querying",
            TechniqueKind::Grid(Stage::BsTuned) => "grid:bs-tuned",
            TechniqueKind::Grid(Stage::CpsTuned) => "grid:inline",
            TechniqueKind::GridIncremental => "grid:incremental",
            TechniqueKind::RTreeStr => "rtree:str",
            TechniqueKind::RTreeDyn => "rtree:dyn",
            TechniqueKind::CRTree => "crtree",
            TechniqueKind::QuadTree => "quadtree",
            TechniqueKind::KdTrie => "kdtrie",
            TechniqueKind::Sweep => "sweep",
            TechniqueKind::TwoLayer => "twolayer",
        }
    }

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            TechniqueKind::Scan => "Full Scan",
            TechniqueKind::BinarySearch => "Binary Search",
            TechniqueKind::VecSearch => "Binary Search (vectorized)",
            TechniqueKind::Grid(Stage::Original) => "Simple Grid",
            TechniqueKind::Grid(stage) => stage.label(),
            TechniqueKind::GridIncremental => "Simple Grid (incremental)",
            TechniqueKind::RTreeStr => "R-Tree",
            TechniqueKind::RTreeDyn => "R-Tree (incremental)",
            TechniqueKind::CRTree => "CR-Tree",
            TechniqueKind::QuadTree => "Quadtree",
            TechniqueKind::KdTrie => "Linearized KD-Trie",
            TechniqueKind::Sweep => "Plane Sweep",
            TechniqueKind::TwoLayer => "Two-Layer Partitioning",
        }
    }

    /// Parse a base spec string (canonical names plus the aliases `grid` →
    /// `grid:inline`, `rtree` → `rtree:str`, and `binsearch:vec` →
    /// `binsearch:simd`). Execution modifiers belong to
    /// [`TechniqueSpec::parse`].
    pub fn parse(base: &str) -> Option<TechniqueKind> {
        Some(match base {
            "scan" => TechniqueKind::Scan,
            "binsearch" => TechniqueKind::BinarySearch,
            "binsearch:simd" | "binsearch:vec" => TechniqueKind::VecSearch,
            "grid:original" => TechniqueKind::Grid(Stage::Original),
            "grid:restructured" => TechniqueKind::Grid(Stage::Restructured),
            "grid:querying" => TechniqueKind::Grid(Stage::Querying),
            "grid:bs-tuned" => TechniqueKind::Grid(Stage::BsTuned),
            "grid:inline" | "grid" => TechniqueKind::Grid(Stage::CpsTuned),
            "grid:incremental" => TechniqueKind::GridIncremental,
            "rtree:str" | "rtree" => TechniqueKind::RTreeStr,
            "rtree:dyn" => TechniqueKind::RTreeDyn,
            "crtree" => TechniqueKind::CRTree,
            "quadtree" => TechniqueKind::QuadTree,
            "kdtrie" => TechniqueKind::KdTrie,
            "sweep" => TechniqueKind::Sweep,
            "twolayer" => TechniqueKind::TwoLayer,
            _ => return None,
        })
    }

    /// This kind as a sequential [`TechniqueSpec`].
    pub const fn spec(self) -> TechniqueSpec {
        TechniqueSpec {
            kind: self,
            exec: ExecMode::Sequential,
        }
    }

    /// This kind as a parallel [`TechniqueSpec`] over `threads` workers.
    pub const fn par(self, threads: NonZeroUsize) -> TechniqueSpec {
        TechniqueSpec {
            kind: self,
            exec: ExecMode::Parallel { threads },
        }
    }

    /// This kind as a space-partitioned [`TechniqueSpec`] over `tiles`
    /// tiles, each with a private fork of the technique (the default pool:
    /// one worker per tile).
    pub const fn tiled(self, tiles: NonZeroUsize) -> TechniqueSpec {
        TechniqueSpec {
            kind: self,
            exec: ExecMode::Partitioned {
                tiles: Tiling::Fixed(tiles),
                workers: None,
            },
        }
    }

    /// Construct the technique with its paper-tuned parameters for a data
    /// space of side `space_side` (sequential; see [`TechniqueSpec::build`]
    /// for the exec-carrying form).
    pub fn build(self, space_side: f32) -> Technique {
        match self {
            TechniqueKind::Scan => Technique::index(Box::new(ScanIndex::new())),
            TechniqueKind::BinarySearch => Technique::index(Box::new(BinarySearchJoin::new())),
            TechniqueKind::VecSearch => Technique::index(Box::new(VecSearchJoin::new())),
            TechniqueKind::Grid(stage) => {
                Technique::index(Box::new(SimpleGrid::at_stage(stage, space_side)))
            }
            TechniqueKind::GridIncremental => {
                Technique::index(Box::new(IncrementalGrid::tuned(space_side)))
            }
            TechniqueKind::RTreeStr => Technique::index(Box::new(RTree::default())),
            TechniqueKind::RTreeDyn => Technique::index(Box::new(DynRTree::default())),
            TechniqueKind::CRTree => Technique::index(Box::new(CRTree::default())),
            TechniqueKind::QuadTree => {
                Technique::index(Box::new(QuadTree::with_default_bucket(space_side)))
            }
            TechniqueKind::KdTrie => Technique::index(Box::new(LinearKdTrie::new(space_side))),
            TechniqueKind::Sweep => Technique::batch(Box::new(PlaneSweepJoin::new())),
            TechniqueKind::TwoLayer => Technique::batch(Box::new(TwoLayerJoin::new())),
        }
    }

    /// Whether this kind builds a batch (set-at-a-time) technique rather
    /// than an index.
    pub const fn is_batch(self) -> bool {
        matches!(self, TechniqueKind::Sweep | TechniqueKind::TwoLayer)
    }

    /// Whether this kind implements the **intersects** predicate over
    /// extent entries: the ground-truth scan, the Simple Grid stages
    /// (reference-corner extent store), and the two-layer partitioning
    /// join. The rest of the line-up is point-only; the intersection
    /// harness filters on this.
    pub const fn supports_intersects(self) -> bool {
        matches!(
            self,
            TechniqueKind::Scan | TechniqueKind::Grid(_) | TechniqueKind::TwoLayer
        )
    }

    /// Whether this kind is the quadratic ground-truth reference —
    /// essential for agreement tests, useless in timing runs.
    pub const fn is_reference(self) -> bool {
        matches!(self, TechniqueKind::Scan)
    }

    /// Whether this technique belongs in timing tables: everything except
    /// the quadratic reference scan.
    pub const fn is_benchmarkable(self) -> bool {
        !self.is_reference()
    }

    /// The five techniques of the paper's Figure 2 (the Simple Grid in its
    /// *original*, worst-performing implementation).
    pub const fn in_figure2(self) -> bool {
        matches!(
            self,
            TechniqueKind::BinarySearch
                | TechniqueKind::RTreeStr
                | TechniqueKind::CRTree
                | TechniqueKind::KdTrie
                | TechniqueKind::Grid(Stage::Original)
        )
    }

    /// The Simple Grid improvement stage, if this kind is one (the Figure 4
    /// / Table 2 lower-half line-up).
    pub const fn grid_stage(self) -> Option<Stage> {
        match self {
            TechniqueKind::Grid(stage) => Some(stage),
            _ => None,
        }
    }
}

impl fmt::Display for TechniqueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What to run and how: a [`TechniqueKind`] plus an [`ExecMode`]. The
/// string form appends the parallel modifier `@par<N>` to the kind's
/// canonical name (`"grid:inline@par8"` ⇔ the tuned grid with its query
/// phase sharded over 8 threads); [`TechniqueSpec::parse`] and
/// [`TechniqueSpec::name`] round-trip it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TechniqueSpec {
    pub kind: TechniqueKind,
    pub exec: ExecMode,
}

impl TechniqueSpec {
    /// Canonical spec string; [`TechniqueSpec::parse`] inverts it.
    pub fn name(&self) -> String {
        match self.exec {
            ExecMode::Sequential => self.kind.name().to_string(),
            ExecMode::Parallel { threads } => format!("{}@par{threads}", self.kind.name()),
            ExecMode::Partitioned { tiles, workers } => {
                // `Tiling` displays as the count or `auto`, so the name is
                // `@tiles4` / `@tilesauto`, plus `@par<T>` for a pool.
                let mut name = format!("{}@tiles{tiles}", self.kind.name());
                if let Some(w) = workers {
                    name.push_str(&format!("@par{w}"));
                }
                name
            }
        }
    }

    /// Display label matching the paper's figure legends, annotated with
    /// the thread or tile count when non-sequential.
    pub fn label(&self) -> String {
        match self.exec {
            ExecMode::Sequential => self.kind.label().to_string(),
            ExecMode::Parallel { threads } => {
                format!("{} ({threads} threads)", self.kind.label())
            }
            ExecMode::Partitioned { tiles, workers } => {
                let tiles = match tiles {
                    Tiling::Fixed(n) => format!("{n} tiles"),
                    Tiling::Auto => "auto tiles".to_string(),
                };
                match workers {
                    None => format!("{} ({tiles})", self.kind.label()),
                    Some(w) => format!("{} ({tiles}, {w} workers)", self.kind.label()),
                }
            }
        }
    }

    /// Parse a spec string: a base name ([`TechniqueKind::parse`], aliases
    /// included) optionally followed by `@par<N>`, `@tiles<N>`,
    /// `@tilesauto`, or the composed `@tiles<N|auto>@par<T>` (canonical
    /// order: tiles before par) with `N, T ≥ 1`. `@par0` / `@tiles0` /
    /// `@tiles4@par0` are rejected here — every mode holds a
    /// [`NonZeroUsize`], so a zero-worker spec cannot even be constructed.
    pub fn parse(spec: &str) -> Result<TechniqueSpec, ParseSpecError> {
        let err = || ParseSpecError {
            spec: spec.to_string(),
        };
        let (base, exec) = match spec.split_once('@') {
            None => (spec, ExecMode::Sequential),
            Some((base, modifier)) => {
                // `tiles` first: `t-i-l-e-s` does not start with `par`, but
                // keeping the longer keyword first is the convention for
                // prefix menus.
                let exec = if let Some(rest) = modifier.strip_prefix("tiles") {
                    let (tiles_str, workers) = match rest.split_once('@') {
                        None => (rest, None),
                        Some((tiles_str, pool)) => {
                            let w = pool.strip_prefix("par").ok_or_else(err)?;
                            (
                                tiles_str,
                                Some(w.parse::<NonZeroUsize>().map_err(|_| err())?),
                            )
                        }
                    };
                    let tiles = if tiles_str == "auto" {
                        Tiling::Auto
                    } else {
                        Tiling::Fixed(tiles_str.parse::<NonZeroUsize>().map_err(|_| err())?)
                    };
                    ExecMode::Partitioned { tiles, workers }
                } else if let Some(n) = modifier.strip_prefix("par") {
                    let threads = n.parse::<NonZeroUsize>().map_err(|_| err())?;
                    ExecMode::Parallel { threads }
                } else {
                    return Err(err());
                };
                (base, exec)
            }
        };
        let kind = TechniqueKind::parse(base).ok_or_else(err)?;
        Ok(TechniqueSpec { kind, exec })
    }

    /// The same spec under a different execution mode.
    pub const fn with_exec(mut self, exec: ExecMode) -> TechniqueSpec {
        self.exec = exec;
        self
    }

    /// Construct the technique with its paper-tuned parameters for a data
    /// space of side `space_side`. The spec's execution mode is embedded:
    /// [`Technique::run`] applies it whenever the driver config does not
    /// name a parallel mode itself.
    pub fn build(self, space_side: f32) -> Technique {
        self.kind.build(space_side).with_exec(self.exec)
    }

    // Delegates, so registry filters read the same as before the
    // kind/exec split.
    pub const fn is_batch(self) -> bool {
        self.kind.is_batch()
    }
    pub const fn is_reference(self) -> bool {
        self.kind.is_reference()
    }
    pub const fn is_benchmarkable(self) -> bool {
        self.kind.is_benchmarkable()
    }
    pub const fn in_figure2(self) -> bool {
        self.kind.in_figure2()
    }
    pub const fn supports_intersects(self) -> bool {
        self.kind.supports_intersects()
    }
    pub const fn grid_stage(self) -> Option<Stage> {
        self.kind.grid_stage()
    }
}

impl From<TechniqueKind> for TechniqueSpec {
    fn from(kind: TechniqueKind) -> TechniqueSpec {
        kind.spec()
    }
}

impl std::str::FromStr for TechniqueSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TechniqueSpec::parse(s)
    }
}

impl fmt::Display for TechniqueSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn par(n: usize) -> ExecMode {
        ExecMode::parallel(n).unwrap()
    }

    fn tiles(n: usize) -> ExecMode {
        ExecMode::partitioned(n).unwrap()
    }

    #[test]
    fn registry_covers_every_category_once() {
        let specs = registry();
        assert_eq!(specs.len(), 16);
        assert_eq!(specs.iter().filter(|s| s.is_batch()).count(), 2);
        assert_eq!(specs.iter().filter(|s| s.is_reference()).count(), 1);
        assert_eq!(specs.iter().filter(|s| s.in_figure2()).count(), 5);
        assert_eq!(specs.iter().filter(|s| s.grid_stage().is_some()).count(), 5);
        // The intersects predicate: the reference scan, all five grid
        // stages, and the two-layer join.
        assert_eq!(specs.iter().filter(|s| s.supports_intersects()).count(), 7);
        assert!(specs.iter().all(|s| s.exec == ExecMode::Sequential));
    }

    #[test]
    fn every_spec_round_trips_through_parse() {
        for spec in registry() {
            assert_eq!(
                TechniqueSpec::parse(&spec.name()),
                Ok(spec),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn par_specs_round_trip_through_parse_and_name() {
        for base in registry() {
            for n in [1usize, 2, 8, 64] {
                let spec = base.with_exec(par(n));
                let name = spec.name();
                assert!(name.ends_with(&format!("@par{n}")), "{name}");
                assert_eq!(TechniqueSpec::parse(&name), Ok(spec), "{name}");
            }
        }
        // Aliases canonicalize under the modifier too.
        let parsed = TechniqueSpec::parse("grid@par8").unwrap();
        assert_eq!(parsed.kind, TechniqueKind::Grid(Stage::CpsTuned));
        assert_eq!(parsed.exec, par(8));
        assert_eq!(parsed.name(), "grid:inline@par8");
    }

    #[test]
    fn tiles_specs_round_trip_through_parse_and_name() {
        for base in registry() {
            for n in [1usize, 2, 5, 16] {
                let spec = base.with_exec(tiles(n));
                let name = spec.name();
                assert!(name.ends_with(&format!("@tiles{n}")), "{name}");
                assert_eq!(TechniqueSpec::parse(&name), Ok(spec), "{name}");
            }
        }
        // Aliases canonicalize under the modifier too.
        let parsed = TechniqueSpec::parse("grid@tiles4").unwrap();
        assert_eq!(parsed.kind, TechniqueKind::Grid(Stage::CpsTuned));
        assert_eq!(parsed.exec, tiles(4));
        assert_eq!(parsed.name(), "grid:inline@tiles4");
    }

    #[test]
    fn pooled_specs_round_trip_through_parse_and_name() {
        for base in registry() {
            for (t, w) in [(1usize, 1usize), (4, 2), (16, 8), (64, 3)] {
                let spec = base.with_exec(ExecMode::pooled(t, w).unwrap());
                let name = spec.name();
                assert!(name.ends_with(&format!("@tiles{t}@par{w}")), "{name}");
                assert_eq!(TechniqueSpec::parse(&name), Ok(spec), "{name}");
            }
        }
        let parsed = TechniqueSpec::parse("grid@tiles16@par2").unwrap();
        assert_eq!(parsed.kind, TechniqueKind::Grid(Stage::CpsTuned));
        assert_eq!(parsed.exec, ExecMode::pooled(16, 2).unwrap());
        assert_eq!(parsed.name(), "grid:inline@tiles16@par2");
    }

    #[test]
    fn adaptive_specs_round_trip_through_parse_and_name() {
        for base in registry() {
            let auto = base.with_exec(ExecMode::adaptive());
            assert!(auto.name().ends_with("@tilesauto"), "{}", auto.name());
            assert_eq!(TechniqueSpec::parse(&auto.name()), Ok(auto));
            let pooled = base.with_exec(ExecMode::adaptive_pooled(8).unwrap());
            assert!(
                pooled.name().ends_with("@tilesauto@par8"),
                "{}",
                pooled.name()
            );
            assert_eq!(TechniqueSpec::parse(&pooled.name()), Ok(pooled));
        }
    }

    #[test]
    fn malformed_par_modifiers_are_rejected() {
        for bad in [
            "grid@par0",
            "grid@par",
            "grid@8",
            "grid@threads8",
            "grid@par-1",
            "grid@parX",
            "@par8",
            "grid@par8@par8",
            "grid@tiles0",
            "grid@tiles",
            "grid@tiles-1",
            "grid@tilesX",
            "grid@tile4",
            "@tiles4",
            "grid@tiles4@tiles4",
            "grid@par4tiles4",
            "grid@tilesauto@tiles2",
            "grid@tilesauto4",
            "grid@tiles4@par0",
            "grid@tilesauto@par",
            "grid@par4@tiles4",
        ] {
            let err = TechniqueSpec::parse(bad).unwrap_err();
            assert_eq!(err.spec, bad);
        }
    }

    #[test]
    fn names_and_labels_are_unique() {
        let specs = registry();
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.name(), b.name());
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn parallel_labels_carry_the_thread_count() {
        let spec = TechniqueKind::RTreeStr.par(NonZeroUsize::new(4).unwrap());
        assert_eq!(spec.label(), "R-Tree (4 threads)");
        assert_eq!(spec.name(), "rtree:str@par4");
    }

    #[test]
    fn tiled_labels_carry_the_tile_count() {
        let spec = TechniqueKind::RTreeStr.tiled(NonZeroUsize::new(4).unwrap());
        assert_eq!(spec.label(), "R-Tree (4 tiles)");
        assert_eq!(spec.name(), "rtree:str@tiles4");
    }

    #[test]
    fn pooled_and_adaptive_labels_carry_both_counts() {
        let spec = TechniqueKind::RTreeStr
            .spec()
            .with_exec(ExecMode::pooled(4, 2).unwrap());
        assert_eq!(spec.label(), "R-Tree (4 tiles, 2 workers)");
        let auto = TechniqueKind::RTreeStr
            .spec()
            .with_exec(ExecMode::adaptive());
        assert_eq!(auto.label(), "R-Tree (auto tiles)");
        let auto_pool = TechniqueKind::RTreeStr
            .spec()
            .with_exec(ExecMode::adaptive_pooled(2).unwrap());
        assert_eq!(auto_pool.label(), "R-Tree (auto tiles, 2 workers)");
    }

    #[test]
    fn aliases_resolve_to_tuned_variants() {
        assert_eq!(
            TechniqueSpec::parse("grid"),
            Ok(TechniqueKind::Grid(Stage::CpsTuned).spec())
        );
        assert_eq!(
            TechniqueSpec::parse("rtree"),
            Ok(TechniqueKind::RTreeStr.spec())
        );
        assert_eq!(
            TechniqueSpec::parse("binsearch:vec"),
            Ok(TechniqueKind::VecSearch.spec())
        );
    }

    #[test]
    fn unknown_specs_are_rejected_with_the_full_menu() {
        let err = TechniqueSpec::parse("btree").unwrap_err();
        assert_eq!(err.spec, "btree");
        let msg = err.to_string();
        assert!(
            msg.contains("grid:inline") && msg.contains("sweep") && msg.contains("@par<N>"),
            "{msg}"
        );
    }

    #[test]
    fn build_produces_the_right_category() {
        for spec in registry() {
            let tech = spec.build(1_000.0);
            assert_eq!(tech.is_batch(), spec.is_batch(), "{}", spec.name());
            assert_eq!(
                tech.as_index().is_some(),
                !spec.is_batch(),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn built_techniques_remember_their_exec_mode() {
        let seq = TechniqueKind::RTreeStr.spec().build(1_000.0);
        assert_eq!(seq.exec(), ExecMode::Sequential);
        let p = TechniqueSpec::parse("rtree:str@par4")
            .unwrap()
            .build(1_000.0);
        assert_eq!(p.exec(), par(4));
    }

    #[test]
    fn from_spec_parses_and_builds() {
        let mut t = Technique::from_spec("grid:inline", 1_000.0).unwrap();
        assert!(t.name().starts_with("Simple Grid"));
        assert!(t.as_index().is_some());
        assert!(t.as_index_mut().is_some());
        assert!(Technique::from_spec("nope", 1_000.0).is_err());
        assert!(Technique::from_spec("grid:inline@par0", 1_000.0).is_err());
        assert!(Technique::from_spec("grid:inline@tiles0", 1_000.0).is_err());
    }

    #[test]
    fn every_registry_technique_runs_bipartite_and_agrees() {
        use sj_base::driver::TickActions;
        use sj_base::geom::{Point, Rect, Vec2};
        use sj_base::table::MovingSet;

        // R and S with different sizes and offset placements; every
        // technique — both categories — must compute the identical R ⋈ S.
        struct GridPoints {
            n: u32,
            stride: f32,
            query: bool,
        }
        impl Workload for GridPoints {
            fn space(&self) -> Rect {
                Rect::space(100.0)
            }
            fn query_side(&self) -> f32 {
                25.0
            }
            fn init(&mut self) -> MovingSet {
                let mut s = MovingSet::default();
                for i in 0..self.n {
                    let t = (i as f32 * self.stride) % 100.0;
                    s.push(Point::new(t, (t * 3.0 + 7.0) % 100.0), Vec2::new(1.0, 0.5));
                }
                s
            }
            fn plan_tick(&mut self, _t: u32, set: &MovingSet, a: &mut TickActions) {
                if self.query {
                    a.queriers.extend(0..set.len() as u32);
                }
            }
        }

        let cfg = DriverConfig::new(2, 0);
        let mut reference = None;
        for spec in registry() {
            for exec in [ExecMode::Sequential, par(3)] {
                let mut r = GridPoints {
                    n: 12,
                    stride: 13.0,
                    query: true,
                };
                let mut s = GridPoints {
                    n: 70,
                    stride: 3.0,
                    query: false,
                };
                let mut tech = spec.with_exec(exec).build(100.0);
                let stats = tech.run_bipartite(&mut r, &mut s, cfg);
                assert!(stats.result_pairs > 0, "{}", spec.name());
                assert_eq!(stats.queries, 2 * 12, "{}", spec.name());
                match reference {
                    None => reference = Some((stats.result_pairs, stats.checksum)),
                    Some(expect) => assert_eq!(
                        (stats.result_pairs, stats.checksum),
                        expect,
                        "{} ({exec}) computed a different bipartite join",
                        spec.name()
                    ),
                }
            }
        }
    }

    #[test]
    fn intersect_support_is_consistent_between_spec_and_technique() {
        for spec in registry() {
            let tech = spec.build(1_000.0);
            assert_eq!(
                tech.supports_intersect(),
                spec.supports_intersects(),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn intersect_techniques_agree_across_exec_modes() {
        use sj_base::driver::ExtentTickActions;
        use sj_base::geom::{Rect, Vec2};
        use sj_base::table::MovingExtentSet;

        // Deterministic drifting rectangles; every live entry queries its
        // own extent each tick (the driver's rect self-join).
        struct ToyRects;
        impl ExtentWorkload for ToyRects {
            fn space(&self) -> Rect {
                Rect::space(100.0)
            }
            fn init(&mut self) -> MovingExtentSet {
                let mut s = MovingExtentSet::default();
                for i in 0..40u32 {
                    let t = (i as f32 * 7.3) % 85.0;
                    let u = (t * 3.1 + 11.0) % 85.0;
                    s.push(Rect::new(t, u, t + 9.0, u + 9.0), Vec2::new(1.0, -0.5));
                }
                s
            }
            fn plan_tick(&mut self, _t: u32, set: &MovingExtentSet, a: &mut ExtentTickActions) {
                a.queriers
                    .extend((0..set.len() as u32).filter(|&i| set.is_live(i)));
            }
        }

        let cfg = DriverConfig::new(2, 0);
        let mut reference = None;
        for spec in registry() {
            if !spec.supports_intersects() {
                continue;
            }
            for exec in [ExecMode::Sequential, par(3), tiles(4)] {
                let mut tech = spec.with_exec(exec).build(100.0);
                let stats = tech.run_intersect(&mut ToyRects, cfg);
                assert!(stats.result_pairs > 0, "{}", spec.name());
                match reference {
                    None => reference = Some((stats.result_pairs, stats.checksum)),
                    Some(expect) => assert_eq!(
                        (stats.result_pairs, stats.checksum),
                        expect,
                        "{} ({exec}) computed a different intersection join",
                        spec.name()
                    ),
                }
            }
        }
    }

    #[test]
    fn technique_runs_both_categories_through_one_entry_point() {
        use sj_base::driver::{TickActions, Workload};
        use sj_base::geom::{Point, Rect, Vec2};
        use sj_base::table::MovingSet;

        struct Toy;
        impl Workload for Toy {
            fn space(&self) -> Rect {
                Rect::space(100.0)
            }
            fn query_side(&self) -> f32 {
                30.0
            }
            fn init(&mut self) -> MovingSet {
                let mut s = MovingSet::default();
                for i in 0..20 {
                    s.push(
                        Point::new(i as f32 * 5.0, i as f32 * 5.0),
                        Vec2::new(1.0, 0.0),
                    );
                }
                s
            }
            fn plan_tick(&mut self, _t: u32, set: &MovingSet, a: &mut TickActions) {
                a.queriers.extend(0..set.len() as u32);
            }
        }

        let cfg = DriverConfig::new(2, 0);
        let mut reference = None;
        for spec in registry() {
            // Sequentially, and — through the same entry point — with the
            // spec's @par modifier driving the parallel query phase.
            for exec in [ExecMode::Sequential, par(3)] {
                let mut tech = spec.with_exec(exec).build(100.0);
                let stats = tech.run(&mut Toy, cfg);
                assert!(stats.result_pairs > 0, "{}", spec.name());
                match reference {
                    None => reference = Some((stats.result_pairs, stats.checksum)),
                    Some(expect) => assert_eq!(
                        (stats.result_pairs, stats.checksum),
                        expect,
                        "{} ({exec}) computed a different join",
                        spec.name()
                    ),
                }
            }
        }
    }
}
