//! Space partitioning for [`crate::par::ExecMode::Partitioned`]: tile
//! geometry, extent replication, and the reference-point rule.
//!
//! This module is pure geometry and bookkeeping — no threads. The
//! thread-spawning tiled executors live in [`crate::par`] (the only module
//! allowed to spawn; sj-lint's `bare-thread-spawn` rule enforces it).
//!
//! ## The scheme (DESIGN.md §13)
//!
//! The data space is split into an `nx × ny` grid of `N` tiles
//! ([`TileGrid`]). Every point owns one **canonical tile** — the tile its
//! coordinates fall in ([`TileGrid::tile_of`]) — but is **replicated** into
//! every tile its query region (the centred square of side `query_side`,
//! clipped to the space) overlaps ([`replicate_by_extent`]); queriers are
//! assigned to tiles by the same extent rule. Each tile then joins its
//! local replicas independently, which double-reports any pair whose two
//! sides straddle a boundary. The **reference-point rule** restores
//! exactness: tile `T` emits a pair `(a, b)` only if `b`'s canonical tile
//! is `T`. Coverage and uniqueness both follow from one fact — the
//! per-axis tile index is a monotone function of the coordinate — so the
//! covered index range of a region contains the canonical tile of every
//! point inside it:
//!
//! - *coverage*: `b ∈ region(a)` puts `tile_of(b)` inside
//!   `cover(region(a))`, so querier `a` visits `tile_of(b)`, where `b` is
//!   resident (its own region contains it); the pair is found there;
//! - *uniqueness*: the filter accepts it in `tile_of(b)` and nowhere else.
//!
//! Checksums are unperturbed because each pair is emitted exactly once with
//! its *global* ids ([`TileReplica::to_global`]) and the driver's checksum
//! fold is a commutative wrapping sum — any partition of the pair set
//! merges back to the sequential value bit for bit.

use std::num::NonZeroUsize;

use crate::geom::Rect;
use crate::table::{entry_id, EntryId, PointTable};

/// Factor `tiles` into the most nearly square `nx × ny` grid: `ny` is the
/// largest divisor not exceeding `√tiles`, so `nx ≥ ny` and `nx·ny ==
/// tiles` exactly (a prime count degenerates to an `n × 1` strip).
fn grid_dims(tiles: usize) -> (usize, usize) {
    let mut d = 1;
    let mut k = 1;
    while k * k <= tiles {
        if tiles.is_multiple_of(k) {
            d = k;
        }
        k += 1;
    }
    (tiles / d, d)
}

/// Per-axis tile index of a coordinate at `offset` from the space origin.
/// `as usize` saturates, so negatives and NaN (a degenerate zero-width
/// axis divides 0/0) land in tile 0 and `+inf` in the last tile — every
/// input gets a tile, and the map stays monotone in `offset`.
#[inline]
fn axis_index(offset: f32, tile_len: f32, n: usize) -> usize {
    ((offset / tile_len) as usize).min(n - 1)
}

/// An `nx × ny` tiling of the data space, row-major tile ids `0..tiles`.
///
/// A point exactly on an interior tile edge belongs to the higher-indexed
/// tile (floor semantics), mirroring how [`crate::geom::Rect`]'s closed
/// containment ties are broken everywhere else in the workspace: the
/// assignment is a pure function of the coordinates, identical on every
/// side of the join, which is all the reference-point rule needs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TileGrid {
    bounds: Rect,
    nx: usize,
    ny: usize,
    tile_w: f32,
    tile_h: f32,
}

impl TileGrid {
    /// Tile `space` into exactly `tiles` rectangles (see `grid_dims`).
    pub fn new(space: &Rect, tiles: NonZeroUsize) -> TileGrid {
        let (nx, ny) = grid_dims(tiles.get());
        TileGrid {
            bounds: *space,
            nx,
            ny,
            tile_w: space.width() / nx as f32,
            tile_h: space.height() / ny as f32,
        }
    }

    /// Total number of tiles (`nx · ny`, exactly the requested count).
    #[inline]
    pub fn tiles(&self) -> usize {
        self.nx * self.ny
    }

    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The tiled space.
    #[inline]
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// Canonical tile of a point — the reference point of the dedup rule.
    #[inline]
    pub fn tile_of(&self, x: f32, y: f32) -> usize {
        let ix = axis_index(x - self.bounds.x1, self.tile_w, self.nx);
        let iy = axis_index(y - self.bounds.y1, self.tile_h, self.ny);
        iy * self.nx + ix
    }

    /// Every tile `region` overlaps, as the rectangle of per-axis index
    /// ranges of its corners. Because `axis_index` is monotone, this
    /// range contains [`TileGrid::tile_of`] of every point in `region` —
    /// the containment [`replicate_by_extent`] and querier assignment
    /// rely on.
    pub fn cover(&self, region: &Rect) -> TileCover {
        let ix0 = axis_index(region.x1 - self.bounds.x1, self.tile_w, self.nx);
        let ix1 = axis_index(region.x2 - self.bounds.x1, self.tile_w, self.nx);
        let iy0 = axis_index(region.y1 - self.bounds.y1, self.tile_h, self.ny);
        let iy1 = axis_index(region.y2 - self.bounds.y1, self.tile_h, self.ny);
        TileCover {
            nx: self.nx,
            ix0,
            ix1,
            iy1,
            ix: ix0,
            iy: iy0,
        }
    }

    /// Geometric bounds of tile `t` (the last row/column absorbs any
    /// floating-point remainder so the tiles exactly cover the space).
    pub fn tile_bounds(&self, t: usize) -> Rect {
        let (ix, iy) = (t % self.nx, t / self.nx);
        let x1 = self.bounds.x1 + ix as f32 * self.tile_w;
        let y1 = self.bounds.y1 + iy as f32 * self.tile_h;
        let x2 = if ix + 1 == self.nx {
            self.bounds.x2
        } else {
            self.bounds.x1 + (ix + 1) as f32 * self.tile_w
        };
        let y2 = if iy + 1 == self.ny {
            self.bounds.y2
        } else {
            self.bounds.y1 + (iy + 1) as f32 * self.tile_h
        };
        Rect::new(x1, y1, x2.max(x1), y2.max(y1))
    }
}

/// Iterator over the row-major tile ids of a [`TileGrid::cover`] range.
pub struct TileCover {
    nx: usize,
    ix0: usize,
    ix1: usize,
    iy1: usize,
    ix: usize,
    iy: usize,
}

impl Iterator for TileCover {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.iy > self.iy1 {
            return None;
        }
        let t = self.iy * self.nx + self.ix;
        if self.ix < self.ix1 {
            self.ix += 1;
        } else {
            self.ix = self.ix0;
            self.iy += 1;
        }
        Some(t)
    }
}

/// One tile's local view of a relation: the replicated live rows as a
/// fresh [`PointTable`] (so indexes and batch joins run on it unchanged)
/// plus the local-row → global-handle map that translates emitted pairs
/// back into driver ids. Tombstoned rows are never replicated — a row
/// that dies simply vanishes from every replica set at the next
/// partition, exactly as it vanishes from a sequential rebuild.
#[derive(Debug, Default)]
pub struct TileReplica {
    pub table: PointTable,
    pub to_global: Vec<EntryId>,
}

impl TileReplica {
    /// Drop all rows, keeping allocated capacity for the next tick.
    pub fn clear(&mut self) {
        self.table.clear();
        self.to_global.clear();
    }

    fn push(&mut self, x: f32, y: f32, global: EntryId) {
        self.table.push(x, y);
        self.to_global.push(global);
    }

    /// Global handle of local row `local`.
    #[inline]
    pub fn global(&self, local: EntryId) -> EntryId {
        self.to_global[local as usize]
    }
}

/// Partition `table`'s **live** rows into per-tile replicas: each row goes
/// to every tile its clipped query region (centred square of side
/// `query_side`) overlaps. `replicas` is resized to the grid and reused
/// across ticks — steady-state partitioning allocates nothing.
pub fn replicate_by_extent(
    table: &PointTable,
    grid: &TileGrid,
    query_side: f32,
    replicas: &mut Vec<TileReplica>,
) {
    replicas.resize_with(grid.tiles(), TileReplica::default);
    for r in replicas.iter_mut() {
        r.clear();
    }
    let xs = table.xs();
    let ys = table.ys();
    let live = table.live_mask();
    let all_live = table.all_live();
    for i in 0..xs.len() {
        if !all_live && !live[i] {
            continue;
        }
        let region = Rect::centered_square(crate::geom::Point::new(xs[i], ys[i]), query_side)
            .clipped_to(grid.bounds());
        for t in grid.cover(&region) {
            replicas[t].push(xs[i], ys[i], entry_id(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;
    use crate::rng::Xoshiro256;

    fn tiles(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn grid_dims_factor_exactly_and_nearly_square() {
        assert_eq!(grid_dims(1), (1, 1));
        assert_eq!(grid_dims(2), (2, 1));
        assert_eq!(grid_dims(4), (2, 2));
        assert_eq!(grid_dims(5), (5, 1));
        assert_eq!(grid_dims(8), (4, 2));
        assert_eq!(grid_dims(12), (4, 3));
        assert_eq!(grid_dims(16), (4, 4));
        for n in 1..=64 {
            let (nx, ny) = grid_dims(n);
            assert_eq!(nx * ny, n, "n = {n}");
            assert!(nx >= ny, "n = {n}");
        }
    }

    #[test]
    fn tile_of_is_total_and_in_range() {
        let g = TileGrid::new(&Rect::space(100.0), tiles(6));
        let mut rng = Xoshiro256::seeded(3);
        for _ in 0..1000 {
            let (x, y) = (rng.range_f32(0.0, 100.0), rng.range_f32(0.0, 100.0));
            assert!(g.tile_of(x, y) < g.tiles());
        }
        // Space corners, including the closed upper boundary.
        assert_eq!(g.tile_of(0.0, 0.0), 0);
        assert_eq!(g.tile_of(100.0, 100.0), g.tiles() - 1);
    }

    #[test]
    fn edge_points_belong_to_the_higher_tile() {
        // 2 × 2 over [0,100]²: the interior edges are x = 50 and y = 50.
        let g = TileGrid::new(&Rect::space(100.0), tiles(4));
        assert_eq!((g.nx(), g.ny()), (2, 2));
        assert_eq!(g.tile_of(49.999, 10.0), 0);
        assert_eq!(g.tile_of(50.0, 10.0), 1, "x tie goes right");
        assert_eq!(g.tile_of(10.0, 50.0), 2, "y tie goes up");
        assert_eq!(g.tile_of(50.0, 50.0), 3, "corner tie goes up-right");
    }

    #[test]
    fn cover_contains_the_canonical_tile_of_every_contained_point() {
        // The monotonicity property the reference-point proof stands on.
        let space = Rect::space(1_000.0);
        let mut rng = Xoshiro256::seeded(7);
        for n in [1usize, 2, 3, 4, 5, 7, 16, 64] {
            let g = TileGrid::new(&space, tiles(n));
            for _ in 0..200 {
                let c = Point::new(rng.range_f32(0.0, 1_000.0), rng.range_f32(0.0, 1_000.0));
                let region = Rect::centered_square(c, rng.range_f32(0.0, 400.0)).clipped_to(&space);
                let covered: Vec<usize> = g.cover(&region).collect();
                for _ in 0..20 {
                    let p = Point::new(
                        rng.range_f32(region.x1, region.x2),
                        rng.range_f32(region.y1, region.y2),
                    );
                    assert!(
                        covered.contains(&g.tile_of(p.x, p.y)),
                        "tiles = {n}, region = {region:?}, p = {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cover_of_a_straddling_region_lists_each_tile_once() {
        let g = TileGrid::new(&Rect::space(100.0), tiles(4));
        // Straddles both interior edges: all four tiles, each exactly once.
        let four: Vec<usize> = g
            .cover(&Rect::centered_square(Point::new(50.0, 50.0), 10.0))
            .collect();
        assert_eq!(four, vec![0, 1, 2, 3]);
        // Straddles only the vertical edge: two tiles.
        let two: Vec<usize> = g
            .cover(&Rect::centered_square(Point::new(50.0, 20.0), 10.0))
            .collect();
        assert_eq!(two, vec![0, 1]);
        // Interior to one tile.
        let one: Vec<usize> = g
            .cover(&Rect::centered_square(Point::new(20.0, 20.0), 10.0))
            .collect();
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn tile_bounds_partition_the_space() {
        for n in [1usize, 2, 4, 5, 6, 16] {
            let space = Rect::space(100.0);
            let g = TileGrid::new(&space, tiles(n));
            let mut area = 0.0;
            for t in 0..g.tiles() {
                let b = g.tile_bounds(t);
                assert!(space.contains_rect(&b), "tiles = {n}, t = {t}");
                assert!(b.contains_point((b.x1 + b.x2) * 0.5, (b.y1 + b.y2) * 0.5));
                area += b.area();
            }
            assert!(
                (area - space.area()).abs() < 1.0,
                "tiles = {n}: area {area}"
            );
        }
    }

    #[test]
    fn canonical_tile_bounds_contain_their_points_off_the_shared_edges() {
        // Interior points map to the tile whose rectangle holds them; on a
        // shared edge both rectangles contain the point (closed rects) and
        // tile_of picks the higher one deterministically.
        let g = TileGrid::new(&Rect::space(100.0), tiles(4));
        let mut rng = Xoshiro256::seeded(11);
        for _ in 0..500 {
            let (x, y) = (rng.range_f32(0.0, 100.0), rng.range_f32(0.0, 100.0));
            let b = g.tile_bounds(g.tile_of(x, y));
            assert!(b.contains_point(x, y), "({x}, {y}) not in {b:?}");
        }
    }

    #[test]
    fn replication_covers_the_home_tile_and_skips_tombstones() {
        let space = Rect::space(100.0);
        let g = TileGrid::new(&space, tiles(4));
        let mut t = PointTable::default();
        let a = t.push(20.0, 20.0); // interior to tile 0
        let b = t.push(50.0, 50.0); // center: replicated everywhere
        let dead = t.push(80.0, 80.0);
        t.remove(dead);

        let mut replicas = Vec::new();
        replicate_by_extent(&t, &g, 10.0, &mut replicas);
        assert_eq!(replicas.len(), 4);

        // Every live row is resident in its canonical tile.
        for (id, p) in t.iter() {
            let home = g.tile_of(p.x, p.y);
            assert!(
                replicas[home].to_global.contains(&id),
                "row {id} missing from home tile {home}"
            );
        }
        // The straddler is in all four replica sets; the corner point in one.
        for r in &replicas {
            assert!(r.to_global.contains(&b));
            assert_eq!(r.table.len(), r.to_global.len());
            assert!(r.table.all_live(), "replicas hold live rows only");
        }
        assert_eq!(
            replicas.iter().filter(|r| r.to_global.contains(&a)).count(),
            1
        );
        // The tombstone is nowhere — including the tile it used to live in.
        for r in &replicas {
            assert!(!r.to_global.contains(&dead));
        }
    }

    #[test]
    fn replication_reuses_buffers_across_ticks() {
        let space = Rect::space(100.0);
        let g = TileGrid::new(&space, tiles(2));
        let mut t = PointTable::default();
        for i in 0..10 {
            t.push(i as f32 * 10.0, 50.0);
        }
        let mut replicas = Vec::new();
        replicate_by_extent(&t, &g, 8.0, &mut replicas);
        let first: Vec<usize> = replicas.iter().map(|r| r.table.len()).collect();
        // Repartitioning the same table must reproduce the same replica
        // sets (no stale rows from the previous tick).
        replicate_by_extent(&t, &g, 8.0, &mut replicas);
        let second: Vec<usize> = replicas.iter().map(|r| r.table.len()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn oversharded_grids_leave_most_tiles_empty_but_lose_nothing() {
        let space = Rect::space(100.0);
        let g = TileGrid::new(&space, tiles(64));
        let mut t = PointTable::default();
        t.push(10.0, 10.0);
        t.push(90.0, 90.0);
        let mut replicas = Vec::new();
        replicate_by_extent(&t, &g, 1.0, &mut replicas);
        let populated = replicas.iter().filter(|r| !r.table.is_empty()).count();
        assert!((2..=8).contains(&populated));
        let total: usize = replicas.iter().map(|r| r.table.len()).sum();
        assert!(total >= 2);
    }
}
