//! `sj-lint` — the repo-specific static-analysis pass.
//!
//! The paper's thesis (*implementation matters*) turned into a set of
//! hand-enforced invariants as this reproduction grew: bit-identical
//! seed-42 goldens across exec modes, commutative `wrapping_add`
//! checksum folds, `unsafe` confined behind runtime dispatch, zero
//! hot-path allocation, "every binary iterates `registry()`". Reviewer
//! memory does not scale with the roadmap (space-partitioned execution,
//! rect geometry, the adaptive planner all multiply the surface where
//! one stray `HashMap` iteration silently breaks determinism) — so the
//! rules live in a tool.
//!
//! Structure, hand-rolled in the style of `sj_bench::json` because the
//! container is offline (no `syn`, no `clippy-utils`):
//!
//! - [`lexer`] — a comment/string/raw-string-aware token scanner;
//! - [`rules`] — the deny-by-default rule set (see `--list-rules` and
//!   DESIGN.md §12), lexical checks over the token stream;
//! - [`allow`] — the explicit suppression layer: a hand-parsed
//!   `lint-allow.toml` plus inline `// sj-lint: allow(<rule>)` markers,
//!   with unused-allow detection so the allowlist can only shrink;
//! - the `sj-lint` binary — `--list-rules`, `--json`, `--deny`, exit
//!   codes 0 (clean) / 1 (diagnostics) / 2 (usage or config error).
//!
//! The tier-1 test suite runs the whole pass over the workspace
//! (`tests/workspace_invariants.rs`), so `cargo test -q` fails the
//! moment a rule regresses — CI additionally runs the binary directly.

pub mod allow;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use allow::{apply_allows, inline_allows, parse_allowlist, AllowEntry, ConfigError, InlineAllow};
use rules::{check_file, Diagnostic, FileCtx};

/// Result of linting a tree: allow-filtered diagnostics (including
/// `unused-allow` findings) plus scan accounting.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    pub allow_entries: usize,
}

/// Lint one in-memory file: rules plus that file's inline allow markers
/// (no `lint-allow.toml` layer). This is the fixture entry point.
pub fn lint_str(rel: &str, source: &str) -> Result<Vec<Diagnostic>, ConfigError> {
    let lexed = lexer::lex(source);
    let raw = check_file(&FileCtx { rel, lexed: &lexed });
    let inline = inline_allows(rel, &lexed.comments)?;
    Ok(apply_allows(raw, &[], &inline))
}

/// The workspace directories worth scanning, relative to the root. The
/// walk skips `target/`, `vendor/` (third-party shims are not ours to
/// police), and the lint crate's own fixtures (deliberate violations).
const SCAN_ROOTS: [&str; 4] = ["src", "crates", "tests", "examples"];

fn skip_dir(rel: &str) -> bool {
    rel == "target"
        || rel == "vendor"
        || rel.ends_with("/target")
        || rel == "crates/lint/tests/fixtures"
}

/// Collect every workspace `.rs` file, sorted so output order (and
/// therefore CI logs) is deterministic.
pub fn collect_files(root: &Path) -> Result<Vec<PathBuf>, ConfigError> {
    let mut files = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), ConfigError> {
    let entries = fs::read_dir(dir)
        .map_err(|e| ConfigError(format!("cannot read directory {}: {e}", dir.display())))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| ConfigError(format!("error walking {}: {e}", dir.display())))?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if !skip_dir(&rel) {
                walk(root, &path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Forward-slash path of `path` relative to `root` (diagnostics and
/// allowlist entries use this form on every platform).
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Lint the workspace rooted at `root`. `paths`, when non-empty,
/// restricts the scan to those files (given relative to `root`); the
/// allowlist still applies, but unused-allow detection is skipped for a
/// partial scan (an entry for an unscanned file is not "unused").
pub fn lint_tree(root: &Path, paths: &[String]) -> Result<Outcome, ConfigError> {
    let allow_path = root.join("lint-allow.toml");
    let allowlist: Vec<AllowEntry> = if allow_path.is_file() {
        let text = fs::read_to_string(&allow_path)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", allow_path.display())))?;
        parse_allowlist(&text)?
    } else {
        Vec::new()
    };

    let files: Vec<PathBuf> = if paths.is_empty() {
        collect_files(root)?
    } else {
        paths.iter().map(|p| root.join(p)).collect()
    };

    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut inline: Vec<InlineAllow> = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        let source =
            fs::read_to_string(path).map_err(|e| ConfigError(format!("cannot read {rel}: {e}")))?;
        let lexed = lexer::lex(&source);
        raw.extend(check_file(&FileCtx {
            rel: &rel,
            lexed: &lexed,
        }));
        inline.extend(inline_allows(&rel, &lexed.comments)?);
    }

    let mut diagnostics = if paths.is_empty() {
        apply_allows(raw, &allowlist, &inline)
    } else {
        // Partial scan: suppress, but do not report unused allows (the
        // full picture needs the full walk).
        let mut d = apply_allows(raw, &allowlist, &inline);
        d.retain(|x| x.rule != "unused-allow");
        d
    };
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Outcome {
        diagnostics,
        files_scanned: files.len(),
        allow_entries: allowlist.len(),
    })
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_paths_are_forward_slash() {
        let root = Path::new("/a/b");
        assert_eq!(
            rel_path(root, Path::new("/a/b/crates/base/src/lib.rs")),
            "crates/base/src/lib.rs"
        );
    }

    #[test]
    fn lint_str_applies_inline_allows() {
        let src = "fn f() {\n    // sj-lint: allow(no-unwrap) — exercised by the unit test\n    x().unwrap();\n}";
        let out = lint_str("crates/x/src/lib.rs", src).unwrap();
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn fixture_dir_is_skipped() {
        assert!(skip_dir("crates/lint/tests/fixtures"));
        assert!(skip_dir("vendor"));
        assert!(!skip_dir("crates/lint/tests"));
        assert!(!skip_dir("crates/base"));
    }
}
