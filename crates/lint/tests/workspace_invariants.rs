//! The workspace acceptance gate, run as part of tier-1 (`cargo test -q`
//! from the root):
//!
//! 1. the committed tree lints clean — any new violation fails the suite
//!    even before CI runs the `sj-lint` binary;
//! 2. the two canonical injections *fire*: a `HashMap` iteration added
//!    to `crates/base/src/par.rs`, and a stripped `// SAFETY:` comment
//!    in `crates/base/src/simd.rs`. These prove the pass actually reads
//!    the hot files, so a future refactor cannot silently walk an empty
//!    directory and report success.

use std::fs;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> the workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels below the workspace root");
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root {} has no Cargo.toml",
        root.display()
    );
    root.to_path_buf()
}

#[test]
fn committed_tree_lints_clean() {
    let root = workspace_root();
    let outcome = sj_lint::lint_tree(&root, &[]).expect("lint pass over the workspace");
    assert!(
        outcome.diagnostics.is_empty(),
        "the committed tree must lint clean:\n{}",
        outcome
            .diagnostics
            .iter()
            .map(|d| format!("  {}:{}: [{}] {}", d.file, d.line, d.rule, d.msg))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Guard against the degenerate pass: the walk must actually have
    // covered the workspace, not an empty directory.
    assert!(
        outcome.files_scanned > 50,
        "suspiciously few files scanned: {}",
        outcome.files_scanned
    );
}

#[test]
fn injected_hashmap_iteration_in_par_fires() {
    let root = workspace_root();
    let rel = "crates/base/src/par.rs";
    let src = fs::read_to_string(root.join(rel)).expect("par.rs is part of the workspace");
    let injected = format!(
        "{src}\nuse std::collections::HashMap;\n\
         pub fn merge_order(m: &HashMap<u32, u64>) -> u64 {{\n\
         \x20   m.values().sum()\n\
         }}\n"
    );
    let diags = sj_lint::lint_str(rel, &injected).expect("inline markers in par.rs are valid");
    assert!(
        diags.iter().any(|d| d.rule == "hash-iteration"),
        "HashMap iteration injected into {rel} must trip hash-iteration: got {diags:?}"
    );
}

#[test]
fn stripped_safety_comment_in_simd_fires() {
    let root = workspace_root();
    let rel = "crates/base/src/simd.rs";
    let src = fs::read_to_string(root.join(rel)).expect("simd.rs is part of the workspace");
    assert!(
        src.contains("// SAFETY:"),
        "{rel} is expected to carry // SAFETY: comments"
    );
    let stripped = src.replace("// SAFETY:", "// (redacted)");
    let diags = sj_lint::lint_str(rel, &stripped).expect("inline markers in simd.rs are valid");
    assert!(
        diags.iter().any(|d| d.rule == "safety-comment"),
        "stripping SAFETY comments from {rel} must trip safety-comment: got {diags:?}"
    );
}

#[test]
fn unstripped_hot_files_are_clean_in_isolation() {
    // The inverse direction of the two injection tests: the same files,
    // unmodified, produce no diagnostics — so the tests above fail for
    // the right reason.
    let root = workspace_root();
    for rel in ["crates/base/src/par.rs", "crates/base/src/simd.rs"] {
        let src = fs::read_to_string(root.join(rel)).expect("hot file exists");
        let diags = sj_lint::lint_str(rel, &src).expect("valid inline markers");
        assert!(
            diags.is_empty(),
            "{rel} must be clean as committed: {diags:?}"
        );
    }
}
