//! # sj-workload
//!
//! Synthetic moving-object workloads for the iterated spatial join,
//! reproducing Table 1 of Šidlauskas & Jensen (PVLDB 2014): a uniform
//! workload (random placement, random velocities, Bernoulli querier and
//! updater selection) and a Gaussian workload (objects clustered around
//! hotspots with mean-reverting Gaussian movement).
//!
//! Both implement [`sj_base::Workload`] and are deterministic functions of
//! their seed, so every join technique observes identical trajectories and
//! query sets — the precondition for the cross-technique result-checksum
//! equality the integration tests assert.

mod gaussian;
mod params;
mod roadgrid;
pub mod trace;
mod uniform;

pub use gaussian::GaussianWorkload;
pub use params::{GaussianParams, ParamError, WorkloadParams};
pub use roadgrid::RoadGridWorkload;
pub use trace::{record, Trace, TraceWorkload};
pub use uniform::UniformWorkload;
