//! Plain-text and CSV table rendering for the harness binaries.

/// A simple column-aligned table that can also serialize as CSV.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render aligned text (`csv = false`) or CSV (`csv = true`).
    pub fn render(&self, csv: bool) -> String {
        if csv {
            let mut s = self.headers.join(",");
            s.push('\n');
            for r in &self.rows {
                s.push_str(&r.join(","));
                s.push('\n');
            }
            return s;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut s = fmt_row(&self.headers);
        s.push('\n');
        s.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        s.push('\n');
        for r in &self.rows {
            s.push_str(&fmt_row(r));
            s.push('\n');
        }
        s
    }
}

/// Format seconds with 4 decimal places (the paper reports 0.0009 .. 3.5).
pub fn secs(v: f64) -> String {
    format!("{v:.4}")
}

/// Format a big count with thousands separators for the profiling table.
pub fn count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["30", "40"]);
        assert_eq!(t.render(true), "a,b\n1,2\n30,40\n");
    }

    #[test]
    fn text_is_aligned() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["x", "1.5"]);
        let text = t.render(false);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn count_formats_thousands() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1_000), "1,000");
        assert_eq!(count(8_786_000_000), "8,786,000,000");
    }

    #[test]
    fn secs_has_four_decimals() {
        assert_eq!(secs(0.00091), "0.0009");
        assert_eq!(secs(3.5), "3.5000");
    }
}
