//@ path: crates/x/src/lib.rs
use sj_base::table::{entry_id, EntryId};

pub fn ids(n: usize) -> Vec<EntryId> {
    (0..n).map(entry_id).collect()
}
