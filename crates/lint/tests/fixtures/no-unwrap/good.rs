//@ path: crates/x/src/lib.rs
pub fn head(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::head(&[7]).unwrap(), 7);
    }
}
