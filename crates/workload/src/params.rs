//! Workload parameters, mirroring Table 1 of the paper.

use std::fmt;

/// Parameters shared by both synthetic workloads. Defaults are the bold
/// values of Table 1 (uniform column): 100 ticks, 50 K points, 22 K² space,
/// max speed 200, query size 400, 50 % queriers, 50 % updaters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadParams {
    /// Number of measured ticks ("Number of Ticks").
    pub ticks: u32,
    /// Number of moving objects ("Number of Points"), 10 K .. 90 K.
    pub num_points: u32,
    /// Side length of the square data space ("Space Size"), 10 K .. 30 K.
    pub space_side: f32,
    /// Maximum object speed in space units per tick ("Maximum Speed").
    pub max_speed: f32,
    /// Side length of the square range queries ("Query Size").
    pub query_side: f32,
    /// Fraction of objects issuing a query each tick ("% Queriers").
    pub frac_queriers: f32,
    /// Fraction of objects issuing a velocity update each tick
    /// ("% Updaters"; not applicable to the Gaussian workload).
    pub frac_updaters: f32,
    /// PRNG seed; everything downstream is a pure function of it.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            ticks: 100,
            num_points: 50_000,
            space_side: 22_000.0,
            max_speed: 200.0,
            query_side: 400.0,
            frac_queriers: 0.5,
            frac_updaters: 0.5,
            seed: 0x5347_4A4F_494E, // "SGJOIN"
        }
    }
}

/// Reasons a parameter set is rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    NoPoints,
    NonPositiveSpace,
    NegativeSpeed,
    NonPositiveQuerySide,
    FractionOutOfRange(&'static str),
    NoHotspots,
    NonPositiveSpread,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NoPoints => write!(f, "num_points must be > 0"),
            ParamError::NonPositiveSpace => write!(f, "space_side must be > 0"),
            ParamError::NegativeSpeed => write!(f, "max_speed must be >= 0"),
            ParamError::NonPositiveQuerySide => write!(f, "query_side must be > 0"),
            ParamError::FractionOutOfRange(which) => {
                write!(f, "{which} must lie in [0, 1]")
            }
            ParamError::NoHotspots => write!(f, "hotspots must be > 0"),
            ParamError::NonPositiveSpread => write!(f, "sigma must be > 0"),
        }
    }
}

impl std::error::Error for ParamError {}

impl WorkloadParams {
    /// Validate ranges; call before constructing a workload from untrusted
    /// (e.g. CLI) input.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.num_points == 0 {
            return Err(ParamError::NoPoints);
        }
        // NaN must fail too, hence the explicit is_nan alongside <=.
        if self.space_side.is_nan() || self.space_side <= 0.0 {
            return Err(ParamError::NonPositiveSpace);
        }
        if self.max_speed.is_nan() || self.max_speed < 0.0 {
            return Err(ParamError::NegativeSpeed);
        }
        if self.query_side.is_nan() || self.query_side <= 0.0 {
            return Err(ParamError::NonPositiveQuerySide);
        }
        if !(0.0..=1.0).contains(&self.frac_queriers) {
            return Err(ParamError::FractionOutOfRange("frac_queriers"));
        }
        if !(0.0..=1.0).contains(&self.frac_updaters) {
            return Err(ParamError::FractionOutOfRange("frac_updaters"));
        }
        Ok(())
    }
}

/// Extra parameters of the Gaussian (hotspot) workload. Defaults: Table 1
/// Gaussian column (120 ticks, 50 K points, 22 K² space, 50 % queriers)
/// with 10 hotspots and a spread of two query sides.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianParams {
    pub base: WorkloadParams,
    /// Number of fixed attraction points ("Number of Hotspots" in Fig. 2b),
    /// swept 1 .. 1000.
    pub hotspots: u32,
    /// Standard deviation of object positions around their hotspot,
    /// in space units.
    pub sigma: f32,
}

impl Default for GaussianParams {
    fn default() -> Self {
        GaussianParams {
            base: WorkloadParams {
                ticks: 120,
                ..WorkloadParams::default()
            },
            hotspots: 10,
            sigma: 800.0,
        }
    }
}

impl GaussianParams {
    pub fn validate(&self) -> Result<(), ParamError> {
        self.base.validate()?;
        if self.hotspots == 0 {
            return Err(ParamError::NoHotspots);
        }
        if self.sigma.is_nan() || self.sigma <= 0.0 {
            return Err(ParamError::NonPositiveSpread);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let p = WorkloadParams::default();
        assert_eq!(p.ticks, 100);
        assert_eq!(p.num_points, 50_000);
        assert_eq!(p.space_side, 22_000.0);
        assert_eq!(p.max_speed, 200.0);
        assert_eq!(p.query_side, 400.0);
        assert_eq!(p.frac_queriers, 0.5);
        assert_eq!(p.frac_updaters, 0.5);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn gaussian_defaults_match_table_1() {
        let g = GaussianParams::default();
        assert_eq!(g.base.ticks, 120);
        assert_eq!(g.base.num_points, 50_000);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn invalid_params_are_rejected() {
        let ok = WorkloadParams::default();
        assert_eq!(
            WorkloadParams {
                num_points: 0,
                ..ok
            }
            .validate(),
            Err(ParamError::NoPoints)
        );
        assert_eq!(
            WorkloadParams {
                space_side: 0.0,
                ..ok
            }
            .validate(),
            Err(ParamError::NonPositiveSpace)
        );
        assert_eq!(
            WorkloadParams {
                frac_queriers: 1.5,
                ..ok
            }
            .validate(),
            Err(ParamError::FractionOutOfRange("frac_queriers"))
        );
        assert_eq!(
            WorkloadParams {
                frac_updaters: -0.1,
                ..ok
            }
            .validate(),
            Err(ParamError::FractionOutOfRange("frac_updaters"))
        );
        assert_eq!(
            GaussianParams {
                hotspots: 0,
                ..GaussianParams::default()
            }
            .validate(),
            Err(ParamError::NoHotspots)
        );
        assert_eq!(
            GaussianParams {
                sigma: 0.0,
                ..GaussianParams::default()
            }
            .validate(),
            Err(ParamError::NonPositiveSpread)
        );
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = ParamError::FractionOutOfRange("frac_queriers").to_string();
        assert!(msg.contains("frac_queriers"));
    }
}
