//! # sj-bench
//!
//! Shared harness for the figure/table binaries (`fig1`, `fig2`, `table2`,
//! `fig4`, `fig5`, `table3`, `ablation`): a registry of the five join
//! techniques, workload runners, a tiny CLI parser, and plain-text /
//! CSV table printing.

use sj_binsearch::BinarySearchJoin;
use sj_core::driver::{run_join, DriverConfig, RunStats};
use sj_core::index::SpatialIndex;
use sj_crtree::CRTree;
use sj_grid::{GridConfig, SimpleGrid, Stage};
use sj_kdtrie::LinearKdTrie;
use sj_rtree::RTree;
use sj_workload::{GaussianParams, GaussianWorkload, UniformWorkload, WorkloadParams};

pub mod cli;
pub mod table;

/// One of the five static-index join techniques of Figure 2, plus
/// arbitrary grid configurations for the tuning figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Technique {
    BinarySearch,
    RTree,
    CRTree,
    LinearKdTrie,
    /// Simple Grid at one of the paper's improvement stages.
    Grid(Stage),
    /// Simple Grid with an explicit configuration (parameter sweeps).
    GridCustom(GridConfig),
    /// Extra baseline beyond the paper: bucket PR-quadtree.
    QuadTree,
    /// Extension: Binary Search over sorted SoA columns with an SSE2
    /// filter (DESIGN.md §7).
    VecSearch,
}

impl Technique {
    /// The five techniques of Figure 2, with the grid in its *original*
    /// (worst-performing) implementation.
    pub const FIGURE2: [Technique; 5] = [
        Technique::BinarySearch,
        Technique::RTree,
        Technique::CRTree,
        Technique::LinearKdTrie,
        Technique::Grid(Stage::Original),
    ];

    /// Display label matching the paper's legends.
    pub fn label(&self) -> String {
        match self {
            Technique::BinarySearch => "Binary Search".into(),
            Technique::RTree => "R-Tree".into(),
            Technique::CRTree => "CR-Tree".into(),
            Technique::LinearKdTrie => "Linearized KD-Trie".into(),
            Technique::Grid(stage) => match stage {
                Stage::Original => "Simple Grid".into(),
                s => s.label().into(),
            },
            Technique::GridCustom(c) => {
                format!("Simple Grid bs={} cps={}", c.bucket_size, c.cells_per_side)
            }
            Technique::QuadTree => "Quadtree".into(),
            Technique::VecSearch => "Binary Search (vectorized)".into(),
        }
    }

    /// Instantiate the index for a given data-space side length.
    pub fn instantiate(&self, space_side: f32) -> Box<dyn SpatialIndex> {
        match self {
            Technique::BinarySearch => Box::new(BinarySearchJoin::new()),
            Technique::RTree => Box::new(RTree::default()),
            Technique::CRTree => Box::new(CRTree::default()),
            Technique::LinearKdTrie => Box::new(LinearKdTrie::new(space_side)),
            Technique::Grid(stage) => Box::new(SimpleGrid::at_stage(*stage, space_side)),
            Technique::GridCustom(cfg) => Box::new(SimpleGrid::new(*cfg, space_side)),
            Technique::QuadTree => Box::new(sj_quadtree::QuadTree::with_default_bucket(space_side)),
            Technique::VecSearch => Box::new(sj_binsearch::VecSearchJoin::new()),
        }
    }
}

/// Drive `technique` through the uniform workload.
pub fn run_uniform(params: &WorkloadParams, technique: Technique) -> RunStats {
    params.validate().expect("invalid workload parameters");
    let mut workload = UniformWorkload::new(*params);
    let mut index = technique.instantiate(params.space_side);
    let cfg = DriverConfig { ticks: params.ticks, warmup: warmup_for(params.ticks) };
    run_join(&mut workload, index.as_mut(), cfg)
}

/// Drive `technique` through the Gaussian workload.
pub fn run_gaussian(params: &GaussianParams, technique: Technique) -> RunStats {
    params.validate().expect("invalid workload parameters");
    let mut workload = GaussianWorkload::new(*params);
    let mut index = technique.instantiate(params.base.space_side);
    let cfg = DriverConfig { ticks: params.base.ticks, warmup: warmup_for(params.base.ticks) };
    run_join(&mut workload, index.as_mut(), cfg)
}

fn warmup_for(ticks: u32) -> u32 {
    (ticks / 10).clamp(1, 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> WorkloadParams {
        WorkloadParams {
            ticks: 2,
            num_points: 1_000,
            space_side: 5_000.0,
            ..WorkloadParams::default()
        }
    }

    #[test]
    fn all_figure2_techniques_run_and_agree() {
        let params = quick_params();
        let runs: Vec<RunStats> =
            Technique::FIGURE2.iter().map(|t| run_uniform(&params, *t)).collect();
        let first = &runs[0];
        assert!(first.result_pairs > 0);
        for (r, t) in runs.iter().zip(Technique::FIGURE2.iter()) {
            assert_eq!(
                r.checksum,
                first.checksum,
                "{} join differs from Binary Search",
                t.label()
            );
            assert_eq!(r.result_pairs, first.result_pairs);
        }
    }

    #[test]
    fn grid_stages_agree_on_gaussian_workload() {
        let params = GaussianParams {
            base: WorkloadParams {
                ticks: 2,
                num_points: 1_000,
                space_side: 5_000.0,
                ..WorkloadParams::default()
            },
            hotspots: 3,
            sigma: 300.0,
        };
        let baseline = run_gaussian(&params, Technique::RTree);
        for stage in Stage::ALL {
            let r = run_gaussian(&params, Technique::Grid(stage));
            assert_eq!(r.checksum, baseline.checksum, "stage {stage:?}");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = Technique::FIGURE2.iter().map(|t| t.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn extension_techniques_agree_with_the_paper_five() {
        let params = quick_params();
        let reference = run_uniform(&params, Technique::RTree);
        for tech in [Technique::QuadTree, Technique::VecSearch] {
            let r = run_uniform(&params, tech);
            assert_eq!(r.checksum, reference.checksum, "{}", tech.label());
            assert_eq!(r.result_pairs, reference.result_pairs);
        }
    }
}
