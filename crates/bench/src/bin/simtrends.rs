//! The paper's §2.1 footnote claim, tested: "the same performance trends
//! also hold for the simulation workloads." The original traffic
//! simulator is unavailable; `sj-workload::RoadGridWorkload` (Manhattan
//! mobility on a road grid — skewed, line-concentrated density) is the
//! synthetic stand-in (DESIGN.md §3).
//!
//! Expected: the same ordering as Figure 2 — original Simple Grid worst,
//! Binary Search next, the trees clustered, tuned grid on top. Every
//! benchmarkable registry technique runs (and must agree on the join).
//!
//! Run: `cargo run -p sj-bench --release --bin simtrends [--ticks N] [--csv|--json]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::stats_line;
use sj_bench::table::{secs, Table};
use sj_core::driver::DriverConfig;
use sj_core::technique::TechniqueSpec;
use sj_workload::RoadGridWorkload;

fn main() {
    let opts = CommonOpts::parse();
    opts.require_self_join("simtrends");
    if let Some(w) = opts.workload {
        // simtrends exists to test the road-grid workload specifically.
        eprintln!("--workload {} is not supported by this binary", w.name());
        std::process::exit(2);
    }
    let params = opts.uniform_params();
    let specs = opts.techniques(TechniqueSpec::is_benchmarkable);
    let exec = opts.exec_mode();

    if !opts.json {
        println!(
            "# Simulation-workload trends (road grid, {} points, {} ticks)",
            params.num_points, params.ticks
        );
    }
    let mut t = Table::new(vec!["technique", "avg_tick_s", "build_s", "query_s"]);
    let mut reference: Option<(u64, u64)> = None;
    for spec in specs {
        let mut workload = RoadGridWorkload::with_defaults(params);
        let mut tech = spec.build(params.space_side);
        let stats = tech.run(
            &mut workload,
            DriverConfig::new(params.ticks, 1).with_exec(exec),
        );
        match reference {
            None => reference = Some((stats.result_pairs, stats.checksum)),
            Some(expect) => assert_eq!(
                (stats.result_pairs, stats.checksum),
                expect,
                "{} computed a different join",
                spec.label()
            ),
        }
        if opts.json {
            println!("{}", stats_line("simtrends", &spec.name(), None, &stats));
        } else {
            t.row(vec![
                spec.label(),
                secs(stats.avg_tick_seconds()),
                secs(stats.avg_build_seconds()),
                secs(stats.avg_query_seconds()),
            ]);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
        println!("(expected ordering, as in Figure 2: original grid worst, tuned grid best)");
    }
}
