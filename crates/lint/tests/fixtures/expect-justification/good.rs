//@ path: crates/x/src/lib.rs
pub fn head(xs: &[u32]) -> u32 {
    *xs.first()
        .expect("callers hand this a non-empty batch by construction")
}
