//! Scaling — the query phase across worker counts, in the style of the
//! Tsitsigkos & Mamoulis scalability figures ("Parallel In-Memory
//! Evaluation of Spatial Joins"): every benchmarkable registry technique
//! at 1, 2, 4 and 8 workers, under **both** non-sequential execution
//! modes raced against each other — `@par<N>` (the query set sharded over
//! N threads probing one shared index) and `@tiles<N>` (the space cut
//! into N tiles, each with a private fork of the technique; DESIGN.md
//! §13).
//!
//! Worker count 1 runs the real parallel/tiled code paths with one
//! worker, so each speedup column isolates scaling from the constant cost
//! of dispatch (and, for tiles, of partitioning). The sweep crosses a
//! uniform and two skewed workloads (`gaussian`, `roadgrid`) by default —
//! skew is where the two modes diverge: sharding balances queries but
//! shares one big index, tiling shrinks the per-worker index but
//! inherits the hotspot imbalance. Each run's join is asserted identical
//! to the sequential reference — parallelism that changed the answer
//! would be a bug, not a speedup.
//!
//! `--workload SPEC` narrows the workload sweep to that spec;
//! `--threads N` / `--tiles N` narrows the worker-count sweep to N (the
//! two flags are mutually exclusive and either one narrows both modes,
//! keeping the race aligned). `--json` emits one RunStats line per
//! (workload, technique, mode, count) with a `threads` or `tiles` field.
//!
//! Run: `cargo run -p sj-bench --release --bin scaling [--ticks N] [--threads N | --tiles N] [--workload SPEC] [--csv|--json]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::stats_line;
use sj_bench::run_workload_spec;
use sj_bench::table::{secs, Table};
use sj_core::par::ExecMode;
use sj_core::technique::TechniqueSpec;
use sj_workload::{WorkloadKind, WorkloadSpec, DEFAULT_HOTSPOTS};

/// The swept worker counts (the Tsitsigkos figures' x-axis, truncated to
/// counts a laptop container can honor).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A non-sequential mode constructor ([`ExecMode::parallel`] or
/// [`ExecMode::partitioned`]); `None` only for a zero count.
type MakeMode = fn(usize) -> Option<ExecMode>;

/// The two raced modes, as (column label, constructor).
const MODES: [(&str, MakeMode); 2] = [
    ("par", ExecMode::parallel),
    ("tiles", ExecMode::partitioned),
];

fn main() {
    let opts = CommonOpts::parse();
    opts.require_self_join("scaling");
    let params = opts.uniform_params();
    let specs = opts.techniques(TechniqueSpec::is_benchmarkable);
    let workloads: Vec<WorkloadSpec> = match opts.workload {
        Some(w) => vec![w],
        None => vec![
            WorkloadKind::Uniform.spec(),
            WorkloadKind::Gaussian {
                hotspots: DEFAULT_HOTSPOTS,
            }
            .spec(),
            WorkloadKind::RoadGrid.spec(),
        ],
    };
    let counts: Vec<usize> = match opts.threads.or(opts.tiles) {
        Some(n) => vec![n.get()],
        None => WORKER_COUNTS.to_vec(),
    };

    for wspec in workloads {
        if !opts.json {
            println!(
                "# Query-phase scaling, {} points, {} ticks, {} workload (query seconds per tick)",
                params.num_points,
                params.ticks,
                wspec.name()
            );
        }
        let mut headers = vec!["technique".to_string(), "mode".to_string()];
        headers.extend(counts.iter().map(|n| format!("query_s @{n}")));
        headers.push("speedup".to_string());
        let mut t = Table::new(headers);

        for &spec in &specs {
            // Force the reference truly sequential: a spec arriving with
            // its own @par/@tiles modifier (via --technique) would
            // otherwise promote this run too, and the equality assert
            // would compare a mode to itself.
            let reference = run_workload_spec(
                wspec,
                &params,
                spec.with_exec(ExecMode::Sequential),
                ExecMode::Sequential,
            );
            for (mode_name, make_mode) in MODES {
                let mut row = vec![spec.label(), mode_name.to_string()];
                let mut first_query_s = None;
                let mut last_query_s = None;
                for &n in &counts {
                    let exec = make_mode(n).expect("worker counts are nonzero");
                    let stats = run_workload_spec(
                        wspec,
                        &params,
                        spec.with_exec(exec),
                        ExecMode::Sequential,
                    );
                    assert_eq!(
                        (stats.result_pairs, stats.checksum),
                        (reference.result_pairs, reference.checksum),
                        "{} @{mode_name}{n} on {} computed a different join",
                        spec.name(),
                        wspec.name()
                    );
                    let query_s = stats.avg_query_seconds();
                    first_query_s.get_or_insert(query_s);
                    last_query_s = Some(query_s);
                    if opts.json {
                        println!(
                            "{}",
                            stats_line(
                                "scaling",
                                &spec.with_exec(exec).name(),
                                Some((mode_name, n as f64)),
                                &stats
                            )
                        );
                    } else {
                        row.push(secs(query_s));
                    }
                }
                if !opts.json {
                    let speedup = match (first_query_s, last_query_s) {
                        (Some(first), Some(last)) if last > 0.0 => format!("{:.2}x", first / last),
                        _ => "-".to_string(),
                    };
                    row.push(speedup);
                    t.row(row);
                }
            }
        }
        if !opts.json {
            println!("{}", t.render(opts.csv));
            println!("(speedup = first column / last column; joins verified identical per run)");
        }
    }
}
