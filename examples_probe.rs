use sj_workload::{WorkloadParams, WorkloadSpec};
fn main() {
    let params = WorkloadParams {
        num_points: 100,
        space_side: 6_000.0,
        max_speed: 3_000.0,
        ..WorkloadParams::default()
    };
    let mut w = WorkloadSpec::parse("roadgrid").unwrap().build(params);
    let set = w.init();
    println!("ok, live {}", set.live_len());
}
