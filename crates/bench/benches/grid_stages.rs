//! Criterion microbenchmark: query cost of each Simple Grid improvement
//! stage — the per-stage speedups behind Figure 4, without driver noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_core::geom::{Point, Rect};
use sj_core::index::SpatialIndex;
use sj_core::rng::Xoshiro256;
use sj_grid::{SimpleGrid, Stage};
use sj_workload::{UniformWorkload, WorkloadParams};
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let params = WorkloadParams::default();
    let mut w = UniformWorkload::new(params);
    let set = sj_core::Workload::init(&mut w);
    let table = &set.positions;
    let space = Rect::space(params.space_side);

    let mut rng = Xoshiro256::seeded(77);
    let queries: Vec<Rect> = (0..256)
        .map(|_| {
            let i = rng.range_usize(table.len());
            let c = Point::new(table.x(i as u32), table.y(i as u32));
            Rect::centered_square(c, params.query_side).clipped_to(&space)
        })
        .collect();

    let mut group = c.benchmark_group("grid_stage_query_batch_256");
    group.sample_size(10);
    for stage in Stage::ALL {
        let mut grid = SimpleGrid::at_stage(stage, params.space_side);
        grid.build(table);
        let mut out = Vec::with_capacity(1024);
        group.bench_function(BenchmarkId::from_parameter(stage.label()), |b| {
            b.iter(|| {
                let mut found = 0usize;
                for q in &queries {
                    out.clear();
                    grid.query(black_box(table), black_box(q), &mut out);
                    found += out.len();
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
