//@ path: crates/x/src/lib.rs
pub fn first(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees the slice is non-empty, so
    // reading element 0 through the raw pointer is in bounds.
    unsafe { *xs.as_ptr() }
}
