//@ path: crates/x/src/lib.rs
pub fn fan_out() -> u32 {
    let handle = std::thread::spawn(|| 1 + 1);
    handle.join().unwrap_or(0)
}
