//! Figure 5 — re-tuning the *refactored* Simple Grid.
//!
//! (a) bs swept 4..32 at cps = 13: larger buckets now help (entries are
//!     inline, so bigger buckets mean better locality); optimum ≈ 20.
//! (b) cps swept 4..128 at bs = 20: a much finer grid wins; optimum ≈ 64.
//!
//! Run: `cargo run -p sj-bench --release --bin fig5 [--ticks N] [--csv]`

use sj_bench::cli::CommonOpts;
use sj_bench::table::{secs, Table};
use sj_bench::{run_uniform, Technique};
use sj_grid::{GridConfig, Layout, QueryAlgo};

fn main() {
    let opts = CommonOpts::parse();
    let params = opts.uniform_params();

    println!("# Figure 5a: refactored Simple Grid, bs sweep (cps = 13)");
    let mut t = Table::new(vec!["bs", "avg_time_per_tick_s"]);
    for bs in [4u32, 8, 12, 16, 20, 24, 28, 32] {
        let cfg = GridConfig {
            cells_per_side: GridConfig::ORIGINAL_CPS,
            bucket_size: bs,
            layout: Layout::Inline,
            query_algo: QueryAlgo::RangeScan,
        };
        let stats = run_uniform(&params, Technique::GridCustom(cfg));
        t.row(vec![bs.to_string(), secs(stats.avg_tick_seconds())]);
    }
    println!("{}", t.render(opts.csv));

    println!("# Figure 5b: refactored Simple Grid, cps sweep (bs = 20)");
    let mut t = Table::new(vec!["cps", "avg_time_per_tick_s"]);
    for cps in [4u32, 8, 16, 32, 48, 64, 96, 128] {
        let cfg = GridConfig {
            cells_per_side: cps,
            bucket_size: GridConfig::TUNED_BS,
            layout: Layout::Inline,
            query_algo: QueryAlgo::RangeScan,
        };
        let stats = run_uniform(&params, Technique::GridCustom(cfg));
        t.row(vec![cps.to_string(), secs(stats.avg_tick_seconds())]);
    }
    println!("{}", t.render(opts.csv));
}
