//! Profile the Simple Grid's memory-hierarchy behaviour before and after
//! the paper's refactoring, using the simulated cache hierarchy — Table 3
//! at example scale.
//!
//! Run: `cargo run --release --example cache_profile`

use spatial_joins::core::driver::TickActions;
use spatial_joins::core::Workload;
use spatial_joins::memsim::CacheStats;
use spatial_joins::prelude::*;

fn profile(stage: Stage, params: &WorkloadParams) -> CacheStats {
    let mut workload = UniformWorkload::new(*params);
    let space = workload.space();
    let side = params.query_side;
    let mut set = workload.init();
    let mut grid = SimpleGrid::at_stage(stage, params.space_side);
    let mut sim = CacheSim::i7();
    let mut actions = TickActions::default();
    let mut results = Vec::new();

    for tick in 0..params.ticks {
        actions.clear();
        workload.plan_tick(tick, &set, &mut actions);
        grid.build_traced(&set.positions, &mut sim);
        for &q in &actions.queriers {
            let region = Rect::centered_square(set.positions.point(q), side).clipped_to(&space);
            results.clear();
            grid.query_traced(&set.positions, &region, &mut results, &mut sim);
        }
        for &(id, vx, vy) in &actions.velocity_updates {
            set.set_velocity(id, Vec2::new(vx, vy));
        }
        workload.advance(&mut set);
    }
    sim.stats()
}

fn main() {
    let params = WorkloadParams {
        num_points: 10_000,
        ticks: 2,
        ..WorkloadParams::default()
    };
    let model = CpiModel::default();
    let before = profile(Stage::Original, &params);
    let after = profile(Stage::CpsTuned, &params);

    println!("simulated i7 hierarchy (32K L1 / 256K L2 / 8M L3, 64B lines)\n");
    println!(
        "{:<22} {:>10} {:>14} {:>12} {:>12} {:>12}",
        "grid", "CPI", "ops", "L1 miss", "L2 miss", "L3 miss"
    );
    for (label, s) in [
        ("before (original)", &before),
        ("after (+cps tuned)", &after),
    ] {
        println!(
            "{:<22} {:>10.2} {:>14} {:>12} {:>12} {:>12}",
            label,
            model.cpi(s),
            s.instrs,
            s.l1_misses,
            s.l2_misses,
            s.l3_misses
        );
    }
    println!(
        "\nimprovement: ops {:.1}x, L1 {:.1}x, L2 {:.1}x, L3 {:.1}x",
        before.instrs as f64 / after.instrs.max(1) as f64,
        before.l1_misses as f64 / after.l1_misses.max(1) as f64,
        before.l2_misses as f64 / after.l2_misses.max(1) as f64,
        before.l3_misses as f64 / after.l3_misses.max(1) as f64,
    );
    println!("(paper, hardware: INS 4.6x, L1 8.1x, L2 8.2x, L3 4.9x)");
}
