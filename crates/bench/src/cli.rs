//! Minimal argument parsing shared by the figure/table binaries.
//!
//! Hand-rolled (≈100 lines) instead of pulling a CLI crate: the harness
//! only needs a handful of `--key value` flags. Parsing proper is
//! side-effect free ([`CommonOpts::parse_from`] returns a `Result`);
//! only the [`CommonOpts::parse`] convenience entry point prints and
//! exits, so malformed input is unit-testable.

use std::num::NonZeroUsize;

use sj_core::par::{ExecMode, Tiling};
use sj_core::technique::{registry, ParseSpecError, TechniqueSpec};
use sj_workload::{
    workload_registry, GaussianParams, JoinSpec, ParseJoinError, ParseWorkloadError, WorkloadKind,
    WorkloadParams, WorkloadSpec,
};

/// Options common to every harness binary.
#[derive(Clone, Debug, Default)]
pub struct CommonOpts {
    /// Measured ticks per configuration. Defaults to a scaled-down count
    /// so the full suite completes in minutes; `--paper` restores
    /// Table 1's 100/120 ticks.
    pub ticks: Option<u32>,
    pub points: Option<u32>,
    pub seed: Option<u64>,
    /// Query-phase worker count (`--threads N`). `NonZeroUsize` because a
    /// zero-thread run is unrepresentable ([`ExecMode::Parallel`]); the
    /// parser rejects `--threads 0` as an [`CliError::InvalidValue`].
    pub threads: Option<NonZeroUsize>,
    /// Space-partition tiling (`--tiles N` or `--tiles auto`,
    /// [`ExecMode::Partitioned`]). Composes with `--threads`, which then
    /// sizes the shared mini-join worker pool instead of selecting sharded
    /// execution: `--tiles 4 --threads 2` is `@tiles4@par2`.
    pub tiles: Option<Tiling>,
    /// Emit machine-readable CSV instead of aligned text.
    pub csv: bool,
    /// Emit one JSON object per technique run (see [`crate::report`]).
    pub json: bool,
    /// Use the paper's full tick counts.
    pub paper: bool,
    /// Restrict the run to a single registry technique (optionally with a
    /// `@par<N>` modifier, which then wins over `--threads`).
    pub technique: Option<TechniqueSpec>,
    /// Drive the run through a named workload (`--workload SPEC`, e.g.
    /// `gaussian:h3` or `churn:uniform`). Binaries whose sweep is tied to
    /// one workload family reject the flag; the rest default to `uniform`.
    pub workload: Option<WorkloadSpec>,
    /// Drive the run through a named join shape (`--join SPEC`): `self`
    /// (default, the paper's setting), `bipartite:<R>x<S>[:ratio<K>]`,
    /// which joins an independent query relation R against the data
    /// relation S, or `intersect:rects` — the intersection self-join over
    /// moving rectangles under the **intersects** predicate. For the
    /// non-self specs the workloads come from the spec itself and
    /// `--workload` is rejected (one configuration source per axis).
    /// Binaries whose sweep is intrinsically self-joined reject
    /// non-`self` specs.
    pub join: Option<JoinSpec>,
    /// `--list-techniques`: print the technique registry's canonical spec
    /// strings (one per line) and exit 0.
    pub list_techniques: bool,
    /// `--list-workloads`: print the workload registry's canonical spec
    /// strings (one per line) and exit 0.
    pub list_workloads: bool,
}

/// Scaled-down default tick count for harness runs.
pub const QUICK_TICKS: u32 = 8;

/// A parse failure (or the `--help` request) from
/// [`CommonOpts::parse_from`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h`: not an error; the caller prints usage and exits 0.
    Help,
    /// A value-taking flag appeared last with no value.
    MissingValue(String),
    /// A numeric flag's value failed to parse.
    InvalidValue { flag: String, value: String },
    /// `--technique` named a spec outside the registry.
    UnknownTechnique(ParseSpecError),
    /// `--workload` named a spec outside the workload grammar.
    UnknownWorkload(ParseWorkloadError),
    /// `--join` named a spec outside the join grammar.
    UnknownJoin(ParseJoinError),
    /// A non-self `--join` combined with `--workload`: a bipartite spec
    /// already names both relation workloads, and an intersect spec names
    /// its own extent workload.
    JoinWorkloadConflict,
    /// An unrecognized argument.
    UnknownFlag(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help => f.write_str("help requested"),
            CliError::MissingValue(flag) => write!(f, "missing value for {flag}"),
            CliError::InvalidValue { flag, value } => {
                write!(f, "invalid value for {flag}: {value}")
            }
            CliError::UnknownTechnique(e) => write!(f, "{e}"),
            CliError::UnknownWorkload(e) => write!(f, "{e}"),
            CliError::UnknownJoin(e) => write!(f, "{e}"),
            CliError::JoinWorkloadConflict => f.write_str(
                "--workload cannot be combined with a non-self --join: the join spec \
                 already names its workloads (bipartite:<R>x<S>, intersect:rects)",
            ),
            CliError::UnknownFlag(arg) => write!(f, "unknown argument: {arg} (try --help)"),
        }
    }
}

impl std::error::Error for CliError {}

/// The `--help` text (also embeds both registries' spec strings).
pub fn usage() -> String {
    let specs: Vec<String> = registry().iter().map(|s| s.name()).collect();
    let workloads: Vec<String> = workload_registry().iter().map(|s| s.name()).collect();
    format!(
        "options:\n  \
         --ticks N         measured ticks per config (default {QUICK_TICKS}; --paper for Table 1 counts)\n  \
         --points N        number of moving objects (default 50000)\n  \
         --seed N          workload seed\n  \
         --threads N       shard the query phase over N workers; with --tiles, sizes the tile worker pool\n  \
         --tiles N|auto    space-partition into N tiles (auto: density-sized), each with a private index\n  \
         --technique SPEC  run a single technique; SPEC one of:\n                    {}\n                    \
         any spec accepts an execution modifier, e.g. grid:inline@par8, grid:inline@tiles4,\n                    \
         grid:inline@tiles4@par2, or grid:inline@tilesauto\n  \
         --workload SPEC   drive the run through a named workload; SPEC one of:\n                    {}\n                    \
         (gaussian:h<N> takes any hotspot count; churn: prefixes any base spec)\n  \
         --join SPEC       join shape: self (default), bipartite:<R>x<S>[:ratio<K>], or intersect:rects\n                    \
         (R/S are workload specs; ratio<K> shrinks the query relation to 1/K;\n                    \
         intersect:rects runs the intersection self-join over moving rectangles)\n  \
         --list-techniques print the technique registry spec strings and exit\n  \
         --list-workloads  print the workload registry spec strings and exit\n  \
         --csv             machine-readable CSV output\n  \
         --json            one JSON object per technique run\n  \
         --paper           full paper-scale tick counts",
        specs.join(", "),
        workloads.join(", ")
    )
}

impl CommonOpts {
    /// Parse from `std::env::args`. Prints usage and exits on `--help` or
    /// malformed input — the thin process-boundary wrapper around the pure
    /// [`CommonOpts::parse_from`].
    pub fn parse() -> CommonOpts {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(opts) => {
                // Registry listings: print the canonical spec strings (the
                // machine-readable contract — scripts feed them back into
                // --technique/--workload) and exit.
                if opts.list_techniques {
                    for spec in registry() {
                        println!("{}", spec.name());
                    }
                    std::process::exit(0);
                }
                if opts.list_workloads {
                    for spec in workload_registry() {
                        println!("{}", spec.name());
                    }
                    std::process::exit(0);
                }
                opts
            }
            Err(CliError::Help) => {
                eprintln!("{}", usage());
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Parse an argument list. Never prints, never exits.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<CommonOpts, CliError> {
        let mut opts = CommonOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut take = |name: &str| -> Result<String, CliError> {
                it.next()
                    .ok_or_else(|| CliError::MissingValue(name.to_string()))
            };
            match arg.as_str() {
                "--ticks" => opts.ticks = Some(parse_num(&take("--ticks")?, "--ticks")?),
                "--points" => opts.points = Some(parse_num(&take("--points")?, "--points")?),
                "--seed" => opts.seed = Some(parse_num(&take("--seed")?, "--seed")?),
                // NonZeroUsize's FromStr rejects "0", so an invalid thread
                // count dies here as a CliError — no ExecMode for it exists.
                "--threads" => opts.threads = Some(parse_num(&take("--threads")?, "--threads")?),
                "--tiles" => {
                    let v = take("--tiles")?;
                    opts.tiles = Some(if v == "auto" {
                        Tiling::Auto
                    } else {
                        Tiling::Fixed(parse_num(&v, "--tiles")?)
                    });
                }
                "--technique" => {
                    let spec = take("--technique")?;
                    opts.technique =
                        Some(TechniqueSpec::parse(&spec).map_err(CliError::UnknownTechnique)?);
                }
                "--workload" => {
                    let spec = take("--workload")?;
                    opts.workload =
                        Some(WorkloadSpec::parse(&spec).map_err(CliError::UnknownWorkload)?);
                }
                "--join" => {
                    let spec = take("--join")?;
                    opts.join = Some(JoinSpec::parse(&spec).map_err(CliError::UnknownJoin)?);
                }
                "--list-techniques" => opts.list_techniques = true,
                "--list-workloads" => opts.list_workloads = true,
                "--csv" => opts.csv = true,
                "--json" => opts.json = true,
                "--paper" => opts.paper = true,
                "--help" | "-h" => return Err(CliError::Help),
                other => return Err(CliError::UnknownFlag(other.to_string())),
            }
        }
        if opts.workload.is_some() && !opts.join_spec().is_self() {
            return Err(CliError::JoinWorkloadConflict);
        }
        Ok(opts)
    }

    /// The execution mode this invocation asks for: the `--technique`
    /// spec's `@par<N>`/`@tiles<N>` modifier if present, else the flags.
    /// `--tiles` selects partitioned execution; alongside it `--threads`
    /// sizes the mini-join worker pool, and alone it selects sharded
    /// execution. With neither flag, sequential.
    pub fn exec_mode(&self) -> ExecMode {
        let flag = match (self.tiles, self.threads) {
            (Some(tiles), workers) => ExecMode::Partitioned { tiles, workers },
            (None, Some(threads)) => ExecMode::Parallel { threads },
            (None, None) => ExecMode::Sequential,
        };
        match self.technique {
            Some(spec) => spec.exec.or(flag),
            None => flag,
        }
    }

    /// The technique list a binary should run: the single `--technique`
    /// override if given, otherwise the registry filtered by the binary's
    /// default selection.
    pub fn techniques<F: Fn(TechniqueSpec) -> bool>(
        &self,
        default_filter: F,
    ) -> Vec<TechniqueSpec> {
        match self.technique {
            Some(spec) => vec![spec],
            None => registry()
                .into_iter()
                .filter(|&s| default_filter(s))
                .collect(),
        }
    }

    /// The workload this invocation asks for: the `--workload` spec if
    /// given, else the Table 1 uniform workload. Only meaningful for
    /// self-joins — a bipartite [`CommonOpts::join_spec`] names its own
    /// relation workloads.
    pub fn workload_spec(&self) -> WorkloadSpec {
        self.workload
            .unwrap_or_else(|| WorkloadKind::Uniform.spec())
    }

    /// The join shape this invocation asks for: the `--join` spec if
    /// given, else the paper's self-join.
    pub fn join_spec(&self) -> JoinSpec {
        self.join.unwrap_or(JoinSpec::SelfJoin)
    }

    /// Exit with a usage error when a bipartite `--join` was requested —
    /// for binaries whose sweep is intrinsically self-joined (their axis
    /// *is* the single population). Call at the top of `main`.
    pub fn require_self_join(&self, bin: &str) {
        if let Some(j) = self.join {
            if !j.is_self() {
                eprintln!(
                    "--join {} is not supported by {bin}: its sweep is tied to a \
                     single self-joined point population (use table2, or asymmetry \
                     for bipartite joins)",
                    j.name()
                );
                std::process::exit(2);
            }
        }
    }

    /// Exit with a usage error when an intersection `--join` names a
    /// `--technique` outside the predicate's implementors — the run would
    /// otherwise die on the executor's assert. Call at the top of `main`
    /// in binaries that accept intersection joins (table2); without an
    /// explicit `--technique` the default filter handles the restriction.
    pub fn require_intersect_support(&self) {
        if let (true, Some(spec)) = (self.join_spec().is_intersect(), self.technique) {
            if !spec.supports_intersects() {
                let capable: Vec<String> = registry()
                    .into_iter()
                    .filter(|s| s.supports_intersects())
                    .map(|s| s.name())
                    .collect();
                eprintln!(
                    "--technique {} does not implement the intersects predicate required \
                     by --join {}; intersects-capable specs: {}",
                    spec.name(),
                    self.join_spec().name(),
                    capable.join(", ")
                );
                std::process::exit(2);
            }
        }
    }

    /// Table 1 uniform defaults with this CLI's overrides applied.
    pub fn uniform_params(&self) -> WorkloadParams {
        let defaults = WorkloadParams::default();
        WorkloadParams {
            ticks: self
                .ticks
                .unwrap_or(if self.paper { 100 } else { QUICK_TICKS }),
            num_points: self.points.unwrap_or(defaults.num_points),
            seed: self.seed.unwrap_or(defaults.seed),
            ..defaults
        }
    }

    /// Table 1 Gaussian defaults with this CLI's overrides applied.
    pub fn gaussian_params(&self) -> GaussianParams {
        GaussianParams {
            base: WorkloadParams {
                ticks: self
                    .ticks
                    .unwrap_or(if self.paper { 120 } else { QUICK_TICKS }),
                ..self.uniform_params()
            },
            ..GaussianParams::default()
        }
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError> {
    s.parse().map_err(|_| CliError::InvalidValue {
        flag: flag.to_string(),
        value: s.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_core::technique::TechniqueKind;
    use sj_grid::Stage;

    fn parse(args: &[&str]) -> Result<CommonOpts, CliError> {
        CommonOpts::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick_scale() {
        let opts = parse(&[]).unwrap();
        let p = opts.uniform_params();
        assert_eq!(p.ticks, QUICK_TICKS);
        assert_eq!(p.num_points, 50_000);
        assert!(!opts.csv && !opts.json);
        assert_eq!(opts.technique, None);
    }

    #[test]
    fn paper_restores_full_ticks() {
        let opts = parse(&["--paper"]).unwrap();
        assert_eq!(opts.uniform_params().ticks, 100);
        assert_eq!(opts.gaussian_params().base.ticks, 120);
    }

    #[test]
    fn explicit_flags_win() {
        let opts = parse(&[
            "--ticks", "5", "--points", "1234", "--seed", "9", "--csv", "--json",
        ])
        .unwrap();
        let p = opts.uniform_params();
        assert_eq!(p.ticks, 5);
        assert_eq!(p.num_points, 1_234);
        assert_eq!(p.seed, 9);
        assert!(opts.csv);
        assert!(opts.json);
    }

    #[test]
    fn technique_flag_parses_registry_specs() {
        let opts = parse(&["--technique", "grid:inline"]).unwrap();
        let tuned = TechniqueKind::Grid(Stage::CpsTuned).spec();
        assert_eq!(opts.technique, Some(tuned));
        // The override wins over any default filter.
        assert_eq!(opts.techniques(|_| true), vec![tuned]);
        // Without an override, the filter selects from the registry.
        let defaults = parse(&[]).unwrap().techniques(|s| s.in_figure2());
        assert_eq!(defaults.len(), 5);
    }

    #[test]
    fn threads_flag_selects_the_parallel_mode() {
        assert_eq!(parse(&[]).unwrap().exec_mode(), ExecMode::Sequential);
        let opts = parse(&["--threads", "4"]).unwrap();
        assert_eq!(opts.threads, NonZeroUsize::new(4));
        assert_eq!(opts.exec_mode(), ExecMode::parallel(4).unwrap());
    }

    #[test]
    fn zero_threads_is_a_cli_error_not_a_panic() {
        // ExecMode::Parallel holds a NonZeroUsize, so an invalid thread
        // count can only exist as a parse failure — there is no runtime
        // assert left to trip (the old facade's `assert!(threads > 0)`).
        assert_eq!(
            parse(&["--threads", "0"]).err(),
            Some(CliError::InvalidValue {
                flag: "--threads".into(),
                value: "0".into()
            })
        );
        assert_eq!(
            parse(&["--threads", "many"]).err(),
            Some(CliError::InvalidValue {
                flag: "--threads".into(),
                value: "many".into()
            })
        );
        // The spec-level guard is the same type: @par0 cannot parse.
        match parse(&["--technique", "grid@par0"]) {
            Err(CliError::UnknownTechnique(e)) => assert_eq!(e.spec, "grid@par0"),
            other => panic!("expected UnknownTechnique, got {other:?}"),
        }
    }

    #[test]
    fn spec_par_modifier_wins_over_the_threads_flag() {
        let opts = parse(&["--technique", "grid@par8", "--threads", "2"]).unwrap();
        assert_eq!(opts.exec_mode(), ExecMode::parallel(8).unwrap());
        // Without a modifier, --threads applies to the chosen technique.
        let opts = parse(&["--technique", "sweep", "--threads", "2"]).unwrap();
        assert_eq!(opts.exec_mode(), ExecMode::parallel(2).unwrap());
    }

    #[test]
    fn tiles_flag_selects_the_partitioned_mode() {
        let opts = parse(&["--tiles", "4"]).unwrap();
        assert_eq!(opts.tiles, NonZeroUsize::new(4).map(Tiling::Fixed));
        assert_eq!(opts.exec_mode(), ExecMode::partitioned(4).unwrap());
        let opts = parse(&["--tiles", "auto"]).unwrap();
        assert_eq!(opts.tiles, Some(Tiling::Auto));
        assert_eq!(opts.exec_mode(), ExecMode::adaptive());
        // Zero dies in the parser like --threads 0 — no runtime check left.
        assert_eq!(
            parse(&["--tiles", "0"]).err(),
            Some(CliError::InvalidValue {
                flag: "--tiles".into(),
                value: "0".into()
            })
        );
        // A spec modifier wins over the flag, and cross-mode too: the spec
        // is the more specific request.
        let opts = parse(&["--technique", "grid@tiles8", "--tiles", "2"]).unwrap();
        assert_eq!(opts.exec_mode(), ExecMode::partitioned(8).unwrap());
        let opts = parse(&["--technique", "grid@par8", "--tiles", "2"]).unwrap();
        assert_eq!(opts.exec_mode(), ExecMode::parallel(8).unwrap());
        let opts = parse(&["--technique", "grid@tiles8", "--threads", "2"]).unwrap();
        assert_eq!(opts.exec_mode(), ExecMode::partitioned(8).unwrap());
    }

    #[test]
    fn tiles_and_threads_compose_into_a_pooled_mode() {
        // Formerly mutually exclusive; with the shared worker pool the
        // combination is the pooled mode, in either flag order.
        let opts = parse(&["--tiles", "4", "--threads", "2"]).unwrap();
        assert_eq!(opts.exec_mode(), ExecMode::pooled(4, 2).unwrap());
        let opts = parse(&["--threads", "2", "--tiles", "4"]).unwrap();
        assert_eq!(opts.exec_mode(), ExecMode::pooled(4, 2).unwrap());
        // Adaptive tiling takes a pool size the same way.
        let opts = parse(&["--tiles", "auto", "--threads", "2"]).unwrap();
        assert_eq!(opts.exec_mode(), ExecMode::adaptive_pooled(2).unwrap());
        // Both flags still reject zero individually.
        assert_eq!(
            parse(&["--tiles", "0", "--threads", "2"]).err(),
            Some(CliError::InvalidValue {
                flag: "--tiles".into(),
                value: "0".into()
            })
        );
        assert_eq!(
            parse(&["--tiles", "4", "--threads", "0"]).err(),
            Some(CliError::InvalidValue {
                flag: "--threads".into(),
                value: "0".into()
            })
        );
    }

    #[test]
    fn malformed_inputs_are_reported_not_fatal() {
        assert_eq!(
            parse(&["--ticks"]).err(),
            Some(CliError::MissingValue("--ticks".into()))
        );
        assert_eq!(
            parse(&["--points", "many"]).err(),
            Some(CliError::InvalidValue {
                flag: "--points".into(),
                value: "many".into()
            })
        );
        assert_eq!(
            parse(&["--frobnicate"]).err(),
            Some(CliError::UnknownFlag("--frobnicate".into()))
        );
        assert_eq!(parse(&["--help"]).err(), Some(CliError::Help));
        match parse(&["--technique", "btree"]) {
            Err(CliError::UnknownTechnique(e)) => assert_eq!(e.spec, "btree"),
            other => panic!("expected UnknownTechnique, got {other:?}"),
        }
    }

    #[test]
    fn usage_lists_every_registry_spec() {
        let u = usage();
        for spec in registry() {
            assert!(u.contains(&spec.name()), "usage missing {}", spec.name());
        }
        for spec in workload_registry() {
            assert!(u.contains(&spec.name()), "usage missing {}", spec.name());
        }
        assert!(u.contains("--list-techniques") && u.contains("--list-workloads"));
        assert!(u.contains("--join") && u.contains("bipartite:<R>x<S>"));
        assert!(u.contains("intersect:rects"));
        assert!(u.contains("--tiles") && u.contains("@tiles4"));
        assert!(u.contains("@tiles4@par2") && u.contains("@tilesauto"));
    }

    #[test]
    fn workload_flag_parses_registry_specs() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.workload, None);
        assert_eq!(opts.workload_spec(), WorkloadKind::Uniform.spec());
        let opts = parse(&["--workload", "churn:gaussian:h3"]).unwrap();
        let spec = opts.workload.unwrap();
        assert!(spec.has_churn());
        assert_eq!(spec.kind, WorkloadKind::Gaussian { hotspots: 3 });
        assert_eq!(opts.workload_spec(), spec);
        match parse(&["--workload", "nope"]) {
            Err(CliError::UnknownWorkload(e)) => assert_eq!(e.spec, "nope"),
            other => panic!("expected UnknownWorkload, got {other:?}"),
        }
        assert_eq!(
            parse(&["--workload"]).err(),
            Some(CliError::MissingValue("--workload".into()))
        );
    }

    #[test]
    fn join_flag_parses_the_join_grammar() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.join, None);
        assert!(opts.join_spec().is_self());
        let opts = parse(&["--join", "self"]).unwrap();
        assert!(opts.join_spec().is_self());
        let opts = parse(&["--join", "bipartite:uniformxgaussian:h3:ratio10"]).unwrap();
        let spec = opts.join.unwrap();
        assert!(!spec.is_self());
        assert_eq!(spec.name(), "bipartite:uniformxgaussian:h3:ratio10");
        assert_eq!(opts.join_spec(), spec);
        match parse(&["--join", "bipartite:nope"]) {
            Err(CliError::UnknownJoin(e)) => assert_eq!(e.spec, "bipartite:nope"),
            other => panic!("expected UnknownJoin, got {other:?}"),
        }
        assert_eq!(
            parse(&["--join"]).err(),
            Some(CliError::MissingValue("--join".into()))
        );
        // A bipartite join names its own relation workloads; a
        // simultaneous --workload would be a second configuration source.
        assert_eq!(
            parse(&[
                "--join",
                "bipartite:uniformxuniform",
                "--workload",
                "uniform"
            ])
            .err(),
            Some(CliError::JoinWorkloadConflict)
        );
        // --workload remains fine with the (default or explicit) self join.
        assert!(parse(&["--join", "self", "--workload", "uniform"]).is_ok());
    }

    #[test]
    fn intersect_join_parses_and_rejects_a_workload_flag() {
        let opts = parse(&["--join", "intersect:rects"]).unwrap();
        let spec = opts.join.unwrap();
        assert!(spec.is_intersect() && !spec.is_self());
        assert_eq!(spec.name(), "intersect:rects");
        // The intersect spec names its own extent workload; a simultaneous
        // --workload would be a second configuration source.
        assert_eq!(
            parse(&["--join", "intersect:rects", "--workload", "uniform"]).err(),
            Some(CliError::JoinWorkloadConflict)
        );
        match parse(&["--join", "intersect:spheres"]) {
            Err(CliError::UnknownJoin(e)) => assert_eq!(e.spec, "intersect:spheres"),
            other => panic!("expected UnknownJoin, got {other:?}"),
        }
    }

    #[test]
    fn list_flags_parse_without_exiting() {
        // parse_from is pure; the print-and-exit behaviour lives in
        // CommonOpts::parse at the process boundary.
        let opts = parse(&["--list-techniques"]).unwrap();
        assert!(opts.list_techniques && !opts.list_workloads);
        let opts = parse(&["--list-workloads", "--json"]).unwrap();
        assert!(opts.list_workloads && opts.json);
    }
}
