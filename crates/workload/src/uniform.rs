//! The uniform synthetic workload (Table 1, left column; based on the
//! Chen/Jensen/Lin moving-object benchmark the paper's framework uses).
//!
//! Objects are placed at random locations in the data space; speeds and
//! directions are chosen at random. Each tick a Bernoulli(`frac_queriers`)
//! coin decides per object whether it queries, and Bernoulli
//! (`frac_updaters`) whether it draws a fresh random velocity.

use sj_base::driver::{TickActions, Workload};
use sj_base::geom::{Point, Rect, Vec2};
use sj_base::rng::Xoshiro256;
use sj_base::table::{entry_id, MovingSet};

use crate::params::WorkloadParams;

/// See module docs.
///
/// ```
/// use sj_base::Workload;
/// use sj_workload::{UniformWorkload, WorkloadParams};
///
/// let params = WorkloadParams { num_points: 1_000, ..WorkloadParams::default() };
/// let mut workload = UniformWorkload::new(params);
/// let set = workload.init();
/// assert_eq!(set.len(), 1_000);
/// let space = workload.space();
/// let p = set.positions.point(0);
/// assert!(space.contains_point(p.x, p.y));
/// ```
#[derive(Clone, Debug)]
pub struct UniformWorkload {
    params: WorkloadParams,
    /// Independent streams so, e.g., sweeping the query fraction does not
    /// change object trajectories.
    rng_place: Xoshiro256,
    rng_query: Xoshiro256,
    rng_update: Xoshiro256,
}

/// Sample a velocity with uniform direction and uniform speed in
/// `[0, max_speed]`.
pub(crate) fn random_velocity(rng: &mut Xoshiro256, max_speed: f32) -> Vec2 {
    let theta = rng.range_f32(0.0, std::f32::consts::TAU);
    let speed = rng.range_f32(0.0, max_speed);
    Vec2::new(speed * theta.cos(), speed * theta.sin())
}

impl UniformWorkload {
    pub fn new(params: WorkloadParams) -> Self {
        debug_assert!(params.validate().is_ok());
        let mut root = Xoshiro256::seeded(params.seed);
        UniformWorkload {
            params,
            rng_place: root.fork(),
            rng_query: root.fork(),
            rng_update: root.fork(),
        }
    }

    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }
}

impl Workload for UniformWorkload {
    fn space(&self) -> Rect {
        Rect::space(self.params.space_side)
    }

    fn query_side(&self) -> f32 {
        self.params.query_side
    }

    fn init(&mut self) -> MovingSet {
        let n = self.params.num_points as usize;
        let side = self.params.space_side;
        let mut set = MovingSet::with_capacity(n);
        for _ in 0..n {
            let p = Point::new(
                self.rng_place.range_f32(0.0, side),
                self.rng_place.range_f32(0.0, side),
            );
            let v = random_velocity(&mut self.rng_place, self.params.max_speed);
            set.push(p, v);
        }
        set
    }

    fn plan_tick(&mut self, _tick: u32, set: &MovingSet, actions: &mut TickActions) {
        let n = entry_id(set.len());
        for id in 0..n {
            if self.rng_query.bernoulli(self.params.frac_queriers) {
                actions.queriers.push(id);
            }
        }
        for id in 0..n {
            if self.rng_update.bernoulli(self.params.frac_updaters) {
                let v = random_velocity(&mut self.rng_update, self.params.max_speed);
                actions.velocity_updates.push((id, v.x, v.y));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> WorkloadParams {
        WorkloadParams {
            num_points: 2_000,
            space_side: 10_000.0,
            ..WorkloadParams::default()
        }
    }

    #[test]
    fn init_places_points_inside_space() {
        let mut w = UniformWorkload::new(small_params());
        let set = w.init();
        assert_eq!(set.len(), 2_000);
        let space = w.space();
        for (_, p) in set.positions.iter() {
            assert!(space.contains_point(p.x, p.y));
        }
    }

    #[test]
    fn initial_speeds_respect_max() {
        let mut w = UniformWorkload::new(small_params());
        let set = w.init();
        for i in 0..entry_id(set.len()) {
            assert!(set.velocity(i).len() <= small_params().max_speed * 1.0001);
        }
    }

    #[test]
    fn querier_fraction_is_close_to_parameter() {
        let mut w = UniformWorkload::new(small_params());
        let set = w.init();
        let mut actions = TickActions::default();
        let mut total = 0usize;
        let ticks = 20;
        for t in 0..ticks {
            actions.clear();
            w.plan_tick(t, &set, &mut actions);
            total += actions.queriers.len();
        }
        let rate = total as f64 / (ticks as usize * set.len()) as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn same_seed_gives_identical_plans() {
        let mk = || {
            let mut w = UniformWorkload::new(small_params());
            let set = w.init();
            let mut a = TickActions::default();
            w.plan_tick(0, &set, &mut a);
            (
                set.positions.point(7),
                a.queriers.len(),
                a.velocity_updates.len(),
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn different_seeds_give_different_placements() {
        let mut w1 = UniformWorkload::new(WorkloadParams {
            seed: 1,
            ..small_params()
        });
        let mut w2 = UniformWorkload::new(WorkloadParams {
            seed: 2,
            ..small_params()
        });
        let (s1, s2) = (w1.init(), w2.init());
        let same = (0..100)
            .filter(|&i| s1.positions.point(i) == s2.positions.point(i))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn placement_covers_the_space_roughly_uniformly() {
        // Chi-squared-lite: each quadrant should hold about a quarter.
        let mut w = UniformWorkload::new(small_params());
        let set = w.init();
        let half = 5_000.0;
        let mut counts = [0usize; 4];
        for (_, p) in set.positions.iter() {
            let qx = usize::from(p.x >= half);
            let qy = usize::from(p.y >= half);
            counts[qx * 2 + qy] += 1;
        }
        for c in counts {
            let frac = c as f64 / set.len() as f64;
            assert!((frac - 0.25).abs() < 0.05, "quadrant fraction {frac}");
        }
    }

    #[test]
    fn updates_change_velocities_over_time() {
        let mut w = UniformWorkload::new(small_params());
        let set = w.init();
        let mut actions = TickActions::default();
        w.plan_tick(0, &set, &mut actions);
        assert!(!actions.velocity_updates.is_empty());
        for &(id, vx, vy) in &actions.velocity_updates {
            assert!((id as usize) < set.len());
            assert!(Vec2::new(vx, vy).len() <= small_params().max_speed * 1.0001);
        }
    }
}
