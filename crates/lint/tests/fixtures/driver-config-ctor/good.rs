//@ path: crates/x/src/lib.rs
use sj_base::driver::DriverConfig;

pub fn config(ticks: u32) -> DriverConfig {
    DriverConfig::new(ticks, 0)
}
