//! The load-bearing integration property: every technique in the registry
//! — both join categories, every grid improvement stage, the quadratic
//! reference scan — computes the *identical* join on the identical
//! workload: different speeds, same answer. Without this, the paper's
//! performance comparison would be comparing different computations.
//!
//! The line-up comes exclusively from [`spatial_joins::technique::registry`];
//! adding a technique to the registry automatically adds it to every test
//! here — and since PR 4 the workload axis comes from
//! [`spatial_joins::workload::workload_registry`] the same way, so the
//! matrix grows automatically on both sides, churn workloads included.

use spatial_joins::prelude::*;

fn run_uniform_spec(spec: TechniqueSpec, params: WorkloadParams) -> RunStats {
    let mut workload = UniformWorkload::new(params);
    let mut tech = spec.build(params.space_side);
    tech.run(&mut workload, DriverConfig::new(params.ticks, 1))
}

fn run_gaussian_spec(spec: TechniqueSpec, params: GaussianParams) -> RunStats {
    let mut workload = GaussianWorkload::new(params);
    let mut tech = spec.build(params.base.space_side);
    tech.run(&mut workload, DriverConfig::new(params.base.ticks, 1))
}

#[test]
fn all_registry_techniques_agree_on_uniform_workload() {
    let params = WorkloadParams {
        num_points: 3_000,
        ticks: 4,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    };
    let mut reference = None;
    for spec in registry() {
        let stats = run_uniform_spec(spec, params);
        assert!(stats.result_pairs > 0, "{} found nothing", spec.name());
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} computed a different join", spec.name())
            }
        }
    }
}

#[test]
fn all_registry_techniques_agree_on_gaussian_workload() {
    let params = GaussianParams {
        base: WorkloadParams {
            num_points: 3_000,
            ticks: 4,
            space_side: 8_000.0,
            ..WorkloadParams::default()
        },
        hotspots: 5,
        sigma: 400.0,
    };
    let mut reference = None;
    for spec in registry() {
        let stats = run_gaussian_spec(spec, params);
        assert!(stats.result_pairs > 0, "{} found nothing", spec.name());
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} computed a different join", spec.name())
            }
        }
    }
}

#[test]
fn agreement_holds_across_query_fractions() {
    for frac in [0.1f32, 0.9] {
        let params = WorkloadParams {
            num_points: 2_000,
            ticks: 3,
            space_side: 8_000.0,
            frac_queriers: frac,
            ..WorkloadParams::default()
        };
        let a = run_uniform_spec(TechniqueSpec::parse("grid:inline").unwrap(), params);
        let b = run_uniform_spec(TechniqueSpec::parse("rtree:str").unwrap(), params);
        assert_eq!(a.checksum, b.checksum, "frac_queriers = {frac}");
        assert_eq!(a.queries, b.queries);
    }
}

#[test]
fn batch_plane_sweep_computes_the_same_join_as_the_indexes() {
    // The specialized-join category goes through the set-at-a-time
    // executor inside the shared tick loop — its join must be identical.
    let params = WorkloadParams {
        num_points: 3_000,
        ticks: 4,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    };
    let indexed = run_uniform_spec(TechniqueSpec::parse("grid:inline").unwrap(), params);
    let swept = run_uniform_spec(TechniqueKind::Sweep.spec(), params);
    assert!(TechniqueKind::Sweep.spec().is_batch());
    assert_eq!(swept.result_pairs, indexed.result_pairs);
    assert_eq!(swept.checksum, indexed.checksum);
    assert_eq!(swept.queries, indexed.queries);
}

#[test]
fn all_registry_techniques_agree_on_road_grid_workload() {
    // The simulation-workload substitute: skewed line-concentrated
    // density must not break any technique.
    use spatial_joins::workload::RoadGridWorkload;
    let params = WorkloadParams {
        num_points: 3_000,
        ticks: 4,
        space_side: 8_000.0,
        max_speed: 150.0,
        ..WorkloadParams::default()
    };
    let mut reference = None;
    for spec in registry() {
        let mut workload = RoadGridWorkload::with_defaults(params);
        let mut tech = spec.build(params.space_side);
        let stats = tech.run(&mut workload, DriverConfig::new(params.ticks, 1));
        assert!(stats.result_pairs > 0, "{} found nothing", spec.name());
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} differs on the road grid", spec.name())
            }
        }
    }
}

#[test]
fn all_registry_techniques_agree_on_every_registry_workload() {
    // The full technique x workload matrix — every technique must compute
    // the identical join on every named workload, including the churn
    // variants where the population itself turns over (tombstoned rows
    // must be invisible to every index and both batch joins, and arrivals
    // must appear in every technique on the same tick).
    let params = WorkloadParams {
        num_points: 1_500,
        ticks: 4,
        space_side: 8_000.0,
        max_speed: 150.0,
        ..WorkloadParams::default()
    };
    for wspec in workload_registry() {
        let mut reference = None;
        for spec in registry() {
            let mut workload = wspec.build(params);
            let mut tech = spec.build(params.space_side);
            let stats = tech.run(&mut *workload, DriverConfig::new(params.ticks, 1));
            assert!(
                stats.result_pairs > 0,
                "{} found nothing on {}",
                spec.name(),
                wspec.name()
            );
            assert_eq!(
                stats.removals > 0 || stats.inserts > 0,
                wspec.has_churn(),
                "{} on {}: churn counters disagree with the spec",
                spec.name(),
                wspec.name()
            );
            let key = (stats.result_pairs, stats.checksum, stats.queries);
            match reference {
                None => reference = Some(key),
                Some(expect) => assert_eq!(
                    key,
                    expect,
                    "{} computed a different join on {}",
                    spec.name(),
                    wspec.name()
                ),
            }
        }
    }
}

#[test]
fn churn_changes_the_join_but_not_the_agreement() {
    // Sanity that churn:uniform is actually a different computation from
    // uniform (otherwise the matrix above would be vacuous on that axis).
    let params = WorkloadParams {
        num_points: 2_000,
        ticks: 4,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    };
    let run = |spec_str: &str| {
        let mut w = WorkloadSpec::parse(spec_str).unwrap().build(params);
        let mut tech = TechniqueSpec::parse("grid:inline")
            .unwrap()
            .build(params.space_side);
        tech.run(&mut *w, DriverConfig::new(params.ticks, 1))
    };
    let frozen = run("uniform");
    let churned = run("churn:uniform");
    assert_ne!(frozen.checksum, churned.checksum);
    assert_eq!(frozen.removals + frozen.inserts, 0);
    assert!(churned.removals > 0 && churned.inserts > 0);
}

#[test]
fn agreement_holds_with_extreme_hotspot_density() {
    // One hotspot: everything piles into one cluster — worst case for
    // quantized structures (CR-tree, KD-trie) and coarse grids.
    let params = GaussianParams {
        base: WorkloadParams {
            num_points: 2_000,
            ticks: 3,
            space_side: 8_000.0,
            ..WorkloadParams::default()
        },
        hotspots: 1,
        sigma: 200.0,
    };
    let mut reference = None;
    for spec in registry() {
        let stats = run_gaussian_spec(spec, params);
        let key = (stats.result_pairs, stats.checksum);
        match reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(key, expect, "{} differs at 1 hotspot", spec.name())
            }
        }
    }
}
