//@ path: crates/base/src/par.rs
use std::collections::HashMap;

pub fn tally(pairs: &[(u32, u32)]) -> u64 {
    let mut by_cell: HashMap<u32, u64> = HashMap::new();
    for &(cell, _) in pairs {
        *by_cell.entry(cell).or_insert(0) += 1;
    }
    by_cell.values().sum()
}
