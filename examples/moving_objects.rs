//! The paper's scenario end to end: a population of moving objects where
//! half issue range queries and half change velocity every tick, joined
//! with a technique of your choice.
//!
//! Run: `cargo run --release --example moving_objects [technique]`
//! where technique is one of: grid | grid-original | rtree | crtree |
//! kdtrie | binsearch (default: grid).

use spatial_joins::prelude::*;

fn main() {
    let choice = std::env::args().nth(1).unwrap_or_else(|| "grid".into());
    let params = WorkloadParams {
        num_points: 20_000,
        ticks: 10,
        ..WorkloadParams::default()
    };
    // `Sync` because the driver may probe the index from several workers
    // (ExecMode::Parallel); all workspace indexes are plain data.
    let mut index: Box<dyn SpatialIndex + Send + Sync> = match choice.as_str() {
        "grid" => Box::new(SimpleGrid::tuned(params.space_side)),
        "grid-original" => Box::new(SimpleGrid::at_stage(Stage::Original, params.space_side)),
        "rtree" => Box::new(RTree::default()),
        "crtree" => Box::new(CRTree::default()),
        "kdtrie" => Box::new(LinearKdTrie::new(params.space_side)),
        "binsearch" => Box::new(BinarySearchJoin::new()),
        other => {
            eprintln!(
                "unknown technique {other:?}; use grid | grid-original | rtree | crtree | kdtrie | binsearch"
            );
            std::process::exit(2);
        }
    };

    let mut workload = UniformWorkload::new(params);
    let stats = run_join(
        &mut workload,
        index.as_mut(),
        DriverConfig::new(params.ticks, 2),
    );

    println!("technique      : {}", index.name());
    println!("objects        : {}", params.num_points);
    println!("measured ticks : {}", stats.ticks.len());
    println!("queries issued : {}", stats.queries);
    println!("join pairs     : {}", stats.result_pairs);
    println!("avg tick       : {:.4} s", stats.avg_tick_seconds());
    println!("  build        : {:.4} s", stats.avg_build_seconds());
    println!("  query        : {:.4} s", stats.avg_query_seconds());
    println!("  update       : {:.4} s", stats.avg_update_seconds());
    println!("index memory   : {} KiB", stats.index_bytes / 1024);
    println!("result checksum: {:#018x}", stats.checksum);
}
