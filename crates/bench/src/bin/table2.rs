//! Table 2 — execution breakdown (build / query / update, average seconds
//! per tick) at the default workload: 50 % queriers, 50 % updaters,
//! 50 K points, uniform.
//!
//! The paper's table covers the four static indexes plus the grid's
//! cumulative improvement stages; since the line-up comes from the
//! registry, the extensions (incremental variants, quadtree, vectorized
//! binary search, plane sweep) appear as additional rows — the sweep's
//! build column is 0 because the specialized join category builds no
//! index. Expected shape unchanged: grid build always cheapest; original
//! grid query ≈ 5–6× the tree indexes; "+cps tuned" grid query at or
//! below the trees.
//!
//! `--workload SPEC` swaps the population model (default `uniform`);
//! `churn:*` specs add arrival/departure cost to the update column.
//! `--join SPEC` swaps the join shape: `bipartite:<R>x<S>[:ratio<K>]`
//! breaks the table down for an R ⋈ S join over two independent
//! relations instead of the paper's self-join, and `intersect:rects`
//! runs the intersection self-join over moving rectangles — the table
//! then restricts itself to the intersects-capable techniques (grid
//! stages and the two-layer partitioning join).
//!
//! Run: `cargo run -p sj-bench --release --bin table2 [--ticks N] [--workload SPEC] [--csv|--json]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::stats_line;
use sj_bench::run_joined_spec;
use sj_bench::table::{secs, Table};

fn main() {
    let opts = CommonOpts::parse();
    opts.require_intersect_support();
    let params = opts.uniform_params();
    let wspec = opts.workload_spec();
    let jspec = opts.join_spec();
    // Under an intersection join only the intersects-capable techniques
    // can run (an explicit --technique is vetted above).
    let specs = opts
        .techniques(|s| s.is_benchmarkable() && (!jspec.is_intersect() || s.supports_intersects()));
    let exec = opts.exec_mode();

    if !opts.json {
        println!(
            "# Table 2: breakdown, {}% queries and updates, {} points, {} workload, {} join",
            (params.frac_queriers * 100.0) as u32,
            params.num_points,
            wspec.name(),
            jspec.name()
        );
    }
    let mut t = Table::new(vec!["Method", "Build (s)", "Query (s)", "Update (s)"]);
    for spec in specs {
        let stats = run_joined_spec(jspec, wspec, &params, spec, exec);
        if opts.json {
            println!("{}", stats_line("table2", &spec.name(), None, &stats));
        } else {
            t.row(vec![
                spec.label(),
                secs(stats.avg_build_seconds()),
                secs(stats.avg_query_seconds()),
                secs(stats.avg_update_seconds()),
            ]);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }
}
