//! A comment/string/raw-string-aware token scanner for Rust source.
//!
//! `sj-lint`'s rules are lexical — "the ident `HashMap` appears", "`as`
//! is followed by `EntryId`" — so the container's lack of `syn` is no
//! loss *provided* the scanner never mistakes the inside of a string
//! literal or a comment for code. This module is that guarantee, in the
//! hand-rolled style of `sj_bench::json`: a single forward pass that
//! classifies every byte as code, string, char, comment, or whitespace,
//! and emits
//!
//! - [`Token`]s for code (identifiers, numbers, string/char literals as
//!   opaque units, punctuation with maximal munch for multi-char
//!   operators), each tagged with its 1-based line;
//! - [`Comment`]s separately, because two rule mechanisms *read*
//!   comments: `// SAFETY:` adjacency and `// sj-lint: allow(..)`
//!   markers.
//!
//! Handled syntax the rules depend on: nested block comments, string
//! escapes (`"\""` does not end a string), raw strings `r#".."#` with
//! any number of hashes (and raw byte strings), raw identifiers
//! `r#ident`, char literals vs lifetimes (`'a'` vs `'a`), numeric
//! literals with `_` separators / suffixes / exponents (and whether they
//! are floats — the `float-eq` rule needs that), and CRLF line endings.
//! The invariant "a token never spans a string/comment boundary" is
//! proptested in `tests/proptests.rs`.

/// What a code token is. Literal *contents* are preserved (the
/// `expect-justification` rule reads string payloads) but never
/// re-scanned for code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `r#ident`, stored without `r#`).
    Ident,
    /// Numeric literal; `float` is true for literals with a fractional
    /// part, an exponent, or an `f32`/`f64` suffix.
    Num { float: bool },
    /// String literal (plain, raw, byte, or raw byte); `text` is the
    /// decoded-enough payload: raw payload verbatim, escaped payload with
    /// simple escapes resolved.
    Str,
    /// Char or byte literal (payload not decoded; rules treat it opaquely).
    Char,
    /// Lifetime (`'a`, `'static`), without the quote.
    Lifetime,
    /// Punctuation / operator, maximal-munched (`==`, `::`, `..=`, ...).
    Punct,
}

/// One code token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

/// One comment. `text` is the payload without the `//` / `/*` markers;
/// doc comments keep their extra `/` or `!` as the first char.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub start_line: u32,
    pub end_line: u32,
}

/// The scanner's output: code tokens and comments, in source order.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-char operators, longest first so maximal munch is a prefix scan.
const OPERATORS: [&str; 24] = [
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Scanner<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    /// Byte offset of `pos` into `src` (kept in lockstep by `bump` so the
    /// operator munch below can slice `src` without re-summing widths).
    byte_pos: usize,
    line: u32,
    out: Lexed,
}

/// Scan `src` into tokens and comments. Never panics: malformed input
/// (unterminated strings or comments) is tokenized best-effort to the end
/// of input — the lint runs over source that `rustc` already accepted, so
/// recovery fidelity does not matter, but crashing on a fixture would.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner {
        chars: src.chars().collect(),
        src,
        pos: 0,
        byte_pos: 0,
        line: 1,
        out: Lexed::default(),
    };
    s.run();
    s.out
}

impl Scanner<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advance one char, maintaining the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            self.byte_pos += c.len_utf8();
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line, false),
                'r' if self.raw_string_ahead(1) => self.raw_string(1, line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, false);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal(line);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump();
                    self.raw_string(1, line);
                }
                'r' if self.peek(1) == Some('#') && is_ident_start(self.peek(2)) => {
                    // Raw identifier `r#ident` (not `r#"..."` — that case is
                    // caught by `raw_string_ahead` above).
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                '\'' => self.quote(line),
                _ if is_ident_start(Some(c)) => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => self.punct(line),
            }
        }
    }

    /// Is a raw-string opener (`#`* then `"`) next, starting `ahead` chars in?
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut i = ahead;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // CRLF: the \r before the terminating \n is not comment payload.
        if text.ends_with('\r') {
            text.pop();
        }
        self.out.comments.push(Comment {
            text,
            start_line,
            end_line: start_line,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        let end_line = self.line;
        self.out.comments.push(Comment {
            text,
            start_line,
            end_line,
        });
    }

    /// A plain (escaped) string literal; the opening quote is next.
    fn string(&mut self, line: u32, _raw: bool) {
        self.bump(); // opening "
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    // Consume the escaped char so `\"` cannot terminate the
                    // literal. Resolve the cases rules might read; keep the
                    // rest verbatim (payload fidelity is not load-bearing).
                    match self.bump() {
                        Some('n') => text.push('\n'),
                        Some('t') => text.push('\t'),
                        Some('r') => text.push('\r'),
                        Some('\\') => text.push('\\'),
                        Some('"') => text.push('"'),
                        Some('\'') => text.push('\''),
                        Some('0') => text.push('\0'),
                        Some(other) => {
                            text.push('\\');
                            text.push(other);
                        }
                        None => break,
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// A raw string; `self.pos` is at the `r` (with `prefix_len` = 1) —
    /// byte-raw callers have already consumed the `b`.
    fn raw_string(&mut self, prefix_len: usize, line: u32) {
        for _ in 0..prefix_len {
            self.bump(); // the `r`
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening "
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // Candidate closer: need `hashes` following '#'s.
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    seen += 1;
                    self.bump();
                }
                if seen == hashes {
                    break 'outer;
                }
                text.push('"');
                for _ in 0..seen {
                    text.push('#');
                }
            } else {
                text.push(c);
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// `'` seen: lifetime or char literal. `'a` followed by a non-quote is
    /// a lifetime; `'a'`, `'\n'`, `'\u{1F600}'` are char literals.
    fn quote(&mut self, line: u32) {
        if is_ident_start(self.peek(1)) && self.peek(2) != Some('\'') {
            self.bump(); // '
            let mut text = String::new();
            while is_ident_continue(self.peek(0)) {
                text.push(self.bump().unwrap_or('\0'));
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            self.char_literal(line);
        }
    }

    fn char_literal(&mut self, line: u32) {
        self.bump(); // opening '
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while is_ident_continue(self.peek(0)) {
            text.push(self.bump().unwrap_or('\0'));
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            // Radix literal: digits + underscores + suffix; never a float.
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                text.push(self.bump().unwrap_or('0'));
            }
            self.push(TokenKind::Num { float: false }, text, line);
            return;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            text.push(self.bump().unwrap_or('0'));
        }
        // Fractional part only if a digit follows the dot: `1.0` is a float,
        // `1..n` is a range, `1.max(2)` is a method call.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            text.push(self.bump().unwrap_or('.'));
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push(self.bump().unwrap_or('0'));
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = matches!(self.peek(1), Some('+' | '-'));
            let digit_at = if sign { 2 } else { 1 };
            if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                text.push(self.bump().unwrap_or('e'));
                if sign {
                    text.push(self.bump().unwrap_or('+'));
                }
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    text.push(self.bump().unwrap_or('0'));
                }
            }
        }
        // Suffix (`u32`, `f64`, `usize`, ...).
        let mut suffix = String::new();
        while is_ident_continue(self.peek(0)) {
            suffix.push(self.bump().unwrap_or('0'));
        }
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
        text.push_str(&suffix);
        self.push(TokenKind::Num { float }, text, line);
    }

    fn punct(&mut self, line: u32) {
        // Maximal munch against the operator table (all ASCII, so byte
        // prefix tests are exact).
        for op in OPERATORS {
            if self.src.as_bytes()[self.byte_pos..].starts_with(op.as_bytes()) {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokenKind::Punct, op.to_string(), line);
                return;
            }
        }
        let c = self.bump().unwrap_or('\0');
        self.push(TokenKind::Punct, c.to_string(), line);
    }
}

fn is_ident_start(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn is_ident_continue(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Mark which tokens live inside `#[cfg(test)]`-gated items. Returns a
/// mask parallel to `lexed.tokens`; rules that only police non-test code
/// skip masked tokens. Recognition is lexical: a `#[...]` attribute whose
/// tokens include both `cfg` and `test` idents (catches `cfg(test)` and
/// `cfg(all(test, ..))`; `cfg_attr` is a different ident and stays
/// unmasked), followed by an item whose extent is the next balanced
/// `{...}` block (or a terminating `;` for bodiless items).
pub fn test_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Punct
            && toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
        {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut bracket_depth = 1usize;
            let mut saw_cfg = false;
            let mut saw_test = false;
            while j < toks.len() && bracket_depth > 0 {
                match toks[j].text.as_str() {
                    "[" => bracket_depth += 1,
                    "]" => bracket_depth -= 1,
                    "cfg" if toks[j].kind == TokenKind::Ident => saw_cfg = true,
                    "test" if toks[j].kind == TokenKind::Ident => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                // Skip any further attributes, then mask to the end of the
                // item: the first balanced brace block, or a `;`.
                let mut k = j;
                while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
                    let mut depth = 1usize;
                    k += 2;
                    while k < toks.len() && depth > 0 {
                        match toks[k].text.as_str() {
                            "[" => depth += 1,
                            "]" => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let mut end = k;
                let mut brace_depth = 0usize;
                let mut entered = false;
                while end < toks.len() {
                    match toks[end].text.as_str() {
                        "{" => {
                            brace_depth += 1;
                            entered = true;
                        }
                        "}" => {
                            brace_depth = brace_depth.saturating_sub(1);
                            if entered && brace_depth == 0 {
                                end += 1;
                                break;
                            }
                        }
                        ";" if !entered => {
                            end += 1;
                            break;
                        }
                        _ => {}
                    }
                    end += 1;
                }
                for m in mask.iter_mut().take(end.min(toks.len())).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            let a = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap in a /* nested */ block comment */
            let b = r#"HashMap in a raw "quoted" string"#;
            let c = real_ident;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn escaped_quote_does_not_end_a_string() {
        let src = r#"let s = "before \" HashMap after"; let t = tail;"#;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "let", "t", "tail"]);
        let strs: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "before \" HashMap after");
    }

    #[test]
    fn raw_strings_with_hashes_and_internal_quotes() {
        let src = r###"let s = r##"a "# quote"## ; let b = after;"###;
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r##"a "# quote"##);
        assert!(lexed.tokens.iter().any(|t| t.text == "after"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let ids = idents("fn r#try() { r#match + other }");
        assert!(ids.contains(&"try".to_string()));
        assert!(ids.contains(&"match".to_string()));
        assert!(ids.contains(&"other".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_classify_floats() {
        let lexed = lex(
            "let a = 1; let b = 1.5; let c = 2e3; let d = 3f32; let e = 0xff; \
                         let f = 1_000; let r = 0..10;",
        );
        let nums: Vec<(String, bool)> = lexed
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Num { float } => Some((t.text, float)),
                _ => None,
            })
            .collect();
        assert_eq!(
            nums,
            [
                ("1".into(), false),
                ("1.5".into(), true),
                ("2e3".into(), true),
                ("3f32".into(), true),
                ("0xff".into(), false),
                ("1_000".into(), false),
                ("0".into(), false),
                ("10".into(), false),
            ]
        );
    }

    #[test]
    fn operators_munch_maximally() {
        let texts: Vec<String> = lex("a == b != c :: d ..= e .. f")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, ["==", "!=", "::", "..=", ".."]);
    }

    #[test]
    fn crlf_line_numbers_and_comment_payloads() {
        let src = "line_one\r\n// comment with \"HashMap\"\r\nline_three\r\n";
        let lexed = lex(src);
        let ids: Vec<(String, u32)> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text.clone(), t.line))
            .collect();
        assert_eq!(ids, [("line_one".into(), 1), ("line_three".into(), 3)]);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, " comment with \"HashMap\"");
        assert_eq!(lexed.comments[0].start_line, 2);
    }

    #[test]
    fn block_comments_track_end_lines() {
        let lexed = lex("/* a\nb\nc */ after");
        assert_eq!(lexed.comments[0].start_line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "
            fn live() { danger(); }
            #[cfg(test)]
            mod tests {
                fn covered() { masked_ident(); }
            }
            fn live_again() { also_danger(); }
        ";
        let lexed = lex(src);
        let mask = test_mask(&lexed);
        let masked: Vec<&str> = lexed
            .tokens
            .iter()
            .zip(&mask)
            .filter(|(t, m)| **m && t.kind == TokenKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"masked_ident"));
        assert!(!masked.contains(&"danger"));
        assert!(!masked.contains(&"also_danger"));
    }

    #[test]
    fn cfg_test_on_single_item_and_bodiless_item() {
        let src = "
            #[cfg(test)]
            use std::collections::HashMap;
            fn live() {}
            #[cfg(all(test, feature = \"x\"))]
            #[allow(dead_code)]
            fn helper() { inner(); }
            fn live_two() {}
        ";
        let lexed = lex(src);
        let mask = test_mask(&lexed);
        let unmasked: Vec<&str> = lexed
            .tokens
            .iter()
            .zip(&mask)
            .filter(|(t, m)| !**m && t.kind == TokenKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(!unmasked.contains(&"HashMap"));
        assert!(!unmasked.contains(&"inner"));
        assert!(unmasked.contains(&"live"));
        assert!(unmasked.contains(&"live_two"));
    }

    #[test]
    fn unterminated_input_does_not_panic() {
        for src in ["\"unterminated", "/* unterminated", "r#\"unterminated", "'"] {
            let _ = lex(src);
        }
    }
}
