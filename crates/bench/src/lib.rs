//! # sj-bench
//!
//! Shared harness for the figure/table binaries (`fig1`, `fig2`, `table2`,
//! `fig4`, `fig5`, `table3`, `ablation`, `memory`, `simtrends`): workload
//! runners over the unified [`sj_core::technique`] registry, a tiny CLI
//! parser, plain-text / CSV table printing, and JSON-lines reporting.
//!
//! The technique line-up itself lives in [`sj_core::technique::registry`]
//! — the binaries iterate (and filter) that single source of truth instead
//! of maintaining their own lists. Parameter sweeps that need a
//! non-registry configuration (e.g. Figure 1's bucket-size sweep) assemble
//! a [`Technique`] by hand around the custom index.

use sj_core::driver::{DriverConfig, RunStats};
use sj_core::par::ExecMode;
use sj_core::technique::{Technique, TechniqueSpec};
use sj_grid::{GridConfig, SimpleGrid};
use sj_workload::{
    GaussianParams, GaussianWorkload, JoinSpec, WorkloadKind, WorkloadParams, WorkloadSpec,
};

pub mod cli;
pub mod compare;
pub mod json;
pub mod report;
pub mod suite;
pub mod table;

/// Drive `technique` through the workload named by `wspec` (binaries pass
/// [`cli::CommonOpts::workload_spec`]), its query phase under `exec`
/// (binaries pass [`cli::CommonOpts::exec_mode`]; a technique built from a
/// `@par<N>` spec still runs parallel when `exec` is sequential — see
/// [`Technique::run`]).
pub fn run_workload(
    wspec: WorkloadSpec,
    params: &WorkloadParams,
    technique: &mut Technique,
    exec: ExecMode,
) -> RunStats {
    params.validate().expect("invalid workload parameters");
    let mut workload = wspec.build(*params);
    let cfg = DriverConfig::new(params.ticks, warmup_for(params.ticks)).with_exec(exec);
    technique.run(&mut *workload, cfg)
}

/// Instantiate both specs fresh (so runs stay independent) and drive the
/// technique through the workload — the technique × workload harness
/// entry point.
pub fn run_workload_spec(
    wspec: WorkloadSpec,
    params: &WorkloadParams,
    spec: TechniqueSpec,
    exec: ExecMode,
) -> RunStats {
    run_workload(wspec, params, &mut spec.build(params.space_side), exec)
}

/// Drive `technique` through the join shape named by `jspec` (binaries
/// pass [`cli::CommonOpts::join_spec`]): the self-join over `wspec` for
/// [`JoinSpec::SelfJoin`], an R ⋈ S run over a bipartite spec's own
/// relation workloads built from the shared `params`, or — for
/// [`JoinSpec::Intersect`] — an intersection join over the spec's extent
/// workload under the **intersects** predicate (the technique must
/// implement it; the CLI layer filters on
/// [`TechniqueSpec::supports_intersects`]). For the non-self shapes the
/// workloads come from the join spec and `wspec` is unused; the CLI layer
/// rejects the combination.
pub fn run_joined(
    jspec: JoinSpec,
    wspec: WorkloadSpec,
    params: &WorkloadParams,
    technique: &mut Technique,
    exec: ExecMode,
) -> RunStats {
    if let Some(mut extents) = jspec.build_extents(*params) {
        params.validate().expect("invalid workload parameters");
        let cfg = DriverConfig::new(params.ticks, warmup_for(params.ticks)).with_exec(exec);
        return technique.run_intersect(&mut *extents, cfg);
    }
    match jspec.build_pair(*params) {
        None => run_workload(wspec, params, technique, exec),
        Some((mut r, mut s)) => {
            params.validate().expect("invalid workload parameters");
            let cfg = DriverConfig::new(params.ticks, warmup_for(params.ticks)).with_exec(exec);
            technique.run_bipartite(&mut *r, &mut *s, cfg)
        }
    }
}

/// Instantiate the technique fresh and drive it through the join shape —
/// the technique × workload × join harness entry point.
pub fn run_joined_spec(
    jspec: JoinSpec,
    wspec: WorkloadSpec,
    params: &WorkloadParams,
    spec: TechniqueSpec,
    exec: ExecMode,
) -> RunStats {
    run_joined(
        jspec,
        wspec,
        params,
        &mut spec.build(params.space_side),
        exec,
    )
}

/// Build the two relations of an R ⋈ S join at explicit populations and
/// drive one run — the asymmetry sweep's cell runner, shared with the
/// trajectory suite so both pin bit-identical cells. The seed
/// decorrelation comes from [`JoinSpec::query_rel_params`], so the 1/K
/// cells here match `run_joined_spec` with a `:ratio<K>` spec exactly.
pub fn run_asymmetric_cell(
    r_spec: WorkloadSpec,
    s_spec: WorkloadSpec,
    r_points: u32,
    s_points: u32,
    params: &WorkloadParams,
    tech: TechniqueSpec,
    exec: ExecMode,
) -> RunStats {
    let r_params = WorkloadParams {
        num_points: r_points,
        ..JoinSpec::bipartite(r_spec, s_spec).query_rel_params(*params)
    };
    let s_params = WorkloadParams {
        num_points: s_points,
        ..*params
    };
    let mut r = r_spec.build(r_params);
    let mut s = s_spec.build(s_params);
    let cfg = DriverConfig::new(params.ticks, warmup_for(params.ticks)).with_exec(exec);
    tech.build(params.space_side)
        .run_bipartite(&mut *r, &mut *s, cfg)
}

/// [`run_workload`] over the Table 1 uniform workload.
pub fn run_uniform(params: &WorkloadParams, technique: &mut Technique, exec: ExecMode) -> RunStats {
    run_workload(WorkloadKind::Uniform.spec(), params, technique, exec)
}

/// Instantiate `spec` fresh (so runs stay independent) and drive it
/// through the uniform workload.
pub fn run_uniform_spec(params: &WorkloadParams, spec: TechniqueSpec, exec: ExecMode) -> RunStats {
    run_uniform(params, &mut spec.build(params.space_side), exec)
}

/// Drive `technique` through the Gaussian workload (see [`run_uniform`]
/// for the `exec` semantics).
pub fn run_gaussian(
    params: &GaussianParams,
    technique: &mut Technique,
    exec: ExecMode,
) -> RunStats {
    params.validate().expect("invalid workload parameters");
    let mut workload = GaussianWorkload::new(*params);
    let cfg = DriverConfig::new(params.base.ticks, warmup_for(params.base.ticks)).with_exec(exec);
    technique.run(&mut workload, cfg)
}

/// Instantiate `spec` fresh and drive it through the Gaussian workload.
pub fn run_gaussian_spec(params: &GaussianParams, spec: TechniqueSpec, exec: ExecMode) -> RunStats {
    run_gaussian(params, &mut spec.build(params.base.space_side), exec)
}

/// A [`Technique`] around a Simple Grid with an explicit configuration —
/// the parameter-sweep figures step outside the registry's tuned
/// constructors.
pub fn grid_custom(cfg: GridConfig, space_side: f32) -> Technique {
    Technique::index(Box::new(SimpleGrid::new(cfg, space_side)))
}

/// The harness's warmup policy: 10 % of the measured ticks, clamped to
/// [1, 5]. Shared by every runner here and by binaries that drive the
/// driver directly (e.g. `asymmetry`'s hand-built relation pairs), so all
/// harness numbers discard cold-start effects identically.
pub fn warmup_for(ticks: u32) -> u32 {
    (ticks / 10).clamp(1, 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_core::technique::{registry, TechniqueKind};

    fn quick_params() -> WorkloadParams {
        WorkloadParams {
            ticks: 2,
            num_points: 1_000,
            space_side: 5_000.0,
            ..WorkloadParams::default()
        }
    }

    const SEQ: ExecMode = ExecMode::Sequential;

    #[test]
    fn figure2_registry_techniques_run_and_agree() {
        let params = quick_params();
        let specs: Vec<TechniqueSpec> = registry().into_iter().filter(|s| s.in_figure2()).collect();
        assert_eq!(specs.len(), 5);
        let runs: Vec<RunStats> = specs
            .iter()
            .map(|&s| run_uniform_spec(&params, s, SEQ))
            .collect();
        let first = &runs[0];
        assert!(first.result_pairs > 0);
        for (r, s) in runs.iter().zip(&specs) {
            assert_eq!(r.checksum, first.checksum, "{} differs", s.label());
            assert_eq!(r.result_pairs, first.result_pairs);
        }
    }

    #[test]
    fn grid_stages_agree_on_gaussian_workload() {
        let params = GaussianParams {
            base: WorkloadParams {
                ticks: 2,
                num_points: 1_000,
                space_side: 5_000.0,
                ..WorkloadParams::default()
            },
            hotspots: 3,
            sigma: 300.0,
        };
        let baseline = run_gaussian_spec(&params, TechniqueKind::RTreeStr.spec(), SEQ);
        for spec in registry().into_iter().filter(|s| s.grid_stage().is_some()) {
            let r = run_gaussian_spec(&params, spec, SEQ);
            assert_eq!(r.checksum, baseline.checksum, "{}", spec.name());
        }
    }

    #[test]
    fn every_registry_technique_agrees_with_the_reference() {
        let params = quick_params();
        let reference = run_uniform_spec(&params, TechniqueKind::Scan.spec(), SEQ);
        assert!(reference.result_pairs > 0);
        for spec in registry() {
            let r = run_uniform_spec(&params, spec, SEQ);
            assert_eq!(r.checksum, reference.checksum, "{}", spec.name());
            assert_eq!(r.result_pairs, reference.result_pairs, "{}", spec.name());
        }
    }

    #[test]
    fn harness_runners_honor_the_exec_mode() {
        // The CLI-level --threads plumbing funnels into run_uniform's exec
        // argument; the parallel run must agree with the sequential one.
        let params = quick_params();
        let spec = TechniqueKind::Grid(sj_grid::Stage::CpsTuned).spec();
        let seq = run_uniform_spec(&params, spec, SEQ);
        let par = run_uniform_spec(&params, spec, ExecMode::parallel(3).unwrap());
        assert_eq!(par.checksum, seq.checksum);
        assert_eq!(par.result_pairs, seq.result_pairs);
        // A @par spec runs parallel even when the harness passes SEQ.
        let via_spec =
            run_uniform_spec(&params, spec.with_exec(ExecMode::parallel(3).unwrap()), SEQ);
        assert_eq!(via_spec.checksum, seq.checksum);
    }

    #[test]
    fn workload_runner_sweeps_the_workload_registry() {
        use sj_workload::workload_registry;
        let params = quick_params();
        for wspec in workload_registry() {
            let reference = run_workload_spec(wspec, &params, TechniqueKind::Scan.spec(), SEQ);
            assert!(reference.result_pairs > 0, "{}: no pairs", wspec.name());
            assert_eq!(
                reference.removals > 0 || reference.inserts > 0,
                wspec.has_churn(),
                "{}: churn counters do not match the spec",
                wspec.name()
            );
            let grid = run_workload_spec(
                wspec,
                &params,
                TechniqueKind::Grid(sj_grid::Stage::CpsTuned).spec(),
                SEQ,
            );
            assert_eq!(grid.checksum, reference.checksum, "{}", wspec.name());
            assert_eq!(
                grid.result_pairs,
                reference.result_pairs,
                "{}",
                wspec.name()
            );
        }
    }

    #[test]
    fn joined_runner_dispatches_both_shapes() {
        use sj_workload::{JoinSpec, WorkloadSpec};
        let params = quick_params();
        let wspec = WorkloadKind::Uniform.spec();
        let grid = TechniqueKind::Grid(sj_grid::Stage::CpsTuned).spec();
        // Self shape == the plain workload runner.
        let via_join = run_joined_spec(JoinSpec::SelfJoin, wspec, &params, grid, SEQ);
        let direct = run_workload_spec(wspec, &params, grid, SEQ);
        assert_eq!(via_join.checksum, direct.checksum);
        assert_eq!(via_join.result_pairs, direct.result_pairs);
        // Bipartite shape: scan-equal across techniques, R shrunk by the
        // ratio (queries per tick = |R| x frac_queriers on expectation —
        // just pin the query count against the reference run).
        let jspec = JoinSpec::bipartite(
            WorkloadSpec::parse("uniform").unwrap(),
            WorkloadSpec::parse("gaussian:h3").unwrap(),
        );
        let reference = run_joined_spec(jspec, wspec, &params, TechniqueKind::Scan.spec(), SEQ);
        assert!(reference.result_pairs > 0);
        let gridded = run_joined_spec(jspec, wspec, &params, grid, SEQ);
        assert_eq!(gridded.checksum, reference.checksum);
        assert_eq!(gridded.queries, reference.queries);
        // And the bipartite join is a genuinely different computation.
        assert_ne!(reference.checksum, direct.checksum);
    }

    #[test]
    fn joined_runner_dispatches_the_intersect_shape() {
        use sj_workload::JoinSpec;
        let params = quick_params();
        let wspec = WorkloadKind::Uniform.spec();
        // The quadratic scan is the ground truth for the intersects
        // predicate too; every intersects-capable technique (and every
        // execution mode) must agree with it bit for bit.
        let reference = run_joined_spec(
            JoinSpec::Intersect,
            wspec,
            &params,
            TechniqueKind::Scan.spec(),
            SEQ,
        );
        assert!(reference.result_pairs > 0);
        for name in [
            "grid:inline",
            "twolayer",
            "grid:inline@tiles4",
            "twolayer@par2",
        ] {
            let spec = TechniqueSpec::parse(name).unwrap();
            let r = run_joined_spec(JoinSpec::Intersect, wspec, &params, spec, SEQ);
            assert_eq!(
                (r.checksum, r.result_pairs),
                (reference.checksum, reference.result_pairs),
                "{name}"
            );
        }
        // And the intersection join is a genuinely different computation
        // from the point self-join over the same parameters.
        let point = run_workload_spec(wspec, &params, TechniqueKind::Scan.spec(), SEQ);
        assert_ne!(reference.checksum, point.checksum);
    }

    #[test]
    fn custom_grid_configurations_agree_too() {
        let params = quick_params();
        let reference = run_uniform_spec(&params, TechniqueKind::RTreeStr.spec(), SEQ);
        let cfg = GridConfig {
            cells_per_side: 9,
            bucket_size: 7,
            ..GridConfig::tuned()
        };
        let r = run_uniform(&params, &mut grid_custom(cfg, params.space_side), SEQ);
        assert_eq!(r.checksum, reference.checksum);
    }
}
