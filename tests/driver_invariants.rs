//! Invariants of the tick driver and the workload semantics that every
//! experiment relies on.

use spatial_joins::prelude::*;

fn params() -> WorkloadParams {
    WorkloadParams {
        num_points: 2_000,
        ticks: 5,
        space_side: 8_000.0,
        ..WorkloadParams::default()
    }
}

#[test]
fn every_querier_is_in_its_own_result() {
    // A query is centred on the querier, so the join contains at least the
    // (querier, querier) pair: pairs >= queries, always.
    let p = params();
    let mut workload = UniformWorkload::new(p);
    let mut grid = SimpleGrid::tuned(p.space_side);
    let stats = run_join(&mut workload, &mut grid, DriverConfig::new(p.ticks, 0));
    assert!(
        stats.result_pairs >= stats.queries,
        "pairs {} < queries {}",
        stats.result_pairs,
        stats.queries
    );
}

#[test]
fn warmup_ticks_are_excluded_from_stats() {
    let p = params();
    let mut workload = UniformWorkload::new(p);
    let mut grid = SimpleGrid::tuned(p.space_side);
    let stats = run_join(&mut workload, &mut grid, DriverConfig::new(3, 2));
    assert_eq!(stats.ticks.len(), 3);
}

#[test]
fn warmup_exclusion_is_identical_in_both_exec_modes() {
    // Both exec modes run the same shared tick loop, so warm-up accounting
    // must be indistinguishable: same number of measured ticks recorded,
    // and the warm-up ticks' queries/pairs excluded from the totals
    // identically (the totals are whole-run sums, so any asymmetry in
    // which ticks count would show up here).
    let p = params();
    let run_with = |exec: ExecMode| {
        let mut workload = UniformWorkload::new(p);
        let mut grid = SimpleGrid::tuned(p.space_side);
        run_join(
            &mut workload,
            &mut grid,
            DriverConfig::new(3, 2).with_exec(exec),
        )
    };
    let seq = run_with(ExecMode::Sequential);
    let par = run_with(ExecMode::parallel(4).unwrap());
    assert_eq!(seq.ticks.len(), 3);
    assert_eq!(par.ticks.len(), 3, "parallel mode recorded warmup ticks");
    assert_eq!(
        par.queries, seq.queries,
        "warmup queries excluded unequally"
    );
    assert_eq!(par.updates, seq.updates);
    assert_eq!(par.result_pairs, seq.result_pairs);
    assert_eq!(par.checksum, seq.checksum);
    // And with zero warmup, both modes gain exactly the formerly discarded
    // ticks' work — again identically.
    let run_nowarm = |exec: ExecMode| {
        let mut workload = UniformWorkload::new(p);
        let mut grid = SimpleGrid::tuned(p.space_side);
        run_join(
            &mut workload,
            &mut grid,
            DriverConfig::new(5, 0).with_exec(exec),
        )
    };
    let seq0 = run_nowarm(ExecMode::Sequential);
    let par0 = run_nowarm(ExecMode::parallel(3).unwrap());
    assert_eq!(seq0.ticks.len(), 5);
    assert_eq!(par0.ticks.len(), 5);
    assert!(seq0.queries > seq.queries, "warmup ticks were not excluded");
    assert_eq!(par0.queries, seq0.queries);
    assert_eq!(par0.checksum, seq0.checksum);
}

#[test]
fn phase_times_are_all_populated() {
    let p = params();
    let mut workload = UniformWorkload::new(p);
    let mut rtree = RTree::default();
    let stats = run_join(&mut workload, &mut rtree, DriverConfig::new(4, 1));
    assert!(stats.avg_build_seconds() > 0.0);
    assert!(stats.avg_query_seconds() > 0.0);
    assert!(stats.avg_update_seconds() > 0.0);
    let total = stats.avg_tick_seconds();
    let sum = stats.avg_build_seconds() + stats.avg_query_seconds() + stats.avg_update_seconds();
    assert!(
        (total - sum).abs() < 1e-9,
        "phases must sum to the tick time"
    );
}

#[test]
fn query_and_update_counts_match_fractions_roughly() {
    let p = params();
    let mut workload = UniformWorkload::new(p);
    let mut grid = SimpleGrid::tuned(p.space_side);
    let stats = run_join(&mut workload, &mut grid, DriverConfig::new(10, 0));
    let expected = (p.num_points as f64) * 0.5 * 10.0;
    let tolerance = expected * 0.05;
    assert!(
        (stats.queries as f64 - expected).abs() < tolerance,
        "queries {}",
        stats.queries
    );
    assert!(
        (stats.updates as f64 - expected).abs() < tolerance,
        "updates {}",
        stats.updates
    );
}

#[test]
fn index_memory_is_reported_after_run() {
    let p = params();
    let mut workload = UniformWorkload::new(p);
    let mut grid = SimpleGrid::tuned(p.space_side);
    let stats = run_join(&mut workload, &mut grid, DriverConfig::new(2, 0));
    assert!(stats.index_bytes > 0);
}

#[test]
fn zero_queriers_yield_zero_pairs() {
    let p = WorkloadParams {
        frac_queriers: 0.0,
        ..params()
    };
    let mut workload = UniformWorkload::new(p);
    let mut grid = SimpleGrid::tuned(p.space_side);
    let stats = run_join(&mut workload, &mut grid, DriverConfig::new(3, 0));
    assert_eq!(stats.queries, 0);
    assert_eq!(stats.result_pairs, 0);
    assert_eq!(stats.checksum, 0);
}

#[test]
fn zero_updaters_keep_velocities_fixed() {
    let p = WorkloadParams {
        frac_updaters: 0.0,
        ..params()
    };
    let mut workload = UniformWorkload::new(p);
    let mut grid = SimpleGrid::tuned(p.space_side);
    let stats = run_join(&mut workload, &mut grid, DriverConfig::new(3, 0));
    assert_eq!(stats.updates, 0);
}

#[test]
fn refactored_grid_uses_less_memory_than_original() {
    // Paper §3.1: 12 vs 32 bytes per point (plus directory).
    let p = params();
    let run_with = |stage: Stage| {
        let mut workload = UniformWorkload::new(p);
        let mut grid = SimpleGrid::at_stage(stage, p.space_side);
        run_join(&mut workload, &mut grid, DriverConfig::new(1, 0)).index_bytes
    };
    let original = run_with(Stage::Original);
    let restructured = run_with(Stage::Restructured);
    assert!(
        restructured * 2 < original,
        "refactored {restructured} B should be under half of original {original} B"
    );
}
