//! Workload trace recording and replay.
//!
//! The original framework also drives its joins from *simulation traces*
//! (the paper reports the synthetic results only, noting the trends hold
//! for the simulation workloads). This module provides the plumbing a
//! trace-driven setup needs: record any [`Workload`]'s initial population
//! and per-tick actions once, persist them in a compact binary format,
//! and replay them bit-identically — across processes, machines, or
//! implementations under comparison.
//!
//! A trace stores velocities, velocity updates, and the churn plan
//! (departure ids and arrival positions/velocities — format v2), not
//! per-tick positions, so replay relies on the *default* movement model
//! (linear motion with boundary bounce — what the uniform and Gaussian
//! workloads use; the road grid's custom mobility is not replayable).
//! Recording verifies this assumption by checksumming the final live
//! object positions and embedding the checksum in the trace;
//! [`TraceWorkload`] re-derives it on replay in tests.
//!
//! Format v3 adds **bipartite** traces: a second, nested relation section
//! holding the query relation R's initial state and per-tick plan
//! ([`Trace::query_rel`], recorded by [`record_bipartite`]). A
//! self-join trace serializes exactly as v2 — v3 bytes only appear when a
//! query relation is present — and v1/v2 files still load.
//!
//! Format v4 is a **separate trace type** for extent workloads
//! ([`ExtentTrace`], magic `SJTRACE4`): rectangles instead of points, the
//! same per-tick sections with rectangle arrivals. Extent rectangles are
//! validated with [`Rect::try_new`] on load, so a corrupted or
//! hand-edited trace with an inverted rectangle is rejected as
//! `InvalidData` instead of tripping a debug-only assert downstream.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use sj_base::driver::{ExtentTickActions, ExtentWorkload, TickActions, Workload};
use sj_base::geom::{Point, Rect, Vec2};
use sj_base::rng::mix64;
use sj_base::table::{EntryId, MovingExtentSet, MovingSet};

/// Current format: v3 adds an optional nested query-relation section
/// (bipartite R ⋈ S traces). Only written when that section is present.
const MAGIC_V3: &[u8; 8] = b"SJTRACE3";
/// v2 adds per-tick churn sections (removals + inserts); still the format
/// written for self-join traces, so v2 consumers keep working.
const MAGIC_V2: &[u8; 8] = b"SJTRACE2";
/// Legacy format without churn sections; still readable (a v1 trace is a
/// v2 trace whose every tick has empty churn).
const MAGIC_V1: &[u8; 8] = b"SJTRACE1";
/// Extent (rectangle) traces — a distinct trace type, never mixed with
/// the point formats: an `SJTRACE4` file deserializes only to
/// [`ExtentTrace`] and vice versa.
const MAGIC_V4: &[u8; 8] = b"SJTRACE4";

/// A fully materialized workload: initial state plus every tick's actions.
///
/// ```
/// use sj_workload::{record, Trace, TraceWorkload, UniformWorkload, WorkloadParams};
///
/// let params = WorkloadParams { num_points: 100, ..WorkloadParams::default() };
/// let trace = record(&mut UniformWorkload::new(params), 3);
///
/// // Serialize and restore bit-identically.
/// let mut buf = Vec::new();
/// trace.write_to(&mut buf).unwrap();
/// let restored = Trace::read_from(buf.as_slice()).unwrap();
/// assert_eq!(restored, trace);
/// let _replayable = TraceWorkload::new(restored);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    pub space_side: f32,
    pub query_side: f32,
    /// Initial positions and velocities, SoA.
    pub init_x: Vec<f32>,
    pub init_y: Vec<f32>,
    pub init_vx: Vec<f32>,
    pub init_vy: Vec<f32>,
    /// Per tick: querier ids and velocity updates.
    pub ticks: Vec<TickActions>,
    /// Checksum of the final positions after replaying all ticks with the
    /// default movement model; guards against replaying a trace of a
    /// workload whose movement model was not the default.
    pub final_positions_checksum: u64,
    /// The query relation R of a bipartite R ⋈ S trace (format v3): a
    /// nested self-shaped trace holding R's initial state, per-tick plan
    /// (queriers, updates, churn), and final-position checksum. `None`
    /// for self-join traces — which therefore serialize exactly as v2.
    /// The nested trace never nests further.
    pub query_rel: Option<Box<Trace>>,
}

fn positions_checksum(set: &MovingSet) -> u64 {
    let mut sum = 0u64;
    for (_, p) in set.positions.iter() {
        sum = sum.wrapping_add(mix64(((p.x.to_bits() as u64) << 32) | p.y.to_bits() as u64));
    }
    sum
}

impl Trace {
    /// Serialize to a writer: the v2 format for a self-join trace, v3
    /// (one extra nested relation section) when [`Trace::query_rel`] is
    /// present — so pre-bipartite consumers keep reading every self-join
    /// trace byte for byte.
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        match &self.query_rel {
            None => {
                w.write_all(MAGIC_V2)?;
                self.write_body(&mut w)?;
            }
            Some(r) => {
                debug_assert!(r.query_rel.is_none(), "query relation traces never nest");
                w.write_all(MAGIC_V3)?;
                self.write_body(&mut w)?;
                r.write_body(&mut w)?;
            }
        }
        w.flush()
    }

    /// Everything after the magic header, in the v2 layout (one relation).
    fn write_body<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_f32(w, self.space_side)?;
        write_f32(w, self.query_side)?;
        write_u32(w, self.init_x.len() as u32)?;
        for col in [&self.init_x, &self.init_y, &self.init_vx, &self.init_vy] {
            for &v in col.iter() {
                write_f32(w, v)?;
            }
        }
        write_u32(w, self.ticks.len() as u32)?;
        for t in &self.ticks {
            write_u32(w, t.queriers.len() as u32)?;
            for &q in &t.queriers {
                write_u32(w, q)?;
            }
            write_u32(w, t.velocity_updates.len() as u32)?;
            for &(id, vx, vy) in &t.velocity_updates {
                write_u32(w, id)?;
                write_f32(w, vx)?;
                write_f32(w, vy)?;
            }
            write_u32(w, t.removals.len() as u32)?;
            for &id in &t.removals {
                write_u32(w, id)?;
            }
            write_u32(w, t.inserts.len() as u32)?;
            for &(p, v) in &t.inserts {
                write_f32(w, p.x)?;
                write_f32(w, p.y)?;
                write_f32(w, v.x)?;
                write_f32(w, v.y)?;
            }
        }
        write_u64(w, self.final_positions_checksum)
    }

    /// Deserialize from a reader (any of the v1/v2/v3 formats).
    ///
    /// # Errors
    /// I/O errors, a bad magic header, or truncated data.
    pub fn read_from<R: Read>(r: R) -> io::Result<Trace> {
        let mut r = BufReader::new(r);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let (churn_sections, query_rel_section) = match &magic {
            m if m == MAGIC_V3 => (true, true),
            m if m == MAGIC_V2 => (true, false),
            m if m == MAGIC_V1 => (false, false),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not an SJTRACE file",
                ))
            }
        };
        let mut trace = Self::read_body(&mut r, churn_sections)?;
        if query_rel_section {
            trace.query_rel = Some(Box::new(Self::read_body(&mut r, churn_sections)?));
        }
        Ok(trace)
    }

    /// One relation section in the v2 layout (`query_rel` left `None`).
    fn read_body<R: Read>(r: &mut R, churn_sections: bool) -> io::Result<Trace> {
        let space_side = read_f32(r)?;
        let query_side = read_f32(r)?;
        let n = read_u32(r)? as usize;
        let mut cols: [Vec<f32>; 4] = Default::default();
        for col in cols.iter_mut() {
            col.reserve(n);
            for _ in 0..n {
                col.push(read_f32(r)?);
            }
        }
        let [init_x, init_y, init_vx, init_vy] = cols;
        let tick_count = read_u32(r)? as usize;
        let mut ticks = Vec::with_capacity(tick_count);
        for _ in 0..tick_count {
            let nq = read_u32(r)? as usize;
            let mut actions = TickActions::default();
            actions.queriers.reserve(nq);
            for _ in 0..nq {
                actions.queriers.push(read_u32(r)?);
            }
            let nu = read_u32(r)? as usize;
            actions.velocity_updates.reserve(nu);
            for _ in 0..nu {
                let id = read_u32(r)?;
                let vx = read_f32(r)?;
                let vy = read_f32(r)?;
                actions.velocity_updates.push((id, vx, vy));
            }
            if churn_sections {
                let nr = read_u32(r)? as usize;
                actions.removals.reserve(nr);
                for _ in 0..nr {
                    actions.removals.push(read_u32(r)?);
                }
                let ni = read_u32(r)? as usize;
                actions.inserts.reserve(ni);
                for _ in 0..ni {
                    let px = read_f32(r)?;
                    let py = read_f32(r)?;
                    let vx = read_f32(r)?;
                    let vy = read_f32(r)?;
                    actions
                        .inserts
                        .push((Point::new(px, py), Vec2::new(vx, vy)));
                }
            }
            ticks.push(actions);
        }
        let final_positions_checksum = read_u64(r)?;
        Ok(Trace {
            space_side,
            query_side,
            init_x,
            init_y,
            init_vx,
            init_vy,
            ticks,
            final_positions_checksum,
            query_rel: None,
        })
    }

    /// Convenience wrapper over [`Trace::write_to`] for a filesystem path.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.write_to(std::fs::File::create(path)?)
    }

    /// Convenience wrapper over [`Trace::read_from`] for a filesystem path.
    pub fn load(path: &Path) -> io::Result<Trace> {
        Self::read_from(std::fs::File::open(path)?)
    }

    pub fn num_points(&self) -> usize {
        self.init_x.len()
    }

    pub fn num_ticks(&self) -> usize {
        self.ticks.len()
    }

    /// Whether this trace records a bipartite R ⋈ S run (format v3).
    pub fn is_bipartite(&self) -> bool {
        self.query_rel.is_some()
    }

    /// Split a bipartite trace into its `(query relation R, data relation
    /// S)` halves — two self-shaped traces, each replayable through
    /// [`TraceWorkload`] and rejoinable with
    /// `sj_base::driver::run_bipartite_join`. `None` for self-join traces.
    pub fn split_bipartite(self) -> Option<(Trace, Trace)> {
        let mut s = self;
        let r = *s.query_rel.take()?;
        Some((r, s))
    }
}

/// Record a workload into a [`Trace`]. Free function (rather than a
/// `Trace` constructor) so the borrow of the workload is obvious.
pub fn record<W: Workload + ?Sized>(workload: &mut W, ticks: u32) -> Trace {
    let space_side = workload.space().x2;
    let query_side = workload.query_side();
    let mut set = workload.init();

    let init_x = set.positions.xs().to_vec();
    let init_y = set.positions.ys().to_vec();
    let init_vx = set.vx.clone();
    let init_vy = set.vy.clone();

    let mut recorded = Vec::with_capacity(ticks as usize);
    let mut actions = TickActions::default();
    for tick in 0..ticks {
        actions.clear();
        workload.plan_tick(tick, &set, &mut actions);
        recorded.push(actions.clone());
        // The driver's canonical update-phase application, shared so the
        // embedded checksum cannot drift from what replay produces.
        actions.apply(&mut set, workload);
    }
    Trace {
        space_side,
        query_side,
        init_x,
        init_y,
        init_vx,
        init_vy,
        ticks: recorded,
        final_positions_checksum: positions_checksum(&set),
        query_rel: None,
    }
}

/// Record a bipartite R ⋈ S run into a single (format v3) [`Trace`]: the
/// data relation S fills the top-level sections, the query relation R the
/// nested [`Trace::query_rel`] section. Both relations are planned and
/// applied in the driver's order (S first, then R — see
/// `sj_base::driver::run_bipartite_join`); S's planned queriers are
/// dropped, exactly as the driver drops them, so a replay through
/// [`Trace::split_bipartite`] reproduces the recorded run bit for bit.
pub fn record_bipartite<R: Workload + ?Sized, S: Workload + ?Sized>(
    query_workload: &mut R,
    data_workload: &mut S,
    ticks: u32,
) -> Trace {
    let mut s_trace = record_relation(data_workload, ticks, true);
    let r_trace = record_relation(query_workload, ticks, false);
    s_trace.query_rel = Some(Box::new(r_trace));
    s_trace
}

/// [`record`] with the driver's bipartite querier policy applied: the data
/// relation never queries.
fn record_relation<W: Workload + ?Sized>(
    workload: &mut W,
    ticks: u32,
    drop_queriers: bool,
) -> Trace {
    let mut trace = record(workload, ticks);
    if drop_queriers {
        for t in &mut trace.ticks {
            t.queriers.clear();
        }
    }
    trace
}

/// Replays a [`Trace`] through the standard [`Workload`] interface.
pub struct TraceWorkload {
    trace: Trace,
    cursor: usize,
}

impl TraceWorkload {
    pub fn new(trace: Trace) -> Self {
        TraceWorkload { trace, cursor: 0 }
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Checksum of `set`'s positions — equals the trace's embedded value
    /// after all recorded ticks have been replayed with the default
    /// movement model.
    pub fn checksum_positions(set: &MovingSet) -> u64 {
        positions_checksum(set)
    }
}

impl Workload for TraceWorkload {
    fn space(&self) -> Rect {
        Rect::space(self.trace.space_side)
    }

    fn query_side(&self) -> f32 {
        self.trace.query_side
    }

    fn init(&mut self) -> MovingSet {
        self.cursor = 0;
        let n = self.trace.num_points();
        let mut set = MovingSet::with_capacity(n);
        for i in 0..n {
            set.push(
                Point::new(self.trace.init_x[i], self.trace.init_y[i]),
                Vec2::new(self.trace.init_vx[i], self.trace.init_vy[i]),
            );
        }
        set
    }

    fn plan_tick(&mut self, _tick: u32, _set: &MovingSet, actions: &mut TickActions) {
        if let Some(recorded) = self.trace.ticks.get(self.cursor) {
            actions.queriers.extend_from_slice(&recorded.queriers);
            actions
                .velocity_updates
                .extend_from_slice(&recorded.velocity_updates);
            actions.removals.extend_from_slice(&recorded.removals);
            actions.inserts.extend_from_slice(&recorded.inserts);
        }
        // Past the end of the trace: quiet ticks (no queries, no updates).
        self.cursor += 1;
    }
}

/// A fully materialized **extent** workload (format v4): initial
/// rectangles and velocities plus every tick's actions. The extent
/// analogue of [`Trace`]; replay goes through [`ExtentTraceWorkload`]
/// and the default extent movement model
/// ([`MovingExtentSet::advance_bouncing`]).
///
/// ```
/// use sj_workload::{record_extents, ExtentTrace, RectsWorkload, WorkloadParams};
///
/// let params = WorkloadParams { num_points: 100, ..WorkloadParams::default() };
/// let trace = record_extents(&mut RectsWorkload::new(params), 3);
/// let mut buf = Vec::new();
/// trace.write_to(&mut buf).unwrap();
/// assert_eq!(ExtentTrace::read_from(buf.as_slice()).unwrap(), trace);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ExtentTrace {
    pub space_side: f32,
    /// Initial rectangles and velocities, SoA.
    pub init_x1: Vec<f32>,
    pub init_y1: Vec<f32>,
    pub init_x2: Vec<f32>,
    pub init_y2: Vec<f32>,
    pub init_vx: Vec<f32>,
    pub init_vy: Vec<f32>,
    /// Per tick: querier ids, velocity updates, and churn.
    pub ticks: Vec<ExtentTickActions>,
    /// Checksum of the final live rectangles after replaying all ticks
    /// with the default extent movement model (see
    /// [`Trace::final_positions_checksum`]).
    pub final_extents_checksum: u64,
}

fn extents_checksum(set: &MovingExtentSet) -> u64 {
    let mut sum = 0u64;
    for (_, r) in set.extents.iter() {
        sum = sum
            .wrapping_add(mix64(
                ((r.x1.to_bits() as u64) << 32) | r.y1.to_bits() as u64,
            ))
            .wrapping_add(mix64(
                ((r.x2.to_bits() as u64) << 32) | r.y2.to_bits() as u64,
            ));
    }
    sum
}

/// A rectangle read from untrusted trace bytes: [`Rect::try_new`]
/// rejects inverted or NaN corners as `InvalidData`.
fn read_rect<R: Read>(r: &mut R) -> io::Result<Rect> {
    let x1 = read_f32(r)?;
    let y1 = read_f32(r)?;
    let x2 = read_f32(r)?;
    let y2 = read_f32(r)?;
    Rect::try_new(x1, y1, x2, y2).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed rectangle in trace: ({x1}, {y1})–({x2}, {y2})"),
        )
    })
}

impl ExtentTrace {
    /// Serialize to a writer (always format v4).
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        w.write_all(MAGIC_V4)?;
        write_f32(&mut w, self.space_side)?;
        write_u32(&mut w, self.init_x1.len() as u32)?;
        for col in [
            &self.init_x1,
            &self.init_y1,
            &self.init_x2,
            &self.init_y2,
            &self.init_vx,
            &self.init_vy,
        ] {
            for &v in col.iter() {
                write_f32(&mut w, v)?;
            }
        }
        write_u32(&mut w, self.ticks.len() as u32)?;
        for t in &self.ticks {
            write_u32(&mut w, t.queriers.len() as u32)?;
            for &q in &t.queriers {
                write_u32(&mut w, q)?;
            }
            write_u32(&mut w, t.velocity_updates.len() as u32)?;
            for &(id, vx, vy) in &t.velocity_updates {
                write_u32(&mut w, id)?;
                write_f32(&mut w, vx)?;
                write_f32(&mut w, vy)?;
            }
            write_u32(&mut w, t.removals.len() as u32)?;
            for &id in &t.removals {
                write_u32(&mut w, id)?;
            }
            write_u32(&mut w, t.inserts.len() as u32)?;
            for &(r, v) in &t.inserts {
                write_f32(&mut w, r.x1)?;
                write_f32(&mut w, r.y1)?;
                write_f32(&mut w, r.x2)?;
                write_f32(&mut w, r.y2)?;
                write_f32(&mut w, v.x)?;
                write_f32(&mut w, v.y)?;
            }
        }
        write_u64(&mut w, self.final_extents_checksum)?;
        w.flush()
    }

    /// Deserialize from a reader. Every rectangle — initial rows and
    /// arrivals — passes through [`Rect::try_new`].
    ///
    /// # Errors
    /// I/O errors, a bad magic header (including the point-trace magics:
    /// the formats never cross), truncated data, or a malformed
    /// rectangle.
    pub fn read_from<R: Read>(r: R) -> io::Result<ExtentTrace> {
        let mut r = BufReader::new(r);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC_V4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an SJTRACE4 extent-trace file",
            ));
        }
        let space_side = read_f32(&mut r)?;
        let n = read_u32(&mut r)? as usize;
        let mut cols: [Vec<f32>; 6] = Default::default();
        for col in cols.iter_mut() {
            col.reserve(n);
            for _ in 0..n {
                col.push(read_f32(&mut r)?);
            }
        }
        let [init_x1, init_y1, init_x2, init_y2, init_vx, init_vy] = cols;
        for i in 0..n {
            if Rect::try_new(init_x1[i], init_y1[i], init_x2[i], init_y2[i]).is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed rectangle in trace at row {i}"),
                ));
            }
        }
        let tick_count = read_u32(&mut r)? as usize;
        let mut ticks = Vec::with_capacity(tick_count);
        for _ in 0..tick_count {
            let mut actions = ExtentTickActions::default();
            let nq = read_u32(&mut r)? as usize;
            actions.queriers.reserve(nq);
            for _ in 0..nq {
                actions.queriers.push(read_u32(&mut r)?);
            }
            let nu = read_u32(&mut r)? as usize;
            actions.velocity_updates.reserve(nu);
            for _ in 0..nu {
                let id = read_u32(&mut r)?;
                let vx = read_f32(&mut r)?;
                let vy = read_f32(&mut r)?;
                actions.velocity_updates.push((id, vx, vy));
            }
            let nr = read_u32(&mut r)? as usize;
            actions.removals.reserve(nr);
            for _ in 0..nr {
                actions.removals.push(read_u32(&mut r)?);
            }
            let ni = read_u32(&mut r)? as usize;
            actions.inserts.reserve(ni);
            for _ in 0..ni {
                let rect = read_rect(&mut r)?;
                let vx = read_f32(&mut r)?;
                let vy = read_f32(&mut r)?;
                actions.inserts.push((rect, Vec2::new(vx, vy)));
            }
            ticks.push(actions);
        }
        let final_extents_checksum = read_u64(&mut r)?;
        Ok(ExtentTrace {
            space_side,
            init_x1,
            init_y1,
            init_x2,
            init_y2,
            init_vx,
            init_vy,
            ticks,
            final_extents_checksum,
        })
    }

    /// Convenience wrapper over [`ExtentTrace::write_to`] for a path.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.write_to(std::fs::File::create(path)?)
    }

    /// Convenience wrapper over [`ExtentTrace::read_from`] for a path.
    pub fn load(path: &Path) -> io::Result<ExtentTrace> {
        Self::read_from(std::fs::File::open(path)?)
    }

    pub fn num_rects(&self) -> usize {
        self.init_x1.len()
    }

    pub fn num_ticks(&self) -> usize {
        self.ticks.len()
    }
}

/// Record an extent workload into an [`ExtentTrace`] — the extent
/// analogue of [`record`].
pub fn record_extents<W: ExtentWorkload + ?Sized>(workload: &mut W, ticks: u32) -> ExtentTrace {
    let space_side = workload.space().x2;
    let mut set = workload.init();

    let init_x1 = set.extents.x1s().to_vec();
    let init_y1 = set.extents.y1s().to_vec();
    let init_x2 = set.extents.x2s().to_vec();
    let init_y2 = set.extents.y2s().to_vec();
    let init_vx = set.vx.clone();
    let init_vy = set.vy.clone();

    let mut recorded = Vec::with_capacity(ticks as usize);
    let mut actions = ExtentTickActions::default();
    for tick in 0..ticks {
        actions.clear();
        workload.plan_tick(tick, &set, &mut actions);
        recorded.push(actions.clone());
        actions.apply(&mut set, workload);
    }
    ExtentTrace {
        space_side,
        init_x1,
        init_y1,
        init_x2,
        init_y2,
        init_vx,
        init_vy,
        ticks: recorded,
        final_extents_checksum: extents_checksum(&set),
    }
}

/// Replays an [`ExtentTrace`] through the standard [`ExtentWorkload`]
/// interface.
pub struct ExtentTraceWorkload {
    trace: ExtentTrace,
    cursor: usize,
}

impl ExtentTraceWorkload {
    pub fn new(trace: ExtentTrace) -> Self {
        ExtentTraceWorkload { trace, cursor: 0 }
    }

    pub fn trace(&self) -> &ExtentTrace {
        &self.trace
    }

    /// Checksum of `set`'s live rectangles — equals the trace's embedded
    /// value after all recorded ticks replay with the default movement
    /// model.
    pub fn checksum_extents(set: &MovingExtentSet) -> u64 {
        extents_checksum(set)
    }
}

impl ExtentWorkload for ExtentTraceWorkload {
    fn space(&self) -> Rect {
        Rect::space(self.trace.space_side)
    }

    fn init(&mut self) -> MovingExtentSet {
        self.cursor = 0;
        let n = self.trace.num_rects();
        let mut set = MovingExtentSet::with_capacity(n);
        for i in 0..n {
            set.push(
                Rect::new(
                    self.trace.init_x1[i],
                    self.trace.init_y1[i],
                    self.trace.init_x2[i],
                    self.trace.init_y2[i],
                ),
                Vec2::new(self.trace.init_vx[i], self.trace.init_vy[i]),
            );
        }
        set
    }

    fn plan_tick(&mut self, _tick: u32, _set: &MovingExtentSet, actions: &mut ExtentTickActions) {
        if let Some(recorded) = self.trace.ticks.get(self.cursor) {
            actions.queriers.extend_from_slice(&recorded.queriers);
            actions
                .velocity_updates
                .extend_from_slice(&recorded.velocity_updates);
            actions.removals.extend_from_slice(&recorded.removals);
            actions.inserts.extend_from_slice(&recorded.inserts);
        }
        self.cursor += 1;
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32<W: Write>(w: &mut W, v: f32) -> io::Result<()> {
    w.write_all(&v.to_bits().to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    Ok(f32::from_bits(read_u32(r)?))
}

/// Needed because EntryId appears in TickActions; keep the type local to
/// serialization to avoid accidental widening.
#[allow(dead_code)]
fn _entry_id_is_u32(e: EntryId) -> u32 {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{UniformWorkload, WorkloadParams};

    fn small_params() -> WorkloadParams {
        WorkloadParams {
            num_points: 500,
            ticks: 5,
            space_side: 4_000.0,
            ..WorkloadParams::default()
        }
    }

    #[test]
    fn recorded_trace_has_expected_shape() {
        let mut w = UniformWorkload::new(small_params());
        let trace = record(&mut w, 5);
        assert_eq!(trace.num_points(), 500);
        assert_eq!(trace.num_ticks(), 5);
        assert_eq!(trace.space_side, 4_000.0);
        assert_eq!(trace.query_side, 400.0);
    }

    #[test]
    fn replay_reproduces_the_final_state_checksum() {
        let mut w = UniformWorkload::new(small_params());
        let trace = record(&mut w, 5);
        let expected = trace.final_positions_checksum;

        let mut replay = TraceWorkload::new(trace);
        let mut set = replay.init();
        let mut actions = TickActions::default();
        for tick in 0..5 {
            actions.clear();
            replay.plan_tick(tick, &set, &mut actions);
            actions.apply(&mut set, &mut replay);
        }
        assert_eq!(TraceWorkload::checksum_positions(&set), expected);
    }

    #[test]
    fn serialization_roundtrips_exactly() {
        let mut w = UniformWorkload::new(small_params());
        let trace = record(&mut w, 4);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn churn_traces_roundtrip_and_replay_bit_identically() {
        use crate::{ChurnParams, ChurnWorkload};
        let params = small_params();
        let mut w = ChurnWorkload::new(
            Box::new(UniformWorkload::new(params)),
            ChurnParams {
                rate: 0.1,
                max_speed: params.max_speed,
                seed: params.seed,
                target_population: params.num_points,
            },
        );
        let trace = record(&mut w, 6);
        let total_removed: usize = trace.ticks.iter().map(|t| t.removals.len()).sum();
        let total_inserted: usize = trace.ticks.iter().map(|t| t.inserts.len()).sum();
        assert!(total_removed > 0, "no churn recorded");
        assert!(total_inserted > 0, "no churn recorded");

        // Serialization keeps the churn sections.
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, trace);

        // Replay reproduces the recorded run's final live population.
        let expected = trace.final_positions_checksum;
        let mut replay = TraceWorkload::new(trace);
        let mut set = replay.init();
        let mut actions = TickActions::default();
        for tick in 0..6 {
            actions.clear();
            replay.plan_tick(tick, &set, &mut actions);
            actions.apply(&mut set, &mut replay);
        }
        assert_eq!(set.live_len(), 500 + total_inserted - total_removed);
        assert_eq!(TraceWorkload::checksum_positions(&set), expected);
    }

    #[test]
    fn self_join_traces_still_serialize_as_v2() {
        // Format compatibility: the v3 magic only appears for bipartite
        // traces, so every pre-existing consumer of self-join traces keeps
        // reading them unchanged.
        let mut w = UniformWorkload::new(small_params());
        let trace = record(&mut w, 2);
        assert!(!trace.is_bipartite());
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        assert_eq!(&buf[..8], MAGIC_V2);
    }

    #[test]
    fn bipartite_traces_roundtrip_as_v3() {
        let params = small_params();
        let r_params = WorkloadParams {
            num_points: 60,
            seed: 99,
            ..params
        };
        let mut r = UniformWorkload::new(r_params);
        let mut s = UniformWorkload::new(params);
        let trace = record_bipartite(&mut r, &mut s, 4);
        assert!(trace.is_bipartite());
        assert_eq!(trace.num_points(), 500, "top level holds S");
        let rel = trace.query_rel.as_deref().unwrap();
        assert_eq!(rel.num_points(), 60, "nested section holds R");
        // The data relation's queriers were dropped at record time (the
        // driver drops them too); R keeps its own.
        assert!(trace.ticks.iter().all(|t| t.queriers.is_empty()));
        assert!(rel.ticks.iter().any(|t| !t.queriers.is_empty()));

        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        assert_eq!(&buf[..8], MAGIC_V3);
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn bipartite_trace_replay_reproduces_the_recorded_join() {
        use sj_base::driver::{run_bipartite_join, DriverConfig};
        use sj_base::index::ScanIndex;

        let params = small_params();
        let r_params = WorkloadParams {
            num_points: 80,
            seed: 123,
            ..params
        };
        // The live run.
        let live = {
            let mut r = UniformWorkload::new(r_params);
            let mut s = UniformWorkload::new(params);
            run_bipartite_join(
                &mut r,
                &mut s,
                &mut ScanIndex::new(),
                DriverConfig::new(4, 0),
            )
        };
        // Record the identical workloads, split, and replay through the
        // same driver entry point.
        let trace = {
            let mut r = UniformWorkload::new(r_params);
            let mut s = UniformWorkload::new(params);
            record_bipartite(&mut r, &mut s, 4)
        };
        let (r_half, s_half) = trace.split_bipartite().unwrap();
        let replayed = run_bipartite_join(
            &mut TraceWorkload::new(r_half),
            &mut TraceWorkload::new(s_half),
            &mut ScanIndex::new(),
            DriverConfig::new(4, 0),
        );
        assert!(live.result_pairs > 0);
        assert_eq!(replayed.result_pairs, live.result_pairs);
        assert_eq!(replayed.checksum, live.checksum);
        assert_eq!(replayed.queries, live.queries);
    }

    #[test]
    fn split_bipartite_is_none_for_self_traces() {
        let mut w = UniformWorkload::new(small_params());
        let trace = record(&mut w, 2);
        assert!(trace.split_bipartite().is_none());
    }

    #[test]
    fn legacy_v1_traces_still_load() {
        // A churn-free v2 trace rewritten under the v1 magic, with the
        // churn sections stripped, must parse to the identical trace.
        let mut w = UniformWorkload::new(small_params());
        let trace = record(&mut w, 2);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        // Rewrite: v1 magic; walk the tick records and drop the two empty
        // churn section counts (4 bytes each) per tick.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        let body = &buf[8..];
        let n = trace.num_points();
        let header = 4 + 4 + 4 + 16 * n + 4; // sides, count, 4 cols, tick count
        v1.extend_from_slice(&body[..header]);
        let mut off = header;
        for t in &trace.ticks {
            let queriers = 4 + 4 * t.queriers.len();
            let updates = 4 + 12 * t.velocity_updates.len();
            v1.extend_from_slice(&body[off..off + queriers + updates]);
            off += queriers + updates + 4 + 4; // skip the empty churn counts
        }
        v1.extend_from_slice(&body[off..]); // final checksum
        let back = Trace::read_from(v1.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_from(&b"NOTATRACEFILE..."[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn extent_traces_roundtrip_as_v4() {
        use crate::RectsWorkload;
        let mut w = RectsWorkload::new(small_params());
        let trace = record_extents(&mut w, 4);
        assert_eq!(trace.num_rects(), 500);
        assert_eq!(trace.num_ticks(), 4);
        assert!(trace.ticks.iter().any(|t| !t.queriers.is_empty()));
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        assert_eq!(&buf[..8], MAGIC_V4);
        let back = ExtentTrace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn extent_trace_replay_reproduces_the_recorded_run() {
        use crate::RectsWorkload;
        use sj_base::driver::{run_intersect_join, DriverConfig};
        use sj_base::index::ScanIndex;

        let live = run_intersect_join(
            &mut RectsWorkload::new(small_params()),
            &mut ScanIndex::new(),
            DriverConfig::new(4, 0),
        );
        let trace = record_extents(&mut RectsWorkload::new(small_params()), 4);
        let expected_checksum = trace.final_extents_checksum;
        let mut replay = ExtentTraceWorkload::new(trace);
        let replayed =
            run_intersect_join(&mut replay, &mut ScanIndex::new(), DriverConfig::new(4, 0));
        assert!(live.result_pairs > 0);
        assert_eq!(replayed.result_pairs, live.result_pairs);
        assert_eq!(replayed.checksum, live.checksum);
        assert_eq!(replayed.queries, live.queries);

        // And the embedded final-state checksum holds under manual replay.
        let mut set = replay.init();
        let mut actions = ExtentTickActions::default();
        for tick in 0..4 {
            actions.clear();
            replay.plan_tick(tick, &set, &mut actions);
            actions.apply(&mut set, &mut replay);
        }
        assert_eq!(
            ExtentTraceWorkload::checksum_extents(&set),
            expected_checksum
        );
    }

    #[test]
    fn malformed_rectangles_in_extent_traces_are_rejected_on_load() {
        // An inverted initial rectangle (x2 < x1) must fail Rect::try_new
        // at load time — not trip a debug assert downstream.
        let trace = ExtentTrace {
            space_side: 100.0,
            init_x1: vec![10.0],
            init_y1: vec![10.0],
            init_x2: vec![5.0],
            init_y2: vec![20.0],
            init_vx: vec![0.0],
            init_vy: vec![0.0],
            ticks: Vec::new(),
            final_extents_checksum: 0,
        };
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let err = ExtentTrace::read_from(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("malformed rectangle"), "{err}");
    }

    #[test]
    fn point_and_extent_trace_formats_never_cross() {
        use crate::RectsWorkload;
        let point_trace = record(&mut UniformWorkload::new(small_params()), 2);
        let mut point_bytes = Vec::new();
        point_trace.write_to(&mut point_bytes).unwrap();
        assert!(ExtentTrace::read_from(point_bytes.as_slice()).is_err());

        let extent_trace = record_extents(&mut RectsWorkload::new(small_params()), 2);
        let mut extent_bytes = Vec::new();
        extent_trace.write_to(&mut extent_bytes).unwrap();
        assert!(Trace::read_from(extent_bytes.as_slice()).is_err());
    }

    #[test]
    fn extent_trace_file_roundtrip() {
        use crate::RectsWorkload;
        let trace = record_extents(&mut RectsWorkload::new(small_params()), 3);
        let path = std::env::temp_dir().join("sj_extent_trace_test.bin");
        trace.save(&path).unwrap();
        let back = ExtentTrace::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, trace);
    }

    #[test]
    fn truncated_data_is_rejected() {
        let mut w = UniformWorkload::new(small_params());
        let trace = record(&mut w, 2);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Trace::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn replay_past_end_is_quiet() {
        let mut w = UniformWorkload::new(small_params());
        let trace = record(&mut w, 2);
        let mut replay = TraceWorkload::new(trace);
        let set = replay.init();
        let mut actions = TickActions::default();
        for tick in 0..4 {
            actions.clear();
            replay.plan_tick(tick, &set, &mut actions);
            if tick >= 2 {
                assert!(actions.queriers.is_empty());
                assert!(actions.velocity_updates.is_empty());
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let mut w = UniformWorkload::new(small_params());
        let trace = record(&mut w, 3);
        let path = std::env::temp_dir().join("sj_trace_test.bin");
        trace.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, trace);
    }
}
