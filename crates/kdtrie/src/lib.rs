//! # sj-kdtrie
//!
//! The Linearized KD-Trie of Dittrich, Blunschi & Salles (SSTD 2009,
//! "Indexing Moving Objects Using Short-Lived Throwaway Indexes"), the
//! third tree-shaped static index in the paper's comparison. Point
//! positions are quantized onto a 2¹⁶×2¹⁶ grid, bit-interleaved into
//! 32-bit kd-trie codes, and radix-sorted into a flat array that is thrown
//! away and rebuilt every tick.

pub mod morton;
pub mod radix;
mod trie;

pub use morton::{decode, encode, spread, unspread};
pub use radix::sort_by_code;
pub use trie::LinearKdTrie;
