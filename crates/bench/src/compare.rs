//! Trajectory comparison (`bench_compare`).
//!
//! Reads two suite documents (see [`crate::suite`]), matches cells by
//! their identity string, and diffs the trajectories: a timing regression
//! beyond the noise threshold, a checksum drift, or a shrunken matrix is
//! reported and turns the comparator's exit nonzero. Cells whose pinned
//! parameters differ (a `--quick` run against a full baseline) are
//! *incomparable* — their timings are skipped rather than mis-diffed —
//! and `schema_only` restricts the run to structural checks entirely
//! (what CI does: machines vary, wall-clock across them does not).
//!
//! Non-finite measurements are rejected while loading: the JSON layer
//! refuses bare `NaN`/`inf` tokens, and this layer refuses the `null`s
//! the writer degrades them to, naming the cell and field.

use std::fmt;

use crate::json::Json;
use crate::suite::SCHEMA_VERSION;

/// Default noise threshold: a cell regresses when its per-tick time grows
/// beyond `ratio × baseline`. 1.5 passes identical re-runs with generous
/// headroom for scheduler noise while flagging a genuine 2× slowdown.
pub const DEFAULT_THRESHOLD: f64 = 1.5;

/// Per-tick times below this are pure noise (timer resolution, allocator
/// luck); ratio tests against them would flag phantom regressions.
pub const MIN_COMPARABLE_SECONDS: f64 = 5e-5;

/// One cell loaded back from a suite document.
#[derive(Clone, Debug)]
pub struct ParsedCell {
    pub id: String,
    pub bench: String,
    pub technique: String,
    pub threads: u64,
    pub ticks: u64,
    pub points: u64,
    pub seed: u64,
    pub avg_tick_s: f64,
    pub query_s: f64,
    pub pairs: u64,
    pub checksum: String,
}

impl ParsedCell {
    /// Whether two records of the same cell ran identical configurations —
    /// the precondition for diffing their timings or checksums.
    pub fn comparable_with(&self, other: &ParsedCell) -> bool {
        (self.ticks, self.points, self.seed, self.threads)
            == (other.ticks, other.points, other.seed, other.threads)
    }
}

/// A loaded suite document.
#[derive(Clone, Debug)]
pub struct SuiteDoc {
    pub schema_version: u64,
    pub mode: String,
    pub cells: Vec<ParsedCell>,
}

/// A load failure: parse error or schema violation, with the offending
/// cell/field named.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadError(pub String);

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for LoadError {}

fn field<'a>(obj: &'a Json, cell: &str, key: &str) -> Result<&'a Json, LoadError> {
    obj.get(key)
        .ok_or_else(|| LoadError(format!("cell {cell:?}: missing field {key:?}")))
}

fn num_field(obj: &Json, cell: &str, key: &str) -> Result<f64, LoadError> {
    let v = field(obj, cell, key)?;
    if v.is_null() {
        return Err(LoadError(format!(
            "cell {cell:?}: field {key:?} is null — the producing run emitted a \
             non-finite measurement; regenerate the snapshot"
        )));
    }
    v.as_f64()
        .ok_or_else(|| LoadError(format!("cell {cell:?}: field {key:?} is not a number")))
}

fn int_field(obj: &Json, cell: &str, key: &str) -> Result<u64, LoadError> {
    field(obj, cell, key)?.as_u64().ok_or_else(|| {
        LoadError(format!(
            "cell {cell:?}: field {key:?} is not a non-negative integer"
        ))
    })
}

fn str_field(obj: &Json, cell: &str, key: &str) -> Result<String, LoadError> {
    Ok(field(obj, cell, key)?
        .as_str()
        .ok_or_else(|| LoadError(format!("cell {cell:?}: field {key:?} is not a string")))?
        .to_string())
}

/// [`load`], with every rejection prefixed by `name` (a path or other
/// document label). Anything reporting a load failure to a human should
/// come through here or [`load_file`] — a bare "missing mode" with no
/// document named is useless when two snapshots are in play.
pub fn load_named(name: &str, text: &str) -> Result<SuiteDoc, LoadError> {
    load(text).map_err(|e| LoadError(format!("{name}: {e}")))
}

/// Read and load a suite document from disk. IO errors and load errors
/// both name the file.
pub fn load_file(path: &str) -> Result<SuiteDoc, LoadError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| LoadError(format!("{path}: cannot read: {e}")))?;
    load_named(path, &text)
}

/// Parse and schema-check one suite document.
pub fn load(text: &str) -> Result<SuiteDoc, LoadError> {
    let v = Json::parse(text).map_err(|e| LoadError(e.to_string()))?;
    let schema_version = v
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| LoadError("missing or non-integer schema_version".into()))?;
    if schema_version != SCHEMA_VERSION {
        return Err(LoadError(format!(
            "schema_version {schema_version} (this tool reads {SCHEMA_VERSION}); \
             regenerate the snapshot with the matching bench_suite"
        )));
    }
    let mode = v
        .get("mode")
        .and_then(Json::as_str)
        .ok_or_else(|| LoadError("missing mode".into()))?
        .to_string();
    let raw_cells = v
        .get("cells")
        .and_then(Json::as_array)
        .ok_or_else(|| LoadError("missing cells array".into()))?;
    let mut cells = Vec::with_capacity(raw_cells.len());
    for (i, obj) in raw_cells.iter().enumerate() {
        let fallback = format!("#{i}");
        let id = obj
            .get("cell")
            .and_then(Json::as_str)
            .unwrap_or(&fallback)
            .to_string();
        if obj.get("cell").is_none() {
            return Err(LoadError(format!(
                "cell {fallback}: missing field \"cell\""
            )));
        }
        let cell = ParsedCell {
            bench: str_field(obj, &id, "bench")?,
            technique: str_field(obj, &id, "technique")?,
            threads: int_field(obj, &id, "threads")?,
            ticks: int_field(obj, &id, "ticks")?,
            points: int_field(obj, &id, "points")?,
            seed: int_field(obj, &id, "seed")?,
            avg_tick_s: num_field(obj, &id, "avg_tick_s")?,
            query_s: num_field(obj, &id, "query_s")?,
            pairs: int_field(obj, &id, "pairs")?,
            checksum: str_field(obj, &id, "checksum")?,
            id,
        };
        // The timing fields must be finite *and* sane: negative seconds
        // mean a corrupt snapshot, not a fast run.
        for (key, val) in [("avg_tick_s", cell.avg_tick_s), ("query_s", cell.query_s)] {
            if !(val.is_finite() && val >= 0.0) {
                return Err(LoadError(format!(
                    "cell {:?}: field {key:?} is not a finite non-negative number",
                    cell.id
                )));
            }
        }
        if cells.iter().any(|c: &ParsedCell| c.id == cell.id) {
            return Err(LoadError(format!("duplicate cell id {:?}", cell.id)));
        }
        cells.push(cell);
    }
    Ok(SuiteDoc {
        schema_version,
        mode,
        cells,
    })
}

/// What the comparison found for one cell (regressions and drifts make
/// the run fail; the rest is reporting).
#[derive(Clone, Debug, PartialEq)]
pub enum Finding {
    /// `current / baseline` per-tick ratio beyond the threshold.
    Regression { id: String, ratio: f64 },
    /// Per-tick ratio below `1 / threshold` — reported, never fatal.
    Improvement { id: String, ratio: f64 },
    /// Same cell, same pinned parameters, different join checksum or pair
    /// count: a determinism regression, always fatal.
    ChecksumDrift { id: String },
    /// Cell present in the baseline but absent from the current run.
    Missing { id: String },
    /// Same cell id but different pinned parameters (e.g. quick vs full):
    /// timings skipped.
    Incomparable { id: String },
    /// Both timings under the noise floor: nothing to compare.
    BelowNoiseFloor { id: String },
}

/// The comparison's verdict.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Cells whose timings were actually ratio-tested.
    pub compared: usize,
    /// Cells only in the current run (new coverage; informational).
    pub added: usize,
}

impl Report {
    /// Fatal findings: timing regressions and checksum drifts. Missing
    /// cells are fatal too — a shrinking matrix is how a trajectory rots
    /// silently.
    pub fn failures(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    Finding::Regression { .. }
                        | Finding::ChecksumDrift { .. }
                        | Finding::Missing { .. }
                )
            })
            .collect()
    }

    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }
}

/// Diff `current` against `baseline`. `threshold` is the fatal per-tick
/// growth ratio; `schema_only` skips timing and checksum diffs (CI mode:
/// assert the documents are valid and the matrix intact, not wall-clock).
pub fn compare(
    baseline: &SuiteDoc,
    current: &SuiteDoc,
    threshold: f64,
    schema_only: bool,
) -> Report {
    let mut report = Report::default();
    for base in &baseline.cells {
        let Some(cur) = current.cells.iter().find(|c| c.id == base.id) else {
            report.findings.push(Finding::Missing {
                id: base.id.clone(),
            });
            continue;
        };
        if !base.comparable_with(cur) {
            report.findings.push(Finding::Incomparable {
                id: base.id.clone(),
            });
            continue;
        }
        if schema_only {
            continue;
        }
        // Identical pinned parameters ⇒ the join is deterministic ⇒ the
        // checksum and pair count must match bit for bit.
        if base.checksum != cur.checksum || base.pairs != cur.pairs {
            report.findings.push(Finding::ChecksumDrift {
                id: base.id.clone(),
            });
            continue;
        }
        if base.avg_tick_s < MIN_COMPARABLE_SECONDS && cur.avg_tick_s < MIN_COMPARABLE_SECONDS {
            report.findings.push(Finding::BelowNoiseFloor {
                id: base.id.clone(),
            });
            continue;
        }
        report.compared += 1;
        let ratio = cur.avg_tick_s / base.avg_tick_s.max(MIN_COMPARABLE_SECONDS);
        if ratio > threshold {
            report.findings.push(Finding::Regression {
                id: base.id.clone(),
                ratio,
            });
        } else if ratio < 1.0 / threshold {
            report.findings.push(Finding::Improvement {
                id: base.id.clone(),
                ratio,
            });
        }
    }
    report.added = current
        .cells
        .iter()
        .filter(|c| baseline.cells.iter().all(|b| b.id != c.id))
        .count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{cell_matrix, document, CellResult};
    use sj_core::driver::{RunStats, TickTimes};
    use std::time::Duration;

    /// A synthetic suite document over the first few matrix cells, with
    /// per-tick times scaled by `slow` — no real benchmark runs needed to
    /// test the comparator.
    fn synthetic_doc(slow: f64, checksum_salt: u64) -> String {
        let results: Vec<CellResult> = cell_matrix()
            .into_iter()
            .take(5)
            .enumerate()
            .map(|(i, spec)| CellResult {
                spec,
                ticks: 3,
                points: 4_000,
                seed: 42,
                stats: RunStats {
                    ticks: vec![TickTimes {
                        build: Duration::from_micros((600.0 * slow) as u64),
                        query: Duration::from_micros((2_000.0 * slow) as u64),
                        update: Duration::from_micros((400.0 * slow) as u64),
                    }],
                    result_pairs: 1000 + i as u64,
                    checksum: 0xABCD + i as u64 + checksum_salt,
                    queries: 50,
                    updates: 25,
                    removals: 0,
                    inserts: 0,
                    index_bytes: 1 << 16,
                    tile_load: None,
                },
            })
            .collect();
        document(&results, true)
    }

    #[test]
    fn self_diff_passes_clean() {
        let doc = load(&synthetic_doc(1.0, 0)).unwrap();
        let report = compare(&doc, &doc, DEFAULT_THRESHOLD, false);
        assert!(report.passed(), "{:?}", report.findings);
        assert_eq!(report.compared, doc.cells.len());
        assert!(report.findings.is_empty());
    }

    #[test]
    fn synthetic_2x_slowdown_is_flagged() {
        let base = load(&synthetic_doc(1.0, 0)).unwrap();
        let slow = load(&synthetic_doc(2.0, 0)).unwrap();
        let report = compare(&base, &slow, DEFAULT_THRESHOLD, false);
        assert!(!report.passed());
        let regressions: Vec<_> = report
            .findings
            .iter()
            .filter_map(|f| match f {
                Finding::Regression { id, ratio } => Some((id.clone(), *ratio)),
                _ => None,
            })
            .collect();
        assert_eq!(regressions.len(), base.cells.len());
        for (_, ratio) in &regressions {
            assert!((*ratio - 2.0).abs() < 0.1, "ratio {ratio}");
        }
        // The inverse direction is an improvement, not a failure.
        let report = compare(&slow, &base, DEFAULT_THRESHOLD, false);
        assert!(report.passed());
        assert!(report
            .findings
            .iter()
            .all(|f| matches!(f, Finding::Improvement { .. })));
    }

    #[test]
    fn checksum_drift_is_fatal_even_when_fast() {
        let base = load(&synthetic_doc(1.0, 0)).unwrap();
        let drifted = load(&synthetic_doc(0.9, 7)).unwrap();
        let report = compare(&base, &drifted, DEFAULT_THRESHOLD, false);
        assert!(!report.passed());
        assert!(report
            .failures()
            .iter()
            .all(|f| matches!(f, Finding::ChecksumDrift { .. })));
    }

    #[test]
    fn missing_cells_are_fatal_and_added_cells_are_not() {
        let base = load(&synthetic_doc(1.0, 0)).unwrap();
        let mut shrunk = base.clone();
        shrunk.cells.pop();
        let report = compare(&base, &shrunk, DEFAULT_THRESHOLD, false);
        assert_eq!(report.failures().len(), 1);
        assert!(matches!(report.failures()[0], Finding::Missing { .. }));
        // Extra cells in the current run are new coverage, not an error.
        let report = compare(&shrunk, &base, DEFAULT_THRESHOLD, false);
        assert!(report.passed());
        assert_eq!(report.added, 1);
    }

    #[test]
    fn incomparable_parameters_skip_timing_diffs() {
        let base = load(&synthetic_doc(1.0, 0)).unwrap();
        let mut quick = base.clone();
        for c in &mut quick.cells {
            c.points = 999; // a different scale: same ids, other params
            c.avg_tick_s *= 100.0; // would be a huge "regression"
        }
        let report = compare(&base, &quick, DEFAULT_THRESHOLD, false);
        assert!(report.passed(), "{:?}", report.findings);
        assert_eq!(report.compared, 0);
        assert!(report
            .findings
            .iter()
            .all(|f| matches!(f, Finding::Incomparable { .. })));
    }

    #[test]
    fn schema_only_ignores_timings_but_not_the_matrix() {
        let base = load(&synthetic_doc(1.0, 0)).unwrap();
        let slow = load(&synthetic_doc(10.0, 3)).unwrap();
        let report = compare(&base, &slow, DEFAULT_THRESHOLD, true);
        assert!(report.passed(), "{:?}", report.findings);
        let mut shrunk = slow.clone();
        shrunk.cells.clear();
        let report = compare(&base, &shrunk, DEFAULT_THRESHOLD, true);
        assert!(!report.passed());
    }

    #[test]
    fn null_timings_are_rejected_with_the_cell_named() {
        // The writer degrades non-finite values to null (report.rs); the
        // loader must refuse them loudly rather than diff around them.
        let doc = synthetic_doc(1.0, 0);
        let poisoned = doc.replacen("\"avg_tick_s\":", "\"avg_tick_s\":null,\"x_shadow\":", 1);
        let err = load(&poisoned).unwrap_err();
        assert!(err.0.contains("avg_tick_s"), "{err}");
        assert!(err.0.contains("non-finite"), "{err}");
        assert!(err.0.contains("table2"), "{err}");
    }

    #[test]
    fn bare_nan_tokens_fail_at_the_json_layer() {
        let doc = synthetic_doc(1.0, 0).replacen("\"avg_tick_s\":0.003", "\"avg_tick_s\":NaN", 1);
        let err = load(&doc).unwrap_err();
        assert!(err.0.contains("non-finite"), "{err}");
    }

    #[test]
    fn wrong_schema_version_is_refused() {
        let doc = synthetic_doc(1.0, 0).replacen(
            &format!("\"schema_version\":{SCHEMA_VERSION}"),
            "\"schema_version\":999",
            1,
        );
        let err = load(&doc).unwrap_err();
        assert!(err.0.contains("schema_version 999"), "{err}");
    }

    #[test]
    fn noise_floor_suppresses_micro_cell_ratios() {
        // Sub-threshold absolute times: a 3x ratio on a 2µs cell is timer
        // noise, not a regression.
        let base = load(&synthetic_doc(0.001, 0)).unwrap();
        let jitter = load(&synthetic_doc(0.003, 0)).unwrap();
        let report = compare(&base, &jitter, DEFAULT_THRESHOLD, false);
        assert!(report.passed(), "{:?}", report.findings);
        assert_eq!(report.compared, 0);
    }
}
