//! Run every benchmarkable technique in the registry on the identical
//! workload and verify they produce the *same join* (equal pair counts
//! and checksums) at very different speeds — the paper's point in
//! miniature. Both join categories appear: the plane sweep runs through
//! the same `Technique::run` entry point as the indexes.
//!
//! Run: `cargo run --release --example compare_indexes`

use spatial_joins::prelude::*;

fn main() {
    let params = WorkloadParams {
        num_points: 20_000,
        ticks: 6,
        ..WorkloadParams::default()
    };
    let cfg = DriverConfig::new(params.ticks, 1);

    println!(
        "{:<28} {:>12} {:>14} {:>18}",
        "technique", "avg tick (s)", "join pairs", "checksum"
    );
    let mut reference: Option<(u64, u64)> = None;
    for spec in registry().into_iter().filter(|s| s.is_benchmarkable()) {
        // Fresh workload per technique: same seed → identical trajectories.
        let mut workload = UniformWorkload::new(params);
        let mut tech = spec.build(params.space_side);
        let stats = tech.run(&mut workload, cfg);
        println!(
            "{:<28} {:>12.4} {:>14} {:>#18x}",
            tech.name(),
            stats.avg_tick_seconds(),
            stats.result_pairs,
            stats.checksum
        );
        match reference {
            None => reference = Some((stats.result_pairs, stats.checksum)),
            Some(expect) => assert_eq!(
                (stats.result_pairs, stats.checksum),
                expect,
                "{} computed a different join!",
                tech.name()
            ),
        }
    }
    println!("\nall techniques computed the identical join.");
}
