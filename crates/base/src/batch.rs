//! Batch (set-at-a-time) join abstraction.
//!
//! The paper's focus is the *index nested loop* category: build an index,
//! probe it once per query. The underlying study also evaluates
//! *specialized join* techniques that consume the whole tick's query set
//! at once (e.g., a forward plane sweep) and need no index at all. This
//! trait captures that shape; `sj-sweep` implements it, and
//! [`crate::driver::run_batch_join`] drives it through the same tick loop
//! so results are directly comparable with the per-query techniques.

use crate::geom::Rect;
use crate::table::{entry_id, EntryId, ExtentTable, PointTable};

/// A set-at-a-time spatial join: all of a tick's range queries against
/// the current base table in one call.
pub trait BatchJoin {
    /// Display name for benchmark tables.
    fn name(&self) -> &str;

    /// Append every `(querier, matching object)` pair to `out`, in no
    /// particular order. `queries` carries `(querier id, region)` with
    /// closed-rectangle semantics, exactly as the per-query driver
    /// produces them. Querier ids are opaque to the join — in a self-join
    /// they happen to index `table`, in a bipartite join they index the
    /// query relation instead (see [`BatchJoin::join_two`]).
    fn join(
        &mut self,
        table: &PointTable,
        queries: &[(EntryId, Rect)],
        out: &mut Vec<(EntryId, EntryId)>,
    );

    /// The two-table (bipartite R ⋈ S) entry point: `queries` carries one
    /// region per querier of the query relation `queriers` (R), joined
    /// against the data relation `data` (S). Matching rows of `data` are
    /// emitted as `(querier, data row)` pairs. The driver always goes
    /// through this method — a self-join simply passes the same table
    /// twice.
    ///
    /// The default forwards to [`BatchJoin::join`] over `data`: the query
    /// regions are already materialized, so a technique that never
    /// dereferences querier ids (both implementations in this workspace)
    /// is bipartite-ready for free. Override it only if the algorithm
    /// wants the querier positions themselves.
    fn join_two(
        &mut self,
        queriers: &PointTable,
        data: &PointTable,
        queries: &[(EntryId, Rect)],
        out: &mut Vec<(EntryId, EntryId)>,
    ) {
        let _ = queriers;
        self.join(data, queries, out);
    }

    /// Whether this technique implements the **intersects** predicate
    /// over extent entries (see
    /// [`crate::index::SpatialIndex::supports_intersect`] — the same
    /// predicate axis, batch category). Implementations returning `true`
    /// must override [`BatchJoin::join_extents`].
    fn supports_intersect(&self) -> bool {
        false
    }

    /// The intersection-join entry point: append every `(querier, data
    /// row)` pair whose rectangles intersect (closed semantics) to `out`,
    /// in no particular order. `queries` carries `(querier id, query
    /// rectangle)` — in the driver's rect self-join the rectangle *is*
    /// the querier's own extent. Querier ids are opaque, exactly as in
    /// [`BatchJoin::join`]. Only called when
    /// [`BatchJoin::supports_intersect`] is `true`; the default panics so
    /// a missing override cannot silently return empty joins.
    fn join_extents(
        &mut self,
        _data: &ExtentTable,
        _queries: &[(EntryId, Rect)],
        _out: &mut Vec<(EntryId, EntryId)>,
    ) {
        panic!("{}: no intersects-predicate support", self.name());
    }

    /// An independent instance of this technique for a parallel worker
    /// (see [`crate::par::shard_batch_join`]): same algorithm, private
    /// scratch state. Implementations are typically `Clone`, so this is
    /// one line; it must not share mutable state with `self`.
    fn fork(&self) -> Box<dyn BatchJoin + Send>;
}

/// Reference implementation: a nested loop over queries × points.
/// Quadratic and only used to validate the real batch techniques.
#[derive(Debug, Default, Clone)]
pub struct NaiveBatchJoin;

impl BatchJoin for NaiveBatchJoin {
    fn name(&self) -> &str {
        "Naive Nested Loop"
    }

    fn join(
        &mut self,
        table: &PointTable,
        queries: &[(EntryId, Rect)],
        out: &mut Vec<(EntryId, EntryId)>,
    ) {
        let xs = table.xs();
        let ys = table.ys();
        let live = table.live_mask();
        for &(q, region) in queries {
            for i in 0..xs.len() {
                if live[i] && region.contains_point(xs[i], ys[i]) {
                    out.push((q, entry_id(i)));
                }
            }
        }
    }

    fn supports_intersect(&self) -> bool {
        true
    }

    fn join_extents(
        &mut self,
        data: &ExtentTable,
        queries: &[(EntryId, Rect)],
        out: &mut Vec<(EntryId, EntryId)>,
    ) {
        let (x1s, y1s) = (data.x1s(), data.y1s());
        let (x2s, y2s) = (data.x2s(), data.y2s());
        let live = data.live_mask();
        for &(q, region) in queries {
            for i in 0..x1s.len() {
                if live[i]
                    && region.x1 <= x2s[i]
                    && x1s[i] <= region.x2
                    && region.y1 <= y2s[i]
                    && y1s[i] <= region.y2
                {
                    out.push((q, entry_id(i)));
                }
            }
        }
    }

    fn fork(&self) -> Box<dyn BatchJoin + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_join_finds_all_pairs() {
        let mut t = PointTable::default();
        t.push(1.0, 1.0);
        t.push(5.0, 5.0);
        t.push(9.0, 9.0);
        let queries = vec![
            (0u32, Rect::new(0.0, 0.0, 6.0, 6.0)),
            (2u32, Rect::new(8.0, 8.0, 10.0, 10.0)),
        ];
        let mut out = Vec::new();
        NaiveBatchJoin.join(&t, &queries, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(0, 0), (0, 1), (2, 2)]);
    }

    #[test]
    fn dead_rows_are_excluded_from_the_join() {
        let mut t = PointTable::default();
        t.push(1.0, 1.0);
        t.push(2.0, 2.0);
        t.remove(0);
        let queries = vec![(9u32, Rect::new(0.0, 0.0, 5.0, 5.0))];
        let mut out = Vec::new();
        NaiveBatchJoin.join(&t, &queries, &mut out);
        assert_eq!(out, vec![(9, 1)]);
    }

    #[test]
    fn join_two_over_distinct_relations_probes_only_the_data_table() {
        // R rows sit far outside every query region: only S (data) rows
        // may appear on the right of a pair, and the querier ids pass
        // through untouched even though they don't index S.
        let mut r = PointTable::default();
        r.push(1_000.0, 1_000.0);
        r.push(2_000.0, 2_000.0);
        let mut s = PointTable::default();
        s.push(1.0, 1.0);
        s.push(5.0, 5.0);
        let queries = vec![
            (0u32, Rect::new(0.0, 0.0, 2.0, 2.0)),
            (1u32, Rect::new(0.0, 0.0, 10.0, 10.0)),
        ];
        let mut out = Vec::new();
        NaiveBatchJoin.join_two(&r, &s, &queries, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(0, 0), (1, 0), (1, 1)]);
    }

    #[test]
    fn join_two_with_the_same_table_twice_is_the_self_join() {
        let mut t = PointTable::default();
        t.push(1.0, 1.0);
        t.push(5.0, 5.0);
        let queries = vec![(0u32, Rect::new(0.0, 0.0, 6.0, 6.0))];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        NaiveBatchJoin.join(&t, &queries, &mut a);
        NaiveBatchJoin.join_two(&t, &t, &queries, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn extent_join_finds_overlaps_including_touching_edges() {
        let mut t = ExtentTable::default();
        t.push(Rect::new(0.0, 0.0, 2.0, 2.0));
        t.push(Rect::new(4.0, 4.0, 6.0, 6.0));
        t.push(Rect::new(10.0, 10.0, 12.0, 12.0));
        let queries = vec![
            // Touches rect 0 at the corner (2,2) and overlaps rect 1.
            (7u32, Rect::new(2.0, 2.0, 5.0, 5.0)),
            (8u32, Rect::new(11.0, 11.0, 20.0, 20.0)),
        ];
        let mut out = Vec::new();
        assert!(NaiveBatchJoin.supports_intersect());
        NaiveBatchJoin.join_extents(&t, &queries, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(7, 0), (7, 1), (8, 2)]);
    }

    #[test]
    fn extent_join_excludes_dead_rows() {
        let mut t = ExtentTable::default();
        t.push(Rect::new(0.0, 0.0, 2.0, 2.0));
        t.push(Rect::new(1.0, 1.0, 3.0, 3.0));
        t.remove(0);
        let queries = vec![(5u32, Rect::new(0.0, 0.0, 10.0, 10.0))];
        let mut out = Vec::new();
        NaiveBatchJoin.join_extents(&t, &queries, &mut out);
        assert_eq!(out, vec![(5, 1)]);
    }

    #[test]
    fn empty_inputs_yield_empty_join() {
        let t = PointTable::default();
        let mut out = Vec::new();
        NaiveBatchJoin.join(&t, &[], &mut out);
        assert!(out.is_empty());
        let mut t2 = PointTable::default();
        t2.push(1.0, 1.0);
        NaiveBatchJoin.join(&t2, &[], &mut out);
        assert!(out.is_empty());
    }
}
