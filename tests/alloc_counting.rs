//! Zero-allocation pin for the per-query hot path.
//!
//! The driver's query phase calls [`SpatialIndex::for_each_in`] thousands
//! of times per tick; a single heap allocation in there (a traversal
//! stack, a scratch `Vec`) is a hidden multiplier the phase timings then
//! mis-attribute to the algorithm. This binary installs a counting global
//! allocator (test-binary scoped — integration tests each get their own
//! binary) and asserts that, after one warm-up pass, a full query batch
//! over every registry index performs **zero** allocations on the
//! querying thread.
//!
//! The counter is thread-local, so concurrently running tests in this
//! binary cannot pollute each other's counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use spatial_joins::prelude::*;

struct CountingAlloc;

thread_local! {
    // `const` initializers: reading these from inside `alloc` must not
    // itself allocate or recurse into the lazy-init machinery.
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: every method delegates to `System` with its arguments passed
// through unchanged, so `System`'s own contract discharges each
// obligation; the counting side effect is a thread-local `Cell` bump
// that neither allocates nor unwinds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        // SAFETY: `layout` is forwarded verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        // SAFETY: `layout` is forwarded verbatim to the system allocator.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        // SAFETY: `ptr` came from this allocator, which is `System` plus
        // a counter, so forwarding `(ptr, layout, new_size)` is valid.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` via the methods above
        // with this same `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

fn count() {
    // `try_with`: allocator calls can outlive the thread-local's
    // destruction window during thread teardown.
    let _ = ARMED.try_with(|armed| {
        if armed.get() {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
    });
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Count this thread's allocations during `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    let r = f();
    ARMED.with(|a| a.set(false));
    (ALLOCS.with(|c| c.get()), r)
}

const SIDE: f32 = 1_000.0;

/// A deterministic splitmix64 stream (self-contained so this test binary
/// doesn't depend on crate RNG internals).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn coord(&mut self) -> f32 {
        (self.next() % 1_000_000) as f32 * (SIDE / 1_000_000.0)
    }
}

fn populated_table(n: usize, seed: u64) -> PointTable {
    let mut rng = Mix(seed);
    let mut t = PointTable::default();
    for _ in 0..n {
        let (x, y) = (rng.coord(), rng.coord());
        t.push(x, y);
    }
    t
}

fn query_batch(count: usize, seed: u64) -> Vec<Rect> {
    let mut rng = Mix(seed);
    (0..count)
        .map(|_| {
            let (cx, cy) = (rng.coord(), rng.coord());
            let w = 5.0 + rng.coord() * 0.05;
            let h = 5.0 + rng.coord() * 0.05;
            Rect::new(cx - w, cy - h, cx + w, cy + h).clipped_to(&Rect::space(SIDE))
        })
        .collect()
}

/// Every `SpatialIndex` in the workspace, constructed the way the
/// cross-index suites do.
fn all_indexes() -> Vec<Box<dyn SpatialIndex>> {
    let mut indexes: Vec<Box<dyn SpatialIndex>> = vec![
        Box::new(ScanIndex::new()),
        Box::new(BinarySearchJoin::new()),
        Box::new(VecSearchJoin::new()),
        Box::new(RTree::new(8)),
        Box::new(CRTree::new(8)),
        Box::new(LinearKdTrie::new(SIDE)),
        Box::new(DynRTree::new(8)),
        Box::new(QuadTree::new(SIDE, 16)),
        Box::new(IncrementalGrid::new(32, 8, SIDE)),
    ];
    for stage in Stage::ALL {
        indexes.push(Box::new(SimpleGrid::at_stage(stage, SIDE)));
    }
    indexes
}

/// Fold emitted ids into a checksum without allocating.
fn run_batch(idx: &dyn SpatialIndex, t: &PointTable, queries: &[Rect]) -> u64 {
    let mut acc = 0u64;
    for q in queries {
        idx.for_each_in(t, q, &mut |id| {
            acc = acc
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(id as u64 + 1);
        });
    }
    acc
}

#[test]
fn query_phase_performs_zero_allocations_for_every_index() {
    let t = populated_table(3_000, 42);
    let queries = query_batch(200, 7);
    for mut idx in all_indexes() {
        idx.build(&t);
        // Warm-up: the contract is zero *steady-state* allocations; any
        // one-time lazy setup (e.g. the SIMD dispatch cache) happens here.
        let warm = run_batch(idx.as_ref(), &t, &queries);
        let (allocs, cold) = allocations_during(|| run_batch(idx.as_ref(), &t, &queries));
        assert_eq!(cold, warm, "{}: non-deterministic query batch", idx.name());
        assert_ne!(cold, 0, "{}: batch matched nothing — weak test", idx.name());
        assert_eq!(
            allocs,
            0,
            "{}: {allocs} heap allocations across {} queries in the steady state",
            idx.name(),
            queries.len()
        );
    }
}

#[test]
fn the_counter_itself_works() {
    // Guard against the pin silently passing because counting broke.
    let (allocs, v) = allocations_during(|| {
        let mut v = Vec::with_capacity(100);
        v.push(1u64);
        v
    });
    assert!(allocs >= 1, "counter missed an obvious allocation");
    drop(v);
    let (allocs, _) = allocations_during(|| 2 + 2);
    assert_eq!(allocs, 0);
}
