//! The original Simple Grid storage (Figure 3a).
//!
//! Byte-faithful reconstruction of the structure the PVLDB'13 framework
//! used, realized as flat `u64` arenas with slot-index handles instead of
//! raw pointers (identical hop counts and byte footprints, zero `unsafe`):
//!
//! - **directory**: 2 slots per cell → 16 bytes: `[count, head_bucket]`;
//! - **bucket**: 4 slots → 32 bytes: `[next_bucket, node_head, node_tail, len]`;
//! - **node**: 3 slots → 24 bytes: `[prev, next, entry]` — one node per
//!   indexed point, in a *doubly-linked list* per bucket.
//!
//! At the original's tuned bs = 4 this costs 24 + 32/4 = 32 bytes per point
//! beyond the directory, exactly the paper's §3.1 arithmetic.

use sj_base::geom::Rect;
use sj_base::table::{entry_id_u64, EntryId, PointTable};
use sj_base::trace::Tracer;

use crate::addr;

/// Null handle in the arenas.
pub const NULL: u64 = u64::MAX;

const CELL_SLOTS: usize = 2;
const BUCKET_SLOTS: usize = 4;
const NODE_SLOTS: usize = 3;

// Slot offsets within a cell / bucket / node.
const CELL_COUNT: usize = 0;
const CELL_HEAD: usize = 1;
const BKT_NEXT: usize = 0;
const BKT_NODE_HEAD: usize = 1;
const BKT_NODE_TAIL: usize = 2;
const BKT_LEN: usize = 3;
const NODE_PREV: usize = 0;
const NODE_NEXT: usize = 1;
const NODE_ENTRY: usize = 2;

/// See module docs.
#[derive(Clone, Debug, Default)]
pub struct OriginalStore {
    cells: Vec<u64>,
    buckets: Vec<u64>,
    nodes: Vec<u64>,
    bucket_size: u64,
}

impl OriginalStore {
    /// Clear and re-dimension for `ncells` cells, reusing allocations.
    pub fn reset(&mut self, ncells: usize, bucket_size: u32, expected_points: usize) {
        self.bucket_size = bucket_size as u64;
        self.cells.clear();
        self.cells.resize(ncells * CELL_SLOTS, 0);
        // Directory starts with empty cells: count 0, head NULL.
        for c in 0..ncells {
            self.cells[c * CELL_SLOTS + CELL_HEAD] = NULL;
        }
        self.buckets.clear();
        self.nodes.clear();
        self.nodes.reserve(expected_points * NODE_SLOTS);
    }

    fn alloc_bucket(&mut self, next: u64) -> u64 {
        let h = (self.buckets.len() / BUCKET_SLOTS) as u64;
        self.buckets.extend_from_slice(&[next, NULL, NULL, 0]);
        h
    }

    fn alloc_node(&mut self, prev: u64, next: u64, entry: u64) -> u64 {
        let h = (self.nodes.len() / NODE_SLOTS) as u64;
        self.nodes.extend_from_slice(&[prev, next, entry]);
        h
    }

    /// Insert `entry` into `cell`, mirroring the original implementation:
    /// if the head bucket is full (or the cell empty) a new bucket is
    /// pushed at the front of the bucket list, and the entry's node is
    /// prepended to that bucket's doubly-linked node list.
    pub fn insert<T: Tracer>(&mut self, cell: usize, entry: EntryId, tr: &mut T) {
        let base = cell * CELL_SLOTS;
        tr.read(
            addr::DIR_BASE + (cell as u64) * addr::ORIG_CELL_BYTES,
            addr::ORIG_CELL_BYTES as u32,
        );
        let head = self.cells[base + CELL_HEAD];

        let bucket = if head == NULL
            || self.buckets[head as usize * BUCKET_SLOTS + BKT_LEN] == self.bucket_size
        {
            let b = self.alloc_bucket(head);
            self.cells[base + CELL_HEAD] = b;
            tr.write(
                addr::DIR_BASE + (cell as u64) * addr::ORIG_CELL_BYTES + 8,
                8,
            );
            b
        } else {
            head
        };
        let bbase = bucket as usize * BUCKET_SLOTS;
        tr.read(
            addr::BUCKET_BASE + bucket * addr::ORIG_BUCKET_BYTES,
            addr::ORIG_BUCKET_BYTES as u32,
        );

        let old_head = self.buckets[bbase + BKT_NODE_HEAD];
        let node = self.alloc_node(NULL, old_head, entry as u64);
        tr.write(
            addr::NODE_BASE + node * addr::ORIG_NODE_BYTES,
            addr::ORIG_NODE_BYTES as u32,
        );
        if old_head != NULL {
            self.nodes[old_head as usize * NODE_SLOTS + NODE_PREV] = node;
            tr.write(addr::NODE_BASE + old_head * addr::ORIG_NODE_BYTES, 8);
        } else {
            self.buckets[bbase + BKT_NODE_TAIL] = node;
        }
        self.buckets[bbase + BKT_NODE_HEAD] = node;
        self.buckets[bbase + BKT_LEN] += 1;
        tr.write(
            addr::BUCKET_BASE + bucket * addr::ORIG_BUCKET_BYTES,
            addr::ORIG_BUCKET_BYTES as u32,
        );

        self.cells[base + CELL_COUNT] += 1;
        tr.write(addr::DIR_BASE + (cell as u64) * addr::ORIG_CELL_BYTES, 8);
        tr.instr(12);
    }

    /// Number of entries in `cell` (the directory's counter field).
    pub fn cell_count(&self, cell: usize) -> u64 {
        self.cells[cell * CELL_SLOTS + CELL_COUNT]
    }

    /// Bucket-chain head of `cell`, reporting the directory touch.
    #[inline]
    pub fn cell_head<T: Tracer>(&self, cell: usize, tr: &mut T) -> u64 {
        tr.read(
            addr::DIR_BASE + (cell as u64) * addr::ORIG_CELL_BYTES,
            addr::ORIG_CELL_BYTES as u32,
        );
        tr.instr(2);
        self.cells[cell * CELL_SLOTS + CELL_HEAD]
    }

    /// Report every entry in `cell` to `emit` (query fast path: cell fully
    /// contained in the region). Walks bucket chain and per-bucket node
    /// lists.
    pub fn report_all<T: Tracer, F: FnMut(EntryId) + ?Sized>(
        &self,
        cell: usize,
        emit: &mut F,
        tr: &mut T,
    ) {
        let mut b = self.cell_head(cell, tr);
        while b != NULL {
            let bbase = b as usize * BUCKET_SLOTS;
            tr.read(
                addr::BUCKET_BASE + b * addr::ORIG_BUCKET_BYTES,
                addr::ORIG_BUCKET_BYTES as u32,
            );
            let mut n = self.buckets[bbase + BKT_NODE_HEAD];
            while n != NULL {
                let nbase = n as usize * NODE_SLOTS;
                tr.read(
                    addr::NODE_BASE + n * addr::ORIG_NODE_BYTES,
                    addr::ORIG_NODE_BYTES as u32,
                );
                emit(entry_id_u64(self.nodes[nbase + NODE_ENTRY]));
                n = self.nodes[nbase + NODE_NEXT];
                tr.instr(4);
            }
            b = self.buckets[bbase + BKT_NEXT];
            tr.instr(3);
        }
    }

    /// Report entries of `cell` whose base-table point lies in `region`
    /// to `emit` (query slow path: cell only intersects the region). Each
    /// candidate costs one extra hop into the base table — the indirection
    /// the refactoring cannot remove but whose *frequency* it reduces.
    pub fn filter<T: Tracer, F: FnMut(EntryId) + ?Sized>(
        &self,
        cell: usize,
        table: &PointTable,
        region: &Rect,
        emit: &mut F,
        tr: &mut T,
    ) {
        let mut b = self.cell_head(cell, tr);
        while b != NULL {
            let bbase = b as usize * BUCKET_SLOTS;
            tr.read(
                addr::BUCKET_BASE + b * addr::ORIG_BUCKET_BYTES,
                addr::ORIG_BUCKET_BYTES as u32,
            );
            let mut n = self.buckets[bbase + BKT_NODE_HEAD];
            while n != NULL {
                let nbase = n as usize * NODE_SLOTS;
                tr.read(
                    addr::NODE_BASE + n * addr::ORIG_NODE_BYTES,
                    addr::ORIG_NODE_BYTES as u32,
                );
                let entry = self.nodes[nbase + NODE_ENTRY];
                tr.read(addr::table_x(entry), addr::COORD_BYTES as u32);
                tr.read(addr::table_y(entry), addr::COORD_BYTES as u32);
                let e = entry_id_u64(entry);
                if region.contains_point(table.x(e), table.y(e)) {
                    emit(e);
                }
                n = self.nodes[nbase + NODE_NEXT];
                tr.instr(8);
            }
            b = self.buckets[bbase + BKT_NEXT];
            tr.instr(3);
        }
    }

    /// *Live* structure bytes in the three arenas (capacity excluded) —
    /// the paper's §3.1 arithmetic. The trait-level footprint
    /// (`SpatialIndex::memory_bytes`) uses [`OriginalStore::allocated_bytes`].
    pub fn live_bytes(&self) -> usize {
        (self.cells.len() + self.buckets.len() + self.nodes.len()) * std::mem::size_of::<u64>()
    }

    /// Bytes the arenas hold resident (allocated capacity — the
    /// workspace-wide footprint convention).
    pub fn allocated_bytes(&self) -> usize {
        (self.cells.capacity() + self.buckets.capacity() + self.nodes.capacity())
            * std::mem::size_of::<u64>()
    }

    pub fn num_buckets(&self) -> usize {
        self.buckets.len() / BUCKET_SLOTS
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len() / NODE_SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::trace::{CountingTracer, NullTracer};

    fn table_of(points: &[(f32, f32)]) -> PointTable {
        let mut t = PointTable::default();
        for &(x, y) in points {
            t.push(x, y);
        }
        t
    }

    #[test]
    fn insert_then_report_roundtrips() {
        let mut s = OriginalStore::default();
        s.reset(4, 4, 8);
        for e in 0..6 {
            s.insert(2, e, &mut NullTracer);
        }
        let mut out = Vec::new();
        s.report_all(2, &mut |e| out.push(e), &mut NullTracer);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(s.cell_count(2), 6);
        // 6 entries at bs=4 → 2 buckets, 6 nodes.
        assert_eq!(s.num_buckets(), 2);
        assert_eq!(s.num_nodes(), 6);
    }

    #[test]
    fn filter_respects_region() {
        let t = table_of(&[(1.0, 1.0), (5.0, 5.0), (9.0, 9.0)]);
        let mut s = OriginalStore::default();
        s.reset(1, 4, 4);
        for e in 0..3 {
            s.insert(0, e, &mut NullTracer);
        }
        let mut out = Vec::new();
        s.filter(
            0,
            &t,
            &Rect::new(0.0, 0.0, 6.0, 6.0),
            &mut |e| out.push(e),
            &mut NullTracer,
        );
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn empty_cell_reports_nothing() {
        let mut s = OriginalStore::default();
        s.reset(3, 4, 0);
        let mut out = Vec::new();
        s.report_all(1, &mut |e| out.push(e), &mut NullTracer);
        assert!(out.is_empty());
    }

    #[test]
    fn memory_matches_paper_arithmetic() {
        // n = 100 points in one cell at bs = 4: nodes 100×24 B,
        // buckets ceil(100/4)=25 × 32 B, directory 1 × 16 B.
        let mut s = OriginalStore::default();
        s.reset(1, 4, 100);
        for e in 0..100 {
            s.insert(0, e, &mut NullTracer);
        }
        assert_eq!(s.live_bytes(), 100 * 24 + 25 * 32 + 16);
        assert!(s.allocated_bytes() >= s.live_bytes());
    }

    #[test]
    fn report_touches_directory_buckets_and_nodes() {
        let mut s = OriginalStore::default();
        s.reset(1, 4, 4);
        for e in 0..4 {
            s.insert(0, e, &mut NullTracer);
        }
        let mut tr = CountingTracer::default();
        let mut out = Vec::new();
        s.report_all(0, &mut |e| out.push(e), &mut tr);
        // 1 directory read + 1 bucket read + 4 node reads.
        assert_eq!(tr.reads, 6);
    }

    #[test]
    fn filter_touches_base_table_per_candidate() {
        let t = table_of(&[(0.0, 0.0), (1.0, 1.0)]);
        let mut s = OriginalStore::default();
        s.reset(1, 4, 2);
        s.insert(0, 0, &mut NullTracer);
        s.insert(0, 1, &mut NullTracer);
        let mut tr = CountingTracer::default();
        let mut out = Vec::new();
        s.filter(
            0,
            &t,
            &Rect::new(0.0, 0.0, 2.0, 2.0),
            &mut |e| out.push(e),
            &mut tr,
        );
        // dir + bucket + 2 nodes + 2×(x read + y read) = 8 reads.
        assert_eq!(tr.reads, 8);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn bucket_chain_grows_at_head() {
        let mut s = OriginalStore::default();
        s.reset(1, 2, 6);
        for e in 0..5 {
            s.insert(0, e, &mut NullTracer);
        }
        // bs = 2, 5 entries → 3 buckets; head bucket holds the latest.
        assert_eq!(s.num_buckets(), 3);
        let mut out = Vec::new();
        s.report_all(0, &mut |e| out.push(e), &mut NullTracer);
        assert_eq!(out.len(), 5);
        // Latest insert is encountered first (prepend at head of head).
        assert_eq!(out[0], 4);
    }
}
