//! # sj-rtree
//!
//! A main-memory R-tree [Guttman, SIGMOD 1984] bulk-loaded with
//! Sort-Tile-Recursive packing [Leutenegger et al., ICDE 1997], as used by
//! the static index nested loop join category of the paper's framework.
//! The [`str_pack`] module is shared with the CR-tree (`sj-crtree`).
//!
//! The [`dynamic`] module additionally provides an incrementally
//! maintained Guttman R-tree (quadratic split) — an extension beyond the
//! paper's static category, used by the ablation benches.

pub mod dynamic;
pub mod str_pack;
mod tree;

pub use dynamic::DynRTree;
pub use str_pack::str_order;
pub use tree::{RTree, DEFAULT_FANOUT};
