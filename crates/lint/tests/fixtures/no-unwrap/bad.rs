//@ path: crates/x/src/lib.rs
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
