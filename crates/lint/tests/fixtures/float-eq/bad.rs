//@ path: crates/x/src/lib.rs
pub fn is_origin(x: f64) -> bool {
    x == 0.0
}
