//! Property-based tests: the plane sweep agrees with the naive nested
//! loop on arbitrary point sets and query batches.

use proptest::prelude::*;
use sj_base::batch::{BatchJoin, NaiveBatchJoin};
use sj_base::geom::Rect;
use sj_base::table::{EntryId, PointTable};
use sj_sweep::PlaneSweepJoin;

const SIDE: f32 = 500.0;

fn arb_points() -> impl Strategy<Value = Vec<(f32, f32)>> {
    prop::collection::vec((0.0f32..=SIDE, 0.0f32..=SIDE), 0..200)
}

fn arb_queries() -> impl Strategy<Value = Vec<(u32, f32, f32, f32, f32)>> {
    prop::collection::vec(
        (
            0u32..100,
            0.0f32..=SIDE,
            0.0f32..=SIDE,
            0.0f32..=150.0,
            0.0f32..=150.0,
        ),
        0..60,
    )
}

fn run_case(points: Vec<(f32, f32)>, qs: Vec<(u32, f32, f32, f32, f32)>) {
    let mut t = PointTable::default();
    for &(x, y) in &points {
        t.push(x, y);
    }
    let queries: Vec<(EntryId, Rect)> = qs
        .iter()
        .map(|&(id, x, y, w, h)| (id, Rect::new(x, y, (x + w).min(SIDE), (y + h).min(SIDE))))
        .collect();
    let mut sweep_out = Vec::new();
    PlaneSweepJoin::new().join(&t, &queries, &mut sweep_out);
    sweep_out.sort_unstable();
    let mut naive_out = Vec::new();
    NaiveBatchJoin.join(&t, &queries, &mut naive_out);
    naive_out.sort_unstable();
    assert_eq!(sweep_out, naive_out);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sweep_agrees_with_naive(points in arb_points(), qs in arb_queries()) {
        run_case(points, qs);
    }

    #[test]
    fn sweep_agrees_on_degenerate_zero_width_queries(
        points in arb_points(),
        edges in prop::collection::vec((0u32..100, 0.0f32..=SIDE, 0.0f32..=SIDE), 0..40),
    ) {
        // Zero-area queries sitting exactly on point coordinates.
        let qs = edges.into_iter().map(|(id, x, y)| (id, x, y, 0.0, 0.0)).collect();
        run_case(points, qs);
    }

    #[test]
    fn sweep_agrees_on_vertically_aligned_points(
        x in 0.0f32..=SIDE,
        ys in prop::collection::vec(0.0f32..=SIDE, 0..100),
        qs in arb_queries(),
    ) {
        // All points share one x: the activation loop floods at once.
        let points = ys.into_iter().map(|y| (x, y)).collect();
        run_case(points, qs);
    }
}
