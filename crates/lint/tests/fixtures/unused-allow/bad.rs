//@ path: crates/x/src/lib.rs
// sj-lint: allow(no-unwrap)
pub fn double(x: u32) -> u32 {
    x * 2
}
