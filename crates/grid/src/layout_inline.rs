//! The refactored Simple Grid storage (Figure 3b) and the coordinate-
//! inlining extension.
//!
//! The paper's two structural changes (§3.1):
//! 1. the directory cell drops the counter — a single 8-byte bucket handle;
//! 2. buckets store entry handles *inline* — a 16-byte header
//!    (`next`, `len`) followed by `bs` 8-byte entry slots — eliminating the
//!    doubly-linked node layer and one level of indirection.
//!
//! At bs = 4 this is 8 + 16/4 = 12 bytes per point, vs. 32 before.
//!
//! [`InlineCoordsStore`] additionally copies the point coordinates next to
//! each entry (2 slots per entry), removing the base-table hop during
//! filtering. The paper deliberately skips this (it breaks the
//! secondary-index assumption); we implement it as an ablation.

use sj_base::geom::Rect;
use sj_base::table::{entry_id_u64, EntryId, PointTable};
use sj_base::trace::Tracer;

use crate::addr;
use crate::layout_original::NULL;

const BKT_NEXT: usize = 0;
const BKT_LEN: usize = 1;
const HEADER_SLOTS: usize = 2;

/// See module docs: the Figure 3b layout.
#[derive(Clone, Debug, Default)]
pub struct InlineStore {
    /// One slot per cell: head bucket handle.
    cells: Vec<u64>,
    /// Flat bucket arena; bucket `b` occupies slots
    /// `[b, b + 2 + bs)`: `[next, len, entry…]`. Handles are slot indices.
    buckets: Vec<u64>,
    bucket_slots: usize,
    bucket_size: u64,
}

impl InlineStore {
    pub fn reset(&mut self, ncells: usize, bucket_size: u32, expected_points: usize) {
        self.bucket_size = bucket_size as u64;
        self.bucket_slots = HEADER_SLOTS + bucket_size as usize;
        self.cells.clear();
        self.cells.resize(ncells, NULL);
        self.buckets.clear();
        let expected_buckets = expected_points / bucket_size.max(1) as usize + ncells;
        self.buckets.reserve(expected_buckets * self.bucket_slots);
    }

    fn alloc_bucket(&mut self, next: u64) -> u64 {
        let h = self.buckets.len() as u64;
        self.buckets.push(next);
        self.buckets.push(0); // len
        self.buckets
            .resize(self.buckets.len() + self.bucket_size as usize, 0);
        h
    }

    pub fn insert<T: Tracer>(&mut self, cell: usize, entry: EntryId, tr: &mut T) {
        tr.read(
            addr::DIR_BASE + cell as u64 * addr::INLINE_CELL_BYTES,
            addr::INLINE_CELL_BYTES as u32,
        );
        let head = self.cells[cell];
        let bucket = if head == NULL || self.buckets[head as usize + BKT_LEN] == self.bucket_size {
            let b = self.alloc_bucket(head);
            self.cells[cell] = b;
            tr.write(
                addr::DIR_BASE + cell as u64 * addr::INLINE_CELL_BYTES,
                addr::INLINE_CELL_BYTES as u32,
            );
            b
        } else {
            head
        };
        let bbase = bucket as usize;
        tr.read(
            addr::BUCKET_BASE + bucket * 8,
            addr::INLINE_BUCKET_HEADER_BYTES as u32,
        );
        let len = self.buckets[bbase + BKT_LEN];
        self.buckets[bbase + HEADER_SLOTS + len as usize] = entry as u64;
        self.buckets[bbase + BKT_LEN] = len + 1;
        tr.write(
            addr::BUCKET_BASE + (bucket + HEADER_SLOTS as u64 + len) * 8,
            addr::ENTRY_BYTES as u32,
        );
        tr.write(addr::BUCKET_BASE + (bucket + BKT_LEN as u64) * 8, 8);
        tr.instr(8);
    }

    #[inline]
    fn cell_head<T: Tracer>(&self, cell: usize, tr: &mut T) -> u64 {
        tr.read(
            addr::DIR_BASE + cell as u64 * addr::INLINE_CELL_BYTES,
            addr::INLINE_CELL_BYTES as u32,
        );
        tr.instr(2);
        self.cells[cell]
    }

    pub fn report_all<T: Tracer, F: FnMut(EntryId) + ?Sized>(
        &self,
        cell: usize,
        emit: &mut F,
        tr: &mut T,
    ) {
        let mut b = self.cell_head(cell, tr);
        while b != NULL {
            let bbase = b as usize;
            let len = self.buckets[bbase + BKT_LEN] as usize;
            tr.read(
                addr::BUCKET_BASE + b * 8,
                (addr::INLINE_BUCKET_HEADER_BYTES as usize + len * addr::ENTRY_BYTES as usize)
                    as u32,
            );
            for slot in 0..len {
                emit(entry_id_u64(self.buckets[bbase + HEADER_SLOTS + slot]));
            }
            tr.instr(2 * len as u64 + 3);
            b = self.buckets[bbase + BKT_NEXT];
        }
    }

    pub fn filter<T: Tracer, F: FnMut(EntryId) + ?Sized>(
        &self,
        cell: usize,
        table: &PointTable,
        region: &Rect,
        emit: &mut F,
        tr: &mut T,
    ) {
        let mut b = self.cell_head(cell, tr);
        while b != NULL {
            let bbase = b as usize;
            let len = self.buckets[bbase + BKT_LEN] as usize;
            tr.read(
                addr::BUCKET_BASE + b * 8,
                (addr::INLINE_BUCKET_HEADER_BYTES as usize + len * addr::ENTRY_BYTES as usize)
                    as u32,
            );
            for slot in 0..len {
                let entry = self.buckets[bbase + HEADER_SLOTS + slot];
                tr.read(addr::table_x(entry), addr::COORD_BYTES as u32);
                tr.read(addr::table_y(entry), addr::COORD_BYTES as u32);
                let e = entry_id_u64(entry);
                if region.contains_point(table.x(e), table.y(e)) {
                    emit(e);
                }
            }
            tr.instr(6 * len as u64 + 3);
            b = self.buckets[bbase + BKT_NEXT];
        }
    }

    /// Live structure bytes (paper §3.1 arithmetic); the trait-level
    /// footprint uses [`InlineStore::allocated_bytes`].
    pub fn live_bytes(&self) -> usize {
        (self.cells.len() + self.buckets.len()) * std::mem::size_of::<u64>()
    }

    /// Bytes the arenas hold resident (allocated capacity — the
    /// workspace-wide footprint convention).
    pub fn allocated_bytes(&self) -> usize {
        (self.cells.capacity() + self.buckets.capacity()) * std::mem::size_of::<u64>()
    }

    pub fn num_buckets(&self) -> usize {
        self.buckets
            .len()
            .checked_div(self.bucket_slots)
            .unwrap_or(0)
    }
}

/// Extension: entry handles *and* coordinates inline (2 slots per entry:
/// `[entry, packed (x, y) f32 bits]`). Filtering never touches the base
/// table. See DESIGN.md §7.
#[derive(Clone, Debug, Default)]
pub struct InlineCoordsStore {
    cells: Vec<u64>,
    buckets: Vec<u64>,
    bucket_slots: usize,
    bucket_size: u64,
}

#[inline]
fn pack_xy(x: f32, y: f32) -> u64 {
    ((x.to_bits() as u64) << 32) | y.to_bits() as u64
}

#[inline]
fn unpack_xy(v: u64) -> (f32, f32) {
    (f32::from_bits((v >> 32) as u32), f32::from_bits(v as u32))
}

impl InlineCoordsStore {
    pub fn reset(&mut self, ncells: usize, bucket_size: u32, expected_points: usize) {
        self.bucket_size = bucket_size as u64;
        self.bucket_slots = HEADER_SLOTS + 2 * bucket_size as usize;
        self.cells.clear();
        self.cells.resize(ncells, NULL);
        self.buckets.clear();
        let expected_buckets = expected_points / bucket_size.max(1) as usize + ncells;
        self.buckets.reserve(expected_buckets * self.bucket_slots);
    }

    fn alloc_bucket(&mut self, next: u64) -> u64 {
        let h = self.buckets.len() as u64;
        self.buckets.push(next);
        self.buckets.push(0);
        self.buckets
            .resize(self.buckets.len() + 2 * self.bucket_size as usize, 0);
        h
    }

    pub fn insert<T: Tracer>(&mut self, cell: usize, entry: EntryId, x: f32, y: f32, tr: &mut T) {
        tr.read(
            addr::DIR_BASE + cell as u64 * addr::INLINE_CELL_BYTES,
            addr::INLINE_CELL_BYTES as u32,
        );
        let head = self.cells[cell];
        let bucket = if head == NULL || self.buckets[head as usize + BKT_LEN] == self.bucket_size {
            let b = self.alloc_bucket(head);
            self.cells[cell] = b;
            tr.write(
                addr::DIR_BASE + cell as u64 * addr::INLINE_CELL_BYTES,
                addr::INLINE_CELL_BYTES as u32,
            );
            b
        } else {
            head
        };
        let bbase = bucket as usize;
        let len = self.buckets[bbase + BKT_LEN] as usize;
        self.buckets[bbase + HEADER_SLOTS + 2 * len] = entry as u64;
        self.buckets[bbase + HEADER_SLOTS + 2 * len + 1] = pack_xy(x, y);
        self.buckets[bbase + BKT_LEN] = len as u64 + 1;
        tr.write(
            addr::BUCKET_BASE + (bucket + (HEADER_SLOTS + 2 * len) as u64) * 8,
            16,
        );
        tr.instr(10);
    }

    pub fn report_all<T: Tracer, F: FnMut(EntryId) + ?Sized>(
        &self,
        cell: usize,
        emit: &mut F,
        tr: &mut T,
    ) {
        tr.read(
            addr::DIR_BASE + cell as u64 * addr::INLINE_CELL_BYTES,
            addr::INLINE_CELL_BYTES as u32,
        );
        let mut b = self.cells[cell];
        while b != NULL {
            let bbase = b as usize;
            let len = self.buckets[bbase + BKT_LEN] as usize;
            tr.read(addr::BUCKET_BASE + b * 8, (16 + len * 16) as u32);
            for slot in 0..len {
                emit(entry_id_u64(self.buckets[bbase + HEADER_SLOTS + 2 * slot]));
            }
            tr.instr(2 * len as u64 + 3);
            b = self.buckets[bbase + BKT_NEXT];
        }
    }

    /// Filter using the *inlined* coordinates — no base-table access.
    pub fn filter<T: Tracer, F: FnMut(EntryId) + ?Sized>(
        &self,
        cell: usize,
        region: &Rect,
        emit: &mut F,
        tr: &mut T,
    ) {
        tr.read(
            addr::DIR_BASE + cell as u64 * addr::INLINE_CELL_BYTES,
            addr::INLINE_CELL_BYTES as u32,
        );
        let mut b = self.cells[cell];
        while b != NULL {
            let bbase = b as usize;
            let len = self.buckets[bbase + BKT_LEN] as usize;
            tr.read(addr::BUCKET_BASE + b * 8, (16 + len * 16) as u32);
            for slot in 0..len {
                let (x, y) = unpack_xy(self.buckets[bbase + HEADER_SLOTS + 2 * slot + 1]);
                if region.contains_point(x, y) {
                    emit(entry_id_u64(self.buckets[bbase + HEADER_SLOTS + 2 * slot]));
                }
            }
            tr.instr(5 * len as u64 + 3);
            b = self.buckets[bbase + BKT_NEXT];
        }
    }

    /// Live structure bytes (paper §3.1 arithmetic); the trait-level
    /// footprint uses [`InlineCoordsStore::allocated_bytes`].
    pub fn live_bytes(&self) -> usize {
        (self.cells.len() + self.buckets.len()) * std::mem::size_of::<u64>()
    }

    /// Bytes the arenas hold resident (allocated capacity — the
    /// workspace-wide footprint convention).
    pub fn allocated_bytes(&self) -> usize {
        (self.cells.capacity() + self.buckets.capacity()) * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::trace::{CountingTracer, NullTracer};

    fn table_of(points: &[(f32, f32)]) -> PointTable {
        let mut t = PointTable::default();
        for &(x, y) in points {
            t.push(x, y);
        }
        t
    }

    #[test]
    fn insert_then_report_roundtrips() {
        let mut s = InlineStore::default();
        s.reset(4, 4, 8);
        for e in 0..6 {
            s.insert(1, e, &mut NullTracer);
        }
        let mut out = Vec::new();
        s.report_all(1, &mut |e| out.push(e), &mut NullTracer);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(s.num_buckets(), 2);
    }

    #[test]
    fn filter_respects_region() {
        let t = table_of(&[(1.0, 1.0), (5.0, 5.0), (9.0, 9.0)]);
        let mut s = InlineStore::default();
        s.reset(1, 4, 4);
        for e in 0..3 {
            s.insert(0, e, &mut NullTracer);
        }
        let mut out = Vec::new();
        s.filter(
            0,
            &t,
            &Rect::new(4.0, 4.0, 10.0, 10.0),
            &mut |e| out.push(e),
            &mut NullTracer,
        );
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn memory_matches_paper_arithmetic() {
        // 100 points, one cell, bs = 4: buckets 25 × (16 + 4×8) B = 1200 B,
        // directory 1 × 8 B. Per point: 8 + 16/4 = 12 B (+ directory).
        let mut s = InlineStore::default();
        s.reset(1, 4, 100);
        for e in 0..100 {
            s.insert(0, e, &mut NullTracer);
        }
        assert_eq!(s.live_bytes(), 25 * (16 + 4 * 8) + 8);
        assert!(s.allocated_bytes() >= s.live_bytes());
    }

    #[test]
    fn report_needs_fewer_touches_than_original_layout() {
        // Same 4 entries as the original-layout test, which needed 6 reads
        // (dir + bucket + 4 nodes); inline needs only dir + bucket.
        let mut s = InlineStore::default();
        s.reset(1, 4, 4);
        for e in 0..4 {
            s.insert(0, e, &mut NullTracer);
        }
        let mut tr = CountingTracer::default();
        let mut out = Vec::new();
        s.report_all(0, &mut |e| out.push(e), &mut tr);
        assert_eq!(tr.reads, 2);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn inline_coords_filter_skips_base_table() {
        let mut s = InlineCoordsStore::default();
        s.reset(1, 4, 4);
        s.insert(0, 0, 1.0, 1.0, &mut NullTracer);
        s.insert(0, 1, 5.0, 5.0, &mut NullTracer);
        s.insert(0, 2, 9.0, 9.0, &mut NullTracer);
        let mut tr = CountingTracer::default();
        let mut out = Vec::new();
        s.filter(
            0,
            &Rect::new(0.0, 0.0, 6.0, 6.0),
            &mut |e| out.push(e),
            &mut tr,
        );
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
        // dir + one bucket read; zero base-table touches.
        assert_eq!(tr.reads, 2);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for &(x, y) in &[(0.0f32, 0.0f32), (-1.5, 3.25), (22_000.0, 1e-7)] {
            let (ux, uy) = unpack_xy(pack_xy(x, y));
            assert_eq!((ux, uy), (x, y));
        }
    }

    #[test]
    fn bucket_overflow_chains() {
        let mut s = InlineStore::default();
        s.reset(1, 2, 10);
        for e in 0..7 {
            s.insert(0, e, &mut NullTracer);
        }
        assert_eq!(s.num_buckets(), 4); // ceil(7/2)
        let mut out = Vec::new();
        s.report_all(0, &mut |e| out.push(e), &mut NullTracer);
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn reset_reuses_cleanly() {
        let mut s = InlineStore::default();
        s.reset(2, 4, 4);
        s.insert(0, 42, &mut NullTracer);
        s.reset(2, 4, 4);
        let mut out = Vec::new();
        s.report_all(0, &mut |e| out.push(e), &mut NullTracer);
        assert!(out.is_empty(), "stale entries after reset: {out:?}");
    }
}
