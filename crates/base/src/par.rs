//! The parallel query phase — a first-class execution mode, not a facade.
//!
//! The paper's setting is deliberately single-threaded ("even
//! single-threaded settings", §4); once the implementation is
//! cache-efficient, the remaining headroom is structural. Tsitsigkos &
//! Mamoulis ("Parallel In-Memory Evaluation of Spatial Joins") show
//! partition-parallel joins scale near-linearly on exactly the grid/sweep
//! techniques reproduced here, and the tick model makes the query phase
//! embarrassingly parallel: queries only *read* the index and the base
//! table, and the build/update phases stay sequential, so the previous-tick
//! semantics are untouched.
//!
//! Two *query-sharding* strategies cover the paper's two join categories
//! (DESIGN.md §8):
//!
//! - [`shard_index_query`] — the per-query category: the tick's querier
//!   list is split into `threads` contiguous chunks, each worker probes the
//!   shared (immutable) index for its chunk;
//! - [`shard_batch_join`] — the set-at-a-time category: the tick's query
//!   set is split into strips, each worker runs a full sweep over its strip
//!   on a private fork of the technique ([`BatchJoin::fork`]).
//!
//! A third mode partitions **space** instead of the query list
//! ([`ExecMode::Partitioned`], DESIGN.md §13): the data space is tiled
//! ([`crate::tile::TileGrid`]), both relations are replicated into every
//! tile their query extent overlaps, and each tile builds and probes its
//! own private index ([`tiled_index_build`]/[`tiled_index_query`]) or runs
//! its own batch join ([`tiled_batch_join`]) — no shared structure at all,
//! the design of Tsitsigkos & Mamoulis. The reference-point rule (emit
//! `(a, b)` only in `b`'s canonical tile) makes each pair surface exactly
//! once despite the replication.
//!
//! All modes merge per-worker `(pairs, checksum)` partials with `+` /
//! `wrapping_add`. The checksum fold ([`crate::driver::fold_pair`]) mixes
//! each pair and then wrapping-adds, so it is commutative and associative —
//! the merge is order-independent by construction, and the parallel result
//! is **bit-identical** to the sequential one for any shard boundaries,
//! thread count, or tile count (`tests/parallel_equivalence.rs` proves
//! this three ways for every registry technique).
//!
//! Workers run on [`std::thread::scope`]: no runtime dependency, no
//! detached threads, borrows of the index and table flow straight in.
//! Every thread spawn in the workspace lives in this module.

use std::num::NonZeroUsize;

use crate::batch::BatchJoin;
use crate::driver::fold_pair;
use crate::geom::Rect;
use crate::index::SpatialIndex;
use crate::table::{EntryId, PointTable};
use crate::tile::{replicate_by_extent, TileGrid, TileReplica};

/// How the driver executes a tick's query phase.
///
/// `Parallel` holds a [`NonZeroUsize`], so a zero-thread configuration is
/// unrepresentable — the old `run_join_parallel(.., threads: usize)` entry
/// point had to `assert!(threads > 0)` at runtime; this type moves that
/// guarantee to compile time. CLI layers reject `--threads 0` while
/// parsing (see `sj-bench`), before an `ExecMode` ever exists.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// The paper-faithful single-threaded query phase.
    #[default]
    Sequential,
    /// Query phase sharded over `threads` scoped workers. Results are
    /// bit-identical to [`ExecMode::Sequential`] (see module docs).
    Parallel { threads: NonZeroUsize },
    /// Space-partitioned execution over a grid of `tiles` tiles, one
    /// worker per tile, each owning a private index/join fork over its
    /// replicated slice of the data ([`crate::tile`]). Results are
    /// bit-identical to [`ExecMode::Sequential`] (see module docs);
    /// `RunStats::index_bytes` alone is mode-structural — it reports the
    /// summed footprint of the per-tile indexes.
    Partitioned { tiles: NonZeroUsize },
}

impl ExecMode {
    /// Parallel execution over `threads` workers; `None` if `threads == 0`.
    pub const fn parallel(threads: usize) -> Option<ExecMode> {
        match NonZeroUsize::new(threads) {
            Some(threads) => Some(ExecMode::Parallel { threads }),
            None => None,
        }
    }

    /// Space-partitioned execution over `tiles` tiles; `None` if
    /// `tiles == 0`.
    pub const fn partitioned(tiles: usize) -> Option<ExecMode> {
        match NonZeroUsize::new(tiles) {
            Some(tiles) => Some(ExecMode::Partitioned { tiles }),
            None => None,
        }
    }

    /// Worker count: 1 for [`ExecMode::Sequential`], one per tile for
    /// [`ExecMode::Partitioned`].
    pub const fn threads(self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel { threads } => threads.get(),
            ExecMode::Partitioned { tiles } => tiles.get(),
        }
    }

    /// Whether the query phase runs on multiple workers (either
    /// query-sharded or space-partitioned).
    pub const fn is_parallel(self) -> bool {
        !matches!(self, ExecMode::Sequential)
    }

    /// Whether this is the space-partitioned (tiled) mode.
    pub const fn is_partitioned(self) -> bool {
        matches!(self, ExecMode::Partitioned { .. })
    }

    /// This mode unless it is [`ExecMode::Sequential`], in which case
    /// `fallback` — the precedence rule for layered configuration (a
    /// technique spec's `@par<N>`/`@tiles<N>` modifier over a CLI-wide
    /// `--threads`/`--tiles`).
    pub const fn or(self, fallback: ExecMode) -> ExecMode {
        match self {
            ExecMode::Sequential => fallback,
            chosen => chosen,
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Sequential => f.write_str("sequential"),
            ExecMode::Parallel { threads } => write!(f, "parallel({threads})"),
            ExecMode::Partitioned { tiles } => write!(f, "tiled({tiles})"),
        }
    }
}

/// Split `len` work items into at most `threads` contiguous chunks.
fn chunk_size(len: usize, threads: NonZeroUsize) -> usize {
    len.div_ceil(threads.get()).max(1)
}

/// The per-query category's parallel query phase: shard `queriers` into
/// contiguous chunks, probe the shared `index` from each worker, and merge
/// the per-worker partials. Returns `(pairs, checksum)` — the checksum is
/// a delta starting from 0, to be `wrapping_add`ed onto the running total
/// (equivalent to folding every pair into that total directly, because the
/// fold is a commutative wrapping sum).
///
/// `data` is the table the index was built over; `centers` is the table
/// query regions are centred on. For a self-join they are the same table;
/// for a bipartite R ⋈ S join (`run_bipartite_join`), `centers` is the
/// query relation R and `data` the indexed data relation S.
///
/// Each worker computes its own query regions, exactly like the sequential
/// per-query executor: issuing a query, region arithmetic included, is part
/// of that category's per-query cost.
pub fn shard_index_query<I: SpatialIndex + Sync + ?Sized>(
    index: &I,
    data: &PointTable,
    centers: &PointTable,
    queriers: &[EntryId],
    space: &Rect,
    query_side: f32,
    threads: NonZeroUsize,
) -> (u64, u64) {
    let chunk = chunk_size(queriers.len(), threads);
    let shards: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = queriers
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    let mut pairs = 0u64;
                    let mut checksum = 0u64;
                    for &q in shard {
                        let region =
                            Rect::centered_square(centers.point(q), query_side).clipped_to(space);
                        // Sink fold, like the sequential executor: no
                        // per-query result materialization in any shard.
                        index.for_each_in(data, &region, &mut |r| {
                            pairs += 1;
                            checksum = fold_pair(checksum, q, r);
                        });
                    }
                    (pairs, checksum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query shard panicked"))
            .collect()
    });
    merge(shards)
}

/// Reusable per-worker state for [`shard_batch_join`]: a private fork of
/// the technique ([`BatchJoin::fork`]) plus its output buffer. Callers
/// keep the vector alive across ticks, so steady-state parallel joins
/// fork and allocate nothing — mirroring the sequential executor's reused
/// pair buffer, and keeping one-time setup cost out of the timed query
/// phase after the first tick.
pub struct BatchWorker {
    join: Box<dyn BatchJoin + Send>,
    out: Vec<(EntryId, EntryId)>,
}

/// The set-at-a-time category's parallel query phase: partition the tick's
/// query set into contiguous strips and join each independently on its own
/// [`BatchWorker`] (private scratch, shared read-only base table; `workers`
/// grows on demand and is reused across calls). Returns `(pairs, checksum)`
/// with the same delta semantics as [`shard_index_query`]. `queriers` and
/// `data` are the two relation tables of [`BatchJoin::join_two`] — the
/// same table twice for a self-join.
///
/// Strips partition the query set, so the union of the strip joins is
/// exactly the full join and the commutative checksum merge reproduces the
/// sequential result bit for bit.
pub fn shard_batch_join<J: BatchJoin + ?Sized>(
    join: &J,
    queriers: &PointTable,
    data: &PointTable,
    queries: &[(EntryId, Rect)],
    threads: NonZeroUsize,
    workers: &mut Vec<BatchWorker>,
) -> (u64, u64) {
    let chunk = chunk_size(queries.len(), threads);
    let strips = queries.chunks(chunk);
    while workers.len() < strips.len() {
        // Fork on the spawning thread; each worker owns its instance, so
        // `J` itself needs no `Sync`.
        workers.push(BatchWorker {
            join: join.fork(),
            out: Vec::new(),
        });
    }
    let shards: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = strips
            .zip(workers.iter_mut())
            .map(|(strip, worker)| {
                scope.spawn(move || {
                    worker.out.clear();
                    worker.join.join_two(queriers, data, strip, &mut worker.out);
                    let mut checksum = 0u64;
                    for &(q, r) in &worker.out {
                        checksum = fold_pair(checksum, q, r);
                    }
                    (worker.out.len() as u64, checksum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch strip panicked"))
            .collect()
    });
    merge(shards)
}

/// One tile's worker state for the space-partitioned per-query category:
/// a private fork of the index plus the tick's querier assignment.
struct TileIndexWorker {
    index: Box<dyn SpatialIndex + Send>,
    queriers: Vec<EntryId>,
}

/// Reusable state of the space-partitioned per-query executor: the tile
/// grid, per-tile data replicas, and per-tile index forks. Owned by the
/// driver's index executor and kept across ticks, so steady-state tiled
/// execution forks nothing and reuses every buffer — mirroring
/// [`BatchWorker`] reuse in the sharded mode.
#[derive(Default)]
pub struct TileIndexPool {
    grid: Option<TileGrid>,
    replicas: Vec<TileReplica>,
    workers: Vec<TileIndexWorker>,
}

impl TileIndexPool {
    /// Summed [`SpatialIndex::memory_bytes`] of the per-tile indexes, or
    /// `None` if no tiled build ever ran (the run was not partitioned).
    /// Replication makes this mode-structural: it cannot equal the
    /// sequential single-index footprint and is excluded from the
    /// bit-identity contract (DESIGN.md §13).
    pub fn index_bytes(&self) -> Option<usize> {
        self.grid
            .map(|_| self.workers.iter().map(|w| w.index.memory_bytes()).sum())
    }
}

/// The space-partitioned build phase of the per-query category: tile the
/// space, replicate the table's live rows into the tiles their query
/// extent overlaps ([`replicate_by_extent`]), and (re)build every tile's
/// private fork of `proto` over its replica — one scoped worker per tile,
/// since the per-tile builds are fully independent. Runs inside the timed
/// build phase: partitioning and tile builds are this mode's build cost.
pub fn tiled_index_build<I: SpatialIndex + ?Sized>(
    proto: &I,
    table: &PointTable,
    space: &Rect,
    query_side: f32,
    tiles: NonZeroUsize,
    pool: &mut TileIndexPool,
) {
    let grid = TileGrid::new(space, tiles);
    pool.grid = Some(grid);
    while pool.workers.len() < grid.tiles() {
        // Fork on the driver thread, first tiled build only.
        pool.workers.push(TileIndexWorker {
            index: proto.fork(),
            queriers: Vec::new(),
        });
    }
    pool.workers.truncate(grid.tiles());
    replicate_by_extent(table, &grid, query_side, &mut pool.replicas);
    std::thread::scope(|scope| {
        for (worker, replica) in pool.workers.iter_mut().zip(pool.replicas.iter()) {
            scope.spawn(move || worker.index.build(&replica.table));
        }
    });
}

/// The space-partitioned query phase of the per-query category: assign
/// each querier to every tile its clipped region overlaps, then probe each
/// tile's private index on its own scoped worker, keeping a `(querier,
/// row)` hit only if the row's canonical tile is this tile (the
/// reference-point rule — see [`crate::tile`] for the exactness proof).
/// Emitted rows are translated back to global handles through the replica
/// map, so the folded `(pairs, checksum)` delta is bit-identical to the
/// sequential fold.
pub fn tiled_index_query(
    pool: &mut TileIndexPool,
    centers: &PointTable,
    queriers: &[EntryId],
    space: &Rect,
    query_side: f32,
) -> (u64, u64) {
    let grid = pool
        .grid
        .expect("tiled_index_query before tiled_index_build");
    for w in &mut pool.workers {
        w.queriers.clear();
    }
    for &q in queriers {
        let region = Rect::centered_square(centers.point(q), query_side).clipped_to(space);
        for t in grid.cover(&region) {
            pool.workers[t].queriers.push(q);
        }
    }
    let shards: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = pool
            .workers
            .iter_mut()
            .zip(pool.replicas.iter())
            .enumerate()
            .map(|(t, (worker, replica))| {
                scope.spawn(move || {
                    let mut pairs = 0u64;
                    let mut checksum = 0u64;
                    let index = &worker.index;
                    let xs = replica.table.xs();
                    let ys = replica.table.ys();
                    for &q in &worker.queriers {
                        let region =
                            Rect::centered_square(centers.point(q), query_side).clipped_to(space);
                        index.for_each_in(&replica.table, &region, &mut |local| {
                            let l = local as usize;
                            // Reference-point rule: only the canonical tile
                            // of the matched row reports the pair.
                            if grid.tile_of(xs[l], ys[l]) == t {
                                pairs += 1;
                                checksum = fold_pair(checksum, q, replica.to_global[l]);
                            }
                        });
                    }
                    (pairs, checksum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tile worker panicked"))
            .collect()
    });
    merge(shards)
}

/// One tile's worker state for the space-partitioned batch category: a
/// private fork of the join plus the tick's query assignment and output
/// buffer.
struct TileBatchWorker {
    join: Box<dyn BatchJoin + Send>,
    queries: Vec<(EntryId, Rect)>,
    out: Vec<(EntryId, EntryId)>,
}

/// Reusable state of the space-partitioned batch executor (see
/// [`TileIndexPool`] for the reuse rationale).
#[derive(Default)]
pub struct TileBatchPool {
    replicas: Vec<TileReplica>,
    workers: Vec<TileBatchWorker>,
}

/// The space-partitioned query phase of the set-at-a-time category: tile
/// the space, replicate the data relation's live rows by query extent,
/// assign each pre-built query to every tile its region overlaps, and run
/// each tile's batch join on a private fork ([`BatchJoin::fork`]) over its
/// local replica — then keep only the pairs whose matched row is canonical
/// to the tile (the reference-point rule) and fold them under global
/// handles. Everything — partitioning included — runs inside the timed
/// query phase, consistent with the category's set-at-a-time cost model
/// (per-tick sorting and partitioning are the technique's own cost).
#[allow(clippy::too_many_arguments)] // mirrors shard_batch_join plus the tile geometry
pub fn tiled_batch_join<J: BatchJoin + ?Sized>(
    join: &J,
    queriers: &PointTable,
    data: &PointTable,
    queries: &[(EntryId, Rect)],
    space: &Rect,
    query_side: f32,
    tiles: NonZeroUsize,
    pool: &mut TileBatchPool,
) -> (u64, u64) {
    let grid = TileGrid::new(space, tiles);
    while pool.workers.len() < grid.tiles() {
        pool.workers.push(TileBatchWorker {
            join: join.fork(),
            queries: Vec::new(),
            out: Vec::new(),
        });
    }
    pool.workers.truncate(grid.tiles());
    replicate_by_extent(data, &grid, query_side, &mut pool.replicas);
    for w in &mut pool.workers {
        w.queries.clear();
    }
    for &(q, region) in queries {
        for t in grid.cover(&region) {
            pool.workers[t].queries.push((q, region));
        }
    }
    let shards: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = pool
            .workers
            .iter_mut()
            .zip(pool.replicas.iter())
            .enumerate()
            .map(|(t, (worker, replica))| {
                scope.spawn(move || {
                    let TileBatchWorker { join, queries, out } = worker;
                    out.clear();
                    join.join_two(queriers, &replica.table, queries, out);
                    let xs = replica.table.xs();
                    let ys = replica.table.ys();
                    let mut pairs = 0u64;
                    let mut checksum = 0u64;
                    for &(q, local) in out.iter() {
                        let l = local as usize;
                        if grid.tile_of(xs[l], ys[l]) == t {
                            pairs += 1;
                            checksum = fold_pair(checksum, q, replica.to_global[l]);
                        }
                    }
                    (pairs, checksum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tile batch worker panicked"))
            .collect()
    });
    merge(shards)
}

fn merge(shards: Vec<(u64, u64)>) -> (u64, u64) {
    let mut pairs = 0u64;
    let mut checksum = 0u64;
    for (p, c) in shards {
        pairs += p;
        checksum = checksum.wrapping_add(c);
    }
    (pairs, checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::NaiveBatchJoin;
    use crate::index::ScanIndex;
    use crate::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    fn threads(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    fn random_table(n: usize, seed: u64) -> PointTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        t
    }

    fn sequential_reference(
        table: &PointTable,
        queriers: &[EntryId],
        space: &Rect,
        query_side: f32,
    ) -> (u64, u64) {
        let idx = ScanIndex::new();
        let mut pairs = 0u64;
        let mut checksum = 0u64;
        for &q in queriers {
            let region = Rect::centered_square(table.point(q), query_side).clipped_to(space);
            idx.for_each_in(table, &region, &mut |r| {
                pairs += 1;
                checksum = fold_pair(checksum, q, r);
            });
        }
        (pairs, checksum)
    }

    #[test]
    fn sharded_index_query_matches_sequential_for_any_thread_count() {
        let table = random_table(500, 9);
        let queriers: Vec<EntryId> = (0..table.len() as EntryId).step_by(3).collect();
        let space = Rect::space(SIDE);
        let expect = sequential_reference(&table, &queriers, &space, 120.0);
        let idx = ScanIndex::new();
        for n in [1, 2, 3, 7, 16, 1000] {
            let got = shard_index_query(&idx, &table, &table, &queriers, &space, 120.0, threads(n));
            assert_eq!(got, expect, "threads = {n}");
        }
    }

    #[test]
    fn sharded_batch_join_matches_sequential_for_any_thread_count() {
        let table = random_table(400, 11);
        let space = Rect::space(SIDE);
        let queries: Vec<(EntryId, Rect)> = (0..table.len() as EntryId)
            .step_by(2)
            .map(|q| {
                (
                    q,
                    Rect::centered_square(table.point(q), 90.0).clipped_to(&space),
                )
            })
            .collect();
        let mut out = Vec::new();
        NaiveBatchJoin.join(&table, &queries, &mut out);
        let expect_pairs = out.len() as u64;
        let expect_checksum = out.iter().fold(0u64, |c, &(q, r)| fold_pair(c, q, r));
        // One scratch pool across all thread counts: reuse must not leak
        // state between calls.
        let mut workers = Vec::new();
        for n in [1, 2, 3, 7, 64] {
            let got = shard_batch_join(
                &NaiveBatchJoin,
                &table,
                &table,
                &queries,
                threads(n),
                &mut workers,
            );
            assert_eq!(got, (expect_pairs, expect_checksum), "threads = {n}");
        }
    }

    #[test]
    fn empty_querier_sets_are_fine() {
        let table = random_table(50, 1);
        let space = Rect::space(SIDE);
        let idx = ScanIndex::new();
        assert_eq!(
            shard_index_query(&idx, &table, &table, &[], &space, 50.0, threads(4)),
            (0, 0)
        );
        assert_eq!(
            shard_batch_join(
                &NaiveBatchJoin,
                &table,
                &table,
                &[],
                threads(4),
                &mut Vec::new()
            ),
            (0, 0)
        );
    }

    #[test]
    fn tiled_index_query_matches_sequential_for_any_tile_count() {
        let table = random_table(500, 9);
        let queriers: Vec<EntryId> = (0..table.len() as EntryId).step_by(3).collect();
        let space = Rect::space(SIDE);
        let expect = sequential_reference(&table, &queriers, &space, 120.0);
        for n in [1usize, 2, 3, 5, 7, 16, 100] {
            let mut pool = TileIndexPool::default();
            // Two ticks over one pool: buffer reuse must not leak state.
            for tick in 0..2 {
                tiled_index_build(
                    &ScanIndex::new(),
                    &table,
                    &space,
                    120.0,
                    threads(n),
                    &mut pool,
                );
                let got = tiled_index_query(&mut pool, &table, &queriers, &space, 120.0);
                assert_eq!(got, expect, "tiles = {n}, tick = {tick}");
            }
            assert_eq!(pool.index_bytes(), Some(0), "scan forks own nothing");
        }
    }

    #[test]
    fn tiled_index_query_matches_sequential_with_tombstones() {
        let mut table = random_table(300, 21);
        for id in (0..300).step_by(7) {
            table.remove(id);
        }
        let queriers: Vec<EntryId> = (0..table.len() as EntryId)
            .filter(|&q| table.is_live(q))
            .step_by(2)
            .collect();
        let space = Rect::space(SIDE);
        let expect = sequential_reference(&table, &queriers, &space, 150.0);
        for n in [2usize, 5, 9] {
            let mut pool = TileIndexPool::default();
            tiled_index_build(
                &ScanIndex::new(),
                &table,
                &space,
                150.0,
                threads(n),
                &mut pool,
            );
            let got = tiled_index_query(&mut pool, &table, &queriers, &space, 150.0);
            assert_eq!(got, expect, "tiles = {n}");
        }
    }

    #[test]
    fn tiled_batch_join_matches_sequential_for_any_tile_count() {
        let table = random_table(400, 11);
        let space = Rect::space(SIDE);
        let query_side = 90.0;
        let queries: Vec<(EntryId, Rect)> = (0..table.len() as EntryId)
            .step_by(2)
            .map(|q| {
                (
                    q,
                    Rect::centered_square(table.point(q), query_side).clipped_to(&space),
                )
            })
            .collect();
        let mut out = Vec::new();
        NaiveBatchJoin.join(&table, &queries, &mut out);
        let expect_pairs = out.len() as u64;
        let expect_checksum = out.iter().fold(0u64, |c, &(q, r)| fold_pair(c, q, r));
        let mut pool = TileBatchPool::default();
        for n in [1usize, 2, 3, 6, 25, 64] {
            let got = tiled_batch_join(
                &NaiveBatchJoin,
                &table,
                &table,
                &queries,
                &space,
                query_side,
                threads(n),
                &mut pool,
            );
            assert_eq!(got, (expect_pairs, expect_checksum), "tiles = {n}");
        }
    }

    #[test]
    fn empty_tiled_inputs_are_fine() {
        let table = random_table(50, 1);
        let space = Rect::space(SIDE);
        let mut pool = TileIndexPool::default();
        tiled_index_build(
            &ScanIndex::new(),
            &table,
            &space,
            50.0,
            threads(4),
            &mut pool,
        );
        assert_eq!(
            tiled_index_query(&mut pool, &table, &[], &space, 50.0),
            (0, 0)
        );
        assert_eq!(
            tiled_batch_join(
                &NaiveBatchJoin,
                &table,
                &table,
                &[],
                &space,
                50.0,
                threads(4),
                &mut TileBatchPool::default()
            ),
            (0, 0)
        );
        // And an empty table under heavy oversharding.
        let empty = PointTable::default();
        let mut pool = TileIndexPool::default();
        tiled_index_build(
            &ScanIndex::new(),
            &empty,
            &space,
            50.0,
            threads(16),
            &mut pool,
        );
        assert_eq!(
            tiled_index_query(&mut pool, &empty, &[], &space, 50.0),
            (0, 0)
        );
    }

    #[test]
    fn exec_mode_constructors_and_accessors() {
        assert_eq!(ExecMode::parallel(0), None);
        assert_eq!(ExecMode::partitioned(0), None);
        let par4 = ExecMode::parallel(4).unwrap();
        assert_eq!(par4.threads(), 4);
        assert!(par4.is_parallel());
        assert!(!par4.is_partitioned());
        let tiles4 = ExecMode::partitioned(4).unwrap();
        assert_eq!(tiles4.threads(), 4, "one worker per tile");
        assert!(tiles4.is_parallel());
        assert!(tiles4.is_partitioned());
        assert_ne!(par4, tiles4);
        assert_eq!(ExecMode::Sequential.threads(), 1);
        assert!(!ExecMode::Sequential.is_parallel());
        assert!(!ExecMode::Sequential.is_partitioned());
        assert_eq!(ExecMode::default(), ExecMode::Sequential);
        assert_eq!(format!("{par4}"), "parallel(4)");
        assert_eq!(format!("{tiles4}"), "tiled(4)");
        assert_eq!(format!("{}", ExecMode::Sequential), "sequential");
    }

    #[test]
    fn or_prefers_the_non_sequential_mode() {
        let par2 = ExecMode::parallel(2).unwrap();
        let par8 = ExecMode::parallel(8).unwrap();
        let tiles4 = ExecMode::partitioned(4).unwrap();
        assert_eq!(ExecMode::Sequential.or(par2), par2);
        assert_eq!(ExecMode::Sequential.or(tiles4), tiles4);
        assert_eq!(par8.or(par2), par8);
        assert_eq!(tiles4.or(par8), tiles4, "a spec's tiles beat CLI threads");
        assert_eq!(par8.or(tiles4), par8);
        assert_eq!(
            ExecMode::Sequential.or(ExecMode::Sequential),
            ExecMode::Sequential
        );
    }
}
