//! # spatial-joins
//!
//! Main-memory iterated spatial joins — a faithful Rust reproduction of
//! **Šidlauskas & Jensen, "Spatial Joins in Main Memory: Implementation
//! Matters!" (PVLDB 7(1), 2014)**, including the full experimental
//! framework of the underlying study (Sowell et al., PVLDB 2013).
//!
//! The crate re-exports the workspace members:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | geometry, base tables, [`core::SpatialIndex`], the tick driver |
//! | [`workload`] | uniform & Gaussian moving-object workloads (Table 1) |
//! | [`grid`] | Simple Grid: original and refactored layouts, Algorithms 1 & 2 |
//! | [`rtree`] | STR-packed R-tree (+ incremental Guttman extension) |
//! | [`crtree`] | cache-conscious CR-tree with quantized relative MBRs |
//! | [`kdtrie`] | linearized KD-trie over radix-sorted interleaved codes |
//! | [`binsearch`] | the Binary Search baseline |
//! | [`memsim`] | simulated cache hierarchy for the Table 3 profile |
//!
//! ## Quickstart
//!
//! ```
//! use spatial_joins::prelude::*;
//!
//! // Index 10 000 moving objects with the paper's tuned Simple Grid.
//! let params = WorkloadParams { num_points: 10_000, ticks: 3, ..Default::default() };
//! let mut workload = UniformWorkload::new(params);
//! let mut grid = SimpleGrid::tuned(params.space_side);
//! let stats = run_join(&mut workload, &mut grid, DriverConfig { ticks: 3, warmup: 1 });
//! assert!(stats.result_pairs > 0);
//! ```

pub use sj_binsearch as binsearch;
pub use sj_core as core;
pub use sj_crtree as crtree;
pub use sj_grid as grid;
pub use sj_kdtrie as kdtrie;
pub use sj_memsim as memsim;
pub use sj_quadtree as quadtree;
pub use sj_rtree as rtree;
pub use sj_sweep as sweep;
pub use sj_workload as workload;

#[cfg(feature = "parallel")]
pub mod parallel;

/// The common imports for applications: every index, the driver, and the
/// workload generators.
pub mod prelude {
    pub use sj_binsearch::{BinarySearchJoin, VecSearchJoin};
    pub use sj_core::batch::{BatchJoin, NaiveBatchJoin};
    pub use sj_core::driver::{run_batch_join, run_join, DriverConfig, RunStats, Workload};
    pub use sj_core::geom::{Point, Rect, Vec2};
    pub use sj_core::index::{ScanIndex, SpatialIndex};
    pub use sj_core::table::{EntryId, MovingSet, PointTable};
    pub use sj_crtree::CRTree;
    pub use sj_grid::{GridConfig, IncrementalGrid, Layout, QueryAlgo, SimpleGrid, Stage};
    pub use sj_kdtrie::LinearKdTrie;
    pub use sj_memsim::{CacheSim, CpiModel};
    pub use sj_quadtree::QuadTree;
    pub use sj_rtree::{DynRTree, RTree};
    pub use sj_sweep::PlaneSweepJoin;
    pub use sj_workload::{GaussianParams, GaussianWorkload, UniformWorkload, WorkloadParams};
}
