//! Deterministic pseudo-random number generation.
//!
//! Workloads must be bit-reproducible across platforms and across the
//! lifetime of this repository — every figure in EXPERIMENTS.md quotes a
//! seed. We therefore implement xoshiro256++ (Blackman & Vigna) and the
//! splitmix64 seeder in ~60 lines instead of depending on an external
//! crate whose stream might change between versions.

/// splitmix64 step: used to expand a single `u64` seed into the four words
/// of xoshiro state, and as a cheap stateless mixer for checksums.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Finalize a single value through the splitmix64 mixing function —
/// an order-independent building block for result checksums.
#[inline]
pub fn mix64(v: u64) -> u64 {
    let mut s = v;
    splitmix64(&mut s)
}

/// xoshiro256++ generator. Small, fast, passes BigCrush; more than enough
/// statistical quality for workload generation.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed from a single word via splitmix64 (the reference seeding
    /// procedure recommended by the xoshiro authors).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Derive an independent child generator; lets each workload component
    /// (placement, querier selection, updates…) own its own stream so that
    /// changing one does not perturb the others.
    pub fn fork(&mut self) -> Self {
        Xoshiro256::seeded(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`. Uses the widening-multiply trick; the
    /// modulo bias is < 2⁻³² for the n values used here (≤ millions).
    #[inline]
    pub fn range_usize(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }

    /// Standard normal via Box–Muller (one sample per call; the second is
    /// discarded to keep the generator's consumption rate data-independent).
    pub fn gaussian(&mut self) -> f32 {
        // Avoid ln(0): next_f32 is in [0, 1), so flip to (0, 1].
        let u1 = 1.0 - self.next_f32();
        let u2 = self.next_f32();
        let r = (-2.0 * (u1 as f64).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2 as f64;
        (r * theta.cos()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256::seeded(42);
        let mut b = Xoshiro256::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seeded(1);
        let mut b = Xoshiro256::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = Xoshiro256::seeded(7);
        for _ in 0..10_000 {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_usize_covers_domain() {
        let mut r = Xoshiro256::seeded(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.range_usize(10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut r = Xoshiro256::seeded(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut r = Xoshiro256::seeded(13);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let g = r.gaussian() as f64;
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut parent = Xoshiro256::seeded(5);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mix64_is_stateless_and_stable() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(1), mix64(2));
        // Pin one value so accidental algorithm changes are caught.
        let mut s = 123u64;
        let expected = splitmix64(&mut s);
        assert_eq!(mix64(123), expected);
    }
}
