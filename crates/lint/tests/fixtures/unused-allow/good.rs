//@ path: crates/x/src/lib.rs
pub fn head(xs: &[u32]) -> u32 {
    // The registry guarantees a non-empty batch here.
    // sj-lint: allow(no-unwrap)
    *xs.first().unwrap()
}
