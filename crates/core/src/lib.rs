//! # sj-core
//!
//! Core abstractions for main-memory iterated spatial joins, shared by all
//! join techniques in this workspace (see the repository's DESIGN.md):
//!
//! - [`geom`] — points, velocity vectors, closed axis-aligned rectangles;
//! - [`table`] — the structure-of-arrays base table that every *secondary*
//!   index references through 4-byte [`table::EntryId`] handles;
//! - [`index`] — the [`index::SpatialIndex`] trait plus the ground-truth
//!   [`index::ScanIndex`];
//! - [`driver`] — the tick loop (build → query → update) with per-phase
//!   timing, reproducing the Sowell et al. framework the paper builds on;
//! - [`rng`] — self-contained deterministic xoshiro256++;
//! - [`trace`] — memory-access tracing hooks consumed by `sj-memsim`;
//! - [`stats`] — numeric summaries for the benchmark harness.

pub mod batch;
pub mod driver;
pub mod geom;
pub mod index;
pub mod rng;
pub mod simd;
pub mod stats;
pub mod table;
pub mod trace;

pub use batch::{BatchJoin, NaiveBatchJoin};
pub use driver::{run_batch_join, run_join, DriverConfig, RunStats, TickActions, TickTimes, Workload};
pub use geom::{Point, Rect, Vec2};
pub use index::{ScanIndex, SpatialIndex};
pub use table::{EntryId, MovingSet, PointTable};
