//! The Simple Grid index: a uniform grid over the data space, with the
//! paper's original and refactored realizations selectable via
//! [`GridConfig`].
//!
//! > "This index partitions space uniformly into a fixed number of cells
//! > stored as a two-dimensional array. Each cell contains a pointer to a
//! > linked list of buckets storing the points that fall within that cell.
//! > The search algorithm must examine every cell that intersects the
//! > query region." — paper §3, quoting the original study.

use sj_base::geom::Rect;
use sj_base::index::SpatialIndex;
use sj_base::table::{entry_id, EntryId, ExtentTable, PointTable};
use sj_base::trace::{NullTracer, Tracer};

use crate::config::{GridConfig, Layout, QueryAlgo, Stage};
use crate::layout_inline::{InlineCoordsStore, InlineStore};
use crate::layout_original::OriginalStore;

enum Store {
    Original(OriginalStore),
    Inline(InlineStore),
    InlineCoords(InlineCoordsStore),
}

/// See module docs.
///
/// ```
/// use sj_base::{PointTable, Rect, SpatialIndex};
/// use sj_grid::SimpleGrid;
///
/// let mut table = PointTable::default();
/// table.push(100.0, 100.0);
/// table.push(900.0, 900.0);
///
/// // The paper's winning configuration over a 1000x1000 space.
/// let mut grid = SimpleGrid::tuned(1000.0);
/// grid.build(&table);
///
/// let mut hits = Vec::new();
/// grid.query(&table, &Rect::new(0.0, 0.0, 500.0, 500.0), &mut hits);
/// assert_eq!(hits, vec![0]);
/// ```
pub struct SimpleGrid {
    cfg: GridConfig,
    cell_size: f32,
    store: Store,
    name: String,
    /// Extent store for the `intersects` predicate: each rectangle sits in
    /// the cell of its **reference corner** (lower-left `(x1, y1)`), so no
    /// rect is stored twice. Queries compensate by expanding their search
    /// range down/left by the largest extent seen at build
    /// (`ext_max_w`/`ext_max_h`) — any rect overlapping the query must
    /// have its reference corner inside that expanded range. Empty unless
    /// [`SpatialIndex::build_extents`] ran.
    ext_cells: Vec<Vec<EntryId>>,
    ext_max_w: f32,
    ext_max_h: f32,
}

impl SimpleGrid {
    /// Create a grid over the square space `[0, space_side]²`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the space degenerate;
    /// benchmark and example CLIs validate beforehand.
    pub fn new(cfg: GridConfig, space_side: f32) -> Self {
        cfg.validate().expect("invalid grid config");
        assert!(space_side > 0.0, "space_side must be positive");
        let store = match cfg.layout {
            Layout::Original => Store::Original(OriginalStore::default()),
            Layout::Inline => Store::Inline(InlineStore::default()),
            Layout::InlineCoords => Store::InlineCoords(InlineCoordsStore::default()),
        };
        let name = format!(
            "Simple Grid [{:?}/{:?} bs={} cps={}]",
            cfg.layout, cfg.query_algo, cfg.bucket_size, cfg.cells_per_side
        );
        SimpleGrid {
            cfg,
            cell_size: space_side / cfg.cells_per_side as f32,
            store,
            name,
            ext_cells: Vec::new(),
            ext_max_w: 0.0,
            ext_max_h: 0.0,
        }
    }

    /// Grid configured as one of the paper's improvement stages.
    pub fn at_stage(stage: Stage, space_side: f32) -> Self {
        let mut g = Self::new(GridConfig::stage(stage), space_side);
        g.name = format!("Simple Grid ({})", stage.label());
        g
    }

    /// The final tuned grid (bs = 20, cps = 64) — the paper's winner.
    pub fn tuned(space_side: f32) -> Self {
        Self::at_stage(Stage::CpsTuned, space_side)
    }

    pub fn config(&self) -> &GridConfig {
        &self.cfg
    }

    #[inline]
    fn cps(&self) -> u32 {
        self.cfg.cells_per_side
    }

    /// Cell coordinate of a position along one axis. Positions sit in
    /// `[0, side]`; the closed upper boundary maps into the last cell.
    #[inline]
    fn cell_coord(&self, v: f32) -> u32 {
        ((v / self.cell_size) as u32).min(self.cps() - 1)
    }

    /// Row-major cell index for a point.
    #[inline]
    fn cell_of(&self, x: f32, y: f32) -> usize {
        let cx = self.cell_coord(x);
        let cy = self.cell_coord(y);
        (cy * self.cps() + cx) as usize
    }

    /// The closed rectangle covered by cell `(cx, cy)`.
    #[inline]
    fn cell_rect(&self, cx: u32, cy: u32) -> Rect {
        let cs = self.cell_size;
        Rect::new(
            cx as f32 * cs,
            cy as f32 * cs,
            (cx + 1) as f32 * cs,
            (cy + 1) as f32 * cs,
        )
    }

    /// Rebuild the grid from the base table, reporting memory touches to
    /// `tr`. The timed [`SpatialIndex::build`] path calls this with
    /// [`NullTracer`], which compiles to the untraced loop.
    pub fn build_traced<T: Tracer>(&mut self, table: &PointTable, tr: &mut T) {
        let ncells = (self.cps() * self.cps()) as usize;
        let n = table.len();
        match &mut self.store {
            Store::Original(s) => s.reset(ncells, self.cfg.bucket_size, n),
            Store::Inline(s) => s.reset(ncells, self.cfg.bucket_size, n),
            Store::InlineCoords(s) => s.reset(ncells, self.cfg.bucket_size, n),
        }
        let xs = table.xs();
        let ys = table.ys();
        let live = table.live_mask();
        for i in 0..n {
            // Static rebuild indexes live rows only; tombstones (churn
            // departures) are invisible to the grid.
            if !live[i] {
                continue;
            }
            let (x, y) = (xs[i], ys[i]);
            tr.read(crate::addr::table_x(i as u64), 4);
            tr.read(crate::addr::table_y(i as u64), 4);
            let cell = self.cell_of(x, y);
            tr.instr(6);
            match &mut self.store {
                Store::Original(s) => s.insert(cell, entry_id(i), tr),
                Store::Inline(s) => s.insert(cell, entry_id(i), tr),
                Store::InlineCoords(s) => s.insert(cell, entry_id(i), x, y, tr),
            }
        }
    }

    /// Sink-based range query, reporting memory touches to `tr`.
    /// Dispatches to Algorithm 1 (full directory scan) or Algorithm 2
    /// (overlap range) per the configuration; matches are emitted straight
    /// from the bucket scans.
    pub fn for_each_traced<T: Tracer, F: FnMut(EntryId) + ?Sized>(
        &self,
        table: &PointTable,
        region: &Rect,
        emit: &mut F,
        tr: &mut T,
    ) {
        match self.cfg.query_algo {
            QueryAlgo::FullScan => {
                // Algorithm 1: examine every grid cell.
                for cy in 0..self.cps() {
                    for cx in 0..self.cps() {
                        self.visit_cell(cx, cy, table, region, emit, tr);
                    }
                }
            }
            QueryAlgo::RangeScan => {
                // Algorithm 2: compute the overlapping cell range first.
                let cx1 = self.cell_coord(region.x1.max(0.0));
                let cx2 = self.cell_coord(region.x2.max(0.0));
                let cy1 = self.cell_coord(region.y1.max(0.0));
                let cy2 = self.cell_coord(region.y2.max(0.0));
                tr.instr(8);
                for cy in cy1..=cy2 {
                    for cx in cx1..=cx2 {
                        self.visit_cell(cx, cy, table, region, emit, tr);
                    }
                }
            }
        }
    }

    /// [`Self::for_each_traced`] collecting into a `Vec` — the shape the
    /// memory-profiling harnesses want a buffer for.
    pub fn query_traced<T: Tracer>(
        &self,
        table: &PointTable,
        region: &Rect,
        out: &mut Vec<EntryId>,
        tr: &mut T,
    ) {
        self.for_each_traced(table, region, &mut |e| out.push(e), tr);
    }

    /// Lines 4–10 of Algorithm 1: fully contained cells are reported
    /// wholesale; merely intersecting cells are filtered point by point.
    #[inline]
    fn visit_cell<T: Tracer, F: FnMut(EntryId) + ?Sized>(
        &self,
        cx: u32,
        cy: u32,
        table: &PointTable,
        region: &Rect,
        emit: &mut F,
        tr: &mut T,
    ) {
        let cell_rect = self.cell_rect(cx, cy);
        let cell = (cy * self.cps() + cx) as usize;
        tr.instr(6);
        if region.contains_rect(&cell_rect) {
            match &self.store {
                Store::Original(s) => s.report_all(cell, emit, tr),
                Store::Inline(s) => s.report_all(cell, emit, tr),
                Store::InlineCoords(s) => s.report_all(cell, emit, tr),
            }
        } else if region.intersects(&cell_rect) {
            match &self.store {
                Store::Original(s) => s.filter(cell, table, region, emit, tr),
                Store::Inline(s) => s.filter(cell, table, region, emit, tr),
                Store::InlineCoords(s) => s.filter(cell, region, emit, tr),
            }
        }
    }
}

impl SimpleGrid {
    /// *Live* structure bytes after the last build (arena lengths, not
    /// capacities) — the quantity of the paper's §3.1 bytes-per-point
    /// arithmetic. The [`SpatialIndex::memory_bytes`] footprint counts
    /// allocated capacity instead (the workspace-wide convention).
    pub fn live_bytes(&self) -> usize {
        match &self.store {
            Store::Original(s) => s.live_bytes(),
            Store::Inline(s) => s.live_bytes(),
            Store::InlineCoords(s) => s.live_bytes(),
        }
    }
}

impl SpatialIndex for SimpleGrid {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&mut self, table: &PointTable) {
        self.build_traced(table, &mut NullTracer);
    }

    fn for_each_in(&self, table: &PointTable, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        self.for_each_traced(table, region, emit, &mut NullTracer);
    }

    fn supports_intersect(&self) -> bool {
        true
    }

    fn build_extents(&mut self, table: &ExtentTable) {
        let ncells = (self.cps() * self.cps()) as usize;
        self.ext_cells.resize_with(ncells, Vec::new);
        self.ext_cells.truncate(ncells);
        for c in &mut self.ext_cells {
            c.clear();
        }
        self.ext_max_w = 0.0;
        self.ext_max_h = 0.0;
        let (x1s, y1s) = (table.x1s(), table.y1s());
        let (x2s, y2s) = (table.x2s(), table.y2s());
        let live = table.live_mask();
        let all_live = table.all_live();
        for i in 0..x1s.len() {
            if !all_live && !live[i] {
                continue;
            }
            self.ext_max_w = self.ext_max_w.max(x2s[i] - x1s[i]);
            self.ext_max_h = self.ext_max_h.max(y2s[i] - y1s[i]);
            let cell = self.cell_of(x1s[i], y1s[i]);
            self.ext_cells[cell].push(entry_id(i));
        }
    }

    fn for_each_intersecting(
        &self,
        table: &ExtentTable,
        region: &Rect,
        emit: &mut dyn FnMut(EntryId),
    ) {
        // Any rect intersecting `region` has x1 ∈ [region.x1 − max_w,
        // region.x2] (ditto y), so its reference corner lies in the cells
        // covering that expanded range; candidates are then tested exactly
        // against the full geometry.
        let cx1 = self.cell_coord((region.x1 - self.ext_max_w).max(0.0));
        let cx2 = self.cell_coord(region.x2.max(0.0));
        let cy1 = self.cell_coord((region.y1 - self.ext_max_h).max(0.0));
        let cy2 = self.cell_coord(region.y2.max(0.0));
        let (x1s, y1s) = (table.x1s(), table.y1s());
        let (x2s, y2s) = (table.x2s(), table.y2s());
        for cy in cy1..=cy2 {
            for cx in cx1..=cx2 {
                let cell = (cy * self.cps() + cx) as usize;
                for &id in &self.ext_cells[cell] {
                    let i = id as usize;
                    if region.x1 <= x2s[i]
                        && x1s[i] <= region.x2
                        && region.y1 <= y2s[i]
                        && y1s[i] <= region.y2
                    {
                        emit(id);
                    }
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        // Allocated-capacity convention (see the trait docs); the paper's
        // live-structure arithmetic stays available as
        // [`SimpleGrid::live_bytes`]. The extent directory counts only
        // when an extent build populated it.
        let ext: usize = self.ext_cells.capacity() * std::mem::size_of::<Vec<EntryId>>()
            + self
                .ext_cells
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<EntryId>())
                .sum::<usize>();
        let store = match &self.store {
            Store::Original(s) => s.allocated_bytes(),
            Store::Inline(s) => s.allocated_bytes(),
            Store::InlineCoords(s) => s.allocated_bytes(),
        };
        store + ext
    }

    fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync> {
        // `cell_size` was derived as side / cps in `new`, so undo the
        // division to reconstruct; the display name (which `at_stage`
        // overrides) is carried over verbatim.
        let mut g = SimpleGrid::new(self.cfg, self.cell_size * self.cfg.cells_per_side as f32);
        g.name.clone_from(&self.name);
        Box::new(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::index::ScanIndex;
    use sj_base::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    fn random_table(n: usize, seed: u64) -> PointTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        t
    }

    fn sorted_query(idx: &dyn SpatialIndex, t: &PointTable, r: &Rect) -> Vec<EntryId> {
        let mut out = Vec::new();
        idx.query(t, r, &mut out);
        out.sort_unstable();
        out
    }

    fn all_stage_grids() -> Vec<SimpleGrid> {
        Stage::ALL
            .iter()
            .map(|&s| SimpleGrid::at_stage(s, SIDE))
            .collect()
    }

    #[test]
    fn every_stage_agrees_with_full_scan() {
        let t = random_table(2_000, 99);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let mut rng = Xoshiro256::seeded(7);
        for mut g in all_stage_grids() {
            g.build(&t);
            for _ in 0..50 {
                let c =
                    sj_base::geom::Point::new(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
                let r = Rect::centered_square(c, 120.0).clipped_to(&Rect::space(SIDE));
                assert_eq!(
                    sorted_query(&g, &t, &r),
                    sorted_query(&scan, &t, &r),
                    "grid {} disagrees with scan on {r:?}",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn inline_coords_layout_agrees_too() {
        let t = random_table(1_000, 3);
        let cfg = GridConfig {
            layout: Layout::InlineCoords,
            ..GridConfig::tuned()
        };
        let mut g = SimpleGrid::new(cfg, SIDE);
        g.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let r = Rect::new(100.0, 100.0, 400.0, 350.0);
        assert_eq!(sorted_query(&g, &t, &r), sorted_query(&scan, &t, &r));
    }

    #[test]
    fn query_covering_space_returns_everything() {
        let t = random_table(500, 11);
        for mut g in all_stage_grids() {
            g.build(&t);
            let r = Rect::space(SIDE);
            let out = sorted_query(&g, &t, &r);
            assert_eq!(out.len(), 500, "{}", g.name());
        }
    }

    #[test]
    fn point_on_space_boundary_is_indexed_and_found() {
        let mut t = PointTable::default();
        t.push(SIDE, SIDE); // exactly the upper corner
        t.push(0.0, 0.0);
        for mut g in all_stage_grids() {
            g.build(&t);
            let r = Rect::new(SIDE - 1.0, SIDE - 1.0, SIDE, SIDE);
            assert_eq!(sorted_query(&g, &t, &r), vec![0], "{}", g.name());
        }
    }

    #[test]
    fn empty_table_builds_and_queries() {
        let t = PointTable::default();
        for mut g in all_stage_grids() {
            g.build(&t);
            let out = sorted_query(&g, &t, &Rect::new(0.0, 0.0, 10.0, 10.0));
            assert!(out.is_empty());
        }
    }

    #[test]
    fn rebuild_replaces_old_contents() {
        let t1 = random_table(100, 1);
        let t2 = random_table(50, 2);
        let mut g = SimpleGrid::tuned(SIDE);
        g.build(&t1);
        g.build(&t2);
        let out = sorted_query(&g, &t2, &Rect::space(SIDE));
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn memory_footprint_original_vs_refactored() {
        // Paper §3.1: at bs = 4 the original needs 32 B per point beyond
        // the directory; the refactored needs 12 B.
        let t = random_table(10_000, 5);
        let mut orig = SimpleGrid::at_stage(Stage::Original, SIDE);
        let mut restructured = SimpleGrid::at_stage(Stage::Restructured, SIDE);
        orig.build(&t);
        restructured.build(&t);
        let n = t.len();
        let orig_per_point = (orig.live_bytes() - 13 * 13 * 16) as f64 / n as f64;
        let restr_per_point = (restructured.live_bytes() - 13 * 13 * 8) as f64 / n as f64;
        // Partially filled head buckets add a little slack over the ideal.
        assert!(
            (32.0..34.0).contains(&orig_per_point),
            "original per-point bytes: {orig_per_point}"
        );
        assert!(
            (12.0..14.0).contains(&restr_per_point),
            "refactored per-point bytes: {restr_per_point}"
        );
    }

    #[test]
    fn full_scan_and_range_scan_agree_on_corner_queries() {
        let t = random_table(1_500, 21);
        let mut full = SimpleGrid::new(
            GridConfig {
                query_algo: QueryAlgo::FullScan,
                ..GridConfig::tuned()
            },
            SIDE,
        );
        let mut range = SimpleGrid::new(GridConfig::tuned(), SIDE);
        full.build(&t);
        range.build(&t);
        for r in [
            Rect::new(0.0, 0.0, 50.0, 50.0),
            Rect::new(SIDE - 50.0, SIDE - 50.0, SIDE, SIDE),
            Rect::new(0.0, SIDE - 10.0, SIDE, SIDE),
            Rect::new(499.9, 0.0, 500.1, SIDE),
        ] {
            assert_eq!(
                sorted_query(&full, &t, &r),
                sorted_query(&range, &t, &r),
                "{r:?}"
            );
        }
    }

    #[test]
    fn every_stage_skips_dead_rows() {
        let mut t = random_table(800, 57);
        for id in (0..800).step_by(3) {
            t.remove(id);
        }
        let mut scan = ScanIndex::new();
        scan.build(&t);
        for mut g in all_stage_grids() {
            g.build(&t);
            let r = Rect::space(SIDE);
            assert_eq!(
                sorted_query(&g, &t, &r),
                sorted_query(&scan, &t, &r),
                "{}",
                g.name()
            );
            assert_eq!(sorted_query(&g, &t, &r).len(), t.live_len());
        }
    }

    fn random_extents(n: usize, seed: u64) -> ExtentTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = ExtentTable::default();
        for _ in 0..n {
            let x = rng.range_f32(0.0, SIDE - 80.0);
            let y = rng.range_f32(0.0, SIDE - 80.0);
            let w = rng.range_f32(0.0, 80.0);
            let h = rng.range_f32(0.0, 80.0);
            t.push(Rect::new(x, y, x + w, y + h));
        }
        t
    }

    fn sorted_intersecting(idx: &dyn SpatialIndex, t: &ExtentTable, r: &Rect) -> Vec<EntryId> {
        let mut out = Vec::new();
        idx.for_each_intersecting(t, r, &mut |e| out.push(e));
        out.sort_unstable();
        out
    }

    #[test]
    fn every_stage_agrees_with_full_scan_on_intersections() {
        let mut t = random_extents(1_500, 101);
        for id in (0..1_500).step_by(5) {
            t.remove(id);
        }
        let mut scan = ScanIndex::new();
        scan.build_extents(&t);
        let mut rng = Xoshiro256::seeded(17);
        for mut g in all_stage_grids() {
            assert!(g.supports_intersect(), "{}", g.name());
            g.build_extents(&t);
            for _ in 0..40 {
                let x = rng.range_f32(0.0, SIDE - 100.0);
                let y = rng.range_f32(0.0, SIDE - 100.0);
                let r = Rect::new(
                    x,
                    y,
                    x + rng.range_f32(0.0, 100.0),
                    y + rng.range_f32(0.0, 100.0),
                );
                assert_eq!(
                    sorted_intersecting(&g, &t, &r),
                    sorted_intersecting(&scan, &t, &r),
                    "grid {} disagrees with scan on {r:?}",
                    g.name()
                );
            }
            // Touching-edge query: rect 0's exact corner.
            let r0 = t.rect(t.iter().next().unwrap().0);
            let touch = Rect::new(r0.x2, r0.y2, r0.x2 + 1.0, r0.y2 + 1.0);
            assert_eq!(
                sorted_intersecting(&g, &t, &touch),
                sorted_intersecting(&scan, &t, &touch),
                "{} touching-edge tie",
                g.name()
            );
        }
    }

    #[test]
    fn extent_rebuild_replaces_old_contents_and_tracks_max_extent() {
        // Build over big rects, then rebuild over small ones: the stale
        // max-extent expansion and the old cell lists must both be gone.
        let mut big = ExtentTable::default();
        big.push(Rect::new(0.0, 0.0, 900.0, 900.0));
        let mut small = ExtentTable::default();
        small.push(Rect::new(10.0, 10.0, 20.0, 20.0));
        small.push(Rect::new(500.0, 500.0, 510.0, 510.0));
        let mut g = SimpleGrid::tuned(SIDE);
        g.build_extents(&big);
        g.build_extents(&small);
        assert_eq!(
            sorted_intersecting(&g, &small, &Rect::space(SIDE)),
            vec![0, 1]
        );
        assert_eq!(
            sorted_intersecting(&g, &small, &Rect::new(0.0, 0.0, 5.0, 5.0)),
            Vec::<EntryId>::new()
        );
    }

    #[test]
    fn fork_of_an_extent_grid_supports_the_predicate() {
        let t = random_extents(200, 7);
        let g = SimpleGrid::tuned(SIDE);
        let mut f = g.fork();
        assert!(f.supports_intersect());
        f.build_extents(&t);
        assert_eq!(
            sorted_intersecting(f.as_ref(), &t, &Rect::space(SIDE)).len(),
            t.live_len()
        );
    }

    #[test]
    fn name_reflects_stage() {
        assert_eq!(
            SimpleGrid::at_stage(Stage::Original, SIDE).name(),
            "Simple Grid (Original)"
        );
        assert_eq!(
            SimpleGrid::at_stage(Stage::CpsTuned, SIDE).name(),
            "Simple Grid (+cps tuned)"
        );
    }
}
