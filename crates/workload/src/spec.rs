//! The unified workload registry — workloads as first-class, nameable
//! citizens, mirroring `sj_core::technique`'s `TechniqueSpec` pattern.
//!
//! A spec is a [`WorkloadKind`] (which population/movement model) plus an
//! optional churn wrapper. Spec strings are `family` or `family:variant`,
//! optionally prefixed by `churn:` (e.g. `"uniform"`, `"gaussian:h3"`,
//! `"roadgrid"`, `"churn:uniform"`, `"churn:gaussian:h10"`);
//! [`WorkloadSpec::parse`] accepts them case-sensitively and
//! [`WorkloadSpec::name`] returns the canonical form, so specs
//! round-trip. [`workload_registry`] is the single source of truth the
//! harness binaries and the cross-technique integration tests sweep —
//! adding a workload here automatically adds it to every
//! technique × workload matrix.

use std::fmt;

use sj_base::driver::Workload;

use crate::churn::{ChurnParams, ChurnWorkload};
use crate::params::{GaussianParams, WorkloadParams};
use crate::{GaussianWorkload, RoadGridWorkload, UniformWorkload};

/// The base workload families (Table 1 plus the simulation stand-in).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Uniform placement, Bernoulli querier/updater selection (`uniform`).
    Uniform,
    /// Hotspot-clustered placement with mean-reverting Gaussian movement
    /// (`gaussian:h<N>`, N = number of hotspots; `gaussian` ⇒ h10).
    Gaussian { hotspots: u32 },
    /// Manhattan mobility on a road grid — the simulation-workload
    /// substitute (`roadgrid`).
    RoadGrid,
}

/// Hotspot count of the bare `gaussian` alias (Table 1's default).
pub const DEFAULT_HOTSPOTS: u32 = 10;

impl WorkloadKind {
    /// Canonical base spec string (no churn prefix).
    pub fn name(self) -> String {
        match self {
            WorkloadKind::Uniform => "uniform".to_string(),
            WorkloadKind::Gaussian { hotspots } => format!("gaussian:h{hotspots}"),
            WorkloadKind::RoadGrid => "roadgrid".to_string(),
        }
    }

    /// Display label for table headers.
    pub fn label(self) -> String {
        match self {
            WorkloadKind::Uniform => "Uniform".to_string(),
            WorkloadKind::Gaussian { hotspots } => format!("Gaussian ({hotspots} hotspots)"),
            WorkloadKind::RoadGrid => "Road Grid".to_string(),
        }
    }

    /// Parse a base spec string (canonical names plus the alias
    /// `gaussian` → `gaussian:h10`). The churn prefix belongs to
    /// [`WorkloadSpec::parse`].
    pub fn parse(base: &str) -> Option<WorkloadKind> {
        Some(match base {
            "uniform" => WorkloadKind::Uniform,
            "roadgrid" => WorkloadKind::RoadGrid,
            "gaussian" => WorkloadKind::Gaussian {
                hotspots: DEFAULT_HOTSPOTS,
            },
            other => {
                let hotspots: u32 = other.strip_prefix("gaussian:h")?.parse().ok()?;
                if hotspots == 0 {
                    return None;
                }
                WorkloadKind::Gaussian { hotspots }
            }
        })
    }

    /// This kind as a churn-free [`WorkloadSpec`].
    pub const fn spec(self) -> WorkloadSpec {
        WorkloadSpec {
            kind: self,
            churn: false,
        }
    }

    /// This kind wrapped in the churn process.
    pub const fn churn(self) -> WorkloadSpec {
        WorkloadSpec {
            kind: self,
            churn: true,
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Error from [`WorkloadSpec::parse`]: the offending spec plus (via
/// `Display`) the full list of canonical spec strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseWorkloadError {
    pub spec: String,
}

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown workload spec {:?} (expected one of: ",
            self.spec
        )?;
        for (i, s) in workload_registry().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", s.name())?;
        }
        write!(
            f,
            "; `gaussian:h<N>` takes any hotspot count, and any base spec \
             accepts a `churn:` prefix, e.g. churn:gaussian:h3)"
        )
    }
}

impl std::error::Error for ParseWorkloadError {}

/// A parseable, nameable handle for every workload in the workspace —
/// `Copy`, like `sj_core::technique::TechniqueSpec`, so registry sweeps
/// are cheap to filter and re-instantiate (a fresh workload per run keeps
/// seeds aligned).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    pub kind: WorkloadKind,
    /// Whether the base workload is wrapped in [`ChurnWorkload`] (at
    /// [`ChurnParams::DEFAULT_RATE`]; build by hand for custom rates).
    pub churn: bool,
}

impl WorkloadSpec {
    /// Canonical spec string; [`WorkloadSpec::parse`] inverts it.
    pub fn name(&self) -> String {
        if self.churn {
            format!("churn:{}", self.kind.name())
        } else {
            self.kind.name()
        }
    }

    /// Display label for table headers.
    pub fn label(&self) -> String {
        if self.churn {
            format!("{} + churn", self.kind.label())
        } else {
            self.kind.label()
        }
    }

    /// Parse a spec string: an optional `churn:` prefix followed by a base
    /// name ([`WorkloadKind::parse`], aliases included).
    pub fn parse(spec: &str) -> Result<WorkloadSpec, ParseWorkloadError> {
        let err = || ParseWorkloadError {
            spec: spec.to_string(),
        };
        let (churn, base) = match spec.strip_prefix("churn:") {
            Some(base) => (true, base),
            None => (false, spec),
        };
        let kind = WorkloadKind::parse(base).ok_or_else(err)?;
        Ok(WorkloadSpec { kind, churn })
    }

    /// Whether this workload mutates population membership — the axis the
    /// frozen Table 1 workloads never exercise.
    pub const fn has_churn(&self) -> bool {
        self.churn
    }

    /// Construct the workload over `params` (tick count, population size,
    /// space, speeds, seed — the shared Table 1 knobs). Family-specific
    /// parameters take their tuned defaults: the Gaussian sigma from
    /// [`GaussianParams::default`], the road grid's road count adapted so
    /// one tick never crosses two intersections, churn at
    /// [`ChurnParams::DEFAULT_RATE`].
    pub fn build(&self, params: WorkloadParams) -> Box<dyn Workload> {
        let base: Box<dyn Workload> = match self.kind {
            WorkloadKind::Uniform => Box::new(UniformWorkload::new(params)),
            WorkloadKind::Gaussian { hotspots } => {
                Box::new(GaussianWorkload::new(GaussianParams {
                    base: params,
                    hotspots,
                    ..GaussianParams::default()
                }))
            }
            WorkloadKind::RoadGrid => {
                // RoadGridWorkload requires max_speed < spacing; pick the
                // densest grid (capped at the default 40 roads) that keeps
                // a 25 % safety margin, deterministically from the params.
                let max_roads = (params.space_side / (params.max_speed * 1.25)).floor() as u32;
                let roads = max_roads.clamp(2, 40);
                // Even the sparsest legal grid (2 roads) cannot admit
                // speeds at or above its spacing; rather than panicking on
                // params that validate() accepts, slow such objects into
                // the mobility model's regime (deterministic — the cap is
                // a pure function of the params).
                let spacing = params.space_side / roads as f32;
                let params = if params.max_speed >= spacing {
                    WorkloadParams {
                        max_speed: spacing * 0.8,
                        ..params
                    }
                } else {
                    params
                };
                Box::new(RoadGridWorkload::new(params, roads, 0.3))
            }
        };
        if self.churn {
            Box::new(ChurnWorkload::new(
                base,
                ChurnParams {
                    rate: ChurnParams::DEFAULT_RATE,
                    max_speed: params.max_speed,
                    seed: params.seed,
                    // The configured population, not a live-count snapshot:
                    // the arrival process must keep targeting it even if
                    // churn ever drives the live count to zero.
                    target_population: params.num_points,
                },
            ))
        } else {
            base
        }
    }
}

impl From<WorkloadKind> for WorkloadSpec {
    fn from(kind: WorkloadKind) -> WorkloadSpec {
        kind.spec()
    }
}

impl std::str::FromStr for WorkloadSpec {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        WorkloadSpec::parse(s)
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Every workload in the workspace, in presentation order: the Table 1
/// pair (uniform first, Gaussian at its default density), a denser
/// Gaussian variant, the simulation stand-in, then the same population
/// models under churn. This is the single source of truth the harness
/// binaries and the cross-technique/parallel-equivalence tests sweep.
pub fn workload_registry() -> Vec<WorkloadSpec> {
    vec![
        WorkloadKind::Uniform.spec(),
        WorkloadKind::Gaussian {
            hotspots: DEFAULT_HOTSPOTS,
        }
        .spec(),
        WorkloadKind::Gaussian { hotspots: 3 }.spec(),
        WorkloadKind::RoadGrid.spec(),
        WorkloadKind::Uniform.churn(),
        WorkloadKind::Gaussian {
            hotspots: DEFAULT_HOTSPOTS,
        }
        .churn(),
        WorkloadKind::RoadGrid.churn(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::driver::TickActions;

    #[test]
    fn registry_covers_every_family_and_the_churn_axis() {
        let specs = workload_registry();
        assert_eq!(specs.len(), 7);
        assert_eq!(specs.iter().filter(|s| s.has_churn()).count(), 3);
        assert!(specs.contains(&WorkloadKind::Uniform.spec()));
        assert!(specs.contains(&WorkloadKind::RoadGrid.churn()));
    }

    #[test]
    fn every_registry_spec_round_trips_through_parse() {
        for spec in workload_registry() {
            assert_eq!(
                WorkloadSpec::parse(&spec.name()),
                Ok(spec),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn aliases_canonicalize() {
        let g = WorkloadSpec::parse("gaussian").unwrap();
        assert_eq!(g.kind, WorkloadKind::Gaussian { hotspots: 10 });
        assert_eq!(g.name(), "gaussian:h10");
        let cg = WorkloadSpec::parse("churn:gaussian").unwrap();
        assert!(cg.has_churn());
        assert_eq!(cg.name(), "churn:gaussian:h10");
        assert_eq!(
            WorkloadSpec::parse("gaussian:h250").unwrap().name(),
            "gaussian:h250"
        );
    }

    #[test]
    fn malformed_specs_are_rejected_with_the_full_menu() {
        for bad in [
            "gauss",
            "gaussian:h0",
            "gaussian:h",
            "gaussian:hX",
            "churn:",
            "churn:gauss",
            "churn:churn:uniform",
            "",
        ] {
            let err = WorkloadSpec::parse(bad).unwrap_err();
            assert_eq!(err.spec, bad);
            let msg = err.to_string();
            assert!(msg.contains("uniform") && msg.contains("churn:"), "{msg}");
        }
    }

    #[test]
    fn names_and_labels_are_unique() {
        let specs = workload_registry();
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.name(), b.name());
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn every_registry_workload_builds_and_plans() {
        let params = WorkloadParams {
            num_points: 500,
            space_side: 6_000.0,
            ..WorkloadParams::default()
        };
        for spec in workload_registry() {
            let mut w = spec.build(params);
            let set = w.init();
            assert_eq!(set.live_len(), 500, "{}", spec.name());
            let mut a = TickActions::default();
            w.plan_tick(0, &set, &mut a);
            assert!(!a.queriers.is_empty(), "{} planned no queries", spec.name());
            assert_eq!(
                a.removals.is_empty() && a.inserts.is_empty(),
                !spec.has_churn(),
                "{}: churn plan does not match the spec",
                spec.name()
            );
        }
    }

    #[test]
    fn roadgrid_adapts_its_road_count_to_fast_objects() {
        // Default with_defaults() would panic here (spacing 150 < speed
        // 200); the spec constructor must pick a sparser grid instead.
        let params = WorkloadParams {
            num_points: 300,
            space_side: 6_000.0,
            max_speed: 200.0,
            ..WorkloadParams::default()
        };
        let mut w = WorkloadKind::RoadGrid.spec().build(params);
        let set = w.init();
        assert_eq!(set.live_len(), 300);
    }

    #[test]
    fn roadgrid_slows_absurdly_fast_objects_instead_of_panicking() {
        // max_speed >= space_side / 2.5 defeats any road count; the
        // constructor must cap the speed, not assert (the params pass
        // validate(), so build() has no business crashing).
        let params = WorkloadParams {
            num_points: 100,
            space_side: 6_000.0,
            max_speed: 3_000.0,
            ..WorkloadParams::default()
        };
        for spec in [
            WorkloadKind::RoadGrid.spec(),
            WorkloadKind::RoadGrid.churn(),
        ] {
            let mut w = spec.build(params);
            let set = w.init();
            assert_eq!(set.live_len(), 100, "{}", spec.name());
            let space = w.space();
            for (_, p) in set.positions.iter() {
                assert!(space.contains_point(p.x, p.y));
            }
        }
    }
}
