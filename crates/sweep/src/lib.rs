//! # sj-sweep
//!
//! The forward plane-sweep spatial join — the *specialized join* category
//! of the framework the paper builds on (Sowell et al., PVLDB 2013,
//! following Arge et al.'s sweeping approach). No index is ever built:
//! each tick, the whole batch of range queries is joined against the
//! point set in one x-ordered sweep.
//!
//! Algorithm: sort the points by x and the queries by their left edge
//! (`x1`); advance through the points in x order, activating every query
//! whose interval has started and lazily retiring queries whose interval
//! has ended; each point is tested against the active queries' y-ranges.
//! With query windows of side `w` over a space of side `S`, the expected
//! active-list size is `|Q|·w/S`, so the join costs
//! `O(sort + |P|·|Q|·w/S)` — independent of any index tuning, which is
//! what made it a robust competitor in the original study.

use sj_base::batch::BatchJoin;
use sj_base::geom::Rect;
use sj_base::table::{EntryId, PointTable};

/// See crate docs. Scratch buffers are reused across ticks so steady-state
/// joins allocate nothing.
///
/// ```
/// use sj_base::batch::BatchJoin;
/// use sj_base::{PointTable, Rect};
/// use sj_sweep::PlaneSweepJoin;
///
/// let mut table = PointTable::default();
/// table.push(50.0, 50.0);
/// table.push(500.0, 500.0);
///
/// let queries = vec![
///     (7u32, Rect::new(0.0, 0.0, 100.0, 100.0)),
///     (8u32, Rect::new(0.0, 0.0, 600.0, 600.0)),
/// ];
/// let mut pairs = Vec::new();
/// PlaneSweepJoin::new().join(&table, &queries, &mut pairs);
/// pairs.sort_unstable();
/// assert_eq!(pairs, vec![(7, 0), (8, 0), (8, 1)]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PlaneSweepJoin {
    /// Points sorted by x: `(x, id)`.
    pts: Vec<(f32, EntryId)>,
    /// Query order sorted by left edge: indices into the caller's slice.
    order: Vec<u32>,
    /// Currently active queries (indices into the caller's slice).
    active: Vec<u32>,
}

impl PlaneSweepJoin {
    pub fn new() -> Self {
        Self::default()
    }
}

impl BatchJoin for PlaneSweepJoin {
    fn name(&self) -> &str {
        "Plane Sweep"
    }

    fn join(
        &mut self,
        table: &PointTable,
        queries: &[(EntryId, Rect)],
        out: &mut Vec<(EntryId, EntryId)>,
    ) {
        if queries.is_empty() || table.is_empty() {
            return;
        }
        let ys = table.ys();

        self.pts.clear();
        self.pts.reserve(table.live_len());
        // Live rows only: churn tombstones never enter the sweep order.
        for (id, p) in table.iter() {
            self.pts.push((p.x, id));
        }
        self.pts.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

        self.order.clear();
        self.order.extend(0..queries.len() as u32);
        self.order.sort_unstable_by(|&a, &b| {
            queries[a as usize]
                .1
                .x1
                .total_cmp(&queries[b as usize].1.x1)
        });

        self.active.clear();
        let mut next_q = 0usize;
        for &(px, pid) in &self.pts {
            // Activate queries whose interval has started (x1 <= px).
            while next_q < self.order.len() {
                let qi = self.order[next_q];
                if queries[qi as usize].1.x1 <= px {
                    self.active.push(qi);
                    next_q += 1;
                } else {
                    break;
                }
            }
            // Test against active queries, lazily retiring finished ones
            // (x2 < px). swap_remove keeps retirement O(1); order within
            // the active list is irrelevant.
            let py = ys[pid as usize];
            let mut i = 0;
            while i < self.active.len() {
                let qi = self.active[i] as usize;
                let r = &queries[qi].1;
                if r.x2 < px {
                    self.active.swap_remove(i);
                    continue;
                }
                if py >= r.y1 && py <= r.y2 {
                    out.push((queries[qi].0, pid));
                }
                i += 1;
            }
        }
    }

    /// Bipartite R ⋈ S: the sweep is already two-relation by construction
    /// — it orders the materialized query *regions* and the data table's
    /// points, never dereferencing a querier id — so the data relation is
    /// simply whichever table is swept. Explicit (rather than inheriting
    /// the trait default) to document that the technique is
    /// bipartite-ready.
    fn join_two(
        &mut self,
        _queriers: &PointTable,
        data: &PointTable,
        queries: &[(EntryId, Rect)],
        out: &mut Vec<(EntryId, EntryId)>,
    ) {
        self.join(data, queries, out);
    }

    fn fork(&self) -> Box<dyn BatchJoin + Send> {
        // Scratch buffers are per-instance caches; a clone gives a parallel
        // worker its own, so strip joins never contend.
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::batch::NaiveBatchJoin;
    use sj_base::geom::Point;
    use sj_base::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    fn random_setup(n_pts: usize, n_qs: usize, seed: u64) -> (PointTable, Vec<(EntryId, Rect)>) {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n_pts {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        let queries = (0..n_qs)
            .map(|i| {
                let c = Point::new(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
                (
                    (i % n_pts.max(1)) as EntryId,
                    Rect::centered_square(c, rng.range_f32(1.0, 150.0))
                        .clipped_to(&Rect::space(SIDE)),
                )
            })
            .collect();
        (t, queries)
    }

    fn sorted_join(
        j: &mut dyn BatchJoin,
        t: &PointTable,
        qs: &[(EntryId, Rect)],
    ) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        j.join(t, qs, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn agrees_with_naive_nested_loop() {
        let (t, qs) = random_setup(800, 200, 5);
        let mut sweep = PlaneSweepJoin::new();
        let mut naive = NaiveBatchJoin;
        assert_eq!(
            sorted_join(&mut sweep, &t, &qs),
            sorted_join(&mut naive, &t, &qs)
        );
    }

    #[test]
    fn bipartite_join_two_agrees_with_naive_over_distinct_relations() {
        // R supplies the query set (its table never contributes result
        // rows), S is swept: both implementations must find the same
        // (r_querier, s_row) pairs.
        let (r, qs) = random_setup(300, 150, 17);
        let (s, _) = random_setup(900, 1, 18);
        let run = |j: &mut dyn BatchJoin| {
            let mut out = Vec::new();
            j.join_two(&r, &s, &qs, &mut out);
            out.sort_unstable();
            out
        };
        let swept = run(&mut PlaneSweepJoin::new());
        let naive = run(&mut NaiveBatchJoin);
        assert!(!swept.is_empty());
        assert_eq!(swept, naive);
        // Every result row is an S handle (S is larger than R here, so a
        // stray R-side emission would be caught by the pair set equality
        // anyway; the explicit bound documents the invariant).
        assert!(swept.iter().all(|&(_, row)| (row as usize) < s.len()));
    }

    #[test]
    fn boundary_touching_queries_match() {
        let mut t = PointTable::default();
        t.push(100.0, 100.0);
        t.push(200.0, 100.0);
        // Query right edge exactly on the first point, left edge exactly
        // on the second.
        let qs = vec![
            (0u32, Rect::new(0.0, 0.0, 100.0, 300.0)),
            (1u32, Rect::new(200.0, 0.0, 300.0, 300.0)),
        ];
        let mut sweep = PlaneSweepJoin::new();
        assert_eq!(sorted_join(&mut sweep, &t, &qs), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn empty_cases() {
        let (t, qs) = random_setup(100, 10, 1);
        let mut sweep = PlaneSweepJoin::new();
        let mut out = Vec::new();
        sweep.join(&t, &[], &mut out);
        assert!(out.is_empty());
        sweep.join(&PointTable::default(), &qs, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn overlapping_queries_each_report() {
        let mut t = PointTable::default();
        t.push(50.0, 50.0);
        let qs = vec![
            (0u32, Rect::new(0.0, 0.0, 100.0, 100.0)),
            (0u32, Rect::new(25.0, 25.0, 75.0, 75.0)),
            (0u32, Rect::new(49.0, 49.0, 51.0, 51.0)),
        ];
        let mut sweep = PlaneSweepJoin::new();
        let mut out = Vec::new();
        sweep.join(&t, &qs, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn scratch_reuse_across_joins_is_clean() {
        let (t1, qs1) = random_setup(500, 100, 7);
        let (t2, qs2) = random_setup(300, 50, 8);
        let mut sweep = PlaneSweepJoin::new();
        let mut naive = NaiveBatchJoin;
        assert_eq!(
            sorted_join(&mut sweep, &t1, &qs1),
            sorted_join(&mut naive, &t1, &qs1)
        );
        // Second join with different sizes must not see stale state.
        assert_eq!(
            sorted_join(&mut sweep, &t2, &qs2),
            sorted_join(&mut naive, &t2, &qs2)
        );
    }

    #[test]
    fn duplicate_points_and_queries() {
        let mut t = PointTable::default();
        for _ in 0..10 {
            t.push(5.0, 5.0);
        }
        let qs = vec![(3u32, Rect::new(5.0, 5.0, 5.0, 5.0)); 4];
        let mut sweep = PlaneSweepJoin::new();
        let mut out = Vec::new();
        sweep.join(&t, &qs, &mut out);
        assert_eq!(out.len(), 40);
    }
}
