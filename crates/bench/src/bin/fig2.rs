//! Figure 2 — reproduced performance of the static indexes:
//! Binary Search, R-Tree, CR-Tree, Linearized KD-Trie and (original)
//! Simple Grid across three workload sweeps.
//!
//! (a) fraction of points issuing queries: 0.1 .. 0.9 (uniform);
//! (b) number of hotspots: 1 .. 1000, log scale (Gaussian);
//! (c) number of points: 10K .. 90K (uniform).
//!
//! Expected shape: Simple Grid (original) worst everywhere — behind even
//! Binary Search; the three tree indexes clustered together at the top.
//!
//! The technique line-up is the registry's Figure 2 selection
//! (`TechniqueSpec::in_figure2`); `--technique` narrows to one entry.
//!
//! Run: `cargo run -p sj-bench --release --bin fig2 [--ticks N] [--csv|--json]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::stats_line;
use sj_bench::table::{secs, Table};
use sj_bench::{run_gaussian_spec, run_uniform_spec};
use sj_core::technique::TechniqueSpec;

fn headers(specs: &[TechniqueSpec]) -> Vec<String> {
    let mut h = vec!["x".to_string()];
    h.extend(specs.iter().map(|s| s.label()));
    h
}

fn main() {
    let opts = CommonOpts::parse();
    opts.require_self_join("fig2");
    let specs = opts.techniques(TechniqueSpec::in_figure2);
    if let Some(w) = opts.workload {
        // fig2 sweeps its own workload axes (query rate, hotspots, points).
        eprintln!("--workload {} is not supported by this binary", w.name());
        std::process::exit(2);
    }

    let exec = opts.exec_mode();

    if !opts.json {
        println!("# Figure 2a: scaling the query rate (uniform, 50K points)");
    }
    let mut t = Table::new(headers(&specs));
    for frac in [0.1f32, 0.3, 0.5, 0.7, 0.9] {
        let mut params = opts.uniform_params();
        params.frac_queriers = frac;
        let mut row = vec![format!("{frac}")];
        for &spec in &specs {
            let stats = run_uniform_spec(&params, spec, exec);
            if opts.json {
                println!(
                    "{}",
                    stats_line(
                        "fig2a",
                        &spec.name(),
                        Some(("frac_queriers", frac as f64)),
                        &stats
                    )
                );
            } else {
                row.push(secs(stats.avg_tick_seconds()));
            }
        }
        if !opts.json {
            t.row(row);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }

    if !opts.json {
        println!("# Figure 2b: scaling the number of hotspots (Gaussian, 50K points)");
    }
    let mut t = Table::new(headers(&specs));
    for hotspots in [1u32, 10, 100, 1000] {
        let mut params = opts.gaussian_params();
        params.hotspots = hotspots;
        let mut row = vec![hotspots.to_string()];
        for &spec in &specs {
            let stats = run_gaussian_spec(&params, spec, exec);
            if opts.json {
                println!(
                    "{}",
                    stats_line(
                        "fig2b",
                        &spec.name(),
                        Some(("hotspots", hotspots as f64)),
                        &stats
                    )
                );
            } else {
                row.push(secs(stats.avg_tick_seconds()));
            }
        }
        if !opts.json {
            t.row(row);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }

    if !opts.json {
        println!("# Figure 2c: scaling the number of points (uniform)");
    }
    let mut t = Table::new(headers(&specs));
    for points in [10_000u32, 30_000, 50_000, 70_000, 90_000] {
        let mut params = opts.uniform_params();
        params.num_points = points;
        let mut row = vec![points.to_string()];
        for &spec in &specs {
            let stats = run_uniform_spec(&params, spec, exec);
            if opts.json {
                println!(
                    "{}",
                    stats_line(
                        "fig2c",
                        &spec.name(),
                        Some(("points", points as f64)),
                        &stats
                    )
                );
            } else {
                row.push(secs(stats.avg_tick_seconds()));
            }
        }
        if !opts.json {
            t.row(row);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }
}
