//@ path: crates/bench/src/bin/custom.rs
use sj_grid::UGrid;

fn main() {
    let _ = UGrid::default();
}
