//! # spatial-joins
//!
//! Main-memory iterated spatial joins — a faithful Rust reproduction of
//! **Šidlauskas & Jensen, "Spatial Joins in Main Memory: Implementation
//! Matters!" (PVLDB 7(1), 2014)**, including the full experimental
//! framework of the underlying study (Sowell et al., PVLDB 2013).
//!
//! The crate re-exports the workspace members:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | geometry, base tables, [`core::SpatialIndex`], the tick driver, and [`technique`] |
//! | [`technique`] | the unified registry: [`technique::Technique`], [`technique::TechniqueSpec`] |
//! | [`workload`] | the workload registry ([`workload::WorkloadSpec`], [`workload::workload_registry`]): uniform & Gaussian (Table 1), road grid, and churn variants |
//! | [`grid`] | Simple Grid: original and refactored layouts, Algorithms 1 & 2 |
//! | [`rtree`] | STR-packed R-tree (+ incremental Guttman extension) |
//! | [`crtree`] | cache-conscious CR-tree with quantized relative MBRs |
//! | [`kdtrie`] | linearized KD-trie over radix-sorted interleaved codes |
//! | [`binsearch`] | the Binary Search baseline |
//! | [`twolayer`] | the two-layer partitioning intersection join (per-cell A/B/C/D classes, no dedup) |
//! | [`memsim`] | simulated cache hierarchy for the Table 3 profile |
//!
//! ## Quickstart: the technique registry
//!
//! Every join technique — index nested loop *and* the index-free plane
//! sweep — sits behind one interface. Build any of them from a spec
//! string and run it:
//!
//! ```
//! use spatial_joins::prelude::*;
//!
//! let params = WorkloadParams { num_points: 10_000, ticks: 3, ..Default::default() };
//! let mut workload = UniformWorkload::new(params);
//!
//! // The paper's winner: the refactored, re-tuned Simple Grid.
//! let mut tech = Technique::from_spec("grid:inline", params.space_side).unwrap();
//! let stats = tech.run(&mut workload, DriverConfig::new(3, 1));
//! assert!(stats.result_pairs > 0);
//!
//! // Or iterate everything the workspace implements:
//! for spec in registry() {
//!     println!("{:16} {}", spec.name(), spec.label());
//! }
//! ```
//!
//! ## Workloads are first-class too
//!
//! Workloads mirror the technique registry: parse a spec string
//! (`"uniform"`, `"gaussian:h3"`, `"roadgrid"`, `"churn:uniform"`, …),
//! build it over shared Table 1 parameters, and sweep
//! [`workload::workload_registry`] for the full technique × workload
//! matrix. `churn:*` specs add deterministic population turnover —
//! arrivals and departures applied in the update phase, with departed
//! rows tombstoned so surviving [`core::EntryId`]s never shift:
//!
//! ```
//! use spatial_joins::prelude::*;
//!
//! let params = WorkloadParams { num_points: 2_000, ticks: 3, ..Default::default() };
//! let mut churned = WorkloadSpec::parse("churn:uniform").unwrap().build(params);
//! let mut tech = Technique::from_spec("grid:incremental", params.space_side).unwrap();
//! let stats = tech.run(&mut *churned, DriverConfig::new(3, 1));
//! assert!(stats.removals > 0 && stats.inserts > 0);
//! ```
//!
//! ## Bipartite joins (R ⋈ S)
//!
//! The paper only ever joins a moving set with itself; the driver also
//! supports the canonical two-dataset setting of the related work: an
//! independent query relation R probing an index built over a data
//! relation S, each driven by its own workload (churn included). The
//! shape is registry-addressable through [`workload::JoinSpec`]
//! (`"self"`, `"bipartite:uniformxgaussian:h3:ratio10"`), and the
//! self-join is exactly the degenerate R = S case — same code path, same
//! checksums:
//!
//! ```
//! use spatial_joins::prelude::*;
//!
//! let params = WorkloadParams { num_points: 2_000, ticks: 3, ..Default::default() };
//! let spec = JoinSpec::parse("bipartite:uniformxgaussian:h3:ratio10").unwrap();
//! let (mut r, mut s) = spec.build_pair(params).unwrap();
//! let mut tech = Technique::from_spec("grid:inline", params.space_side).unwrap();
//! let stats = tech.run_bipartite(&mut *r, &mut *s, DriverConfig::new(3, 1));
//! assert!(stats.result_pairs > 0);
//! ```
//!
//! ## Intersection joins over extents
//!
//! Entries can be rectangles, not just points: [`core::ExtentTable`]
//! stores them in the same tombstoned SoA layout as [`core::PointTable`],
//! and the **intersects** predicate (closed boundaries — touching edges
//! match) is a second join axis next to the paper's within-range
//! predicate. `JoinSpec::parse("intersect:rects")` names the moving-
//! rectangle workload, and the techniques that implement the predicate —
//! the scan, every Simple Grid stage, and the `twolayer` partitioning
//! join (arXiv:2307.09256: per-cell A/B/C/D corner classes, each
//! intersecting pair emitted exactly once with zero deduplication) —
//! agree bit for bit, under every execution mode:
//!
//! ```
//! use spatial_joins::prelude::*;
//!
//! let params = WorkloadParams { num_points: 2_000, ticks: 3, ..Default::default() };
//! let mut rects = JoinSpec::parse("intersect:rects").unwrap()
//!     .build_extents(params).unwrap();
//! let mut tech = Technique::from_spec("twolayer", params.space_side).unwrap();
//! let stats = tech.run_intersect(&mut *rects, DriverConfig::new(3, 1));
//! assert!(stats.result_pairs > 0);
//! ```
//!
//! ## Parallel execution
//!
//! Every registry technique — both join categories — can shard its query
//! phase over threads; build and update phases stay sequential, so the
//! tick semantics (and the join itself) are bit-identical to the
//! single-threaded run. Select it per run via [`core::DriverConfig`]'s
//! `exec` field, or per spec with the `@par<N>` modifier:
//!
//! ```
//! use spatial_joins::prelude::*;
//!
//! let params = WorkloadParams { num_points: 5_000, ticks: 2, ..Default::default() };
//! let cfg = DriverConfig::new(2, 0);
//!
//! let seq = Technique::from_spec("grid:inline", params.space_side).unwrap()
//!     .run(&mut UniformWorkload::new(params), cfg);
//! // Same technique, query phase over 4 workers — two equivalent spellings:
//! let par = Technique::from_spec("grid:inline@par4", params.space_side).unwrap()
//!     .run(&mut UniformWorkload::new(params), cfg);
//! let via_cfg = Technique::from_spec("grid:inline", params.space_side).unwrap()
//!     .run(&mut UniformWorkload::new(params), cfg.with_exec(ExecMode::parallel(4).unwrap()));
//!
//! assert_eq!(seq.checksum, par.checksum);
//! assert_eq!(seq.checksum, via_cfg.checksum);
//! ```
//!
//! ## Queries are sinks
//!
//! [`core::SpatialIndex`]'s required query method is `for_each_in`, which
//! emits each matching [`core::EntryId`] straight from the index's scan
//! loop — the driver folds join pairs into its checksum with zero
//! per-query materialization. The buffer-collecting `query` is a provided
//! adapter:
//!
//! ```
//! use spatial_joins::prelude::*;
//!
//! let mut table = PointTable::default();
//! table.push(1.0, 1.0);
//! let mut grid = SimpleGrid::tuned(1000.0);
//! grid.build(&table);
//!
//! let region = Rect::new(0.0, 0.0, 10.0, 10.0);
//! let mut count = 0;
//! grid.for_each_in(&table, &region, &mut |_id| count += 1); // sink form
//! let mut hits = Vec::new();
//! grid.query(&table, &region, &mut hits); // adapter, same matches
//! assert_eq!(count as usize, hits.len());
//! ```
//!
//! ### Migrating from the pre-registry API
//!
//! `SpatialIndex::query` used to be the required method. It still exists
//! with the identical signature — callers are unaffected — but it is now
//! provided on top of `for_each_in`, which is what implementations must
//! define: rename your `query(&self, table, region, out)` to
//! `for_each_in(&self, table, region, emit)` and replace each
//! `out.push(id)` with `emit(id)`. Hand-maintained technique lists are
//! superseded by [`technique::registry`].

pub use sj_core as core;
pub use sj_core::technique;

pub use sj_binsearch as binsearch;
pub use sj_crtree as crtree;
pub use sj_grid as grid;
pub use sj_kdtrie as kdtrie;
pub use sj_memsim as memsim;
pub use sj_quadtree as quadtree;
pub use sj_rtree as rtree;
pub use sj_sweep as sweep;
pub use sj_twolayer as twolayer;
pub use sj_workload as workload;

/// The common imports for applications: the registry, every index, the
/// driver, and the workload generators.
pub mod prelude {
    pub use sj_binsearch::{BinarySearchJoin, VecSearchJoin};
    pub use sj_core::batch::{BatchJoin, NaiveBatchJoin};
    pub use sj_core::driver::{
        run_batch_join, run_bipartite_batch_join, run_bipartite_join, run_intersect_batch_join,
        run_intersect_join, run_join, DriverConfig, ExtentTickActions, ExtentWorkload, RunStats,
        Workload,
    };
    pub use sj_core::geom::{Point, Rect, Vec2};
    pub use sj_core::index::{ScanIndex, SpatialIndex};
    pub use sj_core::par::ExecMode;
    pub use sj_core::table::{EntryId, ExtentTable, MovingExtentSet, MovingSet, PointTable, Table};
    pub use sj_core::technique::{registry, Technique, TechniqueKind, TechniqueSpec};
    pub use sj_crtree::CRTree;
    pub use sj_grid::{GridConfig, IncrementalGrid, Layout, QueryAlgo, SimpleGrid, Stage};
    pub use sj_kdtrie::LinearKdTrie;
    pub use sj_memsim::{CacheSim, CpiModel};
    pub use sj_quadtree::QuadTree;
    pub use sj_rtree::{DynRTree, RTree};
    pub use sj_sweep::PlaneSweepJoin;
    pub use sj_twolayer::TwoLayerJoin;
    pub use sj_workload::{
        workload_registry, ChurnParams, ChurnWorkload, GaussianParams, GaussianWorkload, JoinSpec,
        RectsWorkload, RoadGridWorkload, UniformWorkload, WorkloadKind, WorkloadParams,
        WorkloadSpec,
    };
}
