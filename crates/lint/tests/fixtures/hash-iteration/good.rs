//@ path: crates/base/src/par.rs
pub fn tally(pairs: &[(u32, u32)]) -> u64 {
    pairs.len() as u64
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_maps_are_fine_in_tests() {
        let mut by_cell: HashMap<u32, u64> = HashMap::new();
        by_cell.insert(1, 2);
        assert_eq!(by_cell.values().sum::<u64>(), 2);
    }
}
