//! Extension beyond the paper: the query phase fanned out over threads.
//!
//! The paper is deliberately single-threaded; once the implementation is
//! cache-efficient, queries (pure reads) shard trivially. This example
//! verifies the parallel driver computes the identical join and reports
//! the speedup of the query phase.
//!
//! Run: `cargo run --release --features parallel --example parallel_join`

use spatial_joins::parallel::run_join_parallel;
use spatial_joins::prelude::*;

fn main() {
    let params = WorkloadParams {
        num_points: 50_000,
        ticks: 6,
        ..WorkloadParams::default()
    };
    let cfg = DriverConfig {
        ticks: params.ticks,
        warmup: 1,
    };

    let sequential = {
        let mut workload = UniformWorkload::new(params);
        let mut grid = SimpleGrid::tuned(params.space_side);
        run_join(&mut workload, &mut grid, cfg)
    };
    println!(
        "sequential: query phase {:.4} s/tick ({} pairs, checksum {:#x})",
        sequential.avg_query_seconds(),
        sequential.result_pairs,
        sequential.checksum
    );

    for threads in [2, 4, 8] {
        let mut workload = UniformWorkload::new(params);
        let mut grid = SimpleGrid::tuned(params.space_side);
        let par = run_join_parallel(&mut workload, &mut grid, cfg, threads);
        assert_eq!(par.checksum, sequential.checksum, "parallel join differs!");
        assert_eq!(par.result_pairs, sequential.result_pairs);
        println!(
            "{threads} threads: query phase {:.4} s/tick ({:.2}x)",
            par.avg_query_seconds(),
            sequential.avg_query_seconds() / par.avg_query_seconds().max(1e-12)
        );
    }
    println!("\nidentical joins on every configuration.");
}
