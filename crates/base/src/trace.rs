//! Memory-access tracing hooks.
//!
//! The paper's Table 3 profiles Simple Grid with hardware performance
//! counters. We cannot assume those here, so instrumented index code paths
//! report every logical memory touch — (synthetic address, length) — and a
//! count of retired operations to a [`Tracer`]. `sj-memsim` feeds these
//! into a simulated cache hierarchy; [`NullTracer`] makes the same code
//! paths compile to nothing so the timed benchmarks pay zero cost.

/// Receives the memory-access stream of an instrumented operation.
///
/// Addresses are synthetic: each arena/array of a data structure is mapped
/// into its own region of a flat 64-bit space (see `sj-memsim::AddressSpace`).
/// Only line-granularity locality matters to the consumer, so a stable
/// base + element-stride mapping is faithful.
pub trait Tracer {
    /// A data read of `len` bytes at `addr`.
    fn read(&mut self, addr: u64, len: u32);
    /// A data write of `len` bytes at `addr`.
    fn write(&mut self, addr: u64, len: u32);
    /// `n` retired ops (arithmetic/compare/branch) — the instruction-count
    /// proxy for Table 3's "Total INS" column.
    fn instr(&mut self, n: u64);
}

/// A tracer that does nothing; every call inlines away, so code generic
/// over [`Tracer`] can serve both the timed and the profiled configuration
/// without duplication.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline(always)]
    fn read(&mut self, _addr: u64, _len: u32) {}
    #[inline(always)]
    fn write(&mut self, _addr: u64, _len: u32) {}
    #[inline(always)]
    fn instr(&mut self, _n: u64) {}
}

/// A tracer recording raw counts, for tests and quick sanity checks.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingTracer {
    pub reads: u64,
    pub read_bytes: u64,
    pub writes: u64,
    pub write_bytes: u64,
    pub instrs: u64,
}

impl Tracer for CountingTracer {
    #[inline]
    fn read(&mut self, _addr: u64, len: u32) {
        self.reads += 1;
        self.read_bytes += len as u64;
    }
    #[inline]
    fn write(&mut self, _addr: u64, len: u32) {
        self.writes += 1;
        self.write_bytes += len as u64;
    }
    #[inline]
    fn instr(&mut self, n: u64) {
        self.instrs += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tracer_accumulates() {
        let mut t = CountingTracer::default();
        t.read(0x10, 8);
        t.read(0x20, 4);
        t.write(0x30, 8);
        t.instr(5);
        t.instr(2);
        assert_eq!(t.reads, 2);
        assert_eq!(t.read_bytes, 12);
        assert_eq!(t.writes, 1);
        assert_eq!(t.write_bytes, 8);
        assert_eq!(t.instrs, 7);
    }

    #[test]
    fn null_tracer_is_callable() {
        let mut t = NullTracer;
        t.read(0, 1);
        t.write(0, 1);
        t.instr(1);
    }
}
