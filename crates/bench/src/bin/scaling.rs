//! Scaling — the query phase across thread counts, in the style of the
//! Tsitsigkos & Mamoulis scalability figures ("Parallel In-Memory
//! Evaluation of Spatial Joins"): every benchmarkable registry technique
//! at 1, 2, 4 and 8 workers, reporting per-phase times and the speedup of
//! the query phase over the single-worker run.
//!
//! Thread count 1 runs [`ExecMode::Parallel`] with one worker — the same
//! sharded code path, so the speedup column isolates scaling from the
//! (tiny) constant cost of scoped-thread dispatch. Build and update
//! phases are sequential in every configuration; only the query phase
//! shards (DESIGN.md §8). Each run's join is asserted identical to the
//! sequential reference — parallelism that changed the answer would be a
//! bug, not a speedup.
//!
//! `--threads N` narrows the sweep to that single count; `--json` emits
//! one RunStats line per (technique, thread count) with a `threads` field.
//!
//! Run: `cargo run -p sj-bench --release --bin scaling [--ticks N] [--threads N] [--workload SPEC] [--csv|--json]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::stats_line;
use sj_bench::run_workload_spec;
use sj_bench::table::{secs, Table};
use sj_core::par::ExecMode;
use sj_core::technique::TechniqueSpec;

/// The swept worker counts (the Tsitsigkos figures' x-axis, truncated to
/// counts a laptop container can honor).
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let opts = CommonOpts::parse();
    opts.require_self_join("scaling");
    let params = opts.uniform_params();
    let specs = opts.techniques(TechniqueSpec::is_benchmarkable);
    let wspec = opts.workload_spec();
    let counts: Vec<usize> = match opts.threads {
        Some(n) => vec![n.get()],
        None => THREAD_COUNTS.to_vec(),
    };

    if !opts.json {
        println!(
            "# Query-phase scaling, {} points, {} ticks, {} workload (query seconds per tick)",
            params.num_points,
            params.ticks,
            wspec.name()
        );
    }
    let mut headers = vec!["technique".to_string()];
    headers.extend(counts.iter().map(|n| format!("query_s @{n}")));
    headers.push("speedup".to_string());
    let mut t = Table::new(headers);

    for spec in specs {
        // Force the reference truly sequential: a spec arriving with its own
        // @par modifier (via --technique) would otherwise promote this run
        // too, and the equality assert would compare parallel to itself.
        let reference = run_workload_spec(
            wspec,
            &params,
            spec.with_exec(ExecMode::Sequential),
            ExecMode::Sequential,
        );
        let mut row = vec![spec.label()];
        let mut first_query_s = None;
        let mut last_query_s = None;
        for &n in &counts {
            let exec = ExecMode::parallel(n).expect("thread counts are nonzero");
            let stats =
                run_workload_spec(wspec, &params, spec.with_exec(exec), ExecMode::Sequential);
            assert_eq!(
                (stats.result_pairs, stats.checksum),
                (reference.result_pairs, reference.checksum),
                "{} @{n} threads computed a different join",
                spec.name()
            );
            let query_s = stats.avg_query_seconds();
            first_query_s.get_or_insert(query_s);
            last_query_s = Some(query_s);
            if opts.json {
                println!(
                    "{}",
                    stats_line("scaling", &spec.name(), Some(("threads", n as f64)), &stats)
                );
            } else {
                row.push(secs(query_s));
            }
        }
        if !opts.json {
            let speedup = match (first_query_s, last_query_s) {
                (Some(first), Some(last)) if last > 0.0 => format!("{:.2}x", first / last),
                _ => "-".to_string(),
            };
            row.push(speedup);
            t.row(row);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
        println!("(speedup = first column / last column; joins verified identical per run)");
    }
}
