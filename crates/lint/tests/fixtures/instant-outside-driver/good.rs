//@ path: crates/base/src/driver.rs
use std::time::Instant;

pub fn timed_phase<F: FnOnce()>(f: F) -> std::time::Duration {
    let started = Instant::now();
    f();
    started.elapsed()
}
