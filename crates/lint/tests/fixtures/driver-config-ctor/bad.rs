//@ path: crates/x/src/lib.rs
use sj_base::driver::{DriverConfig, ExecMode};

pub fn config(ticks: u32) -> DriverConfig {
    DriverConfig {
        ticks,
        warmup: 0,
        exec: ExecMode::Sequential,
    }
}
