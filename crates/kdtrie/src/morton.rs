//! KD-trie linearization codes.
//!
//! A kd-trie over a 2-D grid splits on x, then y, then x… Reading the
//! split decisions root-to-leaf yields a bit string; interpreting it as an
//! integer linearizes the trie into a sorted array. With the x bit taken
//! first this is exactly the Morton / Z-order interleaving of the two
//! 16-bit quantized coordinates, giving a 32-bit code.

/// Spread the 16 bits of `v` to the even positions of a `u32`
/// (`abcd` → `0a0b0c0d`), via the classic parallel-prefix masks.
#[inline]
pub fn spread(v: u16) -> u32 {
    let mut x = v as u32;
    x = (x | (x << 8)) & 0x00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

/// Inverse of [`spread`]: collect the even-position bits of `v`.
#[inline]
pub fn unspread(v: u32) -> u16 {
    let mut x = v & 0x5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF;
    x as u16
}

/// Interleave quantized coordinates into a kd-trie code; x occupies the
/// odd (more significant) bit positions because the trie splits on x
/// first.
#[inline]
pub fn encode(qx: u16, qy: u16) -> u32 {
    (spread(qx) << 1) | spread(qy)
}

/// Recover `(qx, qy)` from a code.
#[inline]
pub fn decode(code: u32) -> (u16, u16) {
    (unspread(code >> 1), unspread(code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::rng::Xoshiro256;

    #[test]
    fn spread_examples() {
        assert_eq!(spread(0), 0);
        assert_eq!(spread(1), 1);
        assert_eq!(spread(0b11), 0b101);
        assert_eq!(spread(0xFFFF), 0x5555_5555);
    }

    #[test]
    fn encode_decode_roundtrip_exhaustive_bytes() {
        for qx in (0..=u16::MAX).step_by(257) {
            for qy in (0..=u16::MAX).step_by(263) {
                assert_eq!(decode(encode(qx, qy)), (qx, qy));
            }
        }
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = Xoshiro256::seeded(1);
        for _ in 0..10_000 {
            let qx = rng.next_u32() as u16;
            let qy = rng.next_u32() as u16;
            assert_eq!(decode(encode(qx, qy)), (qx, qy));
        }
    }

    #[test]
    fn x_is_the_most_significant_dimension() {
        // Splitting on x first means the top bit of the code is x's top bit.
        assert_eq!(encode(0x8000, 0) >> 31, 1);
        assert_eq!(encode(0, 0x8000) >> 31, 0);
        assert!(encode(0x8000, 0) > encode(0x7FFF, 0xFFFF));
    }

    #[test]
    fn code_order_respects_quadrants() {
        // All codes of the SW quadrant sort below all of the NE quadrant.
        let sw = encode(0x7FFF, 0x7FFF);
        let ne = encode(0x8000, 0x8000);
        assert!(sw < ne);
    }
}
