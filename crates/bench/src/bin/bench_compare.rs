//! `bench_compare` — diff two suite documents and fail on regressions.
//!
//! The gate for the committed trajectory: load a baseline `BENCH_<n>.json`
//! and a current run, match cells by id, and exit nonzero when a
//! comparable cell's per-tick time grew beyond the noise threshold, its
//! join checksum drifted, or the matrix shrank. Incomparable cells (quick
//! vs full scale) are skipped with a note; `--schema-only` restricts the
//! run to structural checks (what CI's bench-smoke job uses, since
//! wall-clock does not transfer across machines).
//!
//! Exit codes: 0 clean, 1 regression/drift/missing cells, 2 usage or
//! parse error (including the `null` a writer emits for a non-finite
//! measurement — a poisoned snapshot is refused, not diffed around).
//!
//! Run: `cargo run -p sj-bench --release --bin bench_compare --
//! BASELINE.json CURRENT.json [--threshold 1.5] [--schema-only]`

use sj_bench::compare::{compare, load_file, Finding, DEFAULT_THRESHOLD};

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare BASELINE.json CURRENT.json [--threshold RATIO] [--schema-only]"
    );
    std::process::exit(2);
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut schema_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|t| t.is_finite() && *t > 1.0)
                    .unwrap_or_else(|| {
                        eprintln!("--threshold wants a finite ratio > 1.0");
                        std::process::exit(2);
                    });
            }
            "--schema-only" => schema_only = true,
            _ if !arg.starts_with('-') && paths.len() < 2 => paths.push(arg),
            _ => usage(),
        }
    }
    if paths.len() != 2 {
        usage();
    }

    // load_file names the offending document in every rejection, so a
    // bad snapshot is attributable when two are in play.
    let baseline = load_file(&paths[0]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let current = load_file(&paths[1]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let report = compare(&baseline, &current, threshold, schema_only);
    let mut skipped = 0usize;
    for finding in &report.findings {
        match finding {
            Finding::Regression { id, ratio } => {
                println!("REGRESSION  {id}: {ratio:.2}x slower (threshold {threshold:.2}x)");
            }
            Finding::ChecksumDrift { id } => {
                println!(
                    "DRIFT       {id}: join checksum or pair count changed at pinned parameters"
                );
            }
            Finding::Missing { id } => println!("MISSING     {id}: cell absent from current run"),
            Finding::Improvement { id, ratio } => println!("improvement {id}: {ratio:.2}x"),
            Finding::Incomparable { .. } | Finding::BelowNoiseFloor { .. } => skipped += 1,
        }
    }
    println!(
        "compared {} cells ({} skipped: different scale or below noise floor, {} new), \
         baseline {} mode vs current {} mode{}",
        report.compared,
        skipped,
        report.added,
        baseline.mode,
        current.mode,
        if schema_only { ", schema-only" } else { "" }
    );
    if report.passed() {
        println!("OK: no regressions");
    } else {
        println!("FAIL: {} fatal finding(s)", report.failures().len());
        std::process::exit(1);
    }
}
