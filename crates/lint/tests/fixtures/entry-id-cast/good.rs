//@ path: crates/x/src/lib.rs
use sj_base::table::{entry_id, EntryId, ExtentTable};

pub fn ids(n: usize) -> Vec<EntryId> {
    (0..n).map(entry_id).collect()
}

// Extent rows go through the same sanctioned helper: partitioning a
// rect table per cell never mints a handle by casting a row index.
pub fn extent_ids(table: &ExtentTable) -> Vec<EntryId> {
    (0..table.len()).map(entry_id).collect()
}
