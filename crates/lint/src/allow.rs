//! Explicit, auditable suppression: `lint-allow.toml` + inline markers.
//!
//! Deny-by-default only works if the escape hatch is narrower than the
//! rule: a suppression here names the rule, the file, and a justification
//! a reviewer can veto — and an allow that stops suppressing anything
//! becomes an [`unused-allow`] diagnostic, so the allowlist can only
//! shrink as burn-downs land (CI additionally pins the entry budget).
//!
//! Two mechanisms:
//! - **`lint-allow.toml`** at the workspace root, hand-parsed (the
//!   container has no `toml` crate) as the subset the file needs:
//!   `[[allow]]` tables of `key = "string"` pairs with `#` comments.
//!   Required keys: `rule`, `file`, `justification` (>= 10 chars — a
//!   justification, not a shrug). An entry suppresses every diagnostic of
//!   that rule in that file.
//! - **inline markers**: `// sj-lint: allow(rule-a, rule-b) — reason`,
//!   suppressing those rules on the marker's line and the line below it
//!   (the usual "marker above the offending statement" shape).
//!
//! [`unused-allow`]: crate::rules::RULES

use crate::lexer::Comment;
use crate::rules::{is_rule, Diagnostic};

/// One `[[allow]]` entry from `lint-allow.toml`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    pub justification: String,
    /// 1-based line of the entry's `[[allow]]` header, for unused-allow
    /// diagnostics.
    pub line: u32,
}

/// A configuration error (malformed allowlist): exit code 2 territory,
/// distinct from rule diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Parse the `lint-allow.toml` subset. Unknown keys, non-string values,
/// duplicate keys, unknown rule names, and free-floating keys are all
/// hard errors — a suppression file must never be half-understood.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, ConfigError> {
    struct Partial {
        rule: Option<String>,
        file: Option<String>,
        justification: Option<String>,
        line: u32,
    }
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<Partial> = None;

    let finish = |p: Partial, entries: &mut Vec<AllowEntry>| -> Result<(), ConfigError> {
        let at = p.line;
        let missing = |k: &str| ConfigError(format!("lint-allow.toml:{at}: entry missing `{k}`"));
        let entry = AllowEntry {
            rule: p.rule.ok_or_else(|| missing("rule"))?,
            file: p.file.ok_or_else(|| missing("file"))?,
            justification: p.justification.ok_or_else(|| missing("justification"))?,
            line: at,
        };
        if !is_rule(&entry.rule) {
            return Err(ConfigError(format!(
                "lint-allow.toml:{at}: unknown rule {:?} (see sj-lint --list-rules)",
                entry.rule
            )));
        }
        if entry.justification.trim().len() < 10 {
            return Err(ConfigError(format!(
                "lint-allow.toml:{at}: justification for {:?} is too thin — say why the site \
                 is genuinely exempt",
                entry.rule
            )));
        }
        if entries
            .iter()
            .any(|e| e.rule == entry.rule && e.file == entry.file)
        {
            return Err(ConfigError(format!(
                "lint-allow.toml:{at}: duplicate entry for ({}, {})",
                entry.rule, entry.file
            )));
        }
        entries.push(entry);
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                finish(p, &mut entries)?;
            }
            current = Some(Partial {
                rule: None,
                file: None,
                justification: None,
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError(format!(
                "lint-allow.toml:{lineno}: expected `key = \"value\"`, got {line:?}"
            )));
        };
        let key = key.trim();
        let value = parse_string(value.trim()).ok_or_else(|| {
            ConfigError(format!(
                "lint-allow.toml:{lineno}: value for `{key}` must be a double-quoted string"
            ))
        })?;
        let Some(p) = current.as_mut() else {
            return Err(ConfigError(format!(
                "lint-allow.toml:{lineno}: `{key}` outside an [[allow]] entry"
            )));
        };
        let slot = match key {
            "rule" => &mut p.rule,
            "file" => &mut p.file,
            "justification" => &mut p.justification,
            other => {
                return Err(ConfigError(format!(
                    "lint-allow.toml:{lineno}: unknown key `{other}` \
                     (allowed: rule, file, justification)"
                )))
            }
        };
        if slot.is_some() {
            return Err(ConfigError(format!(
                "lint-allow.toml:{lineno}: duplicate key `{key}`"
            )));
        }
        *slot = Some(value);
    }
    if let Some(p) = current.take() {
        finish(p, &mut entries)?;
    }
    Ok(entries)
}

/// A minimal TOML basic string: double quotes, `\"` and `\\` escapes.
fn parse_string(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                _ => return None,
            }
        } else if c == '"' {
            // An unescaped quote means `"a" trailing "b"` — not a string.
            return None;
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// An inline `// sj-lint: allow(rule, ...)` marker found in a file.
#[derive(Clone, Debug)]
pub struct InlineAllow {
    pub rules: Vec<String>,
    pub file: String,
    pub line: u32,
}

/// Extract inline allow markers from a file's comments. Malformed or
/// unknown-rule markers are config errors: a suppression that silently
/// fails to parse would un-suppress on the next edit.
pub fn inline_allows(file: &str, comments: &[Comment]) -> Result<Vec<InlineAllow>, ConfigError> {
    let mut out = Vec::new();
    for c in comments {
        let t = c.text.trim();
        let Some(rest) = t.strip_prefix("sj-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let inner = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(inner, _)| inner)
            .ok_or_else(|| {
                ConfigError(format!(
                    "{file}:{}: malformed sj-lint marker {t:?} — expected \
                     `sj-lint: allow(rule[, rule])`",
                    c.start_line
                ))
            })?;
        let rules: Vec<String> = inner
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            return Err(ConfigError(format!(
                "{file}:{}: empty sj-lint allow marker",
                c.start_line
            )));
        }
        for r in &rules {
            if !is_rule(r) {
                return Err(ConfigError(format!(
                    "{file}:{}: unknown rule {r:?} in sj-lint marker \
                     (see sj-lint --list-rules)",
                    c.start_line
                )));
            }
        }
        out.push(InlineAllow {
            rules,
            file: file.to_string(),
            line: c.end_line,
        });
    }
    Ok(out)
}

/// Apply both suppression layers to raw diagnostics: returns the
/// surviving diagnostics plus an `unused-allow` diagnostic for every
/// entry or marker that suppressed nothing.
pub fn apply_allows(
    raw: Vec<Diagnostic>,
    allowlist: &[AllowEntry],
    inline: &[InlineAllow],
) -> Vec<Diagnostic> {
    let mut list_used = vec![false; allowlist.len()];
    let mut inline_used = vec![false; inline.len()];
    let mut out = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for (i, e) in allowlist.iter().enumerate() {
            if e.rule == d.rule && e.file == d.file {
                list_used[i] = true;
                suppressed = true;
            }
        }
        for (i, m) in inline.iter().enumerate() {
            // A marker covers its own line and the next one.
            if m.file == d.file
                && (m.line == d.line || m.line + 1 == d.line)
                && m.rules.iter().any(|r| r == d.rule)
            {
                inline_used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for (e, used) in allowlist.iter().zip(&list_used) {
        if !used {
            out.push(Diagnostic {
                rule: "unused-allow",
                file: "lint-allow.toml".to_string(),
                line: e.line,
                msg: format!(
                    "allow({}, {}) no longer suppresses anything — delete it (the allowlist \
                     can only shrink)",
                    e.rule, e.file
                ),
            });
        }
    }
    for (m, used) in inline.iter().zip(&inline_used) {
        if !used {
            out.push(Diagnostic {
                rule: "unused-allow",
                file: m.file.clone(),
                line: m.line,
                msg: format!(
                    "inline allow({}) no longer suppresses anything — delete the marker",
                    m.rules.join(", ")
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{check_file, FileCtx};

    const GOOD: &str = r#"
# comment
[[allow]]
rule = "no-unwrap"
file = "crates/x/src/lib.rs"
justification = "mutex poisoning is unrecoverable here"

[[allow]]
rule = "float-eq"
file = "crates/bench/src/json.rs"
justification = "fract() == 0.0 is an exact integrality test"
"#;

    #[test]
    fn parses_entries() {
        let entries = parse_allowlist(GOOD).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "no-unwrap");
        assert_eq!(entries[1].file, "crates/bench/src/json.rs");
        assert_eq!(entries[0].line, 3);
    }

    #[test]
    fn rejects_malformed_allowlists() {
        for (snippet, needle) in [
            ("rule = \"no-unwrap\"\n", "outside an [[allow]]"),
            ("[[allow]]\nrule = \"no-unwrap\"\n", "missing `file`"),
            (
                "[[allow]]\nrule = \"nope\"\nfile = \"x\"\njustification = \"long enough ok\"\n",
                "unknown rule",
            ),
            (
                "[[allow]]\nrule = \"no-unwrap\"\nfile = \"x\"\njustification = \"meh\"\n",
                "too thin",
            ),
            ("[[allow]]\nrule = no-unwrap\n", "double-quoted"),
            ("[[allow]]\nwhat = \"x\"\n", "unknown key"),
            (
                "[[allow]]\nrule = \"no-unwrap\"\nrule = \"no-unwrap\"\n",
                "duplicate key",
            ),
            ("garbage line\n", "expected `key = \"value\"`"),
        ] {
            let err = parse_allowlist(snippet).unwrap_err();
            assert!(err.0.contains(needle), "{snippet:?} -> {err}");
        }
        // Duplicate (rule, file) pairs across entries.
        let dup = "[[allow]]\nrule = \"no-unwrap\"\nfile = \"x\"\njustification = \"0123456789\"\n\
                   [[allow]]\nrule = \"no-unwrap\"\nfile = \"x\"\njustification = \"0123456789\"\n";
        assert!(parse_allowlist(dup)
            .unwrap_err()
            .0
            .contains("duplicate entry"));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(parse_string(r#""a\"b\\c""#).unwrap(), "a\"b\\c");
        assert!(parse_string(r#""a" tail "b""#).is_none());
        assert!(parse_string("bare").is_none());
    }

    fn diags(rel: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        check_file(&FileCtx { rel, lexed: &lexed })
    }

    #[test]
    fn file_allow_suppresses_and_unused_allow_fires() {
        let src = "fn f() { x().unwrap(); }";
        let raw = diags("crates/x/src/lib.rs", src);
        assert_eq!(raw.len(), 1);
        let entries = parse_allowlist(GOOD).unwrap();
        let out = apply_allows(raw, &entries, &[]);
        // no-unwrap suppressed; the float-eq entry is unused -> flagged.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-allow");
        assert_eq!(out[0].file, "lint-allow.toml");
        assert!(out[0].msg.contains("float-eq"));
    }

    #[test]
    fn inline_allow_suppresses_same_and_next_line() {
        let src =
            "fn f() {\n    // sj-lint: allow(no-unwrap) — demo of the marker\n    x().unwrap();\n}";
        let lexed = lex(src);
        let raw = check_file(&FileCtx {
            rel: "crates/x/src/lib.rs",
            lexed: &lexed,
        });
        let inline = inline_allows("crates/x/src/lib.rs", &lexed.comments).unwrap();
        assert_eq!(inline.len(), 1);
        let out = apply_allows(raw, &[], &inline);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unused_inline_allow_fires() {
        let src = "// sj-lint: allow(no-unwrap) — stale\nfn f() { ok(); }";
        let lexed = lex(src);
        let inline = inline_allows("crates/x/src/lib.rs", &lexed.comments).unwrap();
        let out = apply_allows(Vec::new(), &[], &inline);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-allow");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn malformed_inline_markers_are_config_errors() {
        for src in [
            "// sj-lint: allow no-unwrap\n",
            "// sj-lint: allow()\n",
            "// sj-lint: allow(not-a-rule)\n",
        ] {
            let lexed = lex(src);
            assert!(inline_allows("f.rs", &lexed.comments).is_err(), "{src:?}");
        }
    }
}
