//! The uniform moving-rectangle workload — the extent counterpart of
//! [`crate::UniformWorkload`], driving the **intersects** predicate
//! (`--join intersect:rects`).
//!
//! Rectangles get a uniform random size per axis in `[0, query_side]`
//! (the Table 1 query-size knob doubles as the maximum extent side, so
//! the rect workload's selectivity is comparable to the point
//! workloads') and a uniform random placement such that the whole
//! rectangle starts inside the space. Movement is linear with boundary
//! bounce, size preserved ([`MovingExtentSet::advance_bouncing`]). Each
//! tick a Bernoulli(`frac_queriers`) coin decides per object whether it
//! queries — in the intersection self-join its query region *is* its own
//! extent — and Bernoulli(`frac_updaters`) whether it draws a fresh
//! random velocity.

use sj_base::driver::{ExtentTickActions, ExtentWorkload};
use sj_base::geom::Rect;
use sj_base::rng::Xoshiro256;
use sj_base::table::{entry_id, MovingExtentSet};

use crate::params::WorkloadParams;
use crate::uniform::random_velocity;

/// See module docs.
///
/// ```
/// use sj_base::ExtentWorkload;
/// use sj_workload::{RectsWorkload, WorkloadParams};
///
/// let params = WorkloadParams { num_points: 1_000, ..WorkloadParams::default() };
/// let mut workload = RectsWorkload::new(params);
/// let set = workload.init();
/// assert_eq!(set.len(), 1_000);
/// let space = workload.space();
/// assert!(space.contains_rect(&set.extents.rect(0)));
/// ```
#[derive(Clone, Debug)]
pub struct RectsWorkload {
    params: WorkloadParams,
    /// Independent streams, as in the point workloads: sweeping the query
    /// fraction must not change object trajectories.
    rng_place: Xoshiro256,
    rng_query: Xoshiro256,
    rng_update: Xoshiro256,
}

impl RectsWorkload {
    pub fn new(params: WorkloadParams) -> Self {
        debug_assert!(params.validate().is_ok());
        let mut root = Xoshiro256::seeded(params.seed);
        RectsWorkload {
            params,
            rng_place: root.fork(),
            rng_query: root.fork(),
            rng_update: root.fork(),
        }
    }

    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }
}

impl ExtentWorkload for RectsWorkload {
    fn space(&self) -> Rect {
        Rect::space(self.params.space_side)
    }

    fn init(&mut self) -> MovingExtentSet {
        let n = self.params.num_points as usize;
        let side = self.params.space_side;
        let max_extent = self.params.query_side.min(side);
        let mut set = MovingExtentSet::with_capacity(n);
        for _ in 0..n {
            let w = self.rng_place.range_f32(0.0, max_extent);
            let h = self.rng_place.range_f32(0.0, max_extent);
            let x = self.rng_place.range_f32(0.0, side - w);
            let y = self.rng_place.range_f32(0.0, side - h);
            let v = random_velocity(&mut self.rng_place, self.params.max_speed);
            set.push(Rect::new(x, y, x + w, y + h), v);
        }
        set
    }

    fn plan_tick(&mut self, _tick: u32, set: &MovingExtentSet, actions: &mut ExtentTickActions) {
        let n = entry_id(set.len());
        for id in 0..n {
            if self.rng_query.bernoulli(self.params.frac_queriers) {
                actions.queriers.push(id);
            }
        }
        for id in 0..n {
            if self.rng_update.bernoulli(self.params.frac_updaters) {
                let v = random_velocity(&mut self.rng_update, self.params.max_speed);
                actions.velocity_updates.push((id, v.x, v.y));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> WorkloadParams {
        WorkloadParams {
            num_points: 2_000,
            space_side: 10_000.0,
            ..WorkloadParams::default()
        }
    }

    #[test]
    fn init_places_whole_rectangles_inside_space() {
        let mut w = RectsWorkload::new(small_params());
        let set = w.init();
        assert_eq!(set.len(), 2_000);
        let space = w.space();
        let max = small_params().query_side;
        for (_, r) in set.extents.iter() {
            assert!(space.contains_rect(&r), "{r:?}");
            assert!(r.width() <= max && r.height() <= max, "{r:?}");
        }
    }

    #[test]
    fn same_seed_gives_identical_populations_and_plans() {
        let mk = || {
            let mut w = RectsWorkload::new(small_params());
            let set = w.init();
            let mut a = ExtentTickActions::default();
            w.plan_tick(0, &set, &mut a);
            (
                set.extents.rect(7),
                a.queriers.len(),
                a.velocity_updates.len(),
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn querier_fraction_is_close_to_parameter() {
        let mut w = RectsWorkload::new(small_params());
        let set = w.init();
        let mut actions = ExtentTickActions::default();
        let mut total = 0usize;
        let ticks = 20;
        for t in 0..ticks {
            actions.clear();
            w.plan_tick(t, &set, &mut actions);
            total += actions.queriers.len();
        }
        let rate = total as f64 / (ticks as usize * set.len()) as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn movement_preserves_sizes_and_containment() {
        let mut w = RectsWorkload::new(small_params());
        let mut set = w.init();
        let sizes: Vec<(f32, f32)> = set
            .extents
            .iter()
            .map(|(_, r)| (r.width(), r.height()))
            .collect();
        let space = w.space();
        for _ in 0..50 {
            w.advance(&mut set);
        }
        for ((_, r), &(w0, h0)) in set.extents.iter().zip(&sizes) {
            assert!(space.contains_rect(&r), "{r:?}");
            // Sizes are preserved up to float rounding of the corner
            // translation (one ulp of `x + w` per tick).
            assert!((r.width() - w0).abs() < 0.5, "{r:?} vs width {w0}");
            assert!((r.height() - h0).abs() < 0.5, "{r:?} vs height {h0}");
        }
    }

    #[test]
    fn different_seeds_give_different_placements() {
        let mut w1 = RectsWorkload::new(WorkloadParams {
            seed: 1,
            ..small_params()
        });
        let mut w2 = RectsWorkload::new(WorkloadParams {
            seed: 2,
            ..small_params()
        });
        let (s1, s2) = (w1.init(), w2.init());
        let same = (0..100u32)
            .filter(|&i| s1.extents.rect(i) == s2.extents.rect(i))
            .count();
        assert_eq!(same, 0);
    }
}
