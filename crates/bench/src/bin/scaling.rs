//! Scaling — the query phase across worker counts, in the style of the
//! Tsitsigkos & Mamoulis scalability figures ("Parallel In-Memory
//! Evaluation of Spatial Joins"): every benchmarkable registry technique
//! at 1, 2, 4 and 8 workers, under the non-sequential execution modes
//! raced against each other — `@par<N>` (the query set sharded over N
//! threads probing one shared index), `@tiles<N>` (the space cut into N
//! tiles, each with a private fork of the technique; DESIGN.md §13),
//! `@tiles<4N>@par<N>` (4× oversharded tiles drained by a shared worker
//! pool of N — the mini-join scheduler, DESIGN.md §14) and
//! `@tilesauto@par<N>` (density-sized tiling over the same pool).
//!
//! Worker count 1 runs the real parallel/tiled code paths with one
//! worker, so each speedup column isolates scaling from the constant cost
//! of dispatch (and, for tiles, of partitioning). The sweep crosses a
//! uniform and two skewed workloads (`gaussian`, `roadgrid`) by default —
//! skew is where the modes diverge: sharding balances queries but shares
//! one big index, tile-per-thread shrinks the per-worker index but
//! inherits the hotspot imbalance, and the pooled modes keep the small
//! indexes while re-balancing the hotspot dynamically. The tiled rows
//! also report the load-balance evidence: `imbalance` (slowest-tile time
//! ÷ mean-tile time, 1.0 = perfectly even) and `occupancy` (fraction of
//! pool capacity spent doing mini-joins), both at the row's highest
//! worker count. Each run's join is asserted identical to the sequential
//! reference — parallelism that changed the answer would be a bug, not a
//! speedup.
//!
//! `--workload SPEC` narrows the workload sweep to that spec;
//! `--threads N` (or a fixed `--tiles N` when `--threads` is absent)
//! narrows the worker-count sweep to N, keeping the race aligned. A fixed
//! `--tiles N` also pins the tile count of the `tiles` and `pool` rows.
//! `--json` emits one RunStats line per (workload, technique, mode,
//! count) with the swept count under the mode's key and, for tiled runs,
//! `imbalance`/`occupancy` fields.
//!
//! Run: `cargo run -p sj-bench --release --bin scaling [--ticks N] [--threads N] [--tiles N|auto] [--workload SPEC] [--csv|--json]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::JsonLine;
use sj_bench::run_workload_spec;
use sj_bench::table::{secs, Table};
use sj_core::par::{ExecMode, Tiling};
use sj_core::technique::TechniqueSpec;
use sj_workload::{WorkloadKind, WorkloadSpec, DEFAULT_HOTSPOTS};

/// The swept worker counts (the Tsitsigkos figures' x-axis, truncated to
/// counts a laptop container can honor).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Oversharding factor for the `pool` row when `--tiles` doesn't pin a
/// tile count: 4 tiles per worker gives the work-stealing cursor enough
/// mini-join granularity to smooth a hotspot without drowning the run in
/// partitioning overhead.
const POOL_OVERSHARD: usize = 4;

/// The raced mode rows, as column labels. The mode itself is built per
/// (row, worker count) by [`mode_for`] — the pooled rows need the pinned
/// tile count, not just the swept worker count.
const MODES: [&str; 4] = ["par", "tiles", "pool", "auto"];

/// The [`ExecMode`] for one (row, worker count) cell. `fixed_tiles` is a
/// `--tiles N` pin: it sizes the `tiles` and `pool` rows' tile grids
/// independently of the swept worker count.
fn mode_for(mode: &str, n: usize, fixed_tiles: Option<usize>) -> ExecMode {
    let mode = match mode {
        "par" => ExecMode::parallel(n),
        "tiles" => ExecMode::partitioned(fixed_tiles.unwrap_or(n)),
        "pool" => ExecMode::pooled(fixed_tiles.unwrap_or(POOL_OVERSHARD * n), n),
        "auto" => ExecMode::adaptive_pooled(n),
        other => unreachable!("unknown scaling mode row {other}"),
    };
    mode.expect("worker counts are nonzero")
}

fn main() {
    let opts = CommonOpts::parse();
    opts.require_self_join("scaling");
    let params = opts.uniform_params();
    let specs = opts.techniques(TechniqueSpec::is_benchmarkable);
    let workloads: Vec<WorkloadSpec> = match opts.workload {
        Some(w) => vec![w],
        None => vec![
            WorkloadKind::Uniform.spec(),
            WorkloadKind::Gaussian {
                hotspots: DEFAULT_HOTSPOTS,
            }
            .spec(),
            WorkloadKind::RoadGrid.spec(),
        ],
    };
    let fixed_tiles = opts.tiles.and_then(|t| match t {
        Tiling::Fixed(n) => Some(n.get()),
        Tiling::Auto => None,
    });
    let counts: Vec<usize> = match opts.threads.map(|n| n.get()).or(fixed_tiles) {
        Some(n) => vec![n],
        None => WORKER_COUNTS.to_vec(),
    };

    for wspec in workloads {
        if !opts.json {
            println!(
                "# Query-phase scaling, {} points, {} ticks, {} workload (query seconds per tick)",
                params.num_points,
                params.ticks,
                wspec.name()
            );
        }
        let mut headers = vec!["technique".to_string(), "mode".to_string()];
        headers.extend(counts.iter().map(|n| format!("query_s @{n}")));
        headers.push("speedup".to_string());
        headers.push("imbalance".to_string());
        headers.push("occupancy".to_string());
        let mut t = Table::new(headers);

        for &spec in &specs {
            // Force the reference truly sequential: a spec arriving with
            // its own @par/@tiles modifier (via --technique) would
            // otherwise promote this run too, and the equality assert
            // would compare a mode to itself.
            let reference = run_workload_spec(
                wspec,
                &params,
                spec.with_exec(ExecMode::Sequential),
                ExecMode::Sequential,
            );
            for mode_name in MODES {
                let mut row = vec![spec.label(), mode_name.to_string()];
                let mut first_query_s = None;
                let mut last_query_s = None;
                let mut last_load = None;
                for &n in &counts {
                    let exec = mode_for(mode_name, n, fixed_tiles);
                    let stats = run_workload_spec(
                        wspec,
                        &params,
                        spec.with_exec(exec),
                        ExecMode::Sequential,
                    );
                    assert_eq!(
                        (stats.result_pairs, stats.checksum),
                        (reference.result_pairs, reference.checksum),
                        "{} under {exec} on {} computed a different join",
                        spec.name(),
                        wspec.name()
                    );
                    let query_s = stats.avg_query_seconds();
                    first_query_s.get_or_insert(query_s);
                    last_query_s = Some(query_s);
                    last_load = stats.tile_load;
                    if opts.json {
                        let mut line = JsonLine::new("scaling")
                            .str("technique", &spec.with_exec(exec).name())
                            .num(mode_name, n as f64)
                            .stats(&stats);
                        if let Some(load) = stats.tile_load {
                            line = line
                                .num("imbalance", load.imbalance)
                                .num("occupancy", load.occupancy);
                        }
                        println!("{}", line.finish());
                    } else {
                        row.push(secs(query_s));
                    }
                }
                if !opts.json {
                    let speedup = match (first_query_s, last_query_s) {
                        (Some(first), Some(last)) if last > 0.0 => format!("{:.2}x", first / last),
                        _ => "-".to_string(),
                    };
                    row.push(speedup);
                    match last_load {
                        Some(load) => {
                            row.push(format!("{:.2}", load.imbalance));
                            row.push(format!("{:.0}%", load.occupancy * 100.0));
                        }
                        None => {
                            row.push("-".to_string());
                            row.push("-".to_string());
                        }
                    }
                    t.row(row);
                }
            }
        }
        if !opts.json {
            println!("{}", t.render(opts.csv));
            println!(
                "(speedup = first column / last column; imbalance/occupancy from the last \
                 column's tiled run; joins verified identical per run)"
            );
        }
    }
}
