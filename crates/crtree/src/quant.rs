//! Quantized relative MBRs (QRMBR) — the CR-tree's key compression.
//!
//! Child MBRs are expressed relative to the parent node's reference MBR
//! and quantized to 8 bits per side, shrinking a 16-byte child key to
//! 4 bytes so four times as many keys fit per cache line. Quantization is
//! *conservative*: the decompressed rectangle always contains the
//! original, so overlap tests can produce false positives but never false
//! negatives (exactness is restored by the final point filter).
//!
//! Every bound is quantized to the **cell containing it** (floor). A
//! quantized cell `c` decompresses to `[c·step, (c+1)·step]`, which covers
//! the original coordinate from both sides; and because floor is
//! monotone, two really-overlapping closed rectangles always overlap in
//! quantized cell space as well — the invariant the property tests pin
//! down. (Rounding upper bounds *down-by-one-cell* instead, as a naive
//! ceil-based scheme does, loses exactly the boundary-coincident cases.)

/// Number of quantization cells per axis (8-bit keys).
pub const LEVELS: u32 = 256;

/// Quantize a coordinate to the cell containing it within the reference
/// extent `[lo, hi]`. Degenerate extents (hi ≤ lo) map everything to
/// cell 0, which keeps all tests trivially conservative.
#[inline]
pub fn quantize(v: f32, lo: f32, hi: f32) -> u8 {
    if hi <= lo {
        return 0;
    }
    let t = (v as f64 - lo as f64) / (hi as f64 - lo as f64);
    let cell = (t * LEVELS as f64).floor();
    cell.clamp(0.0, (LEVELS - 1) as f64) as u8
}

/// A quantized relative MBR: `[x1, y1, x2, y2]` cell indices.
pub type Qmbr = [u8; 4];

/// Quantize `child` relative to the reference rectangle `refr`.
#[inline]
pub fn qmbr(child: &sj_base::geom::Rect, refr: &sj_base::geom::Rect) -> Qmbr {
    [
        quantize(child.x1, refr.x1, refr.x2),
        quantize(child.y1, refr.y1, refr.y2),
        quantize(child.x2, refr.x1, refr.x2),
        quantize(child.y2, refr.y1, refr.y2),
    ]
}

/// Quantize a query rectangle relative to `refr`. Identical cell-floor
/// treatment: the query's quantized footprint is the set of cells its
/// corners land in, which together with monotonicity guarantees no real
/// overlap is missed.
#[inline]
pub fn qquery(query: &sj_base::geom::Rect, refr: &sj_base::geom::Rect) -> Qmbr {
    qmbr(query, refr)
}

/// Integer overlap test between two quantized rectangles.
#[inline]
pub fn q_intersects(a: &Qmbr, b: &Qmbr) -> bool {
    a[0] <= b[2] && b[0] <= a[2] && a[1] <= b[3] && b[1] <= a[3]
}

/// Decompress a quantized MBR back to (a superset of) coordinates, for
/// tests of the conservativeness invariant.
pub fn decompress(q: &Qmbr, refr: &sj_base::geom::Rect) -> sj_base::geom::Rect {
    let wx = (refr.x2 as f64 - refr.x1 as f64).max(0.0);
    let wy = (refr.y2 as f64 - refr.y1 as f64).max(0.0);
    let step_x = wx / LEVELS as f64;
    let step_y = wy / LEVELS as f64;
    sj_base::geom::Rect {
        x1: (refr.x1 as f64 + q[0] as f64 * step_x) as f32,
        y1: (refr.y1 as f64 + q[1] as f64 * step_y) as f32,
        x2: (refr.x1 as f64 + (q[2] as f64 + 1.0) * step_x) as f32,
        y2: (refr.y1 as f64 + (q[3] as f64 + 1.0) * step_y) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::geom::Rect;
    use sj_base::rng::Xoshiro256;

    #[test]
    fn cell_brackets_the_value() {
        let (lo, hi) = (0.0f32, 1000.0f32);
        let step = 1000.0 / LEVELS as f64;
        for v in [0.0f32, 1.0, 499.9, 500.0, 999.9, 1000.0] {
            let c = quantize(v, lo, hi) as f64;
            assert!(c * step <= v as f64 + 1e-6, "cell start above {v}");
            assert!((c + 1.0) * step >= v as f64 - 1e-6, "cell end below {v}");
        }
    }

    #[test]
    fn quantize_is_monotone() {
        let mut rng = Xoshiro256::seeded(2);
        for _ in 0..1000 {
            let a = rng.range_f32(0.0, 1000.0);
            let b = rng.range_f32(0.0, 1000.0);
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            assert!(quantize(a, 0.0, 1000.0) <= quantize(b, 0.0, 1000.0));
        }
    }

    #[test]
    fn degenerate_reference_maps_to_cell_zero() {
        assert_eq!(quantize(5.0, 3.0, 3.0), 0);
        assert_eq!(quantize(-5.0, 3.0, 3.0), 0);
        // Degenerate child vs degenerate query still "overlap".
        let refr = Rect::new(3.0, 3.0, 3.0, 3.0);
        let a = qmbr(&refr, &refr);
        assert!(q_intersects(&a, &qquery(&refr, &refr)));
    }

    #[test]
    fn decompressed_qmbr_contains_original() {
        let mut rng = Xoshiro256::seeded(4);
        let refr = Rect::new(100.0, 200.0, 900.0, 700.0);
        for _ in 0..1000 {
            let x1 = rng.range_f32(refr.x1, refr.x2);
            let x2 = rng.range_f32(x1, refr.x2);
            let y1 = rng.range_f32(refr.y1, refr.y2);
            let y2 = rng.range_f32(y1, refr.y2);
            let child = Rect::new(x1, y1, x2, y2);
            let d = decompress(&qmbr(&child, &refr), &refr);
            assert!(
                d.x1 <= child.x1 + 1e-3
                    && d.x2 >= child.x2 - 1e-3
                    && d.y1 <= child.y1 + 1e-3
                    && d.y2 >= child.y2 - 1e-3,
                "decompressed {d:?} does not contain {child:?}"
            );
        }
    }

    #[test]
    fn overlap_never_misses() {
        // If real rectangles intersect, their quantized forms must too.
        let mut rng = Xoshiro256::seeded(8);
        let refr = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut checked = 0;
        for _ in 0..2000 {
            let mk = |rng: &mut Xoshiro256| {
                let x1 = rng.range_f32(0.0, 900.0);
                let y1 = rng.range_f32(0.0, 900.0);
                Rect::new(
                    x1,
                    y1,
                    x1 + rng.range_f32(0.0, 100.0),
                    y1 + rng.range_f32(0.0, 100.0),
                )
            };
            let a = mk(&mut rng);
            let b = mk(&mut rng);
            if a.intersects(&b) {
                assert!(
                    q_intersects(&qmbr(&a, &refr), &qquery(&b, &refr)),
                    "quantized miss: {a:?} vs {b:?}"
                );
                checked += 1;
            }
        }
        assert!(checked > 10, "test exercised too few overlapping pairs");
    }

    #[test]
    fn boundary_coincident_rects_still_overlap_quantized() {
        // The regression that motivated floor-everywhere: a query whose
        // lower edge equals a child's upper edge, both exactly on a
        // quantization cell boundary.
        let refr = Rect::new(0.0, 0.0, 256.0, 256.0); // step = 1.0
        let child = Rect::new(0.0, 0.0, 128.0, 128.0);
        let query = Rect::new(128.0, 128.0, 200.0, 200.0);
        assert!(child.intersects(&query));
        assert!(q_intersects(&qmbr(&child, &refr), &qquery(&query, &refr)));
    }

    #[test]
    fn q_intersects_rejects_clearly_disjoint() {
        let refr = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let a = qmbr(&Rect::new(0.0, 0.0, 100.0, 100.0), &refr);
        let b = qquery(&Rect::new(800.0, 800.0, 900.0, 900.0), &refr);
        assert!(!q_intersects(&a, &b));
    }
}
