//! The parallel query phase — a first-class execution mode, not a facade.
//!
//! The paper's setting is deliberately single-threaded ("even
//! single-threaded settings", §4); once the implementation is
//! cache-efficient, the remaining headroom is structural. Tsitsigkos &
//! Mamoulis ("Parallel In-Memory Evaluation of Spatial Joins") show
//! partition-parallel joins scale near-linearly on exactly the grid/sweep
//! techniques reproduced here, and the tick model makes the query phase
//! embarrassingly parallel: queries only *read* the index and the base
//! table, and the build/update phases stay sequential, so the previous-tick
//! semantics are untouched.
//!
//! Two *query-sharding* strategies cover the paper's two join categories
//! (DESIGN.md §8):
//!
//! - [`shard_index_query`] — the per-query category: the tick's querier
//!   list is split into `threads` contiguous chunks, each worker probes the
//!   shared (immutable) index for its chunk;
//! - [`shard_batch_join`] — the set-at-a-time category: the tick's query
//!   set is split into strips, each worker runs a full sweep over its strip
//!   on a private fork of the technique ([`BatchJoin::fork`]).
//!
//! A third mode partitions **space** instead of the query list
//! ([`ExecMode::Partitioned`], DESIGN.md §13–14): the data space is tiled
//! ([`crate::tile::TileGrid`]), both relations are replicated into every
//! tile their query extent overlaps, and each tile builds its own private
//! index ([`tiled_index_build`]/[`tiled_index_query`]) or runs its own
//! batch join ([`tiled_batch_join`]) — no shared structure at all, the
//! design of Tsitsigkos & Mamoulis. The reference-point rule (emit `(a, b)`
//! only in `b`'s canonical tile) makes each pair surface exactly once
//! despite the replication.
//!
//! Tiled execution is scheduled in two levels (the rest of the Tsitsigkos &
//! Mamoulis design): each tile's work list is decomposed into fixed-size
//! **mini-joins** ([`crate::tile::MiniJoin`], [`MINI_JOIN_CHUNK`] queriers
//! each) pushed onto a shared queue, and a pool of
//! `min(workers, chunks)` scoped workers drains the queue through an
//! atomic work-stealing cursor — so a hotspot tile's work spreads over the
//! whole pool instead of bounding the tick on one thread. `@tiles<N>`
//! alone runs one worker per tile over the same queue; `@tiles<N>@par<T>`
//! decouples the grid from the pool ([`Tiling`], [`ExecMode::pooled`]);
//! `@tilesauto` sizes the grid from sampled point density every build
//! ([`crate::tile::auto_tile_count`]), re-deciding per tick under churn.
//!
//! All modes merge per-worker `(pairs, checksum)` partials with `+` /
//! `wrapping_add`. The checksum fold ([`crate::driver::fold_pair`]) mixes
//! each pair and then wrapping-adds, so it is commutative and associative —
//! the merge is order-independent by construction, and the parallel result
//! is **bit-identical** to the sequential one for any shard boundaries,
//! thread count, tile count, or mini-join schedule
//! (`tests/parallel_equivalence.rs` proves this four ways for every
//! registry technique).
//!
//! Workers run on [`std::thread::scope`]: no runtime dependency, no
//! detached threads, borrows of the index and table flow straight in.
//! Every thread spawn in the workspace lives in this module, and so does
//! the scheduler's wall-clock sampling (the per-mini-join busy times
//! behind [`crate::driver::TileLoad`]) — the only `Instant::now` sites
//! outside the driver, sanctioned by sj-lint's `instant-outside-driver`
//! rule for the same reason the spawns are: moving the code moves the
//! rule.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::batch::BatchJoin;
use crate::driver::{fold_pair, TileLoad};
use crate::geom::Rect;
use crate::index::SpatialIndex;
use crate::table::{entry_id, EntryId, ExtentTable, PointTable};
use crate::tile::{
    chunk_mini_joins, replicate_by_extent, replicate_extents, ExtentReplica, MiniJoin, TileGrid,
    TileReplica, MINI_JOIN_CHUNK,
};

/// The tile-count policy of [`ExecMode::Partitioned`]: a fixed grid, or a
/// grid re-derived from observed point density at every build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tiling {
    /// Exactly this many tiles, as `@tiles<N>` / `--tiles N` request.
    Fixed(NonZeroUsize),
    /// Derive the tile count from sampled point density at build time
    /// ([`crate::tile::auto_tile_count`]), re-deciding every tick so the
    /// grid tracks churn. Join results are tile-count-invariant (the
    /// reference-point rule), so whatever count the policy picks, the run
    /// stays bit-identical to sequential.
    Auto,
}

impl Tiling {
    /// The tile count for `table`: the fixed count, or the density-derived
    /// one.
    pub fn resolve(self, table: &PointTable, space: &Rect, query_side: f32) -> NonZeroUsize {
        match self {
            Tiling::Fixed(n) => n,
            Tiling::Auto => crate::tile::auto_tile_count(table, space, query_side),
        }
    }

    /// The tile count for an extent relation: the fixed count, or the
    /// population-derived one ([`crate::tile::auto_tile_count_extents`] —
    /// extents need no `query_side`, their rectangles are the query
    /// regions).
    pub fn resolve_extents(self, table: &ExtentTable) -> NonZeroUsize {
        match self {
            Tiling::Fixed(n) => n,
            Tiling::Auto => crate::tile::auto_tile_count_extents(table),
        }
    }
}

impl std::fmt::Display for Tiling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tiling::Fixed(n) => write!(f, "{n}"),
            Tiling::Auto => f.write_str("auto"),
        }
    }
}

/// How the driver executes a tick's query phase.
///
/// `Parallel` holds a [`NonZeroUsize`], so a zero-thread configuration is
/// unrepresentable — the old `run_join_parallel(.., threads: usize)` entry
/// point had to `assert!(threads > 0)` at runtime; this type moves that
/// guarantee to compile time. CLI layers reject `--threads 0` while
/// parsing (see `sj-bench`), before an `ExecMode` ever exists.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// The paper-faithful single-threaded query phase.
    #[default]
    Sequential,
    /// Query phase sharded over `threads` scoped workers. Results are
    /// bit-identical to [`ExecMode::Sequential`] (see module docs).
    Parallel { threads: NonZeroUsize },
    /// Space-partitioned execution over a grid of tiles, each owning a
    /// private index/join fork over its replicated slice of the data
    /// ([`crate::tile`]). Each tile's work is decomposed into mini-joins
    /// drained by a shared worker pool of `workers` threads (`None` sizes
    /// the pool to the tile count — the plain `@tiles<N>` default).
    /// Results are bit-identical to [`ExecMode::Sequential`] (see module
    /// docs); `RunStats::index_bytes` alone is mode-structural — it
    /// reports the summed footprint of the per-tile indexes.
    Partitioned {
        tiles: Tiling,
        workers: Option<NonZeroUsize>,
    },
}

impl ExecMode {
    /// Parallel execution over `threads` workers; `None` if `threads == 0`.
    pub const fn parallel(threads: usize) -> Option<ExecMode> {
        match NonZeroUsize::new(threads) {
            Some(threads) => Some(ExecMode::Parallel { threads }),
            None => None,
        }
    }

    /// Space-partitioned execution over `tiles` tiles with the default
    /// pool (one worker per tile); `None` if `tiles == 0`.
    pub const fn partitioned(tiles: usize) -> Option<ExecMode> {
        match NonZeroUsize::new(tiles) {
            Some(tiles) => Some(ExecMode::Partitioned {
                tiles: Tiling::Fixed(tiles),
                workers: None,
            }),
            None => None,
        }
    }

    /// Space-partitioned execution with a decoupled worker pool
    /// (`@tiles<N>@par<T>`): `tiles` tiles drained by `workers` threads;
    /// `None` if either count is zero.
    pub const fn pooled(tiles: usize, workers: usize) -> Option<ExecMode> {
        match (NonZeroUsize::new(tiles), NonZeroUsize::new(workers)) {
            (Some(tiles), Some(workers)) => Some(ExecMode::Partitioned {
                tiles: Tiling::Fixed(tiles),
                workers: Some(workers),
            }),
            _ => None,
        }
    }

    /// Adaptive space partitioning (`@tilesauto`): the tile count is
    /// re-derived from sampled point density at every build.
    pub const fn adaptive() -> ExecMode {
        ExecMode::Partitioned {
            tiles: Tiling::Auto,
            workers: None,
        }
    }

    /// Adaptive space partitioning with a fixed worker pool
    /// (`@tilesauto@par<T>`); `None` if `workers == 0`.
    pub const fn adaptive_pooled(workers: usize) -> Option<ExecMode> {
        match NonZeroUsize::new(workers) {
            Some(workers) => Some(ExecMode::Partitioned {
                tiles: Tiling::Auto,
                workers: Some(workers),
            }),
            None => None,
        }
    }

    /// Worker count: 1 for [`ExecMode::Sequential`]; for
    /// [`ExecMode::Partitioned`] the pool size, defaulting to one worker
    /// per tile (an adaptive grid with no explicit pool reports 1 — its
    /// tile count only exists at build time).
    pub const fn threads(self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel { threads } => threads.get(),
            ExecMode::Partitioned { tiles, workers } => match (workers, tiles) {
                (Some(w), _) => w.get(),
                (None, Tiling::Fixed(n)) => n.get(),
                (None, Tiling::Auto) => 1,
            },
        }
    }

    /// Whether the query phase runs on multiple workers (either
    /// query-sharded or space-partitioned).
    pub const fn is_parallel(self) -> bool {
        !matches!(self, ExecMode::Sequential)
    }

    /// Whether this is the space-partitioned (tiled) mode.
    pub const fn is_partitioned(self) -> bool {
        matches!(self, ExecMode::Partitioned { .. })
    }

    /// This mode unless it is [`ExecMode::Sequential`], in which case
    /// `fallback` — the precedence rule for layered configuration (a
    /// technique spec's `@par<N>`/`@tiles<N>` modifier over a CLI-wide
    /// `--threads`/`--tiles`).
    pub const fn or(self, fallback: ExecMode) -> ExecMode {
        match self {
            ExecMode::Sequential => fallback,
            chosen => chosen,
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Sequential => f.write_str("sequential"),
            ExecMode::Parallel { threads } => write!(f, "parallel({threads})"),
            ExecMode::Partitioned {
                tiles,
                workers: None,
            } => write!(f, "tiled({tiles})"),
            ExecMode::Partitioned {
                tiles,
                workers: Some(w),
            } => write!(f, "tiled({tiles}x{w})"),
        }
    }
}

/// Split `len` work items into at most `threads` contiguous chunks.
fn chunk_size(len: usize, threads: NonZeroUsize) -> usize {
    len.div_ceil(threads.get()).max(1)
}

/// Worker-pool size for a scheduled tiled phase: the configured pool size
/// (one worker per tile when unset), never more than the number of work
/// items — idle threads are pure spawn cost — and never zero.
fn pool_cap(workers: Option<NonZeroUsize>, tiles: usize, work_items: usize) -> usize {
    workers
        .map_or(tiles, NonZeroUsize::get)
        .min(work_items)
        .max(1)
}

/// Scheduler load accounting shared by the tile pools, surfaced as
/// [`TileLoad`] in `RunStats`. Per-tile busy time is tallied into atomic
/// nanosecond counters as workers drain the queue (several workers may
/// serve one tile concurrently, hence atomics rather than per-worker
/// slots); per-call totals accumulate across ticks so the reported ratios
/// describe the whole run.
#[derive(Debug, Default)]
struct PoolMetrics {
    /// Per-tile busy nanoseconds of the call in flight (reset by `begin`).
    tile_busy: Vec<AtomicU64>,
    /// Running sums over calls: slowest populated tile and mean populated
    /// tile (seconds) — their ratio is the imbalance a tile-per-thread
    /// schedule would suffer.
    sum_max_tile: f64,
    sum_mean_tile: f64,
    /// Running sums over calls: worker busy seconds vs pool capacity
    /// (workers × scheduled wall seconds) — their ratio is occupancy.
    sum_busy: f64,
    sum_cap_wall: f64,
}

impl PoolMetrics {
    /// Start accounting one scheduled call over `tiles` tiles.
    fn begin(&mut self, tiles: usize) {
        self.tile_busy.clear();
        self.tile_busy.resize_with(tiles, AtomicU64::default);
    }

    /// Record `dt` of mini-join work against `tile`.
    fn record(&self, tile: usize, dt: Duration) {
        self.tile_busy[tile].fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Close out one scheduled call: fold the per-tile tallies plus the
    /// pool's busy/capacity seconds into the running sums.
    fn finish(&mut self, busy: Duration, cap: usize, wall: Duration) {
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut populated = 0u64;
        for t in &self.tile_busy {
            let nanos = t.load(Ordering::Relaxed);
            if nanos > 0 {
                max = max.max(nanos);
                sum += nanos;
                populated += 1;
            }
        }
        if populated > 0 {
            self.sum_max_tile += max as f64 * 1e-9;
            self.sum_mean_tile += sum as f64 / populated as f64 * 1e-9;
        }
        self.sum_busy += busy.as_secs_f64();
        self.sum_cap_wall += cap as f64 * wall.as_secs_f64();
    }

    /// The run's accumulated load metrics, or `None` before any populated
    /// scheduled call.
    fn tile_load(&self) -> Option<TileLoad> {
        if self.sum_mean_tile > 0.0 && self.sum_cap_wall > 0.0 {
            Some(TileLoad {
                imbalance: self.sum_max_tile / self.sum_mean_tile,
                occupancy: self.sum_busy / self.sum_cap_wall,
            })
        } else {
            None
        }
    }
}

/// The per-query category's parallel query phase: shard `queriers` into
/// contiguous chunks, probe the shared `index` from each worker, and merge
/// the per-worker partials. Returns `(pairs, checksum)` — the checksum is
/// a delta starting from 0, to be `wrapping_add`ed onto the running total
/// (equivalent to folding every pair into that total directly, because the
/// fold is a commutative wrapping sum).
///
/// `data` is the table the index was built over; `centers` is the table
/// query regions are centred on. For a self-join they are the same table;
/// for a bipartite R ⋈ S join (`run_bipartite_join`), `centers` is the
/// query relation R and `data` the indexed data relation S.
///
/// Each worker computes its own query regions, exactly like the sequential
/// per-query executor: issuing a query, region arithmetic included, is part
/// of that category's per-query cost.
pub fn shard_index_query<I: SpatialIndex + Sync + ?Sized>(
    index: &I,
    data: &PointTable,
    centers: &PointTable,
    queriers: &[EntryId],
    space: &Rect,
    query_side: f32,
    threads: NonZeroUsize,
) -> (u64, u64) {
    let chunk = chunk_size(queriers.len(), threads);
    let shards: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = queriers
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    let mut pairs = 0u64;
                    let mut checksum = 0u64;
                    for &q in shard {
                        let region =
                            Rect::centered_square(centers.point(q), query_side).clipped_to(space);
                        // Sink fold, like the sequential executor: no
                        // per-query result materialization in any shard.
                        index.for_each_in(data, &region, &mut |r| {
                            pairs += 1;
                            checksum = fold_pair(checksum, q, r);
                        });
                    }
                    (pairs, checksum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query shard panicked"))
            .collect()
    });
    merge(shards)
}

/// Reusable per-worker state for [`shard_batch_join`]: a private fork of
/// the technique ([`BatchJoin::fork`]) plus its output buffer. Callers
/// keep the vector alive across ticks, so steady-state parallel joins
/// fork and allocate nothing — mirroring the sequential executor's reused
/// pair buffer, and keeping one-time setup cost out of the timed query
/// phase after the first tick.
pub struct BatchWorker {
    join: Box<dyn BatchJoin + Send>,
    out: Vec<(EntryId, EntryId)>,
}

/// The set-at-a-time category's parallel query phase: partition the tick's
/// query set into contiguous strips and join each independently on its own
/// [`BatchWorker`] (private scratch, shared read-only base table; `workers`
/// grows on demand and is reused across calls). Returns `(pairs, checksum)`
/// with the same delta semantics as [`shard_index_query`]. `queriers` and
/// `data` are the two relation tables of [`BatchJoin::join_two`] — the
/// same table twice for a self-join.
///
/// Strips partition the query set, so the union of the strip joins is
/// exactly the full join and the commutative checksum merge reproduces the
/// sequential result bit for bit.
pub fn shard_batch_join<J: BatchJoin + ?Sized>(
    join: &J,
    queriers: &PointTable,
    data: &PointTable,
    queries: &[(EntryId, Rect)],
    threads: NonZeroUsize,
    workers: &mut Vec<BatchWorker>,
) -> (u64, u64) {
    let chunk = chunk_size(queries.len(), threads);
    let strips = queries.chunks(chunk);
    while workers.len() < strips.len() {
        // Fork on the spawning thread; each worker owns its instance, so
        // `J` itself needs no `Sync`.
        workers.push(BatchWorker {
            join: join.fork(),
            out: Vec::new(),
        });
    }
    let shards: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = strips
            .zip(workers.iter_mut())
            .map(|(strip, worker)| {
                scope.spawn(move || {
                    worker.out.clear();
                    worker.join.join_two(queriers, data, strip, &mut worker.out);
                    let mut checksum = 0u64;
                    for &(q, r) in &worker.out {
                        checksum = fold_pair(checksum, q, r);
                    }
                    (worker.out.len() as u64, checksum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch strip panicked"))
            .collect()
    });
    merge(shards)
}

/// One tile's state for the space-partitioned per-query category: a
/// private fork of the index plus the tick's querier assignment. Under a
/// pooled schedule any worker may probe any tile's fork concurrently with
/// its siblings, which is why [`SpatialIndex::fork`] returns `Sync`
/// trait objects.
struct TileIndexWorker {
    index: Box<dyn SpatialIndex + Send + Sync>,
    queriers: Vec<EntryId>,
}

/// Reusable state of the space-partitioned per-query executor: the tile
/// grid, per-tile data replicas, per-tile index forks, the mini-join
/// queue buffer, and the scheduler's load accounting. Owned by the
/// driver's index executor and kept across ticks, so steady-state tiled
/// execution forks nothing and reuses every buffer — mirroring
/// [`BatchWorker`] reuse in the sharded mode.
#[derive(Default)]
pub struct TileIndexPool {
    grid: Option<TileGrid>,
    replicas: Vec<TileReplica>,
    workers: Vec<TileIndexWorker>,
    /// The configured pool size (`@par<T>` of the spec), set at build;
    /// `None` sizes the pool to the tile count.
    pool_workers: Option<NonZeroUsize>,
    /// Mini-join queue, rebuilt each query call into a reused buffer.
    chunks: Vec<MiniJoin>,
    metrics: PoolMetrics,
}

impl TileIndexPool {
    /// Summed [`SpatialIndex::memory_bytes`] of the per-tile indexes, or
    /// `None` if no tiled build ever ran (the run was not partitioned).
    /// Replication makes this mode-structural: it cannot equal the
    /// sequential single-index footprint and is excluded from the
    /// bit-identity contract (DESIGN.md §13).
    pub fn index_bytes(&self) -> Option<usize> {
        self.grid
            .map(|_| self.workers.iter().map(|w| w.index.memory_bytes()).sum())
    }

    /// Accumulated scheduler load metrics (`None` if no tiled query with
    /// populated tiles ran).
    pub fn tile_load(&self) -> Option<TileLoad> {
        self.metrics.tile_load()
    }
}

/// The space-partitioned build phase of the per-query category: tile the
/// space (resolving an adaptive [`Tiling`] from the live data), replicate
/// the table's live rows into the tiles their query extent overlaps
/// ([`replicate_by_extent`]), and (re)build every tile's private fork of
/// `proto` over its replica. Builds are stolen tile-at-a-time by a pool of
/// `min(workers, tiles)` scoped threads — a tile build needs `&mut` access
/// to its fork, so tiles (not mini-joins) are the unit here, handed out by
/// the same atomic-cursor discipline as the query phase. Runs inside the
/// timed build phase: partitioning and tile builds are this mode's build
/// cost.
pub fn tiled_index_build<I: SpatialIndex + ?Sized>(
    proto: &I,
    table: &PointTable,
    space: &Rect,
    query_side: f32,
    tiles: Tiling,
    workers: Option<NonZeroUsize>,
    pool: &mut TileIndexPool,
) {
    let grid = TileGrid::new(space, tiles.resolve(table, space, query_side));
    pool.grid = Some(grid);
    pool.pool_workers = workers;
    while pool.workers.len() < grid.tiles() {
        // Fork on the driver thread, first tiled build only.
        pool.workers.push(TileIndexWorker {
            index: proto.fork(),
            queriers: Vec::new(),
        });
    }
    pool.workers.truncate(grid.tiles());
    replicate_by_extent(table, &grid, query_side, &mut pool.replicas);
    let cap = pool_cap(workers, grid.tiles(), grid.tiles());
    // Each build mutates its tile's fork, so the work items carry `&mut`
    // state behind per-tile mutexes: the cursor hands every index to
    // exactly one worker, making each lock uncontended — the mutex proves
    // exclusivity to the borrow checker rather than serializing anything.
    let items: Vec<Mutex<(&mut TileIndexWorker, &TileReplica)>> = pool
        .workers
        .iter_mut()
        .zip(pool.replicas.iter())
        .map(Mutex::new)
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..cap {
            scope.spawn(|| loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(t) else { break };
                let mut guard = item
                    .lock()
                    .expect("each tile is taken by exactly one worker, so no lock is poisoned");
                let (worker, replica) = &mut *guard;
                worker.index.build(&replica.table);
            });
        }
    });
}

/// The space-partitioned query phase of the per-query category: assign
/// each querier to every tile its clipped region overlaps, decompose the
/// per-tile lists into mini-joins ([`chunk_mini_joins`]), and drain the
/// shared queue with a pool of scoped workers — each steals the next chunk
/// via an atomic cursor, probes that tile's private index, and keeps a
/// `(querier, row)` hit only if the row's canonical tile is the chunk's
/// tile (the reference-point rule — see [`crate::tile`] for the exactness
/// proof). Emitted rows are translated back to global handles through the
/// replica map, so the folded `(pairs, checksum)` delta is bit-identical
/// to the sequential fold regardless of which worker ran which chunk.
pub fn tiled_index_query(
    pool: &mut TileIndexPool,
    centers: &PointTable,
    queriers: &[EntryId],
    space: &Rect,
    query_side: f32,
) -> (u64, u64) {
    let grid = pool
        .grid
        .expect("tiled_index_query before tiled_index_build");
    for w in &mut pool.workers {
        w.queriers.clear();
    }
    for &q in queriers {
        let region = Rect::centered_square(centers.point(q), query_side).clipped_to(space);
        for t in grid.cover(&region) {
            pool.workers[t].queriers.push(q);
        }
    }
    pool.chunks.clear();
    chunk_mini_joins(
        pool.workers.iter().map(|w| w.queriers.len()),
        MINI_JOIN_CHUNK,
        &mut pool.chunks,
    );
    pool.metrics.begin(grid.tiles());
    let cap = pool_cap(pool.pool_workers, grid.tiles(), pool.chunks.len());
    let workers: &[TileIndexWorker] = &pool.workers;
    let replicas: &[TileReplica] = &pool.replicas;
    let chunks: &[MiniJoin] = &pool.chunks;
    let metrics: &PoolMetrics = &pool.metrics;
    let cursor = AtomicUsize::new(0);
    let wall = Instant::now();
    let shards: Vec<(u64, u64, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cap)
            .map(|_| {
                scope.spawn(|| {
                    let mut pairs = 0u64;
                    let mut checksum = 0u64;
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&MiniJoin { tile, start, end }) = chunks.get(i) else {
                            break;
                        };
                        let t0 = Instant::now();
                        let worker = &workers[tile];
                        let replica = &replicas[tile];
                        let xs = replica.table.xs();
                        let ys = replica.table.ys();
                        for &q in &worker.queriers[start..end] {
                            let region = Rect::centered_square(centers.point(q), query_side)
                                .clipped_to(space);
                            worker
                                .index
                                .for_each_in(&replica.table, &region, &mut |local| {
                                    let l = local as usize;
                                    // Reference-point rule: only the canonical
                                    // tile of the matched row reports the pair.
                                    if grid.tile_of(xs[l], ys[l]) == tile {
                                        pairs += 1;
                                        checksum = fold_pair(checksum, q, replica.to_global[l]);
                                    }
                                });
                        }
                        let dt = t0.elapsed();
                        metrics.record(tile, dt);
                        busy += dt;
                    }
                    (pairs, checksum, busy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mini-join worker panicked"))
            .collect()
    });
    let busy: Duration = shards.iter().map(|s| s.2).sum();
    pool.metrics.finish(busy, cap, wall.elapsed());
    merge(shards.into_iter().map(|(p, c, _)| (p, c)).collect())
}

/// One pool worker's state for the space-partitioned batch category: a
/// private fork of the join plus its output buffer. Unlike the index path
/// there is no per-tile mutable state — any worker serves any tile's
/// chunk through its own fork, so the pool holds `cap` workers, not one
/// per tile.
struct TileBatchWorker {
    join: Box<dyn BatchJoin + Send>,
    out: Vec<(EntryId, EntryId)>,
}

/// Reusable state of the space-partitioned batch executor (see
/// [`TileIndexPool`] for the reuse rationale): per-tile replicas and query
/// assignments, the per-worker forks, the mini-join queue buffer, and the
/// scheduler's load accounting.
#[derive(Default)]
pub struct TileBatchPool {
    replicas: Vec<TileReplica>,
    /// Per-tile query assignments, kept apart from the workers: under a
    /// pooled schedule any worker may serve any tile.
    tile_queries: Vec<Vec<(EntryId, Rect)>>,
    workers: Vec<TileBatchWorker>,
    chunks: Vec<MiniJoin>,
    metrics: PoolMetrics,
}

impl TileBatchPool {
    /// Accumulated scheduler load metrics (`None` if no tiled join with
    /// populated tiles ran).
    pub fn tile_load(&self) -> Option<TileLoad> {
        self.metrics.tile_load()
    }
}

/// The space-partitioned query phase of the set-at-a-time category: tile
/// the space (resolving an adaptive [`Tiling`] from the live data — per
/// call, i.e. per tick), replicate the data relation's live rows by query
/// extent, assign each pre-built query to every tile its region overlaps,
/// decompose the assignments into tile-granular mini-joins (one per
/// populated tile; see the chunking comment in the body for why this
/// category must not split below the tile), and drain the queue with a
/// pool of scoped workers running each chunk's batch join on a private
/// fork ([`BatchJoin::fork`]) over that tile's replica — then keep only
/// the pairs whose matched row is canonical to the tile (the
/// reference-point rule) and fold them under global handles. Everything —
/// partitioning included — runs inside the timed query phase, consistent
/// with the category's set-at-a-time cost model (per-tick sorting and
/// partitioning are the technique's own cost).
#[allow(clippy::too_many_arguments)] // mirrors shard_batch_join plus the tile geometry
pub fn tiled_batch_join<J: BatchJoin + ?Sized>(
    join: &J,
    queriers: &PointTable,
    data: &PointTable,
    queries: &[(EntryId, Rect)],
    space: &Rect,
    query_side: f32,
    tiles: Tiling,
    workers: Option<NonZeroUsize>,
    pool: &mut TileBatchPool,
) -> (u64, u64) {
    let grid = TileGrid::new(space, tiles.resolve(data, space, query_side));
    replicate_by_extent(data, &grid, query_side, &mut pool.replicas);
    pool.tile_queries.resize_with(grid.tiles(), Vec::new);
    pool.tile_queries.truncate(grid.tiles());
    for qs in &mut pool.tile_queries {
        qs.clear();
    }
    for &(q, region) in queries {
        for t in grid.cover(&region) {
            pool.tile_queries[t].push((q, region));
        }
    }
    pool.chunks.clear();
    // One mini-join per populated tile — NOT [`MINI_JOIN_CHUNK`]-sized
    // query chunks like the per-query path. `join_two` pays a per-call
    // partition/sort of the data side, so sub-tile chunks would re-pay
    // that dominant cost once per chunk (measured 6× on `sweep@tiles1`);
    // this category's load balance comes from oversharding tiles
    // (`@tiles16@par4` gives 16 stealable units to 4 workers) instead.
    chunk_mini_joins(
        pool.tile_queries.iter().map(Vec::len),
        usize::MAX,
        &mut pool.chunks,
    );
    let cap = pool_cap(workers, grid.tiles(), pool.chunks.len());
    while pool.workers.len() < cap {
        pool.workers.push(TileBatchWorker {
            join: join.fork(),
            out: Vec::new(),
        });
    }
    pool.metrics.begin(grid.tiles());
    let replicas: &[TileReplica] = &pool.replicas;
    let tile_queries: &[Vec<(EntryId, Rect)>] = &pool.tile_queries;
    let chunks: &[MiniJoin] = &pool.chunks;
    let metrics: &PoolMetrics = &pool.metrics;
    let cursor = AtomicUsize::new(0);
    let wall = Instant::now();
    let shards: Vec<(u64, u64, Duration)> = std::thread::scope(|scope| {
        let cursor = &cursor;
        let handles: Vec<_> = pool
            .workers
            .iter_mut()
            .take(cap)
            .map(|worker| {
                scope.spawn(move || {
                    let mut pairs = 0u64;
                    let mut checksum = 0u64;
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&MiniJoin { tile, start, end }) = chunks.get(i) else {
                            break;
                        };
                        let t0 = Instant::now();
                        let replica = &replicas[tile];
                        worker.out.clear();
                        worker.join.join_two(
                            queriers,
                            &replica.table,
                            &tile_queries[tile][start..end],
                            &mut worker.out,
                        );
                        let xs = replica.table.xs();
                        let ys = replica.table.ys();
                        for &(q, local) in &worker.out {
                            let l = local as usize;
                            if grid.tile_of(xs[l], ys[l]) == tile {
                                pairs += 1;
                                checksum = fold_pair(checksum, q, replica.to_global[l]);
                            }
                        }
                        let dt = t0.elapsed();
                        metrics.record(tile, dt);
                        busy += dt;
                    }
                    (pairs, checksum, busy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch mini-join worker panicked"))
            .collect()
    });
    let busy: Duration = shards.iter().map(|s| s.2).sum();
    pool.metrics.finish(busy, cap, wall.elapsed());
    merge(shards.into_iter().map(|(p, c, _)| (p, c)).collect())
}

/// The intersection join's sharded per-query phase — the `intersects`
/// counterpart of [`shard_index_query`]. The tick's querier list is split
/// into contiguous chunks; each worker probes the shared index for the
/// rectangles intersecting each querier's **own extent** (the rect
/// self-join's query region, no clipping needed: the workload keeps every
/// rect inside the space). Same `(pairs, checksum)` delta semantics.
pub fn shard_extent_index_query<I: SpatialIndex + Sync + ?Sized>(
    index: &I,
    table: &ExtentTable,
    queriers: &[EntryId],
    threads: NonZeroUsize,
) -> (u64, u64) {
    let chunk = chunk_size(queriers.len(), threads);
    let shards: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = queriers
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    let mut pairs = 0u64;
                    let mut checksum = 0u64;
                    for &q in shard {
                        let region = table.rect(q);
                        index.for_each_intersecting(table, &region, &mut |r| {
                            pairs += 1;
                            checksum = fold_pair(checksum, q, r);
                        });
                    }
                    (pairs, checksum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("extent query shard panicked"))
            .collect()
    });
    merge(shards)
}

/// The intersection join's sharded batch phase — the `intersects`
/// counterpart of [`shard_batch_join`]: the query set is split into
/// strips, each joined via [`BatchJoin::join_extents`] on a private fork.
/// Same worker reuse and delta semantics.
pub fn shard_extent_batch_join<J: BatchJoin + ?Sized>(
    join: &J,
    data: &ExtentTable,
    queries: &[(EntryId, Rect)],
    threads: NonZeroUsize,
    workers: &mut Vec<BatchWorker>,
) -> (u64, u64) {
    let chunk = chunk_size(queries.len(), threads);
    let strips = queries.chunks(chunk);
    while workers.len() < strips.len() {
        workers.push(BatchWorker {
            join: join.fork(),
            out: Vec::new(),
        });
    }
    let shards: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = strips
            .zip(workers.iter_mut())
            .map(|(strip, worker)| {
                scope.spawn(move || {
                    worker.out.clear();
                    worker.join.join_extents(data, strip, &mut worker.out);
                    let mut checksum = 0u64;
                    for &(q, r) in &worker.out {
                        checksum = fold_pair(checksum, q, r);
                    }
                    (worker.out.len() as u64, checksum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("extent batch strip panicked"))
            .collect()
    });
    merge(shards)
}

/// One tile's state for the space-partitioned intersection join, per-query
/// category: a private index fork plus the tick's querier assignment.
struct TileExtentIndexWorker {
    index: Box<dyn SpatialIndex + Send + Sync>,
    queriers: Vec<EntryId>,
}

/// Reusable state of the space-partitioned intersection executor, per-query
/// category — the `intersects` counterpart of [`TileIndexPool`], holding
/// [`ExtentReplica`]s instead of point replicas.
#[derive(Default)]
pub struct TileExtentIndexPool {
    grid: Option<TileGrid>,
    replicas: Vec<ExtentReplica>,
    workers: Vec<TileExtentIndexWorker>,
    pool_workers: Option<NonZeroUsize>,
    chunks: Vec<MiniJoin>,
    metrics: PoolMetrics,
}

impl TileExtentIndexPool {
    /// Summed [`SpatialIndex::memory_bytes`] of the per-tile indexes, or
    /// `None` if no tiled build ever ran (see [`TileIndexPool::index_bytes`]).
    pub fn index_bytes(&self) -> Option<usize> {
        self.grid
            .map(|_| self.workers.iter().map(|w| w.index.memory_bytes()).sum())
    }

    /// Accumulated scheduler load metrics (`None` if no tiled query with
    /// populated tiles ran).
    pub fn tile_load(&self) -> Option<TileLoad> {
        self.metrics.tile_load()
    }
}

/// The space-partitioned build phase of the intersection join's per-query
/// category: tile the space, replicate each live rectangle into every tile
/// it overlaps ([`replicate_extents`]), and (re)build every tile's private
/// fork over its replica via [`SpatialIndex::build_extents`]. Mirrors
/// [`tiled_index_build`] (same tile-at-a-time stealing, same reuse).
pub fn tiled_extent_index_build<I: SpatialIndex + ?Sized>(
    proto: &I,
    table: &ExtentTable,
    space: &Rect,
    tiles: Tiling,
    workers: Option<NonZeroUsize>,
    pool: &mut TileExtentIndexPool,
) {
    let grid = TileGrid::new(space, tiles.resolve_extents(table));
    pool.grid = Some(grid);
    pool.pool_workers = workers;
    while pool.workers.len() < grid.tiles() {
        pool.workers.push(TileExtentIndexWorker {
            index: proto.fork(),
            queriers: Vec::new(),
        });
    }
    pool.workers.truncate(grid.tiles());
    replicate_extents(table, &grid, &mut pool.replicas);
    let cap = pool_cap(workers, grid.tiles(), grid.tiles());
    let items: Vec<Mutex<(&mut TileExtentIndexWorker, &ExtentReplica)>> = pool
        .workers
        .iter_mut()
        .zip(pool.replicas.iter())
        .map(Mutex::new)
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..cap {
            scope.spawn(|| loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(t) else { break };
                let mut guard = item
                    .lock()
                    .expect("each tile is taken by exactly one worker, so no lock is poisoned");
                let (worker, replica) = &mut *guard;
                worker.index.build_extents(&replica.table);
            });
        }
    });
}

/// The space-partitioned query phase of the intersection join's per-query
/// category. Each querier visits every tile its rectangle overlaps and
/// probes that tile's private index; a `(q, r)` hit survives only in the
/// tile holding the **intersection's reference point** — the lower-left
/// corner `(max(q.x1, r.x1), max(q.y1, r.y1))` of `q ∩ r`, the rect
/// generalization of the point rule (see [`crate::tile::ExtentReplica`]
/// for the coverage/uniqueness argument). Same mini-join scheduling,
/// load accounting, and bit-identical `(pairs, checksum)` contract as
/// [`tiled_index_query`].
pub fn tiled_extent_index_query(
    pool: &mut TileExtentIndexPool,
    table: &ExtentTable,
    queriers: &[EntryId],
) -> (u64, u64) {
    let grid = pool
        .grid
        .expect("tiled_extent_index_query before tiled_extent_index_build");
    for w in &mut pool.workers {
        w.queriers.clear();
    }
    for &q in queriers {
        let region = table.rect(q);
        for t in grid.cover(&region) {
            pool.workers[t].queriers.push(q);
        }
    }
    pool.chunks.clear();
    chunk_mini_joins(
        pool.workers.iter().map(|w| w.queriers.len()),
        MINI_JOIN_CHUNK,
        &mut pool.chunks,
    );
    pool.metrics.begin(grid.tiles());
    let cap = pool_cap(pool.pool_workers, grid.tiles(), pool.chunks.len());
    let workers: &[TileExtentIndexWorker] = &pool.workers;
    let replicas: &[ExtentReplica] = &pool.replicas;
    let chunks: &[MiniJoin] = &pool.chunks;
    let metrics: &PoolMetrics = &pool.metrics;
    let cursor = AtomicUsize::new(0);
    let wall = Instant::now();
    let shards: Vec<(u64, u64, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cap)
            .map(|_| {
                scope.spawn(|| {
                    let mut pairs = 0u64;
                    let mut checksum = 0u64;
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&MiniJoin { tile, start, end }) = chunks.get(i) else {
                            break;
                        };
                        let t0 = Instant::now();
                        let worker = &workers[tile];
                        let replica = &replicas[tile];
                        let x1s = replica.table.x1s();
                        let y1s = replica.table.y1s();
                        for &q in &worker.queriers[start..end] {
                            let region = table.rect(q);
                            worker.index.for_each_intersecting(
                                &replica.table,
                                &region,
                                &mut |local| {
                                    let l = local as usize;
                                    // Reference-point rule for extents:
                                    // only the tile holding the pairwise
                                    // intersection's lower-left corner
                                    // reports the pair.
                                    let px = region.x1.max(x1s[l]);
                                    let py = region.y1.max(y1s[l]);
                                    if grid.tile_of(px, py) == tile {
                                        pairs += 1;
                                        checksum = fold_pair(checksum, q, replica.to_global[l]);
                                    }
                                },
                            );
                        }
                        let dt = t0.elapsed();
                        metrics.record(tile, dt);
                        busy += dt;
                    }
                    (pairs, checksum, busy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("extent mini-join worker panicked"))
            .collect()
    });
    let busy: Duration = shards.iter().map(|s| s.2).sum();
    pool.metrics.finish(busy, cap, wall.elapsed());
    merge(shards.into_iter().map(|(p, c, _)| (p, c)).collect())
}

/// Reusable state of the space-partitioned intersection executor, batch
/// category — the `intersects` counterpart of [`TileBatchPool`].
///
/// Query assignments are stored per tile as `(local index, rect)` with the
/// matching global querier id in `tile_qids`: [`BatchJoin::join_extents`]
/// passes querier ids through opaquely, so handing it the *local* index
/// lets the emitted `(qi, row)` pair recover the query rectangle (needed
/// by the reference-point filter) with one slice lookup before translating
/// `qi` back to the global id.
#[derive(Default)]
pub struct TileExtentBatchPool {
    replicas: Vec<ExtentReplica>,
    tile_queries: Vec<Vec<(EntryId, Rect)>>,
    tile_qids: Vec<Vec<EntryId>>,
    workers: Vec<TileBatchWorker>,
    chunks: Vec<MiniJoin>,
    metrics: PoolMetrics,
}

impl TileExtentBatchPool {
    /// Accumulated scheduler load metrics (`None` if no tiled join with
    /// populated tiles ran).
    pub fn tile_load(&self) -> Option<TileLoad> {
        self.metrics.tile_load()
    }
}

/// The space-partitioned query phase of the intersection join's batch
/// category: replicate the data rectangles by their own extents, assign
/// each query to every tile its rectangle overlaps, run each populated
/// tile's [`BatchJoin::join_extents`] on a pooled private fork, and keep
/// only the pairs whose intersection reference point is canonical to the
/// tile. Tile-granular chunks for the same per-call-partition-cost reason
/// as [`tiled_batch_join`]; everything runs inside the timed query phase.
pub fn tiled_extent_batch_join<J: BatchJoin + ?Sized>(
    join: &J,
    data: &ExtentTable,
    queries: &[(EntryId, Rect)],
    space: &Rect,
    tiles: Tiling,
    workers: Option<NonZeroUsize>,
    pool: &mut TileExtentBatchPool,
) -> (u64, u64) {
    let grid = TileGrid::new(space, tiles.resolve_extents(data));
    replicate_extents(data, &grid, &mut pool.replicas);
    pool.tile_queries.resize_with(grid.tiles(), Vec::new);
    pool.tile_queries.truncate(grid.tiles());
    pool.tile_qids.resize_with(grid.tiles(), Vec::new);
    pool.tile_qids.truncate(grid.tiles());
    for (qs, ids) in pool.tile_queries.iter_mut().zip(&mut pool.tile_qids) {
        qs.clear();
        ids.clear();
    }
    for &(q, region) in queries {
        for t in grid.cover(&region) {
            let local = entry_id(pool.tile_qids[t].len());
            pool.tile_qids[t].push(q);
            pool.tile_queries[t].push((local, region));
        }
    }
    pool.chunks.clear();
    // Tile-granular chunks, as in `tiled_batch_join` — and a correctness
    // requirement here: the local query indices above are positions in the
    // tile's *full* list, so every chunk must start at 0.
    chunk_mini_joins(
        pool.tile_queries.iter().map(Vec::len),
        usize::MAX,
        &mut pool.chunks,
    );
    let cap = pool_cap(workers, grid.tiles(), pool.chunks.len());
    while pool.workers.len() < cap {
        pool.workers.push(TileBatchWorker {
            join: join.fork(),
            out: Vec::new(),
        });
    }
    pool.metrics.begin(grid.tiles());
    let replicas: &[ExtentReplica] = &pool.replicas;
    let tile_queries: &[Vec<(EntryId, Rect)>] = &pool.tile_queries;
    let tile_qids: &[Vec<EntryId>] = &pool.tile_qids;
    let chunks: &[MiniJoin] = &pool.chunks;
    let metrics: &PoolMetrics = &pool.metrics;
    let cursor = AtomicUsize::new(0);
    let wall = Instant::now();
    let shards: Vec<(u64, u64, Duration)> = std::thread::scope(|scope| {
        let cursor = &cursor;
        let handles: Vec<_> = pool
            .workers
            .iter_mut()
            .take(cap)
            .map(|worker| {
                scope.spawn(move || {
                    let mut pairs = 0u64;
                    let mut checksum = 0u64;
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&MiniJoin { tile, start, end }) = chunks.get(i) else {
                            break;
                        };
                        let t0 = Instant::now();
                        let replica = &replicas[tile];
                        worker.out.clear();
                        worker.join.join_extents(
                            &replica.table,
                            &tile_queries[tile][start..end],
                            &mut worker.out,
                        );
                        let x1s = replica.table.x1s();
                        let y1s = replica.table.y1s();
                        for &(qi, local) in &worker.out {
                            let l = local as usize;
                            let qrect = tile_queries[tile][qi as usize].1;
                            let px = qrect.x1.max(x1s[l]);
                            let py = qrect.y1.max(y1s[l]);
                            if grid.tile_of(px, py) == tile {
                                pairs += 1;
                                checksum = fold_pair(
                                    checksum,
                                    tile_qids[tile][qi as usize],
                                    replica.to_global[l],
                                );
                            }
                        }
                        let dt = t0.elapsed();
                        metrics.record(tile, dt);
                        busy += dt;
                    }
                    (pairs, checksum, busy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("extent batch mini-join worker panicked"))
            .collect()
    });
    let busy: Duration = shards.iter().map(|s| s.2).sum();
    pool.metrics.finish(busy, cap, wall.elapsed());
    merge(shards.into_iter().map(|(p, c, _)| (p, c)).collect())
}

fn merge(shards: Vec<(u64, u64)>) -> (u64, u64) {
    let mut pairs = 0u64;
    let mut checksum = 0u64;
    for (p, c) in shards {
        pairs += p;
        checksum = checksum.wrapping_add(c);
    }
    (pairs, checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::NaiveBatchJoin;
    use crate::index::ScanIndex;
    use crate::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    fn threads(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    fn fixed(n: usize) -> Tiling {
        Tiling::Fixed(threads(n))
    }

    fn random_table(n: usize, seed: u64) -> PointTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        t
    }

    fn sequential_reference(
        table: &PointTable,
        queriers: &[EntryId],
        space: &Rect,
        query_side: f32,
    ) -> (u64, u64) {
        let idx = ScanIndex::new();
        let mut pairs = 0u64;
        let mut checksum = 0u64;
        for &q in queriers {
            let region = Rect::centered_square(table.point(q), query_side).clipped_to(space);
            idx.for_each_in(table, &region, &mut |r| {
                pairs += 1;
                checksum = fold_pair(checksum, q, r);
            });
        }
        (pairs, checksum)
    }

    #[test]
    fn sharded_index_query_matches_sequential_for_any_thread_count() {
        let table = random_table(500, 9);
        let queriers: Vec<EntryId> = (0..table.len() as EntryId).step_by(3).collect();
        let space = Rect::space(SIDE);
        let expect = sequential_reference(&table, &queriers, &space, 120.0);
        let idx = ScanIndex::new();
        for n in [1, 2, 3, 7, 16, 1000] {
            let got = shard_index_query(&idx, &table, &table, &queriers, &space, 120.0, threads(n));
            assert_eq!(got, expect, "threads = {n}");
        }
    }

    #[test]
    fn sharded_batch_join_matches_sequential_for_any_thread_count() {
        let table = random_table(400, 11);
        let space = Rect::space(SIDE);
        let queries: Vec<(EntryId, Rect)> = (0..table.len() as EntryId)
            .step_by(2)
            .map(|q| {
                (
                    q,
                    Rect::centered_square(table.point(q), 90.0).clipped_to(&space),
                )
            })
            .collect();
        let mut out = Vec::new();
        NaiveBatchJoin.join(&table, &queries, &mut out);
        let expect_pairs = out.len() as u64;
        let expect_checksum = out.iter().fold(0u64, |c, &(q, r)| fold_pair(c, q, r));
        // One scratch pool across all thread counts: reuse must not leak
        // state between calls.
        let mut workers = Vec::new();
        for n in [1, 2, 3, 7, 64] {
            let got = shard_batch_join(
                &NaiveBatchJoin,
                &table,
                &table,
                &queries,
                threads(n),
                &mut workers,
            );
            assert_eq!(got, (expect_pairs, expect_checksum), "threads = {n}");
        }
    }

    #[test]
    fn empty_querier_sets_are_fine() {
        let table = random_table(50, 1);
        let space = Rect::space(SIDE);
        let idx = ScanIndex::new();
        assert_eq!(
            shard_index_query(&idx, &table, &table, &[], &space, 50.0, threads(4)),
            (0, 0)
        );
        assert_eq!(
            shard_batch_join(
                &NaiveBatchJoin,
                &table,
                &table,
                &[],
                threads(4),
                &mut Vec::new()
            ),
            (0, 0)
        );
    }

    #[test]
    fn tiled_index_query_matches_sequential_for_any_tile_count() {
        let table = random_table(500, 9);
        let queriers: Vec<EntryId> = (0..table.len() as EntryId).step_by(3).collect();
        let space = Rect::space(SIDE);
        let expect = sequential_reference(&table, &queriers, &space, 120.0);
        for n in [1usize, 2, 3, 5, 7, 16, 100] {
            let mut pool = TileIndexPool::default();
            // Two ticks over one pool: buffer reuse must not leak state.
            for tick in 0..2 {
                tiled_index_build(
                    &ScanIndex::new(),
                    &table,
                    &space,
                    120.0,
                    fixed(n),
                    None,
                    &mut pool,
                );
                let got = tiled_index_query(&mut pool, &table, &queriers, &space, 120.0);
                assert_eq!(got, expect, "tiles = {n}, tick = {tick}");
            }
            assert_eq!(pool.index_bytes(), Some(0), "scan forks own nothing");
        }
    }

    #[test]
    fn pooled_index_query_matches_sequential_for_any_pool_size() {
        // The same join under every (tiles, workers) shape, including
        // pools larger than the queue and heavy oversharding.
        let table = random_table(500, 9);
        let queriers: Vec<EntryId> = (0..table.len() as EntryId).step_by(3).collect();
        let space = Rect::space(SIDE);
        let expect = sequential_reference(&table, &queriers, &space, 120.0);
        for (tiles, workers) in [(1usize, 4usize), (4, 1), (4, 2), (5, 3), (16, 8), (64, 3)] {
            let mut pool = TileIndexPool::default();
            tiled_index_build(
                &ScanIndex::new(),
                &table,
                &space,
                120.0,
                fixed(tiles),
                Some(threads(workers)),
                &mut pool,
            );
            let got = tiled_index_query(&mut pool, &table, &queriers, &space, 120.0);
            assert_eq!(got, expect, "tiles = {tiles}, workers = {workers}");
            let load = pool.tile_load().expect("populated run records load");
            assert!(load.imbalance >= 1.0, "max tile cannot beat the mean");
            assert!(load.occupancy > 0.0 && load.occupancy <= 1.0);
        }
    }

    #[test]
    fn adaptive_tiling_matches_sequential_and_sizes_from_the_data() {
        let table = random_table(500, 9);
        let queriers: Vec<EntryId> = (0..table.len() as EntryId).step_by(3).collect();
        let space = Rect::space(SIDE);
        let expect = sequential_reference(&table, &queriers, &space, 120.0);
        let mut pool = TileIndexPool::default();
        tiled_index_build(
            &ScanIndex::new(),
            &table,
            &space,
            120.0,
            Tiling::Auto,
            Some(threads(2)),
            &mut pool,
        );
        let got = tiled_index_query(&mut pool, &table, &queriers, &space, 120.0);
        assert_eq!(got, expect);
        assert_eq!(
            Tiling::Auto.resolve(&table, &space, 120.0),
            crate::tile::auto_tile_count(&table, &space, 120.0)
        );
    }

    #[test]
    fn tiled_index_query_matches_sequential_with_tombstones() {
        let mut table = random_table(300, 21);
        for id in (0..300).step_by(7) {
            table.remove(id);
        }
        let queriers: Vec<EntryId> = (0..table.len() as EntryId)
            .filter(|&q| table.is_live(q))
            .step_by(2)
            .collect();
        let space = Rect::space(SIDE);
        let expect = sequential_reference(&table, &queriers, &space, 150.0);
        for n in [2usize, 5, 9] {
            let mut pool = TileIndexPool::default();
            tiled_index_build(
                &ScanIndex::new(),
                &table,
                &space,
                150.0,
                fixed(n),
                Some(threads(2)),
                &mut pool,
            );
            let got = tiled_index_query(&mut pool, &table, &queriers, &space, 150.0);
            assert_eq!(got, expect, "tiles = {n}");
        }
    }

    #[test]
    fn tiled_batch_join_matches_sequential_for_any_tile_count() {
        let table = random_table(400, 11);
        let space = Rect::space(SIDE);
        let query_side = 90.0;
        let queries: Vec<(EntryId, Rect)> = (0..table.len() as EntryId)
            .step_by(2)
            .map(|q| {
                (
                    q,
                    Rect::centered_square(table.point(q), query_side).clipped_to(&space),
                )
            })
            .collect();
        let mut out = Vec::new();
        NaiveBatchJoin.join(&table, &queries, &mut out);
        let expect_pairs = out.len() as u64;
        let expect_checksum = out.iter().fold(0u64, |c, &(q, r)| fold_pair(c, q, r));
        let mut pool = TileBatchPool::default();
        for n in [1usize, 2, 3, 6, 25, 64] {
            let got = tiled_batch_join(
                &NaiveBatchJoin,
                &table,
                &table,
                &queries,
                &space,
                query_side,
                fixed(n),
                None,
                &mut pool,
            );
            assert_eq!(got, (expect_pairs, expect_checksum), "tiles = {n}");
        }
        // The same pool again under decoupled worker counts and the
        // adaptive policy: reuse across shapes must not leak state.
        for (tiles, workers) in [(4usize, 2usize), (16, 8), (64, 2)] {
            let got = tiled_batch_join(
                &NaiveBatchJoin,
                &table,
                &table,
                &queries,
                &space,
                query_side,
                fixed(tiles),
                Some(threads(workers)),
                &mut pool,
            );
            assert_eq!(
                got,
                (expect_pairs, expect_checksum),
                "tiles = {tiles}, workers = {workers}"
            );
        }
        let got = tiled_batch_join(
            &NaiveBatchJoin,
            &table,
            &table,
            &queries,
            &space,
            query_side,
            Tiling::Auto,
            Some(threads(3)),
            &mut pool,
        );
        assert_eq!(got, (expect_pairs, expect_checksum), "adaptive tiling");
        let load = pool.tile_load().expect("populated joins record load");
        assert!(load.imbalance >= 1.0);
    }

    #[test]
    fn empty_tiled_inputs_are_fine() {
        let table = random_table(50, 1);
        let space = Rect::space(SIDE);
        let mut pool = TileIndexPool::default();
        tiled_index_build(
            &ScanIndex::new(),
            &table,
            &space,
            50.0,
            fixed(4),
            None,
            &mut pool,
        );
        assert_eq!(
            tiled_index_query(&mut pool, &table, &[], &space, 50.0),
            (0, 0)
        );
        assert_eq!(pool.tile_load(), None, "no populated tile, no load");
        assert_eq!(
            tiled_batch_join(
                &NaiveBatchJoin,
                &table,
                &table,
                &[],
                &space,
                50.0,
                fixed(4),
                Some(threads(2)),
                &mut TileBatchPool::default()
            ),
            (0, 0)
        );
        // And an empty table under heavy oversharding.
        let empty = PointTable::default();
        let mut pool = TileIndexPool::default();
        tiled_index_build(
            &ScanIndex::new(),
            &empty,
            &space,
            50.0,
            fixed(16),
            Some(threads(8)),
            &mut pool,
        );
        assert_eq!(
            tiled_index_query(&mut pool, &empty, &[], &space, 50.0),
            (0, 0)
        );
    }

    fn random_extents(n: usize, seed: u64) -> ExtentTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = ExtentTable::default();
        for _ in 0..n {
            let x = rng.range_f32(0.0, SIDE - 60.0);
            let y = rng.range_f32(0.0, SIDE - 60.0);
            let w = rng.range_f32(0.0, 60.0);
            let h = rng.range_f32(0.0, 60.0);
            t.push(Rect::new(x, y, x + w, y + h));
        }
        t
    }

    fn sequential_extent_reference(table: &ExtentTable, queriers: &[EntryId]) -> (u64, u64) {
        let idx = ScanIndex::new();
        let mut pairs = 0u64;
        let mut checksum = 0u64;
        for &q in queriers {
            let region = table.rect(q);
            idx.for_each_intersecting(table, &region, &mut |r| {
                pairs += 1;
                checksum = fold_pair(checksum, q, r);
            });
        }
        (pairs, checksum)
    }

    #[test]
    fn sharded_extent_query_matches_sequential_for_any_thread_count() {
        let mut table = random_extents(400, 17);
        for id in (0..400).step_by(9) {
            table.remove(id);
        }
        let queriers: Vec<EntryId> = (0..table.len() as EntryId)
            .filter(|&q| table.is_live(q))
            .step_by(2)
            .collect();
        let expect = sequential_extent_reference(&table, &queriers);
        assert!(expect.0 > 0, "the fixture must produce intersections");
        let idx = ScanIndex::new();
        for n in [1, 2, 3, 7, 64] {
            let got = shard_extent_index_query(&idx, &table, &queriers, threads(n));
            assert_eq!(got, expect, "threads = {n}");
        }
    }

    #[test]
    fn sharded_extent_batch_join_matches_sequential_for_any_thread_count() {
        let table = random_extents(300, 19);
        let queries: Vec<(EntryId, Rect)> = (0..table.len() as EntryId)
            .step_by(2)
            .map(|q| (q, table.rect(q)))
            .collect();
        let mut out = Vec::new();
        NaiveBatchJoin.join_extents(&table, &queries, &mut out);
        let expect_pairs = out.len() as u64;
        let expect_checksum = out.iter().fold(0u64, |c, &(q, r)| fold_pair(c, q, r));
        let mut workers = Vec::new();
        for n in [1, 2, 3, 7, 64] {
            let got = shard_extent_batch_join(
                &NaiveBatchJoin,
                &table,
                &queries,
                threads(n),
                &mut workers,
            );
            assert_eq!(got, (expect_pairs, expect_checksum), "threads = {n}");
        }
    }

    #[test]
    fn tiled_extent_query_matches_sequential_for_any_tile_count() {
        let mut table = random_extents(400, 23);
        for id in (0..400).step_by(11) {
            table.remove(id);
        }
        let queriers: Vec<EntryId> = (0..table.len() as EntryId)
            .filter(|&q| table.is_live(q))
            .collect();
        let expect = sequential_extent_reference(&table, &queriers);
        let space = Rect::space(SIDE);
        for n in [1usize, 2, 3, 5, 7, 16, 64] {
            let mut pool = TileExtentIndexPool::default();
            // Two ticks over one pool: buffer reuse must not leak state.
            for tick in 0..2 {
                tiled_extent_index_build(
                    &ScanIndex::new(),
                    &table,
                    &space,
                    fixed(n),
                    None,
                    &mut pool,
                );
                let got = tiled_extent_index_query(&mut pool, &table, &queriers);
                assert_eq!(got, expect, "tiles = {n}, tick = {tick}");
            }
            assert_eq!(pool.index_bytes(), Some(0), "scan forks own nothing");
        }
        // Decoupled pools and the adaptive policy over one reused pool.
        let mut pool = TileExtentIndexPool::default();
        for (tiles, workers) in [(4usize, 2usize), (16, 8), (64, 3)] {
            tiled_extent_index_build(
                &ScanIndex::new(),
                &table,
                &space,
                fixed(tiles),
                Some(threads(workers)),
                &mut pool,
            );
            let got = tiled_extent_index_query(&mut pool, &table, &queriers);
            assert_eq!(got, expect, "tiles = {tiles}, workers = {workers}");
        }
        tiled_extent_index_build(
            &ScanIndex::new(),
            &table,
            &space,
            Tiling::Auto,
            None,
            &mut pool,
        );
        assert_eq!(
            tiled_extent_index_query(&mut pool, &table, &queriers),
            expect,
            "adaptive tiling"
        );
        let load = pool.tile_load().expect("populated run records load");
        assert!(load.imbalance >= 1.0);
        assert!(load.occupancy > 0.0 && load.occupancy <= 1.0);
    }

    #[test]
    fn tiled_extent_batch_join_matches_sequential_for_any_tile_count() {
        let mut table = random_extents(300, 29);
        for id in (0..300).step_by(13) {
            table.remove(id);
        }
        let queries: Vec<(EntryId, Rect)> = (0..table.len() as EntryId)
            .filter(|&q| table.is_live(q))
            .map(|q| (q, table.rect(q)))
            .collect();
        let mut out = Vec::new();
        NaiveBatchJoin.join_extents(&table, &queries, &mut out);
        let expect_pairs = out.len() as u64;
        let expect_checksum = out.iter().fold(0u64, |c, &(q, r)| fold_pair(c, q, r));
        let space = Rect::space(SIDE);
        let mut pool = TileExtentBatchPool::default();
        for n in [1usize, 2, 3, 6, 25, 64] {
            let got = tiled_extent_batch_join(
                &NaiveBatchJoin,
                &table,
                &queries,
                &space,
                fixed(n),
                None,
                &mut pool,
            );
            assert_eq!(got, (expect_pairs, expect_checksum), "tiles = {n}");
        }
        for (tiles, workers) in [(4usize, 2usize), (16, 8), (64, 2)] {
            let got = tiled_extent_batch_join(
                &NaiveBatchJoin,
                &table,
                &queries,
                &space,
                fixed(tiles),
                Some(threads(workers)),
                &mut pool,
            );
            assert_eq!(
                got,
                (expect_pairs, expect_checksum),
                "tiles = {tiles}, workers = {workers}"
            );
        }
        let got = tiled_extent_batch_join(
            &NaiveBatchJoin,
            &table,
            &queries,
            &space,
            Tiling::Auto,
            Some(threads(3)),
            &mut pool,
        );
        assert_eq!(got, (expect_pairs, expect_checksum), "adaptive tiling");
        let load = pool.tile_load().expect("populated joins record load");
        assert!(load.imbalance >= 1.0);
    }

    #[test]
    fn empty_extent_inputs_are_fine() {
        let table = random_extents(50, 1);
        let space = Rect::space(SIDE);
        let idx = ScanIndex::new();
        assert_eq!(
            shard_extent_index_query(&idx, &table, &[], threads(4)),
            (0, 0)
        );
        assert_eq!(
            shard_extent_batch_join(&NaiveBatchJoin, &table, &[], threads(4), &mut Vec::new()),
            (0, 0)
        );
        let mut pool = TileExtentIndexPool::default();
        tiled_extent_index_build(&idx, &table, &space, fixed(4), None, &mut pool);
        assert_eq!(tiled_extent_index_query(&mut pool, &table, &[]), (0, 0));
        assert_eq!(pool.tile_load(), None, "no populated tile, no load");
        assert_eq!(
            tiled_extent_batch_join(
                &NaiveBatchJoin,
                &table,
                &[],
                &space,
                fixed(4),
                Some(threads(2)),
                &mut TileExtentBatchPool::default()
            ),
            (0, 0)
        );
        // And an empty extent table under oversharding.
        let empty = ExtentTable::default();
        let mut pool = TileExtentIndexPool::default();
        tiled_extent_index_build(&idx, &empty, &space, fixed(16), Some(threads(8)), &mut pool);
        assert_eq!(tiled_extent_index_query(&mut pool, &empty, &[]), (0, 0));
    }

    #[test]
    fn exec_mode_constructors_and_accessors() {
        assert_eq!(ExecMode::parallel(0), None);
        assert_eq!(ExecMode::partitioned(0), None);
        assert_eq!(ExecMode::pooled(0, 2), None);
        assert_eq!(ExecMode::pooled(4, 0), None);
        assert_eq!(ExecMode::adaptive_pooled(0), None);
        let par4 = ExecMode::parallel(4).unwrap();
        assert_eq!(par4.threads(), 4);
        assert!(par4.is_parallel());
        assert!(!par4.is_partitioned());
        let tiles4 = ExecMode::partitioned(4).unwrap();
        assert_eq!(tiles4.threads(), 4, "one worker per tile by default");
        assert!(tiles4.is_parallel());
        assert!(tiles4.is_partitioned());
        assert_ne!(par4, tiles4);
        let pool = ExecMode::pooled(16, 2).unwrap();
        assert_eq!(pool.threads(), 2, "the pool size, not the tile count");
        assert!(pool.is_partitioned());
        assert_ne!(pool, ExecMode::partitioned(16).unwrap());
        assert_eq!(ExecMode::adaptive().threads(), 1);
        assert!(ExecMode::adaptive().is_partitioned());
        assert_eq!(ExecMode::adaptive_pooled(8).unwrap().threads(), 8);
        assert_eq!(ExecMode::Sequential.threads(), 1);
        assert!(!ExecMode::Sequential.is_parallel());
        assert!(!ExecMode::Sequential.is_partitioned());
        assert_eq!(ExecMode::default(), ExecMode::Sequential);
        assert_eq!(format!("{par4}"), "parallel(4)");
        assert_eq!(format!("{tiles4}"), "tiled(4)");
        assert_eq!(format!("{pool}"), "tiled(16x2)");
        assert_eq!(format!("{}", ExecMode::adaptive()), "tiled(auto)");
        assert_eq!(
            format!("{}", ExecMode::adaptive_pooled(2).unwrap()),
            "tiled(autox2)"
        );
        assert_eq!(format!("{}", ExecMode::Sequential), "sequential");
    }

    #[test]
    fn or_prefers_the_non_sequential_mode() {
        let par2 = ExecMode::parallel(2).unwrap();
        let par8 = ExecMode::parallel(8).unwrap();
        let tiles4 = ExecMode::partitioned(4).unwrap();
        let pooled = ExecMode::pooled(4, 2).unwrap();
        assert_eq!(ExecMode::Sequential.or(par2), par2);
        assert_eq!(ExecMode::Sequential.or(tiles4), tiles4);
        assert_eq!(par8.or(par2), par8);
        assert_eq!(tiles4.or(par8), tiles4, "a spec's tiles beat CLI threads");
        assert_eq!(par8.or(tiles4), par8);
        assert_eq!(pooled.or(par8), pooled, "a pooled spec beats CLI threads");
        assert_eq!(
            ExecMode::Sequential.or(ExecMode::Sequential),
            ExecMode::Sequential
        );
    }
}
