//! Property-based tests for the Simple Grid: every layout × algorithm
//! combination agrees with a naive filter on arbitrary inputs, and the
//! §3.1 memory arithmetic holds for arbitrary bucket sizes.

use proptest::prelude::*;
use sj_base::geom::Rect;
use sj_base::index::{ScanIndex, SpatialIndex};
use sj_base::table::PointTable;
use sj_grid::{GridConfig, Layout, QueryAlgo, SimpleGrid};

const SIDE: f32 = 500.0;

fn arb_points() -> impl Strategy<Value = Vec<(f32, f32)>> {
    prop::collection::vec((0.0f32..=SIDE, 0.0f32..=SIDE), 0..300)
}

fn arb_config() -> impl Strategy<Value = GridConfig> {
    (
        1u32..40,
        1u32..40,
        prop::sample::select(vec![Layout::Original, Layout::Inline, Layout::InlineCoords]),
        prop::sample::select(vec![QueryAlgo::FullScan, QueryAlgo::RangeScan]),
    )
        .prop_map(|(cps, bs, layout, query_algo)| GridConfig {
            cells_per_side: cps,
            bucket_size: bs,
            layout,
            query_algo,
        })
}

fn table_of(points: &[(f32, f32)]) -> PointTable {
    let mut t = PointTable::default();
    for &(x, y) in points {
        t.push(x, y);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_config_agrees_with_scan(
        points in arb_points(),
        cfg in arb_config(),
        qx in 0.0f32..=SIDE,
        qy in 0.0f32..=SIDE,
        qw in 0.0f32..=200.0,
        qh in 0.0f32..=200.0,
    ) {
        let t = table_of(&points);
        let region = Rect::new(qx, qy, (qx + qw).min(SIDE), (qy + qh).min(SIDE));
        let mut grid = SimpleGrid::new(cfg, SIDE);
        grid.build(&t);
        let scan = ScanIndex::new();
        let mut got = Vec::new();
        grid.query(&t, &region, &mut got);
        got.sort_unstable();
        let mut expect = Vec::new();
        scan.query(&t, &region, &mut expect);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn memory_arithmetic_holds_for_any_bucket_size(bs in 1u32..64, n in 1usize..2_000) {
        // Original: n×24 + ceil-ish buckets×32 + dir×16;
        // refactored: n×8 + buckets×(16 + 8·bs) + dir×8. All points in one
        // cell maximizes chain length and makes bucket counts exact.
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(1.0, 1.0);
        }
        let cfg = |layout| GridConfig {
            cells_per_side: 1,
            bucket_size: bs,
            layout,
            query_algo: QueryAlgo::RangeScan,
        };
        let buckets = n.div_ceil(bs as usize);

        let mut orig = SimpleGrid::new(cfg(Layout::Original), SIDE);
        orig.build(&t);
        prop_assert_eq!(orig.live_bytes(), n * 24 + buckets * 32 + 16);
        // The trait-level footprint counts allocated capacity, so it can
        // only be at or above the live structure size.
        prop_assert!(orig.memory_bytes() >= orig.live_bytes());

        let mut inl = SimpleGrid::new(cfg(Layout::Inline), SIDE);
        inl.build(&t);
        prop_assert_eq!(inl.live_bytes(), buckets * (16 + 8 * bs as usize) + 8);
        prop_assert!(inl.memory_bytes() >= inl.live_bytes());
    }

    #[test]
    fn all_points_recovered_by_full_space_query(points in arb_points(), cfg in arb_config()) {
        let t = table_of(&points);
        let mut grid = SimpleGrid::new(cfg, SIDE);
        grid.build(&t);
        let mut out = Vec::new();
        grid.query(&t, &Rect::space(SIDE), &mut out);
        prop_assert_eq!(out.len(), points.len());
        out.sort_unstable();
        out.dedup();
        prop_assert_eq!(out.len(), points.len(), "duplicate or missing handles");
    }
}
