//! Base data storage.
//!
//! All join techniques in the static-index-nested-loop category are
//! *secondary* indexes: they store 4-byte entry handles ([`EntryId`]) that
//! reference rows of a shared base table and read coordinates through that
//! handle (paper §3.1: "the algorithms operate on pointers and never update
//! the base data directly"). The base table is a structure-of-arrays so a
//! cache line holds 16 x- or y-coordinates.
//!
//! ## Churn and tombstones
//!
//! Workloads with population churn (objects arriving and departing, as in
//! the u-Grid line of work) remove rows via [`PointTable::remove`]. Removal
//! is a **tombstone**: the row's slot — and therefore every surviving
//! [`EntryId`] — stays exactly where it was; the row is merely marked dead
//! and its coordinates frozen. Handles are never reused within a run, so a
//! `(querier, result)` pair checksum is comparable across techniques and
//! across runs regardless of when removals happen (DESIGN.md §9). Indexes
//! must skip dead rows when they (re)build, and scan-style techniques must
//! skip them at query time; [`PointTable::iter`] yields live rows only.

use crate::geom::{Point, Rect, Vec2};

/// Handle of an object in the base table (the Rust analogue of the C++
/// framework's `Point*`).
pub type EntryId = u32;

/// Narrow a row index to an [`EntryId`].
///
/// This is the single sanctioned `usize -> EntryId` conversion: every
/// other module goes through here (enforced by sj-lint's `entry-id-cast`
/// rule), so the debug-checked narrowing lives in exactly one place. A
/// table can in principle outgrow `u32::MAX` rows long before the cast
/// site notices; the `debug_assert!` turns that silent wrap into a test
/// failure.
#[inline]
pub fn entry_id(index: usize) -> EntryId {
    debug_assert!(
        index <= EntryId::MAX as usize,
        "row index {index} overflows EntryId"
    );
    index as EntryId
}

/// Unpack an [`EntryId`] stored widened in a `u64` slot (the grid
/// layouts pack entries into 8-byte bucket slots to mirror the paper's
/// 64-bit-pointer memory accounting). Like [`entry_id`], this keeps the
/// sanctioned truncation in one debug-checked place.
#[inline]
pub fn entry_id_u64(slot: u64) -> EntryId {
    debug_assert!(
        slot <= EntryId::MAX as u64,
        "packed slot {slot} is not a valid EntryId"
    );
    slot as EntryId
}

/// Structure-of-arrays base table of object positions.
#[derive(Clone, Debug, Default)]
pub struct PointTable {
    xs: Vec<f32>,
    ys: Vec<f32>,
    /// Tombstone mask: `live[i]` is false once row `i` was removed. Rows
    /// are never compacted, so surviving handles stay stable.
    live: Vec<bool>,
    live_len: usize,
}

impl PointTable {
    pub fn with_capacity(n: usize) -> Self {
        PointTable {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            live: Vec::with_capacity(n),
            live_len: 0,
        }
    }

    /// Append a (live) row and return its handle.
    pub fn push(&mut self, x: f32, y: f32) -> EntryId {
        let id = entry_id(self.xs.len());
        self.xs.push(x);
        self.ys.push(y);
        self.live.push(true);
        self.live_len += 1;
        id
    }

    /// Drop every row — live and dead — keeping allocated capacity. For
    /// per-tick scratch tables (the tile replicas of [`crate::tile`]) that
    /// are repopulated from scratch each build; a driver-owned base table
    /// is never cleared, so the handle-stability guarantee is untouched.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.live.clear();
        self.live_len = 0;
    }

    /// Tombstone row `id`: mark it dead, freezing its coordinates in
    /// place. Surviving handles are untouched — no row ever moves.
    /// Returns whether the row was live (removing a dead row is a no-op).
    pub fn remove(&mut self, id: EntryId) -> bool {
        let slot = &mut self.live[id as usize];
        let was_live = *slot;
        if was_live {
            *slot = false;
            self.live_len -= 1;
        }
        was_live
    }

    /// Whether row `id` is live (not tombstoned).
    #[inline]
    pub fn is_live(&self, id: EntryId) -> bool {
        self.live[id as usize]
    }

    /// Number of live rows (`len()` minus tombstones).
    #[inline]
    pub fn live_len(&self) -> usize {
        self.live_len
    }

    /// Whether no row has ever been removed — the fast path for scans that
    /// want to skip per-row liveness checks on churn-free workloads.
    #[inline]
    pub fn all_live(&self) -> bool {
        self.live_len == self.xs.len()
    }

    /// The raw tombstone mask, indexed by row like [`PointTable::xs`].
    #[inline]
    pub fn live_mask(&self) -> &[bool] {
        &self.live
    }

    /// Total number of row slots, dead rows included — the exclusive upper
    /// bound of valid [`EntryId`]s. Use [`PointTable::live_len`] for the
    /// population size.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    #[inline]
    pub fn x(&self, id: EntryId) -> f32 {
        self.xs[id as usize]
    }

    #[inline]
    pub fn y(&self, id: EntryId) -> f32 {
        self.ys[id as usize]
    }

    #[inline]
    pub fn point(&self, id: EntryId) -> Point {
        Point::new(self.x(id), self.y(id))
    }

    #[inline]
    pub fn set_position(&mut self, id: EntryId, x: f32, y: f32) {
        self.xs[id as usize] = x;
        self.ys[id as usize] = y;
    }

    /// Raw coordinate slices — used by indexes that bulk-load (sorting
    /// entry ids by coordinate) and by the tracer to model base-table
    /// address touches.
    #[inline]
    pub fn xs(&self) -> &[f32] {
        &self.xs
    }

    #[inline]
    pub fn ys(&self) -> &[f32] {
        &self.ys
    }

    /// Iterate the **live** rows (dead rows are tombstones, invisible to
    /// every index and join).
    pub fn iter(&self) -> impl Iterator<Item = (EntryId, Point)> + '_ {
        self.xs
            .iter()
            .zip(self.ys.iter())
            .zip(self.live.iter())
            .enumerate()
            .filter(|(_, (_, &live))| live)
            .map(|(i, ((&x, &y), _))| (entry_id(i), Point::new(x, y)))
    }

    /// Minimum bounding rectangle of all live rows (`None` when empty).
    pub fn bounds(&self) -> Option<Rect> {
        let mut it = self.iter();
        let (_, first) = it.next()?;
        let mut r = Rect::at_point(first.x, first.y);
        for (_, p) in it {
            r.expand_to(p.x, p.y);
        }
        Some(r)
    }
}

/// The full moving-object state: positions plus per-object velocities.
/// Velocities live outside [`PointTable`] because no index ever reads them —
/// only the workload's movement model does.
#[derive(Clone, Debug, Default)]
pub struct MovingSet {
    pub positions: PointTable,
    pub vx: Vec<f32>,
    pub vy: Vec<f32>,
}

impl MovingSet {
    pub fn with_capacity(n: usize) -> Self {
        MovingSet {
            positions: PointTable::with_capacity(n),
            vx: Vec::with_capacity(n),
            vy: Vec::with_capacity(n),
        }
    }

    pub fn push(&mut self, p: Point, v: Vec2) -> EntryId {
        let id = self.positions.push(p.x, p.y);
        self.vx.push(v.x);
        self.vy.push(v.y);
        id
    }

    /// Total number of row slots, dead rows included (see
    /// [`PointTable::len`]).
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Tombstone object `id` (see [`PointTable::remove`]): its position and
    /// velocity freeze, its handle is never reused, and the movement model
    /// skips it from now on. Returns whether it was live.
    pub fn remove(&mut self, id: EntryId) -> bool {
        self.positions.remove(id)
    }

    #[inline]
    pub fn is_live(&self, id: EntryId) -> bool {
        self.positions.is_live(id)
    }

    /// Number of live objects.
    #[inline]
    pub fn live_len(&self) -> usize {
        self.positions.live_len()
    }

    #[inline]
    pub fn velocity(&self, id: EntryId) -> Vec2 {
        Vec2::new(self.vx[id as usize], self.vy[id as usize])
    }

    #[inline]
    pub fn set_velocity(&mut self, id: EntryId, v: Vec2) {
        self.vx[id as usize] = v.x;
        self.vy[id as usize] = v.y;
    }

    /// Advance every object by one tick of linear motion, reflecting off
    /// the boundary of `space` ("bounce") so the population stays inside
    /// the data space with its distribution intact.
    pub fn advance_bouncing(&mut self, space: &Rect) {
        let n = self.len();
        for i in 0..n {
            if !self.positions.is_live(entry_id(i)) {
                continue;
            }
            let mut x = self.positions.xs()[i] + self.vx[i];
            let mut y = self.positions.ys()[i] + self.vy[i];
            if x < space.x1 {
                x = space.x1 + (space.x1 - x);
                self.vx[i] = -self.vx[i];
            } else if x > space.x2 {
                x = space.x2 - (x - space.x2);
                self.vx[i] = -self.vx[i];
            }
            if y < space.y1 {
                y = space.y1 + (space.y1 - y);
                self.vy[i] = -self.vy[i];
            } else if y > space.y2 {
                y = space.y2 - (y - space.y2);
                self.vy[i] = -self.vy[i];
            }
            // A reflection can only leave the space if speed exceeds the
            // space side; clamp defensively so the invariant always holds.
            x = x.clamp(space.x1, space.x2);
            y = y.clamp(space.y1, space.y2);
            self.positions.set_position(entry_id(i), x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup_roundtrip() {
        let mut t = PointTable::default();
        let a = t.push(1.0, 2.0);
        let b = t.push(3.0, 4.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.point(a), Point::new(1.0, 2.0));
        assert_eq!(t.point(b), Point::new(3.0, 4.0));
    }

    #[test]
    fn set_position_updates_base_data() {
        let mut t = PointTable::default();
        let a = t.push(1.0, 2.0);
        t.set_position(a, 9.0, 8.0);
        assert_eq!(t.point(a), Point::new(9.0, 8.0));
    }

    #[test]
    fn bounds_covers_all_points() {
        let mut t = PointTable::default();
        assert!(t.bounds().is_none());
        t.push(5.0, 5.0);
        t.push(-1.0, 7.0);
        t.push(3.0, -2.0);
        let b = t.bounds().unwrap();
        assert_eq!(b, Rect::new(-1.0, -2.0, 5.0, 7.0));
    }

    #[test]
    fn advance_moves_linearly_inside_space() {
        let mut s = MovingSet::default();
        s.push(Point::new(10.0, 10.0), Vec2::new(1.0, -2.0));
        s.advance_bouncing(&Rect::space(100.0));
        assert_eq!(s.positions.point(0), Point::new(11.0, 8.0));
    }

    #[test]
    fn advance_bounces_off_walls_and_flips_velocity() {
        let mut s = MovingSet::default();
        s.push(Point::new(1.0, 99.0), Vec2::new(-3.0, 3.0));
        s.advance_bouncing(&Rect::space(100.0));
        // x: 1 - 3 = -2 -> reflect to 2; y: 99 + 3 = 102 -> reflect to 98.
        assert_eq!(s.positions.point(0), Point::new(2.0, 98.0));
        assert_eq!(s.velocity(0), Vec2::new(3.0, -3.0));
    }

    #[test]
    fn remove_tombstones_without_moving_survivors() {
        let mut t = PointTable::default();
        let a = t.push(1.0, 2.0);
        let b = t.push(3.0, 4.0);
        let c = t.push(5.0, 6.0);
        assert!(t.all_live());
        assert!(t.remove(b));
        assert!(!t.remove(b), "second removal is a no-op");
        assert_eq!(t.len(), 3, "slots never compact");
        assert_eq!(t.live_len(), 2);
        assert!(!t.all_live());
        assert!(t.is_live(a) && !t.is_live(b) && t.is_live(c));
        // Surviving handles resolve to exactly the same rows as before.
        assert_eq!(t.point(a), Point::new(1.0, 2.0));
        assert_eq!(t.point(c), Point::new(5.0, 6.0));
        // The dead row's coordinates are frozen, not poisoned.
        assert_eq!(t.point(b), Point::new(3.0, 4.0));
        // Live-only iteration and bounds skip the tombstone.
        let ids: Vec<EntryId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, c]);
        assert_eq!(t.bounds(), Some(Rect::new(1.0, 2.0, 5.0, 6.0)));
    }

    #[test]
    fn pushes_after_removal_never_reuse_handles() {
        let mut t = PointTable::default();
        let a = t.push(1.0, 1.0);
        t.remove(a);
        let b = t.push(2.0, 2.0);
        assert_ne!(a, b);
        assert_eq!(b, 1);
        assert_eq!(t.live_len(), 1);
    }

    #[test]
    fn advance_skips_dead_objects() {
        let mut s = MovingSet::default();
        let a = s.push(Point::new(10.0, 10.0), Vec2::new(1.0, 1.0));
        let b = s.push(Point::new(20.0, 20.0), Vec2::new(1.0, 1.0));
        assert!(s.remove(a));
        assert_eq!(s.live_len(), 1);
        s.advance_bouncing(&Rect::space(100.0));
        assert_eq!(s.positions.point(a), Point::new(10.0, 10.0), "frozen");
        assert_eq!(s.positions.point(b), Point::new(21.0, 21.0));
    }

    #[test]
    fn advance_never_escapes_space() {
        let space = Rect::space(50.0);
        let mut s = MovingSet::default();
        s.push(Point::new(25.0, 25.0), Vec2::new(13.0, -17.0));
        for _ in 0..1000 {
            s.advance_bouncing(&space);
            let p = s.positions.point(0);
            assert!(space.contains_point(p.x, p.y), "escaped at {p:?}");
        }
    }
}
