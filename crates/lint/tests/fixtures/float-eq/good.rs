//@ path: crates/x/src/lib.rs
pub fn is_origin(x: f64) -> bool {
    x.abs() < 1e-12
}
