//! Synthetic address-space bases for memory-access tracing.
//!
//! Each arena of the grid (and the base table it dereferences into) is
//! mapped to its own region of a flat 64-bit address space. The cache
//! simulator only cares about 64-byte-line locality, so `base + slot ×
//! stride` reproduces the physical access pattern of the C++ original: the
//! directory is one contiguous array, buckets another, nodes a third, and
//! the base table's x/y columns two more.

/// Grid directory (cells).
pub const DIR_BASE: u64 = 0x1000_0000_0000;
/// Bucket arena.
pub const BUCKET_BASE: u64 = 0x2000_0000_0000;
/// Entry-node arena (original layout only).
pub const NODE_BASE: u64 = 0x3000_0000_0000;
/// Base-table x-coordinate column.
pub const TABLE_X_BASE: u64 = 0x4000_0000_0000;
/// Base-table y-coordinate column.
pub const TABLE_Y_BASE: u64 = 0x5000_0000_0000;

/// Byte sizes of the structures, as in paper §3.1.
pub const ORIG_CELL_BYTES: u64 = 16; // (count: u64, head: u64)
pub const ORIG_BUCKET_BYTES: u64 = 32; // (next, head, tail, len) × u64
pub const ORIG_NODE_BYTES: u64 = 24; // (prev, next, entry) × u64
pub const INLINE_CELL_BYTES: u64 = 8; // head: u64
pub const INLINE_BUCKET_HEADER_BYTES: u64 = 16; // (next, len) × u64
pub const ENTRY_BYTES: u64 = 8; // one entry slot
pub const COORD_BYTES: u64 = 4; // one f32 coordinate

/// Address of the x (resp. y) coordinate of base-table row `entry`.
#[inline]
pub fn table_x(entry: u64) -> u64 {
    TABLE_X_BASE + entry * COORD_BYTES
}

#[inline]
pub fn table_y(entry: u64) -> u64 {
    TABLE_Y_BASE + entry * COORD_BYTES
}
