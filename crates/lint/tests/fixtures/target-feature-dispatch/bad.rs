//@ path: crates/x/src/lib.rs
/// # Safety
///
/// Caller must have verified AVX2 support at runtime first.
#[target_feature(enable = "avx2")]
pub unsafe fn kernel(xs: &[f32]) -> f32 {
    xs.iter().sum()
}
