//! Run all five join techniques on the identical workload and verify
//! they produce the *same join* (equal pair counts and checksums) at very
//! different speeds — the paper's point in miniature.
//!
//! Run: `cargo run --release --example compare_indexes`

use spatial_joins::prelude::*;

fn main() {
    let params = WorkloadParams {
        num_points: 20_000,
        ticks: 6,
        ..WorkloadParams::default()
    };
    let cfg = DriverConfig { ticks: params.ticks, warmup: 1 };

    let mut techniques: Vec<Box<dyn SpatialIndex>> = vec![
        Box::new(BinarySearchJoin::new()),
        Box::new(VecSearchJoin::new()),
        Box::new(RTree::default()),
        Box::new(DynRTree::default()),
        Box::new(CRTree::default()),
        Box::new(LinearKdTrie::new(params.space_side)),
        Box::new(QuadTree::with_default_bucket(params.space_side)),
        Box::new(SimpleGrid::at_stage(Stage::Original, params.space_side)),
        Box::new(SimpleGrid::tuned(params.space_side)),
        Box::new(IncrementalGrid::tuned(params.space_side)),
    ];

    println!(
        "{:<28} {:>12} {:>14} {:>18}",
        "technique", "avg tick (s)", "join pairs", "checksum"
    );
    let mut reference: Option<(u64, u64)> = None;
    for index in techniques.iter_mut() {
        // Fresh workload per technique: same seed → identical trajectories.
        let mut workload = UniformWorkload::new(params);
        let stats = run_join(&mut workload, index.as_mut(), cfg);
        println!(
            "{:<28} {:>12.4} {:>14} {:>#18x}",
            index.name(),
            stats.avg_tick_seconds(),
            stats.result_pairs,
            stats.checksum
        );
        match reference {
            None => reference = Some((stats.result_pairs, stats.checksum)),
            Some(expect) => assert_eq!(
                (stats.result_pairs, stats.checksum),
                expect,
                "{} computed a different join!",
                index.name()
            ),
        }
    }
    println!("\nall techniques computed the identical join.");
}
