//@ path: crates/bench/src/bin/custom.rs
fn main() {
    for technique in sj_core::technique::registry() {
        println!("{}", technique.name());
    }
}
