//! Figure 5 — re-tuning the *refactored* Simple Grid.
//!
//! (a) bs swept 4..32 at cps = 13: larger buckets now help (entries are
//!     inline, so bigger buckets mean better locality); optimum ≈ 20.
//! (b) cps swept 4..128 at bs = 20: a much finer grid wins; optimum ≈ 64.
//!
//! Like Figure 1, the swept configurations are assembled via
//! [`sj_bench::grid_custom`] — the registry holds only the tuned winners.
//!
//! Run: `cargo run -p sj-bench --release --bin fig5 [--ticks N] [--workload SPEC] [--csv|--json]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::stats_line;
use sj_bench::table::{secs, Table};
use sj_bench::{grid_custom, run_workload};
use sj_grid::{GridConfig, Layout, QueryAlgo};

fn main() {
    let opts = CommonOpts::parse();
    opts.require_self_join("fig5");
    if let Some(spec) = opts.technique {
        // fig5 sweeps fixed grid configurations; a single-technique override cannot be honored.
        eprintln!(
            "--technique {} is not supported by this binary",
            spec.name()
        );
        std::process::exit(2);
    }
    let params = opts.uniform_params();
    let wspec = opts.workload_spec();
    let exec = opts.exec_mode();

    if !opts.json {
        println!("# Figure 5a: refactored Simple Grid, bs sweep (cps = 13)");
    }
    let mut t = Table::new(vec!["bs", "avg_time_per_tick_s"]);
    for bs in [4u32, 8, 12, 16, 20, 24, 28, 32] {
        let cfg = GridConfig {
            cells_per_side: GridConfig::ORIGINAL_CPS,
            bucket_size: bs,
            layout: Layout::Inline,
            query_algo: QueryAlgo::RangeScan,
        };
        let mut tech = grid_custom(cfg, params.space_side);
        let stats = run_workload(wspec, &params, &mut tech, exec);
        if opts.json {
            println!(
                "{}",
                stats_line("fig5a", tech.name(), Some(("bs", bs as f64)), &stats)
            );
        } else {
            t.row(vec![bs.to_string(), secs(stats.avg_tick_seconds())]);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }

    if !opts.json {
        println!("# Figure 5b: refactored Simple Grid, cps sweep (bs = 20)");
    }
    let mut t = Table::new(vec!["cps", "avg_time_per_tick_s"]);
    for cps in [4u32, 8, 16, 32, 48, 64, 96, 128] {
        let cfg = GridConfig {
            cells_per_side: cps,
            bucket_size: GridConfig::TUNED_BS,
            layout: Layout::Inline,
            query_algo: QueryAlgo::RangeScan,
        };
        let mut tech = grid_custom(cfg, params.space_side);
        let stats = run_workload(wspec, &params, &mut tech, exec);
        if opts.json {
            println!(
                "{}",
                stats_line("fig5b", tech.name(), Some(("cps", cps as f64)), &stats)
            );
        } else {
            t.row(vec![cps.to_string(), secs(stats.avg_tick_seconds())]);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }
}
