//! Base data storage.
//!
//! All join techniques in the static-index-nested-loop category are
//! *secondary* indexes: they store 4-byte entry handles ([`EntryId`]) that
//! reference rows of a shared base table and read coordinates through that
//! handle (paper §3.1: "the algorithms operate on pointers and never update
//! the base data directly"). The base table is a structure-of-arrays so a
//! cache line holds 16 x- or y-coordinates.
//!
//! ## Churn and tombstones
//!
//! Workloads with population churn (objects arriving and departing, as in
//! the u-Grid line of work) remove rows via [`PointTable::remove`]. Removal
//! is a **tombstone**: the row's slot — and therefore every surviving
//! [`EntryId`] — stays exactly where it was; the row is merely marked dead
//! and its coordinates frozen. Handles are never reused within a run, so a
//! `(querier, result)` pair checksum is comparable across techniques and
//! across runs regardless of when removals happen (DESIGN.md §9). Indexes
//! must skip dead rows when they (re)build, and scan-style techniques must
//! skip them at query time; [`PointTable::iter`] yields live rows only.

use crate::geom::{Point, Rect, Vec2};

/// Handle of an object in the base table (the Rust analogue of the C++
/// framework's `Point*`).
pub type EntryId = u32;

/// Narrow a row index to an [`EntryId`].
///
/// This is the single sanctioned `usize -> EntryId` conversion: every
/// other module goes through here (enforced by sj-lint's `entry-id-cast`
/// rule), so the debug-checked narrowing lives in exactly one place. A
/// table can in principle outgrow `u32::MAX` rows long before the cast
/// site notices; the `debug_assert!` turns that silent wrap into a test
/// failure.
#[inline]
pub fn entry_id(index: usize) -> EntryId {
    debug_assert!(
        index <= EntryId::MAX as usize,
        "row index {index} overflows EntryId"
    );
    index as EntryId
}

/// Unpack an [`EntryId`] stored widened in a `u64` slot (the grid
/// layouts pack entries into 8-byte bucket slots to mirror the paper's
/// 64-bit-pointer memory accounting). Like [`entry_id`], this keeps the
/// sanctioned truncation in one debug-checked place.
#[inline]
pub fn entry_id_u64(slot: u64) -> EntryId {
    debug_assert!(
        slot <= EntryId::MAX as u64,
        "packed slot {slot} is not a valid EntryId"
    );
    slot as EntryId
}

/// The storage contract shared by every base table in the workspace —
/// point entries ([`PointTable`]) and extent entries ([`ExtentTable`])
/// alike. One [`EntryId`] scheme, one tombstone discipline:
///
/// - rows are append-only and **never compact or reuse slots** — a
///   surviving handle resolves to the same row forever;
/// - removal is a tombstone ([`Table::remove`]): the row is marked dead,
///   its geometry frozen in place, and indexes/scans must skip it
///   ([`Table::live_mask`]);
/// - [`Table::clear`] is reserved for per-tick scratch tables (tile
///   replicas) that are repopulated from scratch — a driver-owned base
///   table is never cleared.
///
/// The driver's tick actions, the tiled executors' replica handling, and
/// the checksum comparability argument (DESIGN.md §9) all depend only on
/// this contract, which is why they apply uniformly to both entry shapes.
pub trait Table {
    /// Total number of row slots, dead rows included — the exclusive
    /// upper bound of valid [`EntryId`]s.
    fn len(&self) -> usize;

    /// Number of live rows (`len()` minus tombstones).
    fn live_len(&self) -> usize;

    /// Whether row `id` is live (not tombstoned).
    fn is_live(&self, id: EntryId) -> bool;

    /// The raw tombstone mask, indexed by row.
    fn live_mask(&self) -> &[bool];

    /// Tombstone row `id`; returns whether it was live (removing a dead
    /// row is a no-op). Surviving handles are untouched.
    fn remove(&mut self, id: EntryId) -> bool;

    /// Drop every row — live and dead — keeping allocated capacity.
    fn clear(&mut self);

    /// Minimum bounding rectangle of all live rows (`None` when empty).
    fn bounds(&self) -> Option<Rect>;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether no row has ever been removed — the fast path for scans
    /// that skip per-row liveness checks on churn-free workloads.
    fn all_live(&self) -> bool {
        self.live_len() == self.len()
    }
}

/// Structure-of-arrays base table of object positions.
#[derive(Clone, Debug, Default)]
pub struct PointTable {
    xs: Vec<f32>,
    ys: Vec<f32>,
    /// Tombstone mask: `live[i]` is false once row `i` was removed. Rows
    /// are never compacted, so surviving handles stay stable.
    live: Vec<bool>,
    live_len: usize,
}

impl PointTable {
    pub fn with_capacity(n: usize) -> Self {
        PointTable {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            live: Vec::with_capacity(n),
            live_len: 0,
        }
    }

    /// Append a (live) row and return its handle.
    pub fn push(&mut self, x: f32, y: f32) -> EntryId {
        let id = entry_id(self.xs.len());
        self.xs.push(x);
        self.ys.push(y);
        self.live.push(true);
        self.live_len += 1;
        id
    }

    /// Drop every row — live and dead — keeping allocated capacity. For
    /// per-tick scratch tables (the tile replicas of [`crate::tile`]) that
    /// are repopulated from scratch each build; a driver-owned base table
    /// is never cleared, so the handle-stability guarantee is untouched.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.live.clear();
        self.live_len = 0;
    }

    /// Tombstone row `id`: mark it dead, freezing its coordinates in
    /// place. Surviving handles are untouched — no row ever moves.
    /// Returns whether the row was live (removing a dead row is a no-op).
    pub fn remove(&mut self, id: EntryId) -> bool {
        let slot = &mut self.live[id as usize];
        let was_live = *slot;
        if was_live {
            *slot = false;
            self.live_len -= 1;
        }
        was_live
    }

    /// Whether row `id` is live (not tombstoned).
    #[inline]
    pub fn is_live(&self, id: EntryId) -> bool {
        self.live[id as usize]
    }

    /// Number of live rows (`len()` minus tombstones).
    #[inline]
    pub fn live_len(&self) -> usize {
        self.live_len
    }

    /// Whether no row has ever been removed — the fast path for scans that
    /// want to skip per-row liveness checks on churn-free workloads.
    #[inline]
    pub fn all_live(&self) -> bool {
        self.live_len == self.xs.len()
    }

    /// The raw tombstone mask, indexed by row like [`PointTable::xs`].
    #[inline]
    pub fn live_mask(&self) -> &[bool] {
        &self.live
    }

    /// Total number of row slots, dead rows included — the exclusive upper
    /// bound of valid [`EntryId`]s. Use [`PointTable::live_len`] for the
    /// population size.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    #[inline]
    pub fn x(&self, id: EntryId) -> f32 {
        self.xs[id as usize]
    }

    #[inline]
    pub fn y(&self, id: EntryId) -> f32 {
        self.ys[id as usize]
    }

    #[inline]
    pub fn point(&self, id: EntryId) -> Point {
        Point::new(self.x(id), self.y(id))
    }

    #[inline]
    pub fn set_position(&mut self, id: EntryId, x: f32, y: f32) {
        self.xs[id as usize] = x;
        self.ys[id as usize] = y;
    }

    /// Raw coordinate slices — used by indexes that bulk-load (sorting
    /// entry ids by coordinate) and by the tracer to model base-table
    /// address touches.
    #[inline]
    pub fn xs(&self) -> &[f32] {
        &self.xs
    }

    #[inline]
    pub fn ys(&self) -> &[f32] {
        &self.ys
    }

    /// Iterate the **live** rows (dead rows are tombstones, invisible to
    /// every index and join).
    pub fn iter(&self) -> impl Iterator<Item = (EntryId, Point)> + '_ {
        self.xs
            .iter()
            .zip(self.ys.iter())
            .zip(self.live.iter())
            .enumerate()
            .filter(|(_, (_, &live))| live)
            .map(|(i, ((&x, &y), _))| (entry_id(i), Point::new(x, y)))
    }

    /// Minimum bounding rectangle of all live rows (`None` when empty).
    pub fn bounds(&self) -> Option<Rect> {
        let mut it = self.iter();
        let (_, first) = it.next()?;
        let mut r = Rect::at_point(first.x, first.y);
        for (_, p) in it {
            r.expand_to(p.x, p.y);
        }
        Some(r)
    }
}

impl Table for PointTable {
    fn len(&self) -> usize {
        PointTable::len(self)
    }
    fn live_len(&self) -> usize {
        PointTable::live_len(self)
    }
    fn is_live(&self, id: EntryId) -> bool {
        PointTable::is_live(self, id)
    }
    fn live_mask(&self) -> &[bool] {
        PointTable::live_mask(self)
    }
    fn remove(&mut self, id: EntryId) -> bool {
        PointTable::remove(self, id)
    }
    fn clear(&mut self) {
        PointTable::clear(self)
    }
    fn bounds(&self) -> Option<Rect> {
        PointTable::bounds(self)
    }
}

/// Structure-of-arrays base table of axis-aligned rectangle entries — the
/// extent-shaped sibling of [`PointTable`], with the identical
/// handle-stability and tombstone contract (see [`Table`]). Four
/// coordinate columns instead of two, so an intersection filter reads
/// `x1/x2/y1/y2` as contiguous lanes exactly like the point filter reads
/// `x/y` (the SIMD overlap kernel in [`crate::simd`] depends on this
/// layout).
#[derive(Clone, Debug, Default)]
pub struct ExtentTable {
    x1s: Vec<f32>,
    y1s: Vec<f32>,
    x2s: Vec<f32>,
    y2s: Vec<f32>,
    /// Tombstone mask, exactly as in [`PointTable`].
    live: Vec<bool>,
    live_len: usize,
}

impl ExtentTable {
    pub fn with_capacity(n: usize) -> Self {
        ExtentTable {
            x1s: Vec::with_capacity(n),
            y1s: Vec::with_capacity(n),
            x2s: Vec::with_capacity(n),
            y2s: Vec::with_capacity(n),
            live: Vec::with_capacity(n),
            live_len: 0,
        }
    }

    /// Append a (live) rectangle row and return its handle.
    pub fn push(&mut self, r: Rect) -> EntryId {
        let id = entry_id(self.x1s.len());
        self.x1s.push(r.x1);
        self.y1s.push(r.y1);
        self.x2s.push(r.x2);
        self.y2s.push(r.y2);
        self.live.push(true);
        self.live_len += 1;
        id
    }

    /// See [`Table::clear`].
    pub fn clear(&mut self) {
        self.x1s.clear();
        self.y1s.clear();
        self.x2s.clear();
        self.y2s.clear();
        self.live.clear();
        self.live_len = 0;
    }

    /// See [`Table::remove`].
    pub fn remove(&mut self, id: EntryId) -> bool {
        let slot = &mut self.live[id as usize];
        let was_live = *slot;
        if was_live {
            *slot = false;
            self.live_len -= 1;
        }
        was_live
    }

    #[inline]
    pub fn is_live(&self, id: EntryId) -> bool {
        self.live[id as usize]
    }

    #[inline]
    pub fn live_len(&self) -> usize {
        self.live_len
    }

    #[inline]
    pub fn all_live(&self) -> bool {
        self.live_len == self.x1s.len()
    }

    #[inline]
    pub fn live_mask(&self) -> &[bool] {
        &self.live
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.x1s.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x1s.is_empty()
    }

    /// The rectangle of row `id`.
    #[inline]
    pub fn rect(&self, id: EntryId) -> Rect {
        let i = id as usize;
        Rect::new(self.x1s[i], self.y1s[i], self.x2s[i], self.y2s[i])
    }

    #[inline]
    pub fn set_rect(&mut self, id: EntryId, r: Rect) {
        let i = id as usize;
        self.x1s[i] = r.x1;
        self.y1s[i] = r.y1;
        self.x2s[i] = r.x2;
        self.y2s[i] = r.y2;
    }

    /// Raw coordinate columns, for bulk loads and the SIMD overlap filter.
    #[inline]
    pub fn x1s(&self) -> &[f32] {
        &self.x1s
    }

    #[inline]
    pub fn y1s(&self) -> &[f32] {
        &self.y1s
    }

    #[inline]
    pub fn x2s(&self) -> &[f32] {
        &self.x2s
    }

    #[inline]
    pub fn y2s(&self) -> &[f32] {
        &self.y2s
    }

    /// Iterate the **live** rows.
    pub fn iter(&self) -> impl Iterator<Item = (EntryId, Rect)> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|&(_, &live)| live)
            .map(|(i, _)| (entry_id(i), ExtentTable::rect(self, entry_id(i))))
    }

    /// Minimum bounding rectangle of all live rows (`None` when empty).
    pub fn bounds(&self) -> Option<Rect> {
        let mut it = self.iter();
        let (_, first) = it.next()?;
        let mut r = first;
        for (_, e) in it {
            r = r.union(&e);
        }
        Some(r)
    }
}

impl Table for ExtentTable {
    fn len(&self) -> usize {
        ExtentTable::len(self)
    }
    fn live_len(&self) -> usize {
        ExtentTable::live_len(self)
    }
    fn is_live(&self, id: EntryId) -> bool {
        ExtentTable::is_live(self, id)
    }
    fn live_mask(&self) -> &[bool] {
        ExtentTable::live_mask(self)
    }
    fn remove(&mut self, id: EntryId) -> bool {
        ExtentTable::remove(self, id)
    }
    fn clear(&mut self) {
        ExtentTable::clear(self)
    }
    fn bounds(&self) -> Option<Rect> {
        ExtentTable::bounds(self)
    }
}

/// The full moving-object state: positions plus per-object velocities.
/// Velocities live outside [`PointTable`] because no index ever reads them —
/// only the workload's movement model does.
#[derive(Clone, Debug, Default)]
pub struct MovingSet {
    pub positions: PointTable,
    pub vx: Vec<f32>,
    pub vy: Vec<f32>,
}

impl MovingSet {
    pub fn with_capacity(n: usize) -> Self {
        MovingSet {
            positions: PointTable::with_capacity(n),
            vx: Vec::with_capacity(n),
            vy: Vec::with_capacity(n),
        }
    }

    pub fn push(&mut self, p: Point, v: Vec2) -> EntryId {
        let id = self.positions.push(p.x, p.y);
        self.vx.push(v.x);
        self.vy.push(v.y);
        id
    }

    /// Total number of row slots, dead rows included (see
    /// [`PointTable::len`]).
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Tombstone object `id` (see [`PointTable::remove`]): its position and
    /// velocity freeze, its handle is never reused, and the movement model
    /// skips it from now on. Returns whether it was live.
    pub fn remove(&mut self, id: EntryId) -> bool {
        self.positions.remove(id)
    }

    #[inline]
    pub fn is_live(&self, id: EntryId) -> bool {
        self.positions.is_live(id)
    }

    /// Number of live objects.
    #[inline]
    pub fn live_len(&self) -> usize {
        self.positions.live_len()
    }

    #[inline]
    pub fn velocity(&self, id: EntryId) -> Vec2 {
        Vec2::new(self.vx[id as usize], self.vy[id as usize])
    }

    #[inline]
    pub fn set_velocity(&mut self, id: EntryId, v: Vec2) {
        self.vx[id as usize] = v.x;
        self.vy[id as usize] = v.y;
    }

    /// Advance every object by one tick of linear motion, reflecting off
    /// the boundary of `space` ("bounce") so the population stays inside
    /// the data space with its distribution intact.
    pub fn advance_bouncing(&mut self, space: &Rect) {
        let n = self.len();
        for i in 0..n {
            if !self.positions.is_live(entry_id(i)) {
                continue;
            }
            let mut x = self.positions.xs()[i] + self.vx[i];
            let mut y = self.positions.ys()[i] + self.vy[i];
            if x < space.x1 {
                x = space.x1 + (space.x1 - x);
                self.vx[i] = -self.vx[i];
            } else if x > space.x2 {
                x = space.x2 - (x - space.x2);
                self.vx[i] = -self.vx[i];
            }
            if y < space.y1 {
                y = space.y1 + (space.y1 - y);
                self.vy[i] = -self.vy[i];
            } else if y > space.y2 {
                y = space.y2 - (y - space.y2);
                self.vy[i] = -self.vy[i];
            }
            // A reflection can only leave the space if speed exceeds the
            // space side; clamp defensively so the invariant always holds.
            x = x.clamp(space.x1, space.x2);
            y = y.clamp(space.y1, space.y2);
            self.positions.set_position(entry_id(i), x, y);
        }
    }
}

/// The moving-rectangle state: extents plus per-object velocities — the
/// extent analogue of [`MovingSet`]. A velocity translates the whole
/// rectangle; sizes never change after insertion.
#[derive(Clone, Debug, Default)]
pub struct MovingExtentSet {
    pub extents: ExtentTable,
    pub vx: Vec<f32>,
    pub vy: Vec<f32>,
}

impl MovingExtentSet {
    pub fn with_capacity(n: usize) -> Self {
        MovingExtentSet {
            extents: ExtentTable::with_capacity(n),
            vx: Vec::with_capacity(n),
            vy: Vec::with_capacity(n),
        }
    }

    pub fn push(&mut self, r: Rect, v: Vec2) -> EntryId {
        let id = self.extents.push(r);
        self.vx.push(v.x);
        self.vy.push(v.y);
        id
    }

    /// Total number of row slots, dead rows included (see
    /// [`ExtentTable::len`]).
    #[inline]
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Tombstone object `id` (see [`ExtentTable::remove`]); its rectangle
    /// and velocity freeze, its handle is never reused. Returns whether
    /// it was live.
    pub fn remove(&mut self, id: EntryId) -> bool {
        self.extents.remove(id)
    }

    #[inline]
    pub fn is_live(&self, id: EntryId) -> bool {
        self.extents.is_live(id)
    }

    /// Number of live objects.
    #[inline]
    pub fn live_len(&self) -> usize {
        self.extents.live_len()
    }

    #[inline]
    pub fn velocity(&self, id: EntryId) -> Vec2 {
        Vec2::new(self.vx[id as usize], self.vy[id as usize])
    }

    #[inline]
    pub fn set_velocity(&mut self, id: EntryId, v: Vec2) {
        self.vx[id as usize] = v.x;
        self.vy[id as usize] = v.y;
    }

    /// Advance every rectangle one tick of linear motion, reflecting the
    /// lower-left corner off the size-reduced interval
    /// `[space.x1, space.x2 - width]` (ditto for y) so the **whole**
    /// rectangle bounces inside `space` with its size intact — the extent
    /// analogue of [`MovingSet::advance_bouncing`]. A rectangle wider or
    /// taller than the space pins to the low corner (it cannot fit).
    pub fn advance_bouncing(&mut self, space: &Rect) {
        let n = self.len();
        for i in 0..n {
            let id = entry_id(i);
            if !self.extents.is_live(id) {
                continue;
            }
            let r = self.extents.rect(id);
            let (w, h) = (r.width(), r.height());
            let hix = (space.x2 - w).max(space.x1);
            let hiy = (space.y2 - h).max(space.y1);
            let mut x = r.x1 + self.vx[i];
            let mut y = r.y1 + self.vy[i];
            if x < space.x1 {
                x = space.x1 + (space.x1 - x);
                self.vx[i] = -self.vx[i];
            } else if x > hix {
                x = hix - (x - hix);
                self.vx[i] = -self.vx[i];
            }
            if y < space.y1 {
                y = space.y1 + (space.y1 - y);
                self.vy[i] = -self.vy[i];
            } else if y > hiy {
                y = hiy - (y - hiy);
                self.vy[i] = -self.vy[i];
            }
            // A reflection can only escape the reduced interval if speed
            // exceeds its length; clamp defensively, as the point set does.
            x = x.clamp(space.x1, hix);
            y = y.clamp(space.y1, hiy);
            self.extents.set_rect(id, Rect::new(x, y, x + w, y + h));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup_roundtrip() {
        let mut t = PointTable::default();
        let a = t.push(1.0, 2.0);
        let b = t.push(3.0, 4.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.point(a), Point::new(1.0, 2.0));
        assert_eq!(t.point(b), Point::new(3.0, 4.0));
    }

    #[test]
    fn set_position_updates_base_data() {
        let mut t = PointTable::default();
        let a = t.push(1.0, 2.0);
        t.set_position(a, 9.0, 8.0);
        assert_eq!(t.point(a), Point::new(9.0, 8.0));
    }

    #[test]
    fn bounds_covers_all_points() {
        let mut t = PointTable::default();
        assert!(t.bounds().is_none());
        t.push(5.0, 5.0);
        t.push(-1.0, 7.0);
        t.push(3.0, -2.0);
        let b = t.bounds().unwrap();
        assert_eq!(b, Rect::new(-1.0, -2.0, 5.0, 7.0));
    }

    #[test]
    fn advance_moves_linearly_inside_space() {
        let mut s = MovingSet::default();
        s.push(Point::new(10.0, 10.0), Vec2::new(1.0, -2.0));
        s.advance_bouncing(&Rect::space(100.0));
        assert_eq!(s.positions.point(0), Point::new(11.0, 8.0));
    }

    #[test]
    fn advance_bounces_off_walls_and_flips_velocity() {
        let mut s = MovingSet::default();
        s.push(Point::new(1.0, 99.0), Vec2::new(-3.0, 3.0));
        s.advance_bouncing(&Rect::space(100.0));
        // x: 1 - 3 = -2 -> reflect to 2; y: 99 + 3 = 102 -> reflect to 98.
        assert_eq!(s.positions.point(0), Point::new(2.0, 98.0));
        assert_eq!(s.velocity(0), Vec2::new(3.0, -3.0));
    }

    #[test]
    fn remove_tombstones_without_moving_survivors() {
        let mut t = PointTable::default();
        let a = t.push(1.0, 2.0);
        let b = t.push(3.0, 4.0);
        let c = t.push(5.0, 6.0);
        assert!(t.all_live());
        assert!(t.remove(b));
        assert!(!t.remove(b), "second removal is a no-op");
        assert_eq!(t.len(), 3, "slots never compact");
        assert_eq!(t.live_len(), 2);
        assert!(!t.all_live());
        assert!(t.is_live(a) && !t.is_live(b) && t.is_live(c));
        // Surviving handles resolve to exactly the same rows as before.
        assert_eq!(t.point(a), Point::new(1.0, 2.0));
        assert_eq!(t.point(c), Point::new(5.0, 6.0));
        // The dead row's coordinates are frozen, not poisoned.
        assert_eq!(t.point(b), Point::new(3.0, 4.0));
        // Live-only iteration and bounds skip the tombstone.
        let ids: Vec<EntryId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, c]);
        assert_eq!(t.bounds(), Some(Rect::new(1.0, 2.0, 5.0, 6.0)));
    }

    #[test]
    fn pushes_after_removal_never_reuse_handles() {
        let mut t = PointTable::default();
        let a = t.push(1.0, 1.0);
        t.remove(a);
        let b = t.push(2.0, 2.0);
        assert_ne!(a, b);
        assert_eq!(b, 1);
        assert_eq!(t.live_len(), 1);
    }

    #[test]
    fn advance_skips_dead_objects() {
        let mut s = MovingSet::default();
        let a = s.push(Point::new(10.0, 10.0), Vec2::new(1.0, 1.0));
        let b = s.push(Point::new(20.0, 20.0), Vec2::new(1.0, 1.0));
        assert!(s.remove(a));
        assert_eq!(s.live_len(), 1);
        s.advance_bouncing(&Rect::space(100.0));
        assert_eq!(s.positions.point(a), Point::new(10.0, 10.0), "frozen");
        assert_eq!(s.positions.point(b), Point::new(21.0, 21.0));
    }

    #[test]
    fn advance_never_escapes_space() {
        let space = Rect::space(50.0);
        let mut s = MovingSet::default();
        s.push(Point::new(25.0, 25.0), Vec2::new(13.0, -17.0));
        for _ in 0..1000 {
            s.advance_bouncing(&space);
            let p = s.positions.point(0);
            assert!(space.contains_point(p.x, p.y), "escaped at {p:?}");
        }
    }

    #[test]
    fn extent_table_mirrors_the_point_table_contract() {
        let mut t = ExtentTable::default();
        let a = t.push(Rect::new(0.0, 0.0, 2.0, 2.0));
        let b = t.push(Rect::new(5.0, 5.0, 9.0, 8.0));
        let c = t.push(Rect::new(1.0, 1.0, 3.0, 3.0));
        assert_eq!(t.len(), 3);
        assert!(t.all_live());
        assert_eq!(t.rect(b), Rect::new(5.0, 5.0, 9.0, 8.0));
        assert!(t.remove(b));
        assert!(!t.remove(b), "second removal is a no-op");
        assert_eq!(t.len(), 3, "slots never compact");
        assert_eq!(t.live_len(), 2);
        assert!(t.is_live(a) && !t.is_live(b) && t.is_live(c));
        // The dead row's rectangle is frozen, not poisoned.
        assert_eq!(t.rect(b), Rect::new(5.0, 5.0, 9.0, 8.0));
        // Live-only iteration and bounds skip the tombstone.
        let ids: Vec<EntryId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, c]);
        assert_eq!(t.bounds(), Some(Rect::new(0.0, 0.0, 3.0, 3.0)));
        // Handles are never reused after a removal.
        let d = t.push(Rect::at_point(7.0, 7.0));
        assert_eq!(d, 3);
        assert_eq!(t.live_len(), 3);
    }

    #[test]
    fn extent_table_set_rect_updates_all_four_columns() {
        let mut t = ExtentTable::default();
        let a = t.push(Rect::new(0.0, 0.0, 1.0, 1.0));
        t.set_rect(a, Rect::new(4.0, 5.0, 6.0, 7.0));
        assert_eq!(t.rect(a), Rect::new(4.0, 5.0, 6.0, 7.0));
        assert_eq!(
            (t.x1s()[0], t.y1s()[0], t.x2s()[0], t.y2s()[0]),
            (4.0, 5.0, 6.0, 7.0)
        );
    }

    #[test]
    fn both_tables_satisfy_the_shared_table_trait() {
        fn contract<T: Table>(t: &mut T, id: EntryId) {
            assert_eq!(t.len(), 2);
            assert!(t.all_live());
            assert!(t.remove(id));
            assert_eq!(t.live_len(), 1);
            assert!(!t.all_live());
            assert!(!t.is_live(id));
            assert_eq!(t.live_mask().len(), 2);
            assert!(t.bounds().is_some());
            t.clear();
            assert!(t.is_empty());
            assert_eq!(t.bounds(), None);
        }
        let mut p = PointTable::default();
        p.push(1.0, 2.0);
        let id = p.push(3.0, 4.0);
        contract(&mut p, id);
        let mut e = ExtentTable::default();
        e.push(Rect::new(0.0, 0.0, 1.0, 1.0));
        let id = e.push(Rect::new(2.0, 2.0, 3.0, 3.0));
        contract(&mut e, id);
    }

    #[test]
    fn extent_advance_preserves_size_and_bounces() {
        let space = Rect::space(100.0);
        let mut s = MovingExtentSet::default();
        // x: 1 - 3 = -2 -> reflect to 2; y reduced interval is
        // [0, 100 - 4] = [0, 96]: 95 + 3 = 98 -> reflect to 94.
        s.push(Rect::new(1.0, 95.0, 3.0, 99.0), Vec2::new(-3.0, 3.0));
        s.advance_bouncing(&space);
        assert_eq!(s.extents.rect(0), Rect::new(2.0, 94.0, 4.0, 98.0));
        assert_eq!(s.velocity(0), Vec2::new(3.0, -3.0));
    }

    #[test]
    fn extent_advance_skips_dead_objects_and_stays_inside() {
        let space = Rect::space(50.0);
        let mut s = MovingExtentSet::default();
        let a = s.push(Rect::new(10.0, 10.0, 14.0, 12.0), Vec2::new(13.0, -17.0));
        let b = s.push(Rect::new(20.0, 20.0, 21.0, 21.0), Vec2::new(1.0, 1.0));
        s.remove(a);
        for _ in 0..500 {
            s.advance_bouncing(&space);
            let r = s.extents.rect(b);
            assert!(space.contains_rect(&r), "escaped at {r:?}");
            assert_eq!((r.width(), r.height()), (1.0, 1.0), "size drifted");
        }
        assert_eq!(
            s.extents.rect(a),
            Rect::new(10.0, 10.0, 14.0, 12.0),
            "frozen"
        );
    }
}
