//! Population churn: a deterministic arrival/departure process layered
//! over any base workload.
//!
//! The paper's Table 1 workloads mutate velocities but never membership —
//! the population is frozen at `init`. The update-time line of work the
//! repository also reproduces (the u-Grid of Šidlauskas et al., "Trees or
//! Grids?", GIS 2009; Tsitsigkos & Mamoulis, "Parallel In-Memory
//! Evaluation of Spatial Joins") evaluates under *object churn*, where
//! rebuild-per-tick and update-in-place diverge most: every arrival and
//! departure is pure overhead for an incremental structure but free for a
//! full rebuild (the rebuild never sees the departed object at all).
//!
//! [`ChurnWorkload`] wraps any [`Workload`] and adds, per tick:
//!
//! - **departures** — every live object leaves with probability `rate`
//!   ([`TickActions::removals`], applied by the driver as a tombstone so
//!   surviving [`EntryId`]s never shift — DESIGN.md §9);
//! - **arrivals** — `Binomial(target_population, rate)` new objects,
//!   placed uniformly in the data space with a random velocity, so the
//!   expected population stays at the **configured** size
//!   ([`ChurnParams::target_population`]; [`TickActions::inserts`],
//!   appended by the driver after movement). The target is a parameter
//!   rather than a live-count snapshot: a snapshot taken from a degenerate
//!   population would pin arrivals to `Binomial(0, rate)` forever, and a
//!   fully extinguished population (`rate = 1`) could never recover.
//!
//! The wrapper also filters the base plan down to **live** rows: a base
//! workload plans by id over the whole slot range (dead rows included, so
//! its RNG streams stay aligned no matter when churn happens), and the
//! wrapper drops queriers and velocity updates that target tombstones.
//! Everything is a pure function of the seeds, so every technique observes
//! the identical churn sequence — the precondition for the cross-technique
//! checksum equality the integration suite asserts on `churn:*` specs.

use sj_base::driver::{TickActions, Workload};
use sj_base::geom::{Point, Rect};
use sj_base::rng::Xoshiro256;
use sj_base::table::{entry_id, MovingSet};

use crate::uniform::random_velocity;

/// Parameters of the churn process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnParams {
    /// Per-tick departure probability of each live object, and per-tick
    /// arrival probability of each of `target_population` spawn slots.
    pub rate: f32,
    /// Maximum speed of arriving objects (use the base workload's).
    pub max_speed: f32,
    /// Seed of the churn streams (independent of the base workload's).
    pub seed: u64,
    /// The population size the arrival process targets as its steady-state
    /// expectation: `Binomial(target_population, rate)` arrivals per tick.
    /// This is the **configured** population (`WorkloadParams::num_points`)
    /// — not a live count snapshotted at init, which silently pinned
    /// arrivals to `Binomial(0, rate)` forever whenever the snapshot saw a
    /// degenerate population, flatlining the run instead of erroring or
    /// recovering. Must be > 0 ([`ChurnWorkload::new`] panics otherwise,
    /// matching `WorkloadParams::validate`'s `num_points > 0`).
    pub target_population: u32,
}

impl ChurnParams {
    /// Default per-tick churn rate: 2 % of the population turns over.
    pub const DEFAULT_RATE: f32 = 0.02;
}

/// See module docs.
///
/// ```
/// use sj_base::Workload;
/// use sj_workload::{ChurnParams, ChurnWorkload, UniformWorkload, WorkloadParams};
///
/// let params = WorkloadParams { num_points: 1_000, ..WorkloadParams::default() };
/// let mut churned = ChurnWorkload::new(
///     Box::new(UniformWorkload::new(params)),
///     ChurnParams {
///         rate: 0.05,
///         max_speed: params.max_speed,
///         seed: params.seed,
///         target_population: params.num_points,
///     },
/// );
/// let set = churned.init();
/// assert_eq!(set.live_len(), 1_000);
/// ```
pub struct ChurnWorkload {
    base: Box<dyn Workload>,
    params: ChurnParams,
    rng_depart: Xoshiro256,
    rng_arrive: Xoshiro256,
}

impl ChurnWorkload {
    /// # Panics
    /// Panics if `rate` is not in `[0, 1]`, `max_speed` is negative, or
    /// `target_population` is 0 (a zero-target churn process can only
    /// flatline — reject the configuration loudly instead).
    pub fn new(base: Box<dyn Workload>, params: ChurnParams) -> Self {
        assert!(
            (0.0..=1.0).contains(&params.rate),
            "churn rate must lie in [0, 1]"
        );
        assert!(params.max_speed >= 0.0, "max_speed must be >= 0");
        assert!(
            params.target_population > 0,
            "churn target_population must be > 0 (a zero target pins arrivals \
             to Binomial(0, rate) and the population can never recover)"
        );
        let mut root = Xoshiro256::seeded(params.seed ^ 0x4348_5552_4E21); // "CHURN!"
        ChurnWorkload {
            base,
            params,
            rng_depart: root.fork(),
            rng_arrive: root.fork(),
        }
    }

    pub fn params(&self) -> &ChurnParams {
        &self.params
    }

    /// The wrapped base workload.
    pub fn base(&self) -> &dyn Workload {
        self.base.as_ref()
    }
}

impl Workload for ChurnWorkload {
    fn space(&self) -> Rect {
        self.base.space()
    }

    fn query_side(&self) -> f32 {
        self.base.query_side()
    }

    fn init(&mut self) -> MovingSet {
        self.base.init()
    }

    fn plan_tick(&mut self, tick: u32, set: &MovingSet, actions: &mut TickActions) {
        self.base.plan_tick(tick, set, actions);
        // The base plans over the whole slot range; only live rows may
        // query or receive updates.
        actions.queriers.retain(|&q| set.is_live(q));
        actions
            .velocity_updates
            .retain(|&(id, _, _)| set.is_live(id));

        let rate = self.params.rate;
        for id in 0..entry_id(set.len()) {
            if set.is_live(id) && self.rng_depart.bernoulli(rate) {
                actions.removals.push(id);
            }
        }
        let space = self.space();
        for _ in 0..self.params.target_population {
            if self.rng_arrive.bernoulli(rate) {
                let p = Point::new(
                    self.rng_arrive.range_f32(space.x1, space.x2),
                    self.rng_arrive.range_f32(space.y1, space.y2),
                );
                let v = random_velocity(&mut self.rng_arrive, self.params.max_speed);
                actions.inserts.push((p, v));
            }
        }
    }

    fn advance(&mut self, set: &mut MovingSet) {
        self.base.advance(set);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{UniformWorkload, WorkloadParams};

    fn churned(rate: f32, seed: u64) -> ChurnWorkload {
        let params = WorkloadParams {
            num_points: 2_000,
            space_side: 10_000.0,
            seed,
            ..WorkloadParams::default()
        };
        ChurnWorkload::new(
            Box::new(UniformWorkload::new(params)),
            ChurnParams {
                rate,
                max_speed: params.max_speed,
                seed: params.seed,
                target_population: params.num_points,
            },
        )
    }

    /// Drive `w` by hand for `ticks` through the driver's canonical
    /// update-phase application ([`TickActions::apply`]).
    fn simulate(w: &mut ChurnWorkload, ticks: u32) -> (MovingSet, u64, u64) {
        let mut set = w.init();
        let mut actions = TickActions::default();
        let (mut removed, mut inserted) = (0u64, 0u64);
        for tick in 0..ticks {
            actions.clear();
            w.plan_tick(tick, &set, &mut actions);
            for &id in &actions.removals {
                assert!(set.is_live(id), "removal of a dead row planned");
            }
            removed += actions.removals.len() as u64;
            inserted += actions.inserts.len() as u64;
            actions.apply(&mut set, w);
        }
        (set, removed, inserted)
    }

    #[test]
    fn churn_actually_happens_at_the_configured_rate() {
        let mut w = churned(0.05, 11);
        let (set, removed, inserted) = simulate(&mut w, 20);
        // E[removed] ≈ E[inserted] ≈ 2000 * 0.05 * 20 = 2000.
        assert!(removed > 1_000, "removals: {removed}");
        assert!(inserted > 1_000, "inserts: {inserted}");
        assert_eq!(set.len(), 2_000 + inserted as usize);
        assert_eq!(set.live_len(), 2_000 + inserted as usize - removed as usize);
    }

    #[test]
    fn population_hovers_around_its_initial_size() {
        let mut w = churned(0.1, 12);
        let (set, ..) = simulate(&mut w, 30);
        let n = set.live_len() as f64;
        assert!(
            (1_400.0..=2_600.0).contains(&n),
            "population drifted to {n}"
        );
    }

    #[test]
    fn zero_rate_is_the_identity() {
        let mut w = churned(0.0, 13);
        let (set, removed, inserted) = simulate(&mut w, 5);
        assert_eq!((removed, inserted), (0, 0));
        assert_eq!(set.live_len(), 2_000);
    }

    #[test]
    fn plans_are_deterministic_and_live_only() {
        let run = |seed| {
            let mut w = churned(0.08, seed);
            let (set, removed, inserted) = simulate(&mut w, 10);
            let mut a = TickActions::default();
            w.plan_tick(10, &set, &mut a);
            for &q in &a.queriers {
                assert!(set.is_live(q), "dead querier {q} planned");
            }
            for &(id, _, _) in &a.velocity_updates {
                assert!(set.is_live(id), "dead updater {id} planned");
            }
            (removed, inserted, a.queriers.len(), a.removals.len())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn arrivals_spawn_inside_the_space() {
        let mut w = churned(0.2, 14);
        let set = w.init();
        let mut a = TickActions::default();
        w.plan_tick(0, &set, &mut a);
        assert!(!a.inserts.is_empty());
        let space = w.space();
        let max = w.params().max_speed * 1.0001;
        for &(p, v) in &a.inserts {
            assert!(space.contains_point(p.x, p.y), "{p:?} outside space");
            assert!(v.len() <= max, "{v:?} too fast");
        }
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let params = WorkloadParams::default();
        let mk = |rate| {
            std::panic::catch_unwind(|| {
                ChurnWorkload::new(
                    Box::new(UniformWorkload::new(params)),
                    ChurnParams {
                        rate,
                        max_speed: params.max_speed,
                        seed: 1,
                        target_population: params.num_points,
                    },
                )
            })
        };
        assert!(mk(1.5).is_err());
        assert!(mk(-0.1).is_err());
    }

    #[test]
    fn zero_target_population_is_rejected_not_flatlined() {
        // Regression: a degenerate population used to freeze the arrival
        // target at a live-count snapshot — with that snapshot at 0, the
        // run silently produced no arrivals forever. The configured
        // target is now a parameter, and a zero target is a loud error.
        let params = WorkloadParams::default();
        let err = std::panic::catch_unwind(|| {
            ChurnWorkload::new(
                Box::new(UniformWorkload::new(params)),
                ChurnParams {
                    rate: 0.1,
                    max_speed: params.max_speed,
                    seed: 1,
                    target_population: 0,
                },
            )
        });
        assert!(err.is_err(), "target_population = 0 must panic");
    }

    #[test]
    fn full_turnover_rate_recovers_the_population_every_tick() {
        // Regression for the snapshot semantics: at rate = 1.0 every live
        // object departs each tick. Because arrivals draw from the
        // *configured* population (Binomial(target, 1.0) = target), the
        // population fully replaces itself instead of going extinct after
        // the first tick and flatlining.
        let mut w = churned(1.0, 21);
        let (set, removed, inserted) = simulate(&mut w, 5);
        assert_eq!(set.live_len(), 2_000, "population must recover to target");
        // Every tick removes all 2000 live rows and inserts 2000 fresh ones.
        assert_eq!(removed, 5 * 2_000);
        assert_eq!(inserted, 5 * 2_000);
        // And the process keeps planning work after extinction events: the
        // next plan still has queriers among the live (new) rows.
        let mut a = TickActions::default();
        w.plan_tick(5, &set, &mut a);
        assert_eq!(a.removals.len(), set.live_len());
        assert_eq!(a.inserts.len(), 2_000);
    }
}
