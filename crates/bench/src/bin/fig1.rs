//! Figure 1 — tuning the *original* Simple Grid.
//!
//! (a) bucket size bs swept 4..32 at cps = 13: the paper finds a flat
//!     line (bs has no effect because entries are chased through linked
//!     nodes regardless of bucket capacity).
//! (b) cells-per-side cps swept 4..32 at bs = 4: a clear optimum at a
//!     coarse grid (cps ≈ 13).
//!
//! The swept configurations are deliberately *not* registry entries — the
//! registry carries the tuned constructors; sweeps assemble custom grids
//! via [`sj_bench::grid_custom`].
//!
//! Run: `cargo run -p sj-bench --release --bin fig1 [--ticks N] [--workload SPEC] [--csv|--json]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::stats_line;
use sj_bench::table::{secs, Table};
use sj_bench::{grid_custom, run_workload};
use sj_grid::{GridConfig, Layout, QueryAlgo};

fn main() {
    let opts = CommonOpts::parse();
    opts.require_self_join("fig1");
    if let Some(spec) = opts.technique {
        // fig1 sweeps fixed grid configurations; a single-technique override cannot be honored.
        eprintln!(
            "--technique {} is not supported by this binary",
            spec.name()
        );
        std::process::exit(2);
    }
    let params = opts.uniform_params();
    let wspec = opts.workload_spec();
    let exec = opts.exec_mode();

    if !opts.json {
        println!("# Figure 1a: original Simple Grid, bs sweep (cps = 13)");
    }
    let mut t = Table::new(vec!["bs", "avg_time_per_tick_s"]);
    for bs in [4u32, 8, 12, 16, 20, 24, 28, 32] {
        let cfg = GridConfig {
            cells_per_side: GridConfig::ORIGINAL_CPS,
            bucket_size: bs,
            layout: Layout::Original,
            query_algo: QueryAlgo::FullScan,
        };
        let mut tech = grid_custom(cfg, params.space_side);
        let stats = run_workload(wspec, &params, &mut tech, exec);
        if opts.json {
            println!(
                "{}",
                stats_line("fig1a", tech.name(), Some(("bs", bs as f64)), &stats)
            );
        } else {
            t.row(vec![bs.to_string(), secs(stats.avg_tick_seconds())]);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }

    if !opts.json {
        println!("# Figure 1b: original Simple Grid, cps sweep (bs = 4)");
    }
    let mut t = Table::new(vec!["cps", "avg_time_per_tick_s"]);
    for cps in [4u32, 8, 13, 16, 20, 24, 28, 32] {
        let cfg = GridConfig {
            cells_per_side: cps,
            bucket_size: GridConfig::ORIGINAL_BS,
            layout: Layout::Original,
            query_algo: QueryAlgo::FullScan,
        };
        let mut tech = grid_custom(cfg, params.space_side);
        let stats = run_workload(wspec, &params, &mut tech, exec);
        if opts.json {
            println!(
                "{}",
                stats_line("fig1b", tech.name(), Some(("cps", cps as f64)), &stats)
            );
        } else {
            t.row(vec![cps.to_string(), secs(stats.avg_tick_seconds())]);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }
}
