//@ path: crates/x/src/lib.rs
pub fn fan_out() -> u32 {
    let mut total = 0;
    std::thread::scope(|s| {
        let h = s.spawn(|| 1 + 1);
        total = h.join().unwrap_or(0);
    });
    total
}

// Tile workers follow the same law: one scoped spawn per tile, partials
// merged with the commutative wrapping fold — the sj_base::par idiom.
pub fn join_tiles(tiles: &[u64]) -> u64 {
    let mut partials = vec![0u64; tiles.len()];
    std::thread::scope(|s| {
        for (partial, &tile) in partials.iter_mut().zip(tiles) {
            s.spawn(move || *partial = tile ^ 0x9e37);
        }
    });
    partials.into_iter().fold(0, u64::wrapping_add)
}

// The pooled mini-join shape is scoped too: a fixed pool of workers
// races an atomic cursor over a shared chunk queue, partials merged with
// the same commutative fold — the sj_base::par scheduler idiom.
pub fn drain_pool(chunks: &[u64], workers: usize) -> u64 {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = AtomicUsize::new(0);
    let mut partials = vec![0u64; workers];
    std::thread::scope(|s| {
        let cursor = &cursor;
        for partial in partials.iter_mut() {
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&c) = chunks.get(i) else { break };
                *partial = partial.wrapping_add(c ^ 0x9e37);
            });
        }
    });
    partials.into_iter().fold(0, u64::wrapping_add)
}
