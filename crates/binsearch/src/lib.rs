//! # sj-binsearch
//!
//! The paper's baseline technique: "the data points are sorted by one
//! coordinate, upon which a nested loop with binary search (on the sorted
//! coordinate) is used to compute the join" (§2.2).
//!
//! Build sorts entry handles by x; a query binary-searches the first entry
//! with `x >= region.x1`, then scans forward while `x <= region.x2`,
//! filtering on y. Simple, allocation-free per query, and — as the paper
//! shows — enough to beat a badly implemented grid.
//!
//! [`VecSearchJoin`] is this repository's extension of the same idea taken
//! one implementation step further (in the paper's spirit): the build
//! copies the coordinates into x-sorted SoA columns so the in-range
//! candidates are *contiguous*, and the y-filter runs through the SIMD
//! kernel in [`sj_base::simd`]. Same algorithm, different implementation —
//! the `ablation` bench measures what that is worth.

use sj_base::geom::Rect;
use sj_base::index::SpatialIndex;
use sj_base::table::{EntryId, PointTable};

/// See crate docs.
///
/// ```
/// use sj_base::{PointTable, Rect, SpatialIndex};
/// use sj_binsearch::BinarySearchJoin;
///
/// let mut table = PointTable::default();
/// table.push(10.0, 10.0);
/// table.push(20.0, 99.0);
/// table.push(30.0, 10.0);
///
/// let mut idx = BinarySearchJoin::new();
/// idx.build(&table);
/// let mut hits = Vec::new();
/// idx.query(&table, &Rect::new(5.0, 5.0, 35.0, 15.0), &mut hits);
/// hits.sort_unstable();
/// assert_eq!(hits, vec![0, 2]); // the y filter drops entry 1
/// ```
#[derive(Debug, Default, Clone)]
pub struct BinarySearchJoin {
    /// Entry handles sorted by ascending x (ties in input order).
    sorted: Vec<EntryId>,
}

impl BinarySearchJoin {
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the first sorted entry with `x >= bound` (classic
    /// lower-bound binary search over the indirection into the table).
    fn lower_bound(&self, table: &PointTable, bound: f32) -> usize {
        let mut lo = 0usize;
        let mut hi = self.sorted.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if table.x(self.sorted[mid]) < bound {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl SpatialIndex for BinarySearchJoin {
    fn name(&self) -> &str {
        "Binary Search"
    }

    fn build(&mut self, table: &PointTable) {
        self.sorted.clear();
        // Live rows only: tombstoned rows are invisible to the sort.
        self.sorted.extend(table.iter().map(|(id, _)| id));
        let xs = table.xs();
        // total_cmp: coordinates are finite (workload invariant), but a
        // total order keeps the sort panic-free on any input.
        self.sorted
            .sort_unstable_by(|&a, &b| xs[a as usize].total_cmp(&xs[b as usize]));
    }

    fn for_each_in(&self, table: &PointTable, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        let start = self.lower_bound(table, region.x1);
        for &e in &self.sorted[start..] {
            let x = table.x(e);
            if x > region.x2 {
                break;
            }
            let y = table.y(e);
            if y >= region.y1 && y <= region.y2 {
                emit(e);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        // Allocated-capacity convention (see the trait docs).
        self.sorted.capacity() * std::mem::size_of::<EntryId>()
    }

    fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync> {
        Box::new(self.clone())
    }
}

/// See the crate docs: Binary Search with sorted coordinate copies and a
/// vectorized y-filter. Note this variant steps outside the framework's
/// strict secondary-index assumption (it copies coordinates at build
/// time, like the tree techniques do in their leaves).
#[derive(Debug, Default, Clone)]
pub struct VecSearchJoin {
    /// Coordinates and handles sorted by ascending x, SoA.
    xs: Vec<f32>,
    ys: Vec<f32>,
    ids: Vec<EntryId>,
    scratch: Vec<EntryId>,
}

impl VecSearchJoin {
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpatialIndex for VecSearchJoin {
    fn name(&self) -> &str {
        "Binary Search (vectorized)"
    }

    fn build(&mut self, table: &PointTable) {
        self.scratch.clear();
        // Live rows only, like the plain variant.
        self.scratch.extend(table.iter().map(|(id, _)| id));
        let txs = table.xs();
        self.scratch
            .sort_unstable_by(|&a, &b| txs[a as usize].total_cmp(&txs[b as usize]));
        self.xs.clear();
        self.ys.clear();
        self.ids.clear();
        self.xs.reserve(table.len());
        self.ys.reserve(table.len());
        self.ids.reserve(table.len());
        for &id in &self.scratch {
            self.xs.push(table.x(id));
            self.ys.push(table.y(id));
            self.ids.push(id);
        }
    }

    fn for_each_in(&self, _table: &PointTable, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        // Both range ends by binary search — the candidates in between are
        // contiguous in the sorted columns, ready for the SIMD filter.
        let start = self.xs.partition_point(|&x| x < region.x1);
        let end = start + self.xs[start..].partition_point(|&x| x <= region.x2);
        sj_base::simd::filter_range_gather_each(
            &self.xs[start..end],
            &self.ys[start..end],
            &self.ids[start..end],
            region,
            emit,
        );
    }

    fn memory_bytes(&self) -> usize {
        // Allocated-capacity convention (see the trait docs).
        self.xs.capacity() * 4
            + self.ys.capacity() * 4
            + self.ids.capacity() * std::mem::size_of::<EntryId>()
    }

    fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::index::ScanIndex;
    use sj_base::rng::Xoshiro256;

    fn random_table(n: usize, seed: u64, side: f32) -> PointTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(rng.range_f32(0.0, side), rng.range_f32(0.0, side));
        }
        t
    }

    fn sorted_query(idx: &dyn SpatialIndex, t: &PointTable, r: &Rect) -> Vec<EntryId> {
        let mut out = Vec::new();
        idx.query(t, r, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn agrees_with_full_scan_on_random_queries() {
        let t = random_table(3_000, 17, 1_000.0);
        let mut idx = BinarySearchJoin::new();
        idx.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let mut rng = Xoshiro256::seeded(5);
        for _ in 0..100 {
            let cx = rng.range_f32(0.0, 1_000.0);
            let cy = rng.range_f32(0.0, 1_000.0);
            let r = Rect::centered_square(sj_base::geom::Point::new(cx, cy), 80.0);
            assert_eq!(sorted_query(&idx, &t, &r), sorted_query(&scan, &t, &r));
        }
    }

    #[test]
    fn lower_bound_finds_first_not_less() {
        let mut t = PointTable::default();
        for x in [1.0f32, 3.0, 3.0, 5.0, 9.0] {
            t.push(x, 0.0);
        }
        let mut idx = BinarySearchJoin::new();
        idx.build(&t);
        assert_eq!(idx.lower_bound(&t, 0.0), 0);
        assert_eq!(idx.lower_bound(&t, 3.0), 1);
        assert_eq!(idx.lower_bound(&t, 4.0), 3);
        assert_eq!(idx.lower_bound(&t, 10.0), 5);
    }

    #[test]
    fn duplicate_x_values_are_all_found() {
        let mut t = PointTable::default();
        for i in 0..10 {
            t.push(5.0, i as f32);
        }
        let mut idx = BinarySearchJoin::new();
        idx.build(&t);
        let out = sorted_query(&idx, &t, &Rect::new(5.0, 0.0, 5.0, 100.0));
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn empty_table_is_fine() {
        let t = PointTable::default();
        let mut idx = BinarySearchJoin::new();
        idx.build(&t);
        assert!(sorted_query(&idx, &t, &Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn rebuild_after_movement_reflects_new_positions() {
        let mut t = PointTable::default();
        t.push(1.0, 1.0);
        let mut idx = BinarySearchJoin::new();
        idx.build(&t);
        assert_eq!(
            sorted_query(&idx, &t, &Rect::new(0.0, 0.0, 2.0, 2.0)),
            vec![0]
        );
        t.set_position(0, 100.0, 100.0);
        idx.build(&t);
        assert!(sorted_query(&idx, &t, &Rect::new(0.0, 0.0, 2.0, 2.0)).is_empty());
        assert_eq!(
            sorted_query(&idx, &t, &Rect::new(99.0, 99.0, 101.0, 101.0)),
            vec![0]
        );
    }

    #[test]
    fn memory_is_at_least_one_handle_per_point() {
        // Capacity-based accounting: the footprint covers at least the 100
        // live handles (4 bytes each); the allocator may round capacity up.
        let t = random_table(100, 1, 10.0);
        let mut idx = BinarySearchJoin::new();
        idx.build(&t);
        assert!(idx.memory_bytes() >= 400, "{}", idx.memory_bytes());
    }

    #[test]
    fn vectorized_variant_agrees_with_plain_variant() {
        let t = random_table(3_000, 29, 1_000.0);
        let mut plain = BinarySearchJoin::new();
        let mut vector = VecSearchJoin::new();
        plain.build(&t);
        vector.build(&t);
        let mut rng = Xoshiro256::seeded(30);
        for _ in 0..100 {
            let cx = rng.range_f32(0.0, 1_000.0);
            let cy = rng.range_f32(0.0, 1_000.0);
            let r = Rect::centered_square(sj_base::geom::Point::new(cx, cy), 120.0);
            assert_eq!(
                sorted_query(&vector, &t, &r),
                sorted_query(&plain, &t, &r),
                "{r:?}"
            );
        }
    }

    #[test]
    fn vectorized_variant_handles_edge_ranges() {
        let t = random_table(1_000, 31, 1_000.0);
        let mut vector = VecSearchJoin::new();
        vector.build(&t);
        let mut scan = ScanIndex::new();
        scan.build(&t);
        for r in [
            Rect::new(0.0, 0.0, 1_000.0, 1_000.0),
            Rect::new(-10.0, -10.0, -1.0, -1.0),
            Rect::new(1_000.0, 0.0, 1_000.0, 1_000.0),
            Rect::new(500.0, 500.0, 500.0, 500.0),
        ] {
            assert_eq!(
                sorted_query(&vector, &t, &r),
                sorted_query(&scan, &t, &r),
                "{r:?}"
            );
        }
    }

    #[test]
    fn vectorized_variant_on_empty_table() {
        let t = PointTable::default();
        let mut vector = VecSearchJoin::new();
        vector.build(&t);
        assert!(sorted_query(&vector, &t, &Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
    }
}
