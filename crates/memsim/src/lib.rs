//! # sj-memsim
//!
//! A multi-level set-associative LRU cache simulator implementing
//! [`sj_base::trace::Tracer`]. Instrumented index code paths report every
//! logical memory touch; the simulator replays them through an
//! L1/L2/L3 hierarchy and counts per-level data-cache misses plus retired
//! operations — the software substitute for the hardware performance
//! counters behind the paper's Table 3 (see DESIGN.md §3).
//!
//! Absolute counts differ from real hardware (we model the data accesses
//! of the traversals, not a whole pipeline), but before/after *ratios* of
//! the same workload replayed through the same hierarchy are meaningful —
//! and those ratios are what Table 3 demonstrates.

use sj_base::trace::Tracer;

/// Cache line size in bytes (the x86 value the paper's machine uses).
pub const LINE_BYTES: u64 = 64;

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct LevelConfig {
    pub name: &'static str,
    /// Total capacity in bytes; must be a multiple of `assoc × LINE_BYTES`.
    pub size_bytes: u64,
    /// Ways per set.
    pub assoc: usize,
}

impl LevelConfig {
    fn num_sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * LINE_BYTES)
    }

    fn validate(&self) -> Result<(), String> {
        if self.assoc == 0 {
            return Err(format!("{}: associativity must be > 0", self.name));
        }
        let ways_bytes = self.assoc as u64 * LINE_BYTES;
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(ways_bytes) {
            return Err(format!(
                "{}: size {} is not a positive multiple of assoc×line ({})",
                self.name, self.size_bytes, ways_bytes
            ));
        }
        if !self.num_sets().is_power_of_two() {
            return Err(format!(
                "{}: number of sets must be a power of two",
                self.name
            ));
        }
        Ok(())
    }
}

struct Level {
    cfg: LevelConfig,
    /// `sets[s]` holds the resident line addresses of set `s` in LRU order
    /// (front = most recently used). Associativities are small (≤ 16), so
    /// a vector with move-to-front beats any fancier structure.
    sets: Vec<Vec<u64>>,
    set_mask: u64,
    accesses: u64,
    misses: u64,
}

impl Level {
    fn new(cfg: LevelConfig) -> Level {
        let nsets = cfg.num_sets();
        Level {
            cfg,
            sets: (0..nsets).map(|_| Vec::with_capacity(cfg.assoc)).collect(),
            set_mask: nsets - 1,
            accesses: 0,
            misses: 0,
        }
    }

    /// Access one line; returns `true` on hit. Misses insert the line
    /// (evicting the LRU way when the set is full).
    fn access(&mut self, line: u64) -> bool {
        self.accesses += 1;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Move to front (MRU).
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            self.misses += 1;
            if set.len() == self.cfg.assoc {
                set.pop();
            }
            set.insert(0, line);
            false
        }
    }

    fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.accesses = 0;
        self.misses = 0;
    }
}

/// Counter snapshot of one profiled run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Retired-operation proxy for "Total INS".
    pub instrs: u64,
    /// Data accesses reaching L1 (one per distinct line touch).
    pub l1_accesses: u64,
    pub l1_misses: u64,
    pub l2_misses: u64,
    pub l3_misses: u64,
    pub reads: u64,
    pub writes: u64,
}

/// Latency model (cycles). The L1 hit cost is folded into the base CPI;
/// each miss adds the latency of the level that eventually serves it.
/// Values approximate the paper's quad-core 3.4 GHz i7 (Sandy Bridge).
#[derive(Clone, Copy, Debug)]
pub struct CpiModel {
    pub base_cpi: f64,
    pub l2_latency: f64,
    pub l3_latency: f64,
    pub mem_latency: f64,
}

impl Default for CpiModel {
    fn default() -> Self {
        CpiModel {
            base_cpi: 0.8,
            l2_latency: 12.0,
            l3_latency: 30.0,
            mem_latency: 180.0,
        }
    }
}

impl CpiModel {
    /// Estimated cycles for a stats snapshot.
    pub fn cycles(&self, s: &CacheStats) -> f64 {
        s.instrs as f64 * self.base_cpi
            + s.l1_misses as f64 * self.l2_latency
            + s.l2_misses as f64 * self.l3_latency
            + s.l3_misses as f64 * self.mem_latency
    }

    /// Estimated cycles-per-instruction (Table 3's CPI column).
    pub fn cpi(&self, s: &CacheStats) -> f64 {
        if s.instrs == 0 {
            return 0.0;
        }
        self.cycles(s) / s.instrs as f64
    }
}

/// The simulator. Create with [`CacheSim::i7`] (the paper's machine class)
/// or [`CacheSim::new`] for custom hierarchies, pass as the tracer to the
/// instrumented grid paths, then read [`CacheSim::stats`].
///
/// ```
/// use sj_base::trace::Tracer;
/// use sj_memsim::CacheSim;
///
/// let mut sim = CacheSim::i7();
/// sim.read(0x1000, 8); // cold: misses L1, L2 and L3
/// sim.read(0x1004, 8); // same 64-byte line: pure hit
/// let stats = sim.stats();
/// assert_eq!(stats.l1_accesses, 2);
/// assert_eq!(stats.l1_misses, 1);
/// assert_eq!(stats.l3_misses, 1);
/// ```
pub struct CacheSim {
    levels: Vec<Level>,
    instrs: u64,
    reads: u64,
    writes: u64,
}

impl CacheSim {
    /// # Errors
    /// Returns a description if any level's geometry is inconsistent.
    pub fn new(configs: Vec<LevelConfig>) -> Result<CacheSim, String> {
        if configs.is_empty() {
            return Err("at least one cache level is required".into());
        }
        for c in &configs {
            c.validate()?;
        }
        Ok(CacheSim {
            levels: configs.into_iter().map(Level::new).collect(),
            instrs: 0,
            reads: 0,
            writes: 0,
        })
    }

    /// The hierarchy of the paper's machine class: 32 KiB / 8-way L1d,
    /// 256 KiB / 8-way L2, 8 MiB / 16-way L3, 64-byte lines.
    pub fn i7() -> CacheSim {
        CacheSim::new(vec![
            LevelConfig {
                name: "L1d",
                size_bytes: 32 << 10,
                assoc: 8,
            },
            LevelConfig {
                name: "L2",
                size_bytes: 256 << 10,
                assoc: 8,
            },
            LevelConfig {
                name: "L3",
                size_bytes: 8 << 20,
                assoc: 16,
            },
        ])
        .expect("builtin hierarchy is valid")
    }

    fn touch(&mut self, addr: u64, len: u32) {
        let first = addr / LINE_BYTES;
        let last = (addr + len.max(1) as u64 - 1) / LINE_BYTES;
        for line in first..=last {
            // Check levels top-down; a miss at level k is filled into
            // level k and the probe continues below.
            for level in &mut self.levels {
                if level.access(line) {
                    break;
                }
            }
        }
    }

    pub fn stats(&self) -> CacheStats {
        let get = |i: usize| self.levels.get(i).map(|l| l.misses).unwrap_or(0);
        CacheStats {
            instrs: self.instrs,
            l1_accesses: self.levels[0].accesses,
            l1_misses: get(0),
            l2_misses: get(1),
            l3_misses: get(2),
            reads: self.reads,
            writes: self.writes,
        }
    }

    /// Clear both contents and counters (cold caches).
    pub fn clear(&mut self) {
        for l in &mut self.levels {
            l.clear();
        }
        self.instrs = 0;
        self.reads = 0;
        self.writes = 0;
    }

    /// Clear counters but keep cache contents (warm caches) — used to
    /// exclude a warm-up phase from the profile, as hardware counters do.
    pub fn reset_counters(&mut self) {
        for l in &mut self.levels {
            l.accesses = 0;
            l.misses = 0;
        }
        self.instrs = 0;
        self.reads = 0;
        self.writes = 0;
    }
}

impl Tracer for CacheSim {
    fn read(&mut self, addr: u64, len: u32) {
        self.reads += 1;
        self.touch(addr, len);
    }

    fn write(&mut self, addr: u64, len: u32) {
        self.writes += 1;
        self.touch(addr, len);
    }

    fn instr(&mut self, n: u64) {
        self.instrs += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sim() -> CacheSim {
        // L1: 4 sets × 2 ways × 64 B = 512 B; L2: 16 sets × 2 ways = 2 KiB.
        CacheSim::new(vec![
            LevelConfig {
                name: "L1",
                size_bytes: 512,
                assoc: 2,
            },
            LevelConfig {
                name: "L2",
                size_bytes: 2048,
                assoc: 2,
            },
        ])
        .unwrap()
    }

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let mut sim = tiny_sim();
        sim.read(0x1000, 8);
        sim.read(0x1000, 8);
        sim.read(0x1008, 8); // same line
        let s = sim.stats();
        assert_eq!(s.l1_accesses, 3);
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l2_misses, 1);
    }

    #[test]
    fn access_spanning_lines_touches_both() {
        let mut sim = tiny_sim();
        sim.read(0x1000 + 60, 8); // crosses a 64-byte boundary
        let s = sim.stats();
        assert_eq!(s.l1_accesses, 2);
        assert_eq!(s.l1_misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut sim = tiny_sim(); // 4 sets → lines 0,4,8… share set 0
        let line = |i: u64| i * 4 * LINE_BYTES; // all map to set 0
        sim.read(line(0), 1);
        sim.read(line(1), 1);
        sim.read(line(0), 1); // refresh 0 → LRU is 1
        sim.read(line(2), 1); // evicts 1
        sim.read(line(0), 1); // still resident → hit
        let before = sim.stats().l1_misses;
        sim.read(line(1), 1); // was evicted → miss
        assert_eq!(sim.stats().l1_misses, before + 1);
    }

    #[test]
    fn working_set_larger_than_l1_hits_l2() {
        let mut sim = tiny_sim();
        // 16 lines = 1 KiB: twice L1 (512 B), half of L2 (2 KiB).
        let lines = 16u64;
        for round in 0..4 {
            for i in 0..lines {
                sim.read(i * LINE_BYTES, 1);
            }
            if round == 0 {
                // Cold: every line misses everywhere.
                assert_eq!(sim.stats().l1_misses, lines);
                assert_eq!(sim.stats().l2_misses, lines);
            }
        }
        let s = sim.stats();
        // After the cold round, L2 holds the whole working set.
        assert_eq!(s.l2_misses, lines, "L2 should not miss after warm-up");
        assert!(s.l1_misses > lines, "L1 keeps missing (capacity)");
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut sim = tiny_sim();
        for _ in 0..100 {
            for i in 0..4u64 {
                sim.read(i * LINE_BYTES, 1); // 4 lines, distinct sets
            }
        }
        let s = sim.stats();
        assert_eq!(s.l1_misses, 4);
        assert_eq!(s.l1_accesses, 400);
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheSim::new(vec![]).is_err());
        assert!(CacheSim::new(vec![LevelConfig {
            name: "x",
            size_bytes: 100,
            assoc: 2
        }])
        .is_err());
        assert!(CacheSim::new(vec![LevelConfig {
            name: "x",
            size_bytes: 512,
            assoc: 0
        }])
        .is_err());
        // 3 sets: not a power of two.
        assert!(CacheSim::new(vec![LevelConfig {
            name: "x",
            size_bytes: 3 * 128,
            assoc: 2
        }])
        .is_err());
    }

    #[test]
    fn cpi_grows_with_misses() {
        let model = CpiModel::default();
        let cheap = CacheStats {
            instrs: 1000,
            l1_misses: 10,
            ..Default::default()
        };
        let pricey = CacheStats {
            instrs: 1000,
            l1_misses: 10,
            l3_misses: 10,
            ..Default::default()
        };
        assert!(model.cpi(&pricey) > model.cpi(&cheap));
        assert_eq!(model.cpi(&CacheStats::default()), 0.0);
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut sim = tiny_sim();
        sim.read(0x40, 1);
        sim.reset_counters();
        sim.read(0x40, 1); // still cached → hit
        let s = sim.stats();
        assert_eq!(s.l1_accesses, 1);
        assert_eq!(s.l1_misses, 0);
    }

    #[test]
    fn clear_cools_the_cache() {
        let mut sim = tiny_sim();
        sim.read(0x40, 1);
        sim.clear();
        sim.read(0x40, 1);
        assert_eq!(sim.stats().l1_misses, 1);
    }

    #[test]
    fn i7_hierarchy_instantiates() {
        let mut sim = CacheSim::i7();
        sim.read(0xDEAD_BEEF, 4);
        sim.instr(10);
        let s = sim.stats();
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l2_misses, 1);
        assert_eq!(s.l3_misses, 1);
        assert_eq!(s.instrs, 10);
    }
}
