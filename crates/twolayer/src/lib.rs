//! # sj-twolayer
//!
//! The two-layer space-oriented partitioning join for non-point data
//! (Tsitsigkos et al., arXiv:2307.09256): a set-at-a-time intersection
//! join that partitions both relations over a uniform cell grid and —
//! unlike classic PBSM-style replication joins — never produces a
//! duplicate result pair, so no dedup pass (and no result sorting or
//! hashing) is needed.
//!
//! ## The algebra
//!
//! Each rectangle is replicated into every cell its extent overlaps
//! (the cell-grid *cover*), and within each cell it is classified by
//! which corner of its cover the cell is:
//!
//! - **A** — the cell containing the rectangle's lower-left corner
//!   (`x1`, `y1`): its *home* cell, exactly one per rectangle;
//! - **B** — same cell row as home, but a later column (the rectangle
//!   entered from the left);
//! - **C** — same cell column as home, but a later row (entered from
//!   below);
//! - **D** — later column *and* later row (entered diagonally).
//!
//! A pair of intersecting rectangles `r ⋈ s` is reported only in the
//! cell containing the intersection's **reference point**
//! `p = (max(r.x1, s.x1), max(r.y1, s.y1))` — the lower-left corner of
//! the (non-empty) intersection, which lies in exactly one cell. Because
//! the cell grid's axis mapping is monotone, `p`'s cell column is the
//! later of the two home columns and its row the later of the two home
//! rows; so within a cell only class combinations where at least one
//! side is in {A, C} (x-axis: some `x1` starts here) *and* at least one
//! is in {A, B} (y-axis: some `y1` starts here) can own a pair. Of the
//! 16 combinations that leaves exactly **nine**:
//! `AA, AB, AC, AD, BA, BC, CA, CB, DA` — the remaining seven
//! (`BB, BD, CC, CD, DB, DC, DD`) are provably duplicates of a pair
//! already reported elsewhere and are never executed.
//!
//! Better still, the class definitions make parts of the intersection
//! test redundant. E.g. for `r ∈ A, s ∈ B`: `s` entered the cell from
//! the left, so `s.x1 < cell.x1 ≤ r.x1 ≤ r.x2` and the test
//! `s.x1 ≤ r.x2` always holds — only `r.x1 ≤ s.x2` and the y-overlap
//! remain. Every non-AA mini-join drops at least one comparison this
//! way; `DA` needs only two of the four.
//!
//! ## Both predicates
//!
//! The same machinery answers the paper framework's *within-range* point
//! joins: a point is a degenerate zero-area rectangle (`x1 = x2`,
//! `y1 = y2`) whose cover is a single cell, so every data point is class
//! A and only the `*A` mini-joins fire. Closed-rectangle tie semantics
//! are bit-identical to the scalar point-in-rect test, so the registry's
//! cross-technique agreement over point workloads holds unchanged.

use std::num::NonZeroUsize;

use sj_base::batch::BatchJoin;
use sj_base::geom::Rect;
use sj_base::table::{EntryId, ExtentTable, PointTable};
use sj_base::tile::TileGrid;

/// Class indices into a cell's per-class lists (see crate docs).
const A: usize = 0;
const B: usize = 1;
const C: usize = 2;
const D: usize = 3;

/// Auto cell sizing: aim for this many data rows per cell. Mini-joins
/// are nested loops, so cells stay small; correctness is independent of
/// the choice (any monotone grid yields the same exactly-once output).
const AUTO_TARGET_PER_CELL: usize = 64;
/// Auto cell sizing: never more cells than this — beyond it the
/// per-cell bookkeeping outweighs the shrinking mini-joins.
const AUTO_MAX_CELLS: usize = 4096;

/// One cell's partitioned view: the query-side (R) and data-side (S)
/// rectangles replicated here, split by corner class.
#[derive(Debug, Clone, Default)]
struct CellLists {
    r: [Vec<(EntryId, Rect)>; 4],
    s: [Vec<(EntryId, Rect)>; 4],
}

impl CellLists {
    fn clear(&mut self) {
        for v in self.r.iter_mut().chain(self.s.iter_mut()) {
            v.clear();
        }
    }
}

/// See crate docs. Scratch buffers are reused across ticks so
/// steady-state joins allocate nothing.
///
/// ```
/// use sj_base::batch::BatchJoin;
/// use sj_base::{ExtentTable, Rect};
/// use sj_twolayer::TwoLayerJoin;
///
/// let mut table = ExtentTable::default();
/// table.push(Rect::new(0.0, 0.0, 10.0, 10.0));
/// table.push(Rect::new(5.0, 5.0, 15.0, 15.0));
/// table.push(Rect::new(90.0, 90.0, 95.0, 95.0));
///
/// // Self-join: each querier's region is its own extent.
/// let queries: Vec<_> = (0..3u32).map(|i| (i, table.rect(i))).collect();
/// let mut pairs = Vec::new();
/// TwoLayerJoin::new().join_extents(&table, &queries, &mut pairs);
/// pairs.sort_unstable();
/// assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TwoLayerJoin {
    /// Fixed cell count, or `None` for the auto rule.
    cells: Option<NonZeroUsize>,
    /// Data-side rows as `(id, rect)` — points become degenerate rects.
    s_rows: Vec<(EntryId, Rect)>,
    /// Per-cell class lists, indexed by cell id; only the first
    /// `grid.tiles()` entries are in use for any given join.
    parts: Vec<CellLists>,
}

impl TwoLayerJoin {
    /// Auto-sized cell grid: aims for ~64 data rows per cell, capped at
    /// 4096 cells. Correctness never depends on the granularity.
    pub fn new() -> TwoLayerJoin {
        TwoLayerJoin::default()
    }

    /// Fixed cell count — correctness is grid-independent, so this only
    /// trades partitioning overhead against mini-join size.
    pub fn with_cells(cells: NonZeroUsize) -> TwoLayerJoin {
        TwoLayerJoin {
            cells: Some(cells),
            ..TwoLayerJoin::default()
        }
    }

    /// The cell count for `data_rows` data rectangles.
    fn cell_count(&self, data_rows: usize) -> NonZeroUsize {
        match self.cells {
            Some(n) => n,
            None => NonZeroUsize::new((data_rows / AUTO_TARGET_PER_CELL).clamp(1, AUTO_MAX_CELLS))
                .expect("clamp(1, ..) is non-zero"),
        }
    }

    /// Partition `self.s_rows` (data) and `queries` (query side) over a
    /// cell grid and execute the nine mini-joins per cell. Every
    /// intersecting `(querier, data row)` pair is pushed exactly once;
    /// `out` is append-only and never post-processed.
    fn join_rows(&mut self, queries: &[(EntryId, Rect)], out: &mut Vec<(EntryId, EntryId)>) {
        if self.s_rows.is_empty() || queries.is_empty() {
            return;
        }
        let bounds = match union_bounds(self.s_rows.iter().chain(queries).map(|&(_, r)| r)) {
            Some(b) => b,
            None => return,
        };
        let grid = TileGrid::new(&bounds, self.cell_count(self.s_rows.len()));
        let tiles = grid.tiles();
        for cell in self.parts.iter_mut() {
            cell.clear();
        }
        if self.parts.len() < tiles {
            self.parts.resize_with(tiles, CellLists::default);
        }

        partition(&grid, &self.s_rows, &mut self.parts, Side::Data);
        partition(&grid, queries, &mut self.parts, Side::Query);

        // The nine executed mini-joins with their reduced tests. The
        // skipped class combinations (BB, BD, CC, CD, DB, DC, DD) are
        // exactly those where the pair's reference point cannot lie in
        // this cell — their pairs are owned by an earlier cell.
        let y_ov = |r: &Rect, s: &Rect| r.y1 <= s.y2 && s.y1 <= r.y2;
        let x_ov = |r: &Rect, s: &Rect| r.x1 <= s.x2 && s.x1 <= r.x2;
        for cell in &self.parts[..tiles] {
            let (r, s) = (&cell.r, &cell.s);
            mini(&r[A], &s[A], |a, b| a.intersects(b), out);
            mini(&r[A], &s[B], |a, b| a.x1 <= b.x2 && y_ov(a, b), out);
            mini(&r[A], &s[C], |a, b| a.y1 <= b.y2 && x_ov(a, b), out);
            mini(&r[A], &s[D], |a, b| a.x1 <= b.x2 && a.y1 <= b.y2, out);
            mini(&r[B], &s[A], |a, b| b.x1 <= a.x2 && y_ov(a, b), out);
            mini(&r[B], &s[C], |a, b| b.x1 <= a.x2 && a.y1 <= b.y2, out);
            mini(&r[C], &s[A], |a, b| x_ov(a, b) && b.y1 <= a.y2, out);
            mini(&r[C], &s[B], |a, b| a.x1 <= b.x2 && b.y1 <= a.y2, out);
            mini(&r[D], &s[A], |a, b| b.x1 <= a.x2 && b.y1 <= a.y2, out);
        }
    }
}

/// Which side of the join a partition pass feeds.
#[derive(Clone, Copy)]
enum Side {
    Query,
    Data,
}

/// Replicate every rectangle into each cell of its cover, classified by
/// corner ownership relative to its home cell (the cell of its
/// lower-left corner).
fn partition(grid: &TileGrid, rows: &[(EntryId, Rect)], parts: &mut [CellLists], side: Side) {
    let nx = grid.nx();
    for &(id, rect) in rows {
        let home = grid.tile_of(rect.x1, rect.y1);
        let (hx, hy) = (home % nx, home / nx);
        for t in grid.cover(&rect) {
            let (tx, ty) = (t % nx, t / nx);
            // A = 0b00, B = 0b01 (later column), C = 0b10 (later row),
            // D = 0b11 — matching the class index constants.
            let class = (((ty > hy) as usize) << 1) | ((tx > hx) as usize);
            let lists = match side {
                Side::Query => &mut parts[t].r,
                Side::Data => &mut parts[t].s,
            };
            lists[class].push((id, rect));
        }
    }
}

/// One mini-join: nested loop with the combo's reduced predicate.
#[inline]
fn mini<F: Fn(&Rect, &Rect) -> bool>(
    rs: &[(EntryId, Rect)],
    ss: &[(EntryId, Rect)],
    test: F,
    out: &mut Vec<(EntryId, EntryId)>,
) {
    for &(q, qr) in rs {
        for &(sid, sr) in ss {
            if test(&qr, &sr) {
                out.push((q, sid));
            }
        }
    }
}

/// The tight bounding box of all rectangles, or `None` when empty.
fn union_bounds(rects: impl Iterator<Item = Rect>) -> Option<Rect> {
    let mut acc: Option<Rect> = None;
    for r in rects {
        acc = Some(match acc {
            None => r,
            Some(a) => Rect::new(
                a.x1.min(r.x1),
                a.y1.min(r.y1),
                a.x2.max(r.x2),
                a.y2.max(r.y2),
            ),
        });
    }
    acc
}

impl BatchJoin for TwoLayerJoin {
    fn name(&self) -> &str {
        "Two-Layer Partitioning"
    }

    /// Within-range point join: data points become degenerate zero-area
    /// rectangles (always class A in their single home cell), then the
    /// same nine-combo machinery runs. Tie semantics are identical to
    /// the scalar point-in-rect test.
    fn join(
        &mut self,
        table: &PointTable,
        queries: &[(EntryId, Rect)],
        out: &mut Vec<(EntryId, EntryId)>,
    ) {
        self.s_rows.clear();
        self.s_rows.reserve(table.live_len());
        for (id, p) in table.iter() {
            self.s_rows.push((id, Rect::new(p.x, p.y, p.x, p.y)));
        }
        self.join_rows(queries, out);
    }

    fn supports_intersect(&self) -> bool {
        true
    }

    fn join_extents(
        &mut self,
        data: &ExtentTable,
        queries: &[(EntryId, Rect)],
        out: &mut Vec<(EntryId, EntryId)>,
    ) {
        self.s_rows.clear();
        self.s_rows.reserve(data.live_len());
        for (id, rect) in data.iter() {
            self.s_rows.push((id, rect));
        }
        self.join_rows(queries, out);
    }

    fn fork(&self) -> Box<dyn BatchJoin + Send> {
        // Scratch buffers are per-instance caches; a clone gives a
        // parallel worker its own, so strip and tile joins never
        // contend.
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::batch::NaiveBatchJoin;
    use sj_base::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    /// `n` random rects with sides in `[0, 60]` (including degenerate
    /// zero-area ones at the distribution's edge).
    fn random_extents(n: usize, seed: u64) -> ExtentTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = ExtentTable::default();
        for _ in 0..n {
            let x = rng.range_f32(0.0, SIDE - 60.0);
            let y = rng.range_f32(0.0, SIDE - 60.0);
            let w = rng.range_f32(0.0, 60.0);
            let h = rng.range_f32(0.0, 60.0);
            t.push(Rect::new(x, y, x + w, y + h));
        }
        t
    }

    fn self_join_queries(t: &ExtentTable) -> Vec<(EntryId, Rect)> {
        (0..t.len() as u32)
            .filter(|&i| t.is_live(i))
            .map(|i| (i, t.rect(i)))
            .collect()
    }

    /// Brute-force reference: every live pair tested with the full
    /// closed intersection predicate.
    fn brute_force(t: &ExtentTable, qs: &[(EntryId, Rect)]) -> Vec<(EntryId, EntryId)> {
        let mut out = Vec::new();
        NaiveBatchJoin.join_extents(t, qs, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn emits_each_intersecting_pair_exactly_once_with_no_dedup() {
        let t = random_extents(400, 11);
        let qs = self_join_queries(&t);
        let expected = brute_force(&t, &qs);
        let mut raw = Vec::new();
        TwoLayerJoin::new().join_extents(&t, &qs, &mut raw);
        // The no-dedup pin: the RAW emit count equals the pair count —
        // nothing was filtered, sorted, or uniqued after emission.
        assert_eq!(raw.len(), expected.len());
        raw.sort_unstable();
        assert_eq!(raw, expected);
        // And the result genuinely contains duplicates-free output
        // (the equality above implies it; the windows check documents
        // that `expected` itself has no duplicates to hide behind).
        assert!(raw.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn exactly_once_holds_across_cell_granularities() {
        let t = random_extents(250, 23);
        let qs = self_join_queries(&t);
        let expected = brute_force(&t, &qs);
        for cells in [1usize, 2, 3, 7, 16, 64, 311] {
            let mut raw = Vec::new();
            TwoLayerJoin::with_cells(NonZeroUsize::new(cells).unwrap())
                .join_extents(&t, &qs, &mut raw);
            assert_eq!(raw.len(), expected.len(), "cells={cells}");
            raw.sort_unstable();
            assert_eq!(raw, expected, "cells={cells}");
        }
    }

    #[test]
    fn rects_spanning_many_cells_still_pair_exactly_once() {
        let mut t = ExtentTable::default();
        // A huge rect covering almost the whole space (every cell of a
        // fine grid) against small rects scattered across it, plus a
        // second huge rect: huge×huge must also appear exactly once.
        t.push(Rect::new(10.0, 10.0, 900.0, 900.0));
        t.push(Rect::new(50.0, 50.0, 880.0, 880.0));
        for i in 0..40 {
            let x = 20.0 + (i as f32) * 22.0;
            t.push(Rect::new(x, x, x + 5.0, x + 5.0));
        }
        let qs = self_join_queries(&t);
        let expected = brute_force(&t, &qs);
        let mut raw = Vec::new();
        TwoLayerJoin::with_cells(NonZeroUsize::new(64).unwrap()).join_extents(&t, &qs, &mut raw);
        assert_eq!(raw.len(), expected.len());
        raw.sort_unstable();
        assert_eq!(raw, expected);
    }

    #[test]
    fn touching_edges_and_corners_count_as_intersecting() {
        let mut t = ExtentTable::default();
        t.push(Rect::new(0.0, 0.0, 10.0, 10.0));
        t.push(Rect::new(10.0, 10.0, 20.0, 20.0)); // corner touch at (10,10)
        t.push(Rect::new(0.0, 10.0, 10.0, 20.0)); // edge touches both
        let qs = self_join_queries(&t);
        let mut raw = Vec::new();
        TwoLayerJoin::new().join_extents(&t, &qs, &mut raw);
        raw.sort_unstable();
        assert_eq!(raw, brute_force(&t, &qs));
        // All three touch pairwise: 3 self-pairs + 6 ordered cross pairs.
        assert_eq!(raw.len(), 9);
    }

    #[test]
    fn tombstoned_rows_never_pair() {
        let mut t = random_extents(300, 31);
        for i in (0..300u32).step_by(3) {
            t.remove(i);
        }
        let qs = self_join_queries(&t);
        let expected = brute_force(&t, &qs);
        let mut raw = Vec::new();
        TwoLayerJoin::new().join_extents(&t, &qs, &mut raw);
        assert_eq!(raw.len(), expected.len());
        raw.sort_unstable();
        assert_eq!(raw, expected);
        assert!(raw.iter().all(|&(q, s)| t.is_live(q) && t.is_live(s)));
    }

    #[test]
    fn point_join_agrees_with_naive_including_tombstones() {
        let mut rng = Xoshiro256::seeded(7);
        let mut t = PointTable::default();
        for _ in 0..500 {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        for i in (0..500u32).step_by(7) {
            t.remove(i);
        }
        let qs: Vec<(EntryId, Rect)> = (0..120u32)
            .map(|i| {
                let x = rng.range_f32(0.0, SIDE - 80.0);
                let y = rng.range_f32(0.0, SIDE - 80.0);
                (i, Rect::new(x, y, x + 80.0, y + 80.0))
            })
            .collect();
        let mut raw = Vec::new();
        TwoLayerJoin::new().join(&t, &qs, &mut raw);
        let mut expected = Vec::new();
        NaiveBatchJoin.join(&t, &qs, &mut expected);
        assert_eq!(raw.len(), expected.len());
        raw.sort_unstable();
        expected.sort_unstable();
        assert_eq!(raw, expected);
    }

    #[test]
    fn scratch_reuse_across_ticks_is_clean() {
        let mut j = TwoLayerJoin::new();
        let t1 = random_extents(200, 41);
        let qs1 = self_join_queries(&t1);
        let mut out = Vec::new();
        j.join_extents(&t1, &qs1, &mut out);
        out.sort_unstable();
        assert_eq!(out, brute_force(&t1, &qs1));
        // A second, smaller join (fewer cells in use) must not see stale
        // class lists from the first.
        let t2 = random_extents(40, 42);
        let qs2 = self_join_queries(&t2);
        let mut out2 = Vec::new();
        j.join_extents(&t2, &qs2, &mut out2);
        out2.sort_unstable();
        assert_eq!(out2, brute_force(&t2, &qs2));
    }

    #[test]
    fn fork_is_independent_and_supports_the_predicate() {
        let j = TwoLayerJoin::new();
        let mut f = j.fork();
        assert!(f.supports_intersect());
        let t = random_extents(100, 51);
        let qs = self_join_queries(&t);
        let mut out = Vec::new();
        f.join_extents(&t, &qs, &mut out);
        out.sort_unstable();
        assert_eq!(out, brute_force(&t, &qs));
    }

    #[test]
    fn empty_inputs_yield_empty_join() {
        let mut j = TwoLayerJoin::new();
        let mut out = Vec::new();
        j.join_extents(
            &ExtentTable::default(),
            &[(0, Rect::new(0.0, 0.0, 1.0, 1.0))],
            &mut out,
        );
        assert!(out.is_empty());
        let t = random_extents(10, 61);
        j.join_extents(&t, &[], &mut out);
        assert!(out.is_empty());
        j.join(
            &PointTable::default(),
            &[(0, Rect::new(0.0, 0.0, 1.0, 1.0))],
            &mut out,
        );
        assert!(out.is_empty());
    }
}
