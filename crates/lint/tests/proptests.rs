//! Property tests for the lexer's boundary invariants: nothing that
//! lives *inside* a string or comment may ever surface as a token, and
//! nothing about line endings may move a token to a different line.
//!
//! Payloads are assembled from adversarial fragments (escaped quotes,
//! comment openers, keywords, quote characters) so every generated case
//! straddles at least one boundary the scanner must not split.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

use sj_lint::lexer::{lex, TokenKind};

/// Fragments legal inside a normal `"..."` literal: every `\` and `"`
/// arrives as a complete escape, so concatenation stays a valid payload.
fn string_fragments() -> impl Strategy<Value = String> {
    vec(
        select(vec![
            "a", " ", "\\\"", "\\\\", "/*", "*/", "//", "fn", "unsafe", "'x'", "\\n", "}",
        ]),
        0..12,
    )
    .prop_map(|parts| parts.concat())
}

/// Fragments for block-comment payloads; `sanitize_comment` removes any
/// `/*` / `*/` the concatenation may have formed, so nesting depth stays
/// balanced by construction.
fn comment_fragments() -> impl Strategy<Value = String> {
    vec(
        select(vec![
            "a", " ", "\"", "'", "//", "fn", "unsafe", "*", "/", "x",
        ]),
        0..12,
    )
    .prop_map(|parts| sanitize_comment(&parts.concat()))
}

fn sanitize_comment(s: &str) -> String {
    let mut out = s.to_string();
    while out.contains("*/") || out.contains("/*") {
        out = out.replace("*/", "xx").replace("/*", "xx");
    }
    out
}

/// Raw-string payloads: `"##` would close the `r##"..."##` literal, so
/// it is rewritten; lone `"` and `#` are fair game.
fn raw_fragments() -> impl Strategy<Value = String> {
    vec(
        select(vec!["a", " ", "\"", "#", "\"#", "\\", "fn", "//", "/*"]),
        0..12,
    )
    .prop_map(|parts| {
        let mut out = parts.concat();
        while out.contains("\"##") {
            out = out.replace("\"##", "\"#x");
        }
        out
    })
}

proptest! {
    #[test]
    fn string_contents_never_become_tokens(payload in string_fragments()) {
        let src = format!("let s = \"{payload}\";\nfn f() {{}}\n");
        let lexed = lex(&src);
        // Exactly one string literal, nothing read as a comment.
        let strs = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Str).count();
        prop_assert_eq!(strs, 1, "src: {:?}", src);
        prop_assert!(lexed.comments.is_empty(), "src: {:?}", src);
        // The `fn` inside the payload must not inflate the ident count:
        // exactly one `fn` (the real one), exactly one `f`.
        let fns = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text == "fn")
            .count();
        prop_assert_eq!(fns, 1, "src: {:?}", src);
        // The statement terminator after the literal is intact.
        let semis = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text == ";")
            .count();
        prop_assert_eq!(semis, 1, "src: {:?}", src);
    }

    #[test]
    fn block_comment_contents_never_become_tokens(payload in comment_fragments()) {
        // Spaces keep the payload's edge characters from fusing with the
        // delimiters (`…/` + `*/` would read as a nested opener).
        let src = format!("/* {payload} */ fn f() {{}}\n");
        let lexed = lex(&src);
        prop_assert_eq!(lexed.comments.len(), 1, "src: {:?}", src);
        let kinds: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(kinds, vec!["fn", "f", "(", ")", "{", "}"], "src: {:?}", src);
    }

    #[test]
    fn raw_string_payload_round_trips(payload in raw_fragments()) {
        let src = format!("let s = r##\"{payload}\"##;\n");
        let lexed = lex(&src);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        prop_assert_eq!(strs.len(), 1, "src: {:?}", src);
        // Raw strings have no escapes, so the token text is the payload.
        prop_assert_eq!(strs[0].text.as_str(), payload.as_str(), "src: {:?}", src);
        prop_assert!(lexed.comments.is_empty(), "src: {:?}", src);
    }

    #[test]
    fn crlf_and_lf_lex_identically(lines in vec(
        select(vec![
            "fn f() {}",
            "// note",
            "let x = 1;",
            "/* c */",
            "let s = \"a\\\"b\";",
            "",
        ]),
        0..8,
    )) {
        let lf = lines.join("\n");
        let crlf = lines.join("\r\n");
        let a = lex(&lf);
        let b = lex(&crlf);
        prop_assert_eq!(a.tokens.len(), b.tokens.len());
        for (ta, tb) in a.tokens.iter().zip(b.tokens.iter()) {
            prop_assert_eq!(&ta.kind, &tb.kind);
            prop_assert_eq!(&ta.text, &tb.text);
            prop_assert_eq!(ta.line, tb.line, "token {:?}", ta.text);
        }
        prop_assert_eq!(a.comments.len(), b.comments.len());
        for (ca, cb) in a.comments.iter().zip(b.comments.iter()) {
            prop_assert_eq!(&ca.text, &cb.text);
            prop_assert_eq!(ca.start_line, cb.start_line);
            prop_assert_eq!(ca.end_line, cb.end_line);
        }
    }

    #[test]
    fn nested_block_comments_balance(depth in 1usize..5, payload in comment_fragments()) {
        // /* /* /* payload */ */ */ — one comment regardless of depth,
        // and the code after it survives.
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("/* ");
        }
        src.push_str(&payload);
        for _ in 0..depth {
            src.push_str(" */");
        }
        src.push_str(" fn f() {}");
        let lexed = lex(&src);
        prop_assert_eq!(lexed.comments.len(), 1, "src: {:?}", src);
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(texts, vec!["fn", "f", "(", ")", "{", "}"], "src: {:?}", src);
    }
}
