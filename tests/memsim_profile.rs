//! Integration of the traced grid with the cache simulator: the Table 3
//! directional claims must hold at test scale — the refactored, re-tuned
//! grid does strictly less memory-hierarchy work than the original.

use spatial_joins::core::driver::TickActions;
use spatial_joins::core::Workload;
use spatial_joins::memsim::CacheStats;
use spatial_joins::prelude::*;

fn profile(stage: Stage, params: &WorkloadParams) -> CacheStats {
    let mut workload = UniformWorkload::new(*params);
    let space = workload.space();
    let query_side = params.query_side;
    let mut set = workload.init();
    let mut grid = SimpleGrid::at_stage(stage, params.space_side);
    let mut sim = CacheSim::i7();
    let mut actions = TickActions::default();
    let mut results = Vec::new();
    for tick in 0..params.ticks {
        actions.clear();
        workload.plan_tick(tick, &set, &mut actions);
        grid.build_traced(&set.positions, &mut sim);
        for &q in &actions.queriers {
            let region =
                Rect::centered_square(set.positions.point(q), query_side).clipped_to(&space);
            results.clear();
            grid.query_traced(&set.positions, &region, &mut results, &mut sim);
        }
        for &(id, vx, vy) in &actions.velocity_updates {
            set.set_velocity(id, Vec2::new(vx, vy));
        }
        workload.advance(&mut set);
    }
    sim.stats()
}

fn small_params() -> WorkloadParams {
    WorkloadParams {
        num_points: 5_000,
        ticks: 2,
        ..WorkloadParams::default()
    }
}

#[test]
fn refactoring_reduces_every_table3_metric() {
    // Scale matters for the L2 claim: the original layout must genuinely
    // overflow L2 (15 K points × 32 B ≈ 480 KiB > 256 KiB) while the
    // refactored one (≈ 180 KiB + directory) mostly fits — the same
    // capacity relationship the paper's 50 K-point workload has to its
    // machine. One tick keeps the traced run fast.
    let params = WorkloadParams {
        num_points: 15_000,
        ticks: 1,
        ..WorkloadParams::default()
    };
    let before = profile(Stage::Original, &params);
    let after = profile(Stage::CpsTuned, &params);

    assert!(
        after.instrs < before.instrs,
        "ops: {} -> {}",
        before.instrs,
        after.instrs
    );
    assert!(
        after.l1_accesses < before.l1_accesses,
        "accesses: {} -> {}",
        before.l1_accesses,
        after.l1_accesses
    );
    assert!(after.l1_misses < before.l1_misses);
    assert!(after.l2_misses < before.l2_misses);
    // At this scale everything fits L3; misses there are compulsory only.
    assert!(after.l3_misses <= before.l3_misses);

    let model = CpiModel::default();
    assert!(
        model.cpi(&after) <= model.cpi(&before) * 1.05,
        "CPI should not regress"
    );
}

#[test]
fn improvements_are_monotone_across_stages() {
    // Each cumulative stage must not increase the total traced work.
    let params = small_params();
    let mut last_ops = u64::MAX;
    for stage in Stage::ALL {
        let s = profile(stage, &params);
        assert!(
            s.instrs <= last_ops,
            "{stage:?} increased traced ops: {last_ops} -> {}",
            s.instrs
        );
        last_ops = s.instrs;
    }
}

#[test]
fn traced_and_untraced_queries_return_identical_results() {
    use spatial_joins::core::trace::NullTracer;
    let params = small_params();
    let mut workload = UniformWorkload::new(params);
    let set = workload.init();
    let mut grid = SimpleGrid::at_stage(Stage::Original, params.space_side);
    let mut sim = CacheSim::i7();
    grid.build_traced(&set.positions, &mut sim);

    let region = Rect::centered_square(set.positions.point(0), 400.0)
        .clipped_to(&Rect::space(params.space_side));
    let mut traced = Vec::new();
    grid.query_traced(&set.positions, &region, &mut traced, &mut sim);
    let mut untraced = Vec::new();
    grid.query_traced(&set.positions, &region, &mut untraced, &mut NullTracer);
    traced.sort_unstable();
    untraced.sort_unstable();
    assert_eq!(traced, untraced);
}
