//! The intersection join's registry-wide contract: every technique that
//! implements the **intersects** predicate — the quadratic scan, every
//! Simple Grid stage, and the two-layer partitioning join — computes the
//! identical join over the moving-rectangle workload, and each of them is
//! **bit-identical** across the execution modes (`@par<N>`, `@tiles<N>`,
//! `@tiles<N>@par<T>`, `@tilesauto`), exactly as the point-join
//! equivalence harness (`parallel_equivalence.rs`) proves for the
//! within-range predicate.
//!
//! The two-layer join's defining property gets its own pins: its *raw*
//! emission count equals the number of intersecting pairs — each pair
//! produced exactly once by the A/B/C/D reference-point ownership rule,
//! with zero deduplication — including over tables with tombstoned rows,
//! and at adversarial cell granularities (1 cell, prime counts, more
//! cells than rectangles).

use proptest::prelude::*;
use spatial_joins::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 7];
const TILE_COUNTS: [usize; 4] = [1, 2, 5, 16];
const POOL_SHAPES: [(usize, usize); 2] = [(4, 2), (16, 3)];

fn params(seed: u64, num_points: u32) -> WorkloadParams {
    WorkloadParams {
        num_points,
        ticks: 3,
        space_side: 6_000.0,
        seed,
        ..WorkloadParams::default()
    }
}

/// The registry techniques implementing the intersects predicate.
fn intersect_specs() -> Vec<TechniqueSpec> {
    registry()
        .into_iter()
        .filter(|s| s.supports_intersects())
        .collect()
}

fn run(spec: TechniqueSpec, p: WorkloadParams, exec: ExecMode) -> RunStats {
    let mut workload = RectsWorkload::new(p);
    let mut tech = spec.build(p.space_side);
    tech.run_intersect(&mut workload, DriverConfig::new(p.ticks, 1).with_exec(exec))
}

fn assert_join_identical(seq: &RunStats, other: &RunStats, ctx: &str) {
    assert_eq!(other.result_pairs, seq.result_pairs, "{ctx}: pair count");
    assert_eq!(other.checksum, seq.checksum, "{ctx}: checksum");
    assert_eq!(other.queries, seq.queries, "{ctx}: query count");
    assert_eq!(other.updates, seq.updates, "{ctx}: update count");
    assert_eq!(other.removals, seq.removals, "{ctx}: removal count");
    assert_eq!(other.inserts, seq.inserts, "{ctx}: insert count");
    assert_eq!(other.ticks.len(), seq.ticks.len(), "{ctx}: measured ticks");
}

/// One technique under every tested execution mode; returns the
/// sequential run for cross-technique comparison.
fn check_exec_modes<F: Fn(ExecMode) -> RunStats>(run: F, ctx: &str) -> RunStats {
    let seq = run(ExecMode::Sequential);
    for threads in THREAD_COUNTS {
        let par = run(ExecMode::parallel(threads).unwrap());
        assert_join_identical(&seq, &par, &format!("{ctx} @par{threads}"));
        assert_eq!(par.index_bytes, seq.index_bytes, "{ctx} @par{threads}");
    }
    for tiles in TILE_COUNTS {
        let tiled = run(ExecMode::partitioned(tiles).unwrap());
        assert_join_identical(&seq, &tiled, &format!("{ctx} @tiles{tiles}"));
    }
    for (tiles, workers) in POOL_SHAPES {
        let pooled = run(ExecMode::pooled(tiles, workers).unwrap());
        assert_join_identical(&seq, &pooled, &format!("{ctx} @tiles{tiles}@par{workers}"));
    }
    let auto = run(ExecMode::adaptive());
    assert_join_identical(&seq, &auto, &format!("{ctx} @tilesauto"));
    seq
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn intersection_join_is_scan_equal_and_exec_mode_identical(
        seed in 0u64..=u64::MAX,
        num_points in 200u32..800,
    ) {
        let p = params(seed, num_points);
        let mut reference: Option<(u64, u64)> = None;
        for spec in intersect_specs() {
            let seq = check_exec_modes(|exec| run(spec, p, exec), &spec.name());
            match reference {
                None => {
                    prop_assert!(seq.result_pairs > 0, "{}: no pairs", spec.name());
                    reference = Some((seq.result_pairs, seq.checksum));
                }
                Some(expect) => prop_assert_eq!(
                    (seq.result_pairs, seq.checksum),
                    expect,
                    "{} computed a different intersection join",
                    spec.name()
                ),
            }
        }
    }

    #[test]
    fn equivalence_holds_when_workers_exceed_the_querier_count(
        seed in 0u64..=u64::MAX,
    ) {
        // Six rectangles, oversharded every way: empty shards, empty
        // tiles, and a pool whose workers mostly never win a mini-join.
        let p = params(seed, 6);
        for spec in intersect_specs() {
            let seq = run(spec, p, ExecMode::Sequential);
            let par = run(spec, p, ExecMode::parallel(16).unwrap());
            assert_join_identical(&seq, &par, &format!("{} @par16 (tiny)", spec.name()));
            for tiles in [16usize, 64] {
                let tiled = run(spec, p, ExecMode::partitioned(tiles).unwrap());
                assert_join_identical(
                    &seq,
                    &tiled,
                    &format!("{} @tiles{tiles} (tiny)", spec.name()),
                );
            }
            let pooled = run(spec, p, ExecMode::pooled(16, 8).unwrap());
            assert_join_identical(
                &seq,
                &pooled,
                &format!("{} @tiles16@par8 (tiny)", spec.name()),
            );
        }
    }
}

/// A rect workload with churn: every third tick removes a band of rows
/// (tombstones — handles never shift) and inserts fresh rectangles, so
/// the scan-equality below runs over tables where `all_live()` is false.
struct ChurnRects {
    inner: RectsWorkload,
    next_removal: u32,
}

impl ChurnRects {
    fn new(p: WorkloadParams) -> Self {
        ChurnRects {
            inner: RectsWorkload::new(p),
            next_removal: 0,
        }
    }
}

impl ExtentWorkload for ChurnRects {
    fn space(&self) -> Rect {
        self.inner.space()
    }

    fn init(&mut self) -> MovingExtentSet {
        self.inner.init()
    }

    fn plan_tick(&mut self, tick: u32, set: &MovingExtentSet, actions: &mut ExtentTickActions) {
        self.inner.plan_tick(tick, set, actions);
        // Deterministic churn: tombstone five live rows in a rolling
        // window and spawn three arrivals per tick. Queriers planned by
        // the inner workload may die this very tick — the driver applies
        // removals before the next build, so the join must cope.
        let n = set.len() as u32;
        for _ in 0..5 {
            let id = self.next_removal % n;
            self.next_removal += 1;
            if set.is_live(id) {
                actions.removals.push(id);
            }
        }
        let space = self.space();
        for k in 0..3u32 {
            let t = ((tick * 31 + k * 7) % 97) as f32 / 97.0;
            let x = t * (space.x2 - 200.0);
            let y = (1.0 - t) * (space.y2 - 150.0);
            actions.inserts.push((
                Rect::new(x, y, x + 180.0, y + 140.0),
                Vec2::new(30.0, -20.0),
            ));
        }
        // Planned queriers must be live once removals apply: drop the
        // ones this tick tombstones.
        let dead: Vec<EntryId> = actions.removals.clone();
        actions.queriers.retain(|q| !dead.contains(q));
    }
}

#[test]
fn churned_tables_stay_scan_equal_with_tombstones_in_play() {
    let p = WorkloadParams {
        num_points: 400,
        ticks: 6,
        space_side: 6_000.0,
        seed: 42,
        ..WorkloadParams::default()
    };
    let mk = |spec: TechniqueSpec, exec: ExecMode| {
        let mut workload = ChurnRects::new(p);
        let mut tech = spec.build(p.space_side);
        tech.run_intersect(&mut workload, DriverConfig::new(p.ticks, 1).with_exec(exec))
    };
    let reference = mk(TechniqueKind::Scan.spec(), ExecMode::Sequential);
    assert!(reference.result_pairs > 0);
    assert!(reference.removals > 0 && reference.inserts > 0);
    for spec in intersect_specs() {
        for exec in [
            ExecMode::Sequential,
            ExecMode::parallel(3).unwrap(),
            ExecMode::partitioned(4).unwrap(),
            ExecMode::pooled(4, 2).unwrap(),
        ] {
            let r = mk(spec, exec);
            assert_join_identical(
                &reference,
                &r,
                &format!("{} {exec:?} (churned rects)", spec.name()),
            );
        }
    }
}

/// The no-dedup pin, tombstones included: the two-layer join's raw output
/// length equals the exact number of intersecting (querier, live row)
/// pairs — nothing emitted twice, nothing dropped, no dedup pass — and
/// the multiset equals the brute-force join, at every cell granularity.
#[test]
fn twolayer_raw_emission_count_is_the_exact_pair_count_with_tombstones() {
    let mut table = ExtentTable::default();
    let mut ids = Vec::new();
    // A deterministic soup: overlapping sizes from tiny to cell-spanning.
    for i in 0..240u32 {
        let t = (i as f32 * 13.7) % 900.0;
        let u = (i as f32 * 29.3 + 411.0) % 900.0;
        let w = 4.0 + (i as f32 * 7.1) % 160.0;
        let h = 4.0 + (i as f32 * 11.9) % 130.0;
        ids.push(table.push(Rect::new(t, u, t + w, u + h)));
    }
    // Tombstone a band in the middle; handles never shift.
    for &id in &ids[60..90] {
        table.remove(id);
    }
    let queries: Vec<(EntryId, Rect)> = table.iter().collect();

    // Ground truth: brute force over live rows only.
    let mut expected: Vec<(EntryId, EntryId)> = Vec::new();
    for &(q, qr) in &queries {
        for (d, dr) in table.iter() {
            if qr.intersects(&dr) {
                expected.push((q, d));
            }
        }
    }
    expected.sort_unstable();
    assert!(expected.len() > queries.len(), "soup too sparse to pin");

    for cells in [1usize, 2, 7, 16, 311] {
        let mut join = TwoLayerJoin::with_cells(std::num::NonZeroUsize::new(cells).unwrap());
        let mut out = Vec::new();
        join.join_extents(&table, &queries, &mut out);
        // The raw emission count IS the pair count: exactly-once by
        // construction, not by a dedup pass.
        assert_eq!(
            out.len(),
            expected.len(),
            "{cells} cells: duplicate or dropped emissions"
        );
        out.sort_unstable();
        assert_eq!(out, expected, "{cells} cells: wrong pair set");
        // No tombstoned row on either side.
        for &(q, d) in &out {
            assert!(table.is_live(q) && table.is_live(d));
        }
    }
}

/// Points are degenerate rectangles: the intersection join over zero-area
/// extents equals the within-range point join's containment semantics at
/// the boundary (closed on all edges), so the two predicate axes agree
/// where they overlap.
#[test]
fn degenerate_extents_reproduce_closed_boundary_ties() {
    let mut table = ExtentTable::default();
    let a = table.push(Rect::new(10.0, 10.0, 20.0, 20.0));
    // Touching corner, touching edge, interior point, disjoint.
    let corner = table.push(Rect::new(20.0, 20.0, 20.0, 20.0));
    let edge = table.push(Rect::new(15.0, 20.0, 15.0, 20.0));
    let inside = table.push(Rect::new(12.0, 13.0, 12.0, 13.0));
    let outside = table.push(Rect::new(20.5, 20.5, 20.5, 20.5));
    let queries: Vec<(EntryId, Rect)> = vec![(a, table.rect(a))];
    let mut join = TwoLayerJoin::new();
    let mut out = Vec::new();
    join.join_extents(&table, &queries, &mut out);
    out.sort_unstable();
    assert_eq!(out, vec![(a, a), (a, corner), (a, edge), (a, inside)]);
    assert!(!out.iter().any(|&(_, d)| d == outside));
}
