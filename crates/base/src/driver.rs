//! The iterated spatial-join driver.
//!
//! Reproduces the tick model of the Sowell et al. framework (paper §2.1):
//! processing advances in discrete ticks, each consisting of a query phase
//! followed by a non-overlapping update phase. Objects read the state of
//! other objects *as of the previous tick* — guaranteed here by (re)building
//! the static index before any of this tick's updates are applied.
//!
//! Per tick the driver measures three phases, matching Table 2's columns:
//! 1. **Build** — rebuild the static index from the base table,
//! 2. **Query** — every querier runs one range query; the join result is
//!    the set of (querier, matching object) pairs,
//! 3. **Update** — velocity updates and population churn (departures as
//!    tombstones, arrivals appended) are applied to the base data and all
//!    surviving objects advance one step of movement.
//!
//! ## Self-joins and bipartite joins
//!
//! The paper only ever joins a moving set with itself (the queriers are a
//! subset of the indexed population). The driver additionally supports the
//! canonical two-dataset setting of the related work (Tsitsigkos &
//! Mamoulis, *Parallel In-Memory Evaluation of Spatial Joins*): a
//! **bipartite** join R ⋈ S over two independent moving sets, where the
//! *query relation* R issues one range query per live row, centred on its
//! own position, against an index built over the *data relation* S. Each
//! relation is driven by its own [`Workload`] (velocity updates and
//! population churn included) and the checksum folds `(r_querier,
//! s_result)` pairs exactly as in the self-join — which is the degenerate
//! case R = S, running through the identical code path with identical
//! statistics (DESIGN.md §10). Entry points: [`run_bipartite_join`] /
//! [`run_bipartite_batch_join`].

use std::time::{Duration, Instant};

use crate::geom::{Point, Rect, Vec2};
use crate::index::SpatialIndex;
use crate::par::{self, ExecMode};
use crate::rng::mix64;
use crate::stats::Summary;
use crate::table::{EntryId, ExtentTable, MovingExtentSet, MovingSet, PointTable};

/// What a workload wants to happen in one tick: who queries, which objects
/// receive which new velocities, and — for workloads with population churn
/// — which objects depart and which new ones arrive.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TickActions {
    pub queriers: Vec<EntryId>,
    /// `(object, new_vx, new_vy)` — applied to the base data at the end of
    /// the tick, i.e. after all queries ran.
    pub velocity_updates: Vec<(EntryId, f32, f32)>,
    /// Objects leaving the population this tick. Applied in the timed
    /// update phase as a tombstone ([`MovingSet::remove`]): surviving
    /// [`EntryId`]s never shift, so checksums stay comparable across
    /// techniques and runs (DESIGN.md §9).
    pub removals: Vec<EntryId>,
    /// `(position, velocity)` of objects entering the population this
    /// tick. Applied in the timed update phase *after* movement, so an
    /// arrival first becomes visible — at exactly its spawn position — to
    /// the next tick's build/query phases.
    pub inserts: Vec<(Point, Vec2)>,
}

impl TickActions {
    pub fn clear(&mut self) {
        self.queriers.clear();
        self.velocity_updates.clear();
        self.removals.clear();
        self.inserts.clear();
    }

    /// Apply this plan to `set` in the driver's canonical update-phase
    /// order: velocity updates, then departures (tombstones), then one
    /// step of movement via `workload`'s model, then arrivals (appended
    /// after movement so a new object first becomes visible at exactly
    /// its spawn position). The trace recorder and replay harnesses call
    /// this too — the order is load-bearing for replayed checksums, so it
    /// lives in exactly one place.
    pub fn apply<W: Workload + ?Sized>(&self, set: &mut MovingSet, workload: &mut W) {
        for &(id, vx, vy) in &self.velocity_updates {
            set.set_velocity(id, Vec2::new(vx, vy));
        }
        for &id in &self.removals {
            set.remove(id);
        }
        workload.advance(set);
        for &(p, v) in &self.inserts {
            set.push(p, v);
        }
    }
}

/// A moving-object workload: initial population plus the per-tick action
/// plan and movement model. Implementations live in `sj-workload`; they are
/// deterministic functions of their seed so every technique observes the
/// identical object trajectories and query sets.
pub trait Workload {
    /// The data space `[0, side]²` every object stays inside.
    fn space(&self) -> Rect;

    /// Side length of the square range queries (Table 1 "Query Size").
    fn query_side(&self) -> f32;

    /// Create the initial object population.
    fn init(&mut self) -> MovingSet;

    /// Decide this tick's queriers, velocity updates, and (for churn
    /// workloads) departures/arrivals. Must not mutate `set`; the driver
    /// applies the plan itself so the application cost is measured in the
    /// update phase, not hidden in the workload. Planned queriers must be
    /// live rows — a tombstone cannot issue a query.
    fn plan_tick(&mut self, tick: u32, set: &MovingSet, actions: &mut TickActions);

    /// Advance all objects one tick of movement (after updates applied).
    /// The default is linear motion bouncing off the space boundary; the
    /// Gaussian workload overrides it with hotspot-attracted motion.
    fn advance(&mut self, set: &mut MovingSet) {
        let space = self.space();
        set.advance_bouncing(&space);
    }
}

/// What an extent workload wants to happen in one tick — the `intersects`
/// counterpart of [`TickActions`]. Same canonical update-phase order, same
/// tombstone semantics; arrivals carry a full rectangle instead of a
/// position.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExtentTickActions {
    pub queriers: Vec<EntryId>,
    /// `(object, new_vx, new_vy)` — applied at the end of the tick.
    pub velocity_updates: Vec<(EntryId, f32, f32)>,
    /// Objects leaving this tick, applied as tombstones
    /// ([`MovingExtentSet::remove`]): handles never shift.
    pub removals: Vec<EntryId>,
    /// `(rectangle, velocity)` of objects entering this tick, appended
    /// after movement so an arrival first becomes visible — at exactly its
    /// spawn extent — to the next tick's build/query phases.
    pub inserts: Vec<(Rect, Vec2)>,
}

impl ExtentTickActions {
    pub fn clear(&mut self) {
        self.queriers.clear();
        self.velocity_updates.clear();
        self.removals.clear();
        self.inserts.clear();
    }

    /// Apply this plan to `set` in the driver's canonical update-phase
    /// order — velocity updates, departures, one step of movement via
    /// `workload`'s model, then arrivals — mirroring [`TickActions::apply`]
    /// (the order is load-bearing for replayed checksums).
    pub fn apply<W: ExtentWorkload + ?Sized>(&self, set: &mut MovingExtentSet, workload: &mut W) {
        for &(id, vx, vy) in &self.velocity_updates {
            set.set_velocity(id, Vec2::new(vx, vy));
        }
        for &id in &self.removals {
            set.remove(id);
        }
        workload.advance(set);
        for &(r, v) in &self.inserts {
            set.push(r, v);
        }
    }
}

/// A moving-rectangle workload — the `intersects` counterpart of
/// [`Workload`]. There is no `query_side`: in the intersection self-join a
/// querier's query region *is* its own rectangle, so the geometry travels
/// with the data.
pub trait ExtentWorkload {
    /// The data space every rectangle stays inside.
    fn space(&self) -> Rect;

    /// Create the initial object population.
    fn init(&mut self) -> MovingExtentSet;

    /// Decide this tick's queriers, velocity updates, and churn. Must not
    /// mutate `set` (the driver applies the plan in the timed update
    /// phase); planned queriers must be live rows.
    fn plan_tick(&mut self, tick: u32, set: &MovingExtentSet, actions: &mut ExtentTickActions);

    /// Advance all objects one tick of movement (after updates applied).
    /// The default is linear motion with the rectangle bouncing off the
    /// space boundary, size preserved.
    fn advance(&mut self, set: &mut MovingExtentSet) {
        let space = self.space();
        set.advance_bouncing(&space);
    }
}

/// Wall-clock time of one tick, split by phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct TickTimes {
    pub build: Duration,
    pub query: Duration,
    pub update: Duration,
}

impl TickTimes {
    pub fn total(&self) -> Duration {
        self.build + self.query + self.update
    }
}

/// Result of driving one technique through a workload.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    pub ticks: Vec<TickTimes>,
    /// Total number of (querier, result) join pairs over the run.
    pub result_pairs: u64,
    /// Order-independent checksum of all join pairs. Identical across
    /// techniques iff they produced identical joins; also defeats
    /// dead-code elimination of the query results.
    pub checksum: u64,
    /// Total queries issued over the run.
    pub queries: u64,
    /// Total velocity updates applied over the run.
    pub updates: u64,
    /// Total objects removed (tombstoned) over the run.
    pub removals: u64,
    /// Total objects inserted over the run.
    pub inserts: u64,
    /// Index memory after the final build, in bytes.
    pub index_bytes: usize,
    /// Mini-join scheduler load metrics, populated only by
    /// [`ExecMode::Partitioned`] runs whose scheduled phases saw work.
    pub tile_load: Option<TileLoad>,
}

impl RunStats {
    fn seconds<F: Fn(&TickTimes) -> Duration>(&self, f: F) -> Vec<f64> {
        self.ticks.iter().map(|t| f(t).as_secs_f64()).collect()
    }

    /// Mean of `f` over the measured ticks — **defined as `0.0` for a run
    /// with no measured ticks** (a `ticks: 0`, warmup-only configuration).
    /// [`Summary::of`] already yields a zero mean for empty input; the
    /// explicit early return pins that contract *here*, where the JSON
    /// reporter depends on it (it asserts every emitted number is finite),
    /// independent of how `Summary` might treat empty samples in the
    /// future.
    fn avg_seconds<F: Fn(&TickTimes) -> Duration>(&self, f: F) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        Summary::of(&self.seconds(f)).mean
    }

    /// The paper's headline metric: average wall-clock time per tick
    /// (0.0 when no ticks were measured).
    pub fn avg_tick_seconds(&self) -> f64 {
        self.avg_seconds(TickTimes::total)
    }

    pub fn avg_build_seconds(&self) -> f64 {
        self.avg_seconds(|t| t.build)
    }

    pub fn avg_query_seconds(&self) -> f64 {
        self.avg_seconds(|t| t.query)
    }

    pub fn avg_update_seconds(&self) -> f64 {
        self.avg_seconds(|t| t.update)
    }

    /// Summary over the measured ticks; all-zero (n = 0) for a
    /// warmup-only run, matching the `avg_*` accessors.
    pub fn tick_summary(&self) -> Summary {
        Summary::of(&self.seconds(TickTimes::total))
    }
}

/// Load-balance metrics of the mini-join scheduler behind
/// [`ExecMode::Partitioned`], accumulated over the run's scheduled phases
/// (see `PoolMetrics` in [`crate::par`]). Like `index_bytes`, these are
/// mode-structural observations, not part of the bit-identity contract —
/// they are wall-clock ratios and vary run to run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TileLoad {
    /// Slowest populated tile's busy time ÷ mean populated-tile busy time:
    /// the slowdown a tile-per-thread schedule would suffer from the
    /// hotspot (1.0 = perfectly balanced tiles).
    pub imbalance: f64,
    /// Fraction of pool capacity (workers × scheduled wall time) spent
    /// doing join work (1.0 = no worker ever idled).
    pub occupancy: f64,
}

/// Fold one join pair into an order-independent checksum: mix the pair to
/// decorrelate, then wrapping-add so result order cannot matter.
#[inline]
pub fn fold_pair(checksum: u64, querier: EntryId, result: EntryId) -> u64 {
    checksum.wrapping_add(mix64(((querier as u64) << 32) | result as u64))
}

/// Configuration of a driver run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DriverConfig {
    /// Number of ticks to execute (Table 1 "Number of Ticks").
    pub ticks: u32,
    /// Warm-up ticks executed but excluded from statistics (the original
    /// framework also discards cold-start effects). Warm-up accounting is
    /// identical in both execution modes: the phase runs, its results are
    /// discarded.
    pub warmup: u32,
    /// How the query phase executes ([`ExecMode::Sequential`] by default).
    /// Build and update phases are always sequential — parallelism never
    /// touches the previous-tick semantics (see [`crate::par`]).
    pub exec: ExecMode,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            ticks: 100,
            warmup: 2,
            exec: ExecMode::Sequential,
        }
    }
}

impl DriverConfig {
    /// A sequential run of `ticks` measured ticks after `warmup` discarded
    /// ones.
    pub const fn new(ticks: u32, warmup: u32) -> DriverConfig {
        DriverConfig {
            ticks,
            warmup,
            exec: ExecMode::Sequential,
        }
    }

    /// The same run under a different execution mode.
    pub const fn with_exec(mut self, exec: ExecMode) -> DriverConfig {
        self.exec = exec;
        self
    }
}

/// The per-category hooks of the shared tick loop in [`drive`]. Exactly two
/// implementations exist — the per-query index executor behind [`run_join`]
/// and the set-at-a-time executor behind [`run_batch_join`] — so the two
/// join categories run the *identical* loop (warmup accounting, phase
/// boundaries, update application) and differ only where the paper's
/// taxonomy says they must.
trait TickExecutor {
    /// Timed build phase (no-op for index-free batch techniques). Under
    /// [`ExecMode::Partitioned`] the per-query executor partitions the
    /// table into tile replicas and builds one private index per tile
    /// here — partitioning is this mode's build cost — which is why the
    /// tick geometry (`space`, `query_side`) and the mode flow in.
    fn build(&mut self, table: &PointTable, space: &Rect, query_side: f32, exec: ExecMode);

    /// Untimed per-tick bookkeeping before the query phase. Only the batch
    /// executor uses it, to assemble the tick's query set — set-at-a-time
    /// techniques receive their queries pre-built, as in the original
    /// framework. The per-query executor computes each region *inside* the
    /// timed phase: issuing a query, region arithmetic included, is part of
    /// that category's per-query cost (unchanged from the pre-unification
    /// driver).
    fn prepare(&mut self, tick: &TickCtx<'_>);

    /// Timed query phase: run every query of the tick, folding each
    /// `(querier, result)` pair into `pairs`/`checksum` via
    /// [`fold_pair`] — no per-query result materialization. Under
    /// [`ExecMode::Parallel`] the executor shards the phase through
    /// [`crate::par`]; both categories merge per-worker partials with a
    /// commutative wrapping sum, so the folded totals are bit-identical to
    /// the sequential mode.
    fn query(&mut self, tick: &TickCtx<'_>, exec: ExecMode, pairs: &mut u64, checksum: &mut u64);

    /// Index memory after the final build (0 for batch techniques).
    fn index_bytes(&self) -> usize;

    /// Accumulated mini-join scheduler load metrics (`None` unless the run
    /// was partitioned and its scheduled phases saw work).
    fn tile_load(&self) -> Option<TileLoad>;
}

/// One tick's query-phase inputs, as seen by a [`TickExecutor`]: the
/// relation tables as of the previous tick, this tick's queriers, and the
/// query geometry. `data` is the table indexes build over and joins probe
/// (the data relation S); `centers` is the table query regions are centred
/// on (the query relation R). In a self-join both reference the same
/// table; the executors never assume that.
struct TickCtx<'a> {
    data: &'a PointTable,
    centers: &'a PointTable,
    queriers: &'a [EntryId],
    space: &'a Rect,
    query_side: f32,
}

/// The single tick loop both join categories — and both join shapes — run
/// (see [`TickExecutor`]). `data_workload` drives the data relation S;
/// `query_rel`, when present, drives an independent query relation R
/// (bipartite mode). When `query_rel` is `None` the loop is exactly the
/// self-join of the paper: S plans its own queriers and probes itself.
fn drive<W: Workload + ?Sized, E: TickExecutor>(
    data_workload: &mut W,
    mut query_rel: Option<&mut dyn Workload>,
    exec: &mut E,
    cfg: DriverConfig,
) -> RunStats {
    let mut s = data_workload.init();
    let mut r: Option<MovingSet> = query_rel.as_deref_mut().map(|w| w.init());
    let space = data_workload.space();
    // Queries are issued by the query relation, so its workload defines
    // their side length; both relations must share the data space (the
    // region clip below is against S's space — `JoinSpec` builds both
    // workloads over identical space parameters).
    let query_side = match query_rel.as_deref() {
        Some(w) => {
            // A real assert (not debug): the check runs once per run, and
            // mismatched spaces would silently clip every query region
            // against the wrong bounds in release builds.
            assert_eq!(
                w.space(),
                space,
                "bipartite relations must share the data space"
            );
            w.query_side()
        }
        None => data_workload.query_side(),
    };

    let mut stats = RunStats::default();
    let mut actions = TickActions::default();
    // The query relation's plan, bipartite mode only.
    let mut r_actions = TickActions::default();

    let total_ticks = cfg.warmup + cfg.ticks;
    for tick in 0..total_ticks {
        let measured = tick >= cfg.warmup;
        actions.clear();
        data_workload.plan_tick(tick, &s, &mut actions);
        if let (Some(w), Some(r_set)) = (query_rel.as_deref_mut(), r.as_ref()) {
            r_actions.clear();
            w.plan_tick(tick, r_set, &mut r_actions);
            // In a bipartite join only R queries: whatever queriers S's
            // workload planned are data-relation bookkeeping, not queries.
            actions.queriers.clear();
        }

        // Phase 1: build the static index over the previous tick's state
        // of the data relation.
        let t0 = Instant::now();
        exec.build(&s.positions, &space, query_side, cfg.exec);
        let build = t0.elapsed();

        let (queriers, centers): (&[EntryId], &PointTable) = match r.as_ref() {
            Some(r_set) => (&r_actions.queriers, &r_set.positions),
            None => (&actions.queriers, &s.positions),
        };
        let ctx = TickCtx {
            data: &s.positions,
            centers,
            queriers,
            space: &space,
            query_side,
        };
        exec.prepare(&ctx);

        // Phase 2: queries, folded straight into the running checksum.
        let t0 = Instant::now();
        let mut pairs = 0u64;
        let mut checksum = stats.checksum;
        exec.query(&ctx, cfg.exec, &mut pairs, &mut checksum);
        let query = t0.elapsed();
        let queries = ctx.queriers.len() as u64;

        // Phase 3: updates are applied to the base data at the end of the
        // tick — velocity changes, then departures (tombstones), then
        // movement of the survivors, then arrivals (visible from the next
        // tick at their spawn position; see [`TickActions::apply`]). All
        // of it is timed: insert/remove cost is update-phase cost, exactly
        // where the update-time taxonomy of the original study puts it
        // (DESIGN.md §9). In bipartite mode both relations update — data
        // relation first, then the query relation, each through its own
        // workload's movement model.
        let t0 = Instant::now();
        actions.apply(&mut s, data_workload);
        if let (Some(w), Some(r_set)) = (query_rel.as_deref_mut(), r.as_mut()) {
            r_actions.apply(r_set, w);
        }
        let update = t0.elapsed();

        if measured {
            stats.ticks.push(TickTimes {
                build,
                query,
                update,
            });
            stats.result_pairs += pairs;
            stats.checksum = checksum;
            stats.queries += queries;
            stats.updates +=
                (actions.velocity_updates.len() + r_actions.velocity_updates.len()) as u64;
            stats.removals += (actions.removals.len() + r_actions.removals.len()) as u64;
            stats.inserts += (actions.inserts.len() + r_actions.inserts.len()) as u64;
        }
    }
    stats.index_bytes = exec.index_bytes();
    stats.tile_load = exec.tile_load();
    stats
}

/// Executor for the index nested loop category: every querier issues one
/// square range query centred on its own position, clipped to the data
/// space, and the index emits matches directly into the checksum fold.
/// `Sync` because the parallel mode probes the (immutable) index from
/// several workers at once — every index in the workspace is plain data.
///
/// Under [`ExecMode::Partitioned`] the index itself is never built:
/// it serves as the prototype each tile forks ([`SpatialIndex::fork`]),
/// and `tiles` carries the per-tile forks, replicas, and querier
/// assignments across ticks.
struct IndexExecutor<'a, I: SpatialIndex + Sync + ?Sized> {
    index: &'a mut I,
    tiles: par::TileIndexPool,
}

impl<'a, I: SpatialIndex + Sync + ?Sized> IndexExecutor<'a, I> {
    fn new(index: &'a mut I) -> Self {
        IndexExecutor {
            index,
            tiles: par::TileIndexPool::default(),
        }
    }
}

impl<I: SpatialIndex + Sync + ?Sized> TickExecutor for IndexExecutor<'_, I> {
    fn build(&mut self, table: &PointTable, space: &Rect, query_side: f32, exec: ExecMode) {
        match exec {
            ExecMode::Partitioned { tiles, workers } => {
                par::tiled_index_build(
                    &*self.index,
                    table,
                    space,
                    query_side,
                    tiles,
                    workers,
                    &mut self.tiles,
                );
            }
            _ => self.index.build(table),
        }
    }

    fn prepare(&mut self, _: &TickCtx<'_>) {}

    fn query(&mut self, tick: &TickCtx<'_>, exec: ExecMode, pairs: &mut u64, checksum: &mut u64) {
        match exec {
            ExecMode::Sequential => {
                for &q in tick.queriers {
                    let region = Rect::centered_square(tick.centers.point(q), tick.query_side)
                        .clipped_to(tick.space);
                    self.index.for_each_in(tick.data, &region, &mut |r| {
                        *pairs += 1;
                        *checksum = fold_pair(*checksum, q, r);
                    });
                }
            }
            ExecMode::Parallel { threads } => {
                let (p, c) = par::shard_index_query(
                    &*self.index,
                    tick.data,
                    tick.centers,
                    tick.queriers,
                    tick.space,
                    tick.query_side,
                    threads,
                );
                *pairs += p;
                *checksum = checksum.wrapping_add(c);
            }
            ExecMode::Partitioned { .. } => {
                let (p, c) = par::tiled_index_query(
                    &mut self.tiles,
                    tick.centers,
                    tick.queriers,
                    tick.space,
                    tick.query_side,
                );
                *pairs += p;
                *checksum = checksum.wrapping_add(c);
            }
        }
    }

    fn index_bytes(&self) -> usize {
        // In tiled mode the footprint is the sum of the per-tile indexes
        // (the prototype was never built); replication makes this the one
        // RunStats field that is mode-structural rather than bit-identical
        // (DESIGN.md §13).
        match self.tiles.index_bytes() {
            Some(bytes) => bytes,
            None => self.index.memory_bytes(),
        }
    }

    fn tile_load(&self) -> Option<TileLoad> {
        self.tiles.tile_load()
    }
}

/// Executor for the specialized (set-at-a-time) join category: the tick's
/// whole query set is assembled untimed, handed to the technique in one
/// call, and the returned pair set is folded into the checksum. The timed
/// phase covers the join itself plus the fold, mirroring the per-query
/// executor where emission and folding are likewise inseparable.
struct BatchExecutor<'a, J: crate::batch::BatchJoin + ?Sized> {
    join: &'a mut J,
    queries: Vec<(EntryId, Rect)>,
    pairs_buf: Vec<(EntryId, EntryId)>,
    /// Parallel-mode worker forks and buffers, kept across ticks so
    /// steady-state sharded joins fork and allocate nothing.
    workers: Vec<par::BatchWorker>,
    /// Tiled-mode worker forks, replicas and query assignments, likewise
    /// persistent. Unlike the index category the batch category has no
    /// build phase, so partitioning happens inside the timed query phase
    /// (it is part of the set-at-a-time join's cost).
    tiles: par::TileBatchPool,
}

impl<J: crate::batch::BatchJoin + ?Sized> BatchExecutor<'_, J> {
    fn new(join: &mut J) -> BatchExecutor<'_, J> {
        BatchExecutor {
            join,
            queries: Vec::new(),
            pairs_buf: Vec::new(),
            workers: Vec::new(),
            tiles: par::TileBatchPool::default(),
        }
    }
}

impl<J: crate::batch::BatchJoin + ?Sized> TickExecutor for BatchExecutor<'_, J> {
    fn build(&mut self, _table: &PointTable, _space: &Rect, _query_side: f32, _exec: ExecMode) {}

    fn prepare(&mut self, tick: &TickCtx<'_>) {
        self.queries.clear();
        for &q in tick.queriers {
            let region = Rect::centered_square(tick.centers.point(q), tick.query_side)
                .clipped_to(tick.space);
            self.queries.push((q, region));
        }
    }

    fn query(&mut self, tick: &TickCtx<'_>, exec: ExecMode, pairs: &mut u64, checksum: &mut u64) {
        match exec {
            ExecMode::Sequential => {
                self.pairs_buf.clear();
                self.join
                    .join_two(tick.centers, tick.data, &self.queries, &mut self.pairs_buf);
                *pairs += self.pairs_buf.len() as u64;
                for &(q, r) in &self.pairs_buf {
                    *checksum = fold_pair(*checksum, q, r);
                }
            }
            ExecMode::Parallel { threads } => {
                let (p, c) = par::shard_batch_join(
                    &*self.join,
                    tick.centers,
                    tick.data,
                    &self.queries,
                    threads,
                    &mut self.workers,
                );
                *pairs += p;
                *checksum = checksum.wrapping_add(c);
            }
            ExecMode::Partitioned { tiles, workers } => {
                let (p, c) = par::tiled_batch_join(
                    &*self.join,
                    tick.centers,
                    tick.data,
                    &self.queries,
                    tick.space,
                    tick.query_side,
                    tiles,
                    workers,
                    &mut self.tiles,
                );
                *pairs += p;
                *checksum = checksum.wrapping_add(c);
            }
        }
    }

    fn index_bytes(&self) -> usize {
        0
    }

    fn tile_load(&self) -> Option<TileLoad> {
        self.tiles.tile_load()
    }
}

/// Drive `index` through `workload` for `cfg.ticks` measured ticks.
///
/// `cfg.exec` selects the query-phase execution mode; under
/// [`ExecMode::Parallel`] the index is probed read-only from several
/// workers (hence the `Sync` bound) and the resulting [`RunStats`] counts
/// are bit-identical to the sequential run.
pub fn run_join<W: Workload + ?Sized, I: SpatialIndex + Sync + ?Sized>(
    workload: &mut W,
    index: &mut I,
    cfg: DriverConfig,
) -> RunStats {
    drive(workload, None, &mut IndexExecutor::new(index), cfg)
}

/// Drive a **bipartite** join R ⋈ S: `index` is rebuilt each tick over the
/// data relation driven by `data_workload` (S), and every live row the
/// query relation's workload (R) plans as a querier issues one range query
/// — centred on the R row's position — against it. Each relation updates
/// through its own workload (velocity changes, churn, movement model); the
/// two workloads must share the same data space. All other semantics
/// (phase boundaries, warmup accounting, checksum fold, parallel
/// equivalence) are identical to [`run_join`] — a self-join is exactly
/// this with R = S.
pub fn run_bipartite_join<I: SpatialIndex + Sync + ?Sized>(
    query_workload: &mut dyn Workload,
    data_workload: &mut dyn Workload,
    index: &mut I,
    cfg: DriverConfig,
) -> RunStats {
    drive(
        data_workload,
        Some(query_workload),
        &mut IndexExecutor::new(index),
        cfg,
    )
}

/// Drive a set-at-a-time join technique ([`crate::batch::BatchJoin`])
/// through the same tick loop as [`run_join`]: identical workloads,
/// identical phase semantics, directly comparable statistics. The query
/// phase hands the tick's whole query set to the technique in one call
/// (its cost covers any per-tick sorting the technique does); under
/// [`ExecMode::Parallel`] the set is partitioned into strips, each joined
/// by a private fork of the technique ([`crate::batch::BatchJoin::fork`]).
pub fn run_batch_join<W: Workload + ?Sized, J: crate::batch::BatchJoin + ?Sized>(
    workload: &mut W,
    join: &mut J,
    cfg: DriverConfig,
) -> RunStats {
    drive(workload, None, &mut BatchExecutor::new(join), cfg)
}

/// The bipartite form of [`run_batch_join`]: the tick's whole query set —
/// one region per live R querier, centred on R positions — is handed to
/// the technique in one [`crate::batch::BatchJoin::join_two`] call against
/// the data relation S. See [`run_bipartite_join`] for the relation
/// semantics.
pub fn run_bipartite_batch_join<J: crate::batch::BatchJoin + ?Sized>(
    query_workload: &mut dyn Workload,
    data_workload: &mut dyn Workload,
    join: &mut J,
    cfg: DriverConfig,
) -> RunStats {
    drive(
        data_workload,
        Some(query_workload),
        &mut BatchExecutor::new(join),
        cfg,
    )
}

/// The per-category hooks of the intersection-join tick loop
/// ([`drive_extents`]) — the `intersects` counterpart of [`TickExecutor`],
/// with the same two implementations (per-query index, set-at-a-time
/// batch). The query geometry travels with the data (a querier's region is
/// its own rectangle), so the context is just the table and the queriers.
trait ExtentTickExecutor {
    /// Timed build phase over the previous tick's extents.
    fn build(&mut self, table: &ExtentTable, space: &Rect, exec: ExecMode);

    /// Untimed pre-query bookkeeping (the batch executor materializes the
    /// tick's query set here, exactly like the point loop).
    fn prepare(&mut self, table: &ExtentTable, queriers: &[EntryId]);

    /// Timed query phase: every querier's rectangle against the table,
    /// folded via [`fold_pair`].
    fn query(
        &mut self,
        table: &ExtentTable,
        queriers: &[EntryId],
        space: &Rect,
        exec: ExecMode,
        pairs: &mut u64,
        checksum: &mut u64,
    );

    /// Index memory after the final build (0 for batch techniques).
    fn index_bytes(&self) -> usize;

    /// Accumulated scheduler load metrics (`None` unless partitioned).
    fn tile_load(&self) -> Option<TileLoad>;
}

/// The intersection join's tick loop — [`drive`]'s shape (plan → timed
/// build → timed query → timed update, warmup accounting identical) over
/// an extent relation joining with itself. No bipartite form: the paper's
/// setting and the two-layer literature both evaluate the self-join, and
/// the point loop already covers the R ⋈ S machinery.
fn drive_extents<W: ExtentWorkload + ?Sized, E: ExtentTickExecutor>(
    workload: &mut W,
    exec: &mut E,
    cfg: DriverConfig,
) -> RunStats {
    let mut set = workload.init();
    let space = workload.space();

    let mut stats = RunStats::default();
    let mut actions = ExtentTickActions::default();

    let total_ticks = cfg.warmup + cfg.ticks;
    for tick in 0..total_ticks {
        let measured = tick >= cfg.warmup;
        actions.clear();
        workload.plan_tick(tick, &set, &mut actions);

        // Phase 1: build over the previous tick's extents.
        let t0 = Instant::now();
        exec.build(&set.extents, &space, cfg.exec);
        let build = t0.elapsed();

        exec.prepare(&set.extents, &actions.queriers);

        // Phase 2: queries, folded straight into the running checksum.
        let t0 = Instant::now();
        let mut pairs = 0u64;
        let mut checksum = stats.checksum;
        exec.query(
            &set.extents,
            &actions.queriers,
            &space,
            cfg.exec,
            &mut pairs,
            &mut checksum,
        );
        let query = t0.elapsed();
        let queries = actions.queriers.len() as u64;

        // Phase 3: updates in the canonical order (see
        // [`ExtentTickActions::apply`]), all timed.
        let t0 = Instant::now();
        actions.apply(&mut set, workload);
        let update = t0.elapsed();

        if measured {
            stats.ticks.push(TickTimes {
                build,
                query,
                update,
            });
            stats.result_pairs += pairs;
            stats.checksum = checksum;
            stats.queries += queries;
            stats.updates += actions.velocity_updates.len() as u64;
            stats.removals += actions.removals.len() as u64;
            stats.inserts += actions.inserts.len() as u64;
        }
    }
    stats.index_bytes = exec.index_bytes();
    stats.tile_load = exec.tile_load();
    stats
}

/// Executor for the intersection join's per-query category. Mirrors
/// [`IndexExecutor`]: sequential probes, sharded probes, or per-tile forks
/// over extent replicas, all folding through [`fold_pair`].
struct ExtentIndexExecutor<'a, I: SpatialIndex + Sync + ?Sized> {
    index: &'a mut I,
    tiles: par::TileExtentIndexPool,
}

impl<'a, I: SpatialIndex + Sync + ?Sized> ExtentIndexExecutor<'a, I> {
    fn new(index: &'a mut I) -> Self {
        assert!(
            index.supports_intersect(),
            "{}: no intersects-predicate support",
            index.name()
        );
        ExtentIndexExecutor {
            index,
            tiles: par::TileExtentIndexPool::default(),
        }
    }
}

impl<I: SpatialIndex + Sync + ?Sized> ExtentTickExecutor for ExtentIndexExecutor<'_, I> {
    fn build(&mut self, table: &ExtentTable, space: &Rect, exec: ExecMode) {
        match exec {
            ExecMode::Partitioned { tiles, workers } => {
                par::tiled_extent_index_build(
                    &*self.index,
                    table,
                    space,
                    tiles,
                    workers,
                    &mut self.tiles,
                );
            }
            _ => self.index.build_extents(table),
        }
    }

    fn prepare(&mut self, _table: &ExtentTable, _queriers: &[EntryId]) {}

    fn query(
        &mut self,
        table: &ExtentTable,
        queriers: &[EntryId],
        _space: &Rect,
        exec: ExecMode,
        pairs: &mut u64,
        checksum: &mut u64,
    ) {
        match exec {
            ExecMode::Sequential => {
                for &q in queriers {
                    let region = table.rect(q);
                    self.index.for_each_intersecting(table, &region, &mut |r| {
                        *pairs += 1;
                        *checksum = fold_pair(*checksum, q, r);
                    });
                }
            }
            ExecMode::Parallel { threads } => {
                let (p, c) = par::shard_extent_index_query(&*self.index, table, queriers, threads);
                *pairs += p;
                *checksum = checksum.wrapping_add(c);
            }
            ExecMode::Partitioned { .. } => {
                let (p, c) = par::tiled_extent_index_query(&mut self.tiles, table, queriers);
                *pairs += p;
                *checksum = checksum.wrapping_add(c);
            }
        }
    }

    fn index_bytes(&self) -> usize {
        match self.tiles.index_bytes() {
            Some(bytes) => bytes,
            None => self.index.memory_bytes(),
        }
    }

    fn tile_load(&self) -> Option<TileLoad> {
        self.tiles.tile_load()
    }
}

/// Executor for the intersection join's set-at-a-time category. Mirrors
/// [`BatchExecutor`]: the tick's query set — one `(querier, rect)` per
/// planned querier — is assembled untimed and handed to
/// [`crate::batch::BatchJoin::join_extents`] in one call (or sharded /
/// tiled through [`crate::par`]).
struct ExtentBatchExecutor<'a, J: crate::batch::BatchJoin + ?Sized> {
    join: &'a mut J,
    queries: Vec<(EntryId, Rect)>,
    pairs_buf: Vec<(EntryId, EntryId)>,
    workers: Vec<par::BatchWorker>,
    tiles: par::TileExtentBatchPool,
}

impl<J: crate::batch::BatchJoin + ?Sized> ExtentBatchExecutor<'_, J> {
    fn new(join: &mut J) -> ExtentBatchExecutor<'_, J> {
        assert!(
            join.supports_intersect(),
            "{}: no intersects-predicate support",
            join.name()
        );
        ExtentBatchExecutor {
            join,
            queries: Vec::new(),
            pairs_buf: Vec::new(),
            workers: Vec::new(),
            tiles: par::TileExtentBatchPool::default(),
        }
    }
}

impl<J: crate::batch::BatchJoin + ?Sized> ExtentTickExecutor for ExtentBatchExecutor<'_, J> {
    fn build(&mut self, _table: &ExtentTable, _space: &Rect, _exec: ExecMode) {}

    fn prepare(&mut self, table: &ExtentTable, queriers: &[EntryId]) {
        self.queries.clear();
        for &q in queriers {
            self.queries.push((q, table.rect(q)));
        }
    }

    fn query(
        &mut self,
        table: &ExtentTable,
        _queriers: &[EntryId],
        space: &Rect,
        exec: ExecMode,
        pairs: &mut u64,
        checksum: &mut u64,
    ) {
        match exec {
            ExecMode::Sequential => {
                self.pairs_buf.clear();
                self.join
                    .join_extents(table, &self.queries, &mut self.pairs_buf);
                *pairs += self.pairs_buf.len() as u64;
                for &(q, r) in &self.pairs_buf {
                    *checksum = fold_pair(*checksum, q, r);
                }
            }
            ExecMode::Parallel { threads } => {
                let (p, c) = par::shard_extent_batch_join(
                    &*self.join,
                    table,
                    &self.queries,
                    threads,
                    &mut self.workers,
                );
                *pairs += p;
                *checksum = checksum.wrapping_add(c);
            }
            ExecMode::Partitioned { tiles, workers } => {
                let (p, c) = par::tiled_extent_batch_join(
                    &*self.join,
                    table,
                    &self.queries,
                    space,
                    tiles,
                    workers,
                    &mut self.tiles,
                );
                *pairs += p;
                *checksum = checksum.wrapping_add(c);
            }
        }
    }

    fn index_bytes(&self) -> usize {
        0
    }

    fn tile_load(&self) -> Option<TileLoad> {
        self.tiles.tile_load()
    }
}

/// Drive `index` through an intersection self-join over `workload`'s
/// moving rectangles: each tick rebuilds the index over the previous
/// tick's extents ([`SpatialIndex::build_extents`]) and every planned
/// querier reports the rows intersecting its own rectangle
/// ([`SpatialIndex::for_each_intersecting`], closed semantics — a querier
/// always finds itself). Panics up front if the index does not implement
/// the predicate ([`SpatialIndex::supports_intersect`]). All [`ExecMode`]s
/// are bit-identical, exactly as in [`run_join`].
pub fn run_intersect_join<W: ExtentWorkload + ?Sized, I: SpatialIndex + Sync + ?Sized>(
    workload: &mut W,
    index: &mut I,
    cfg: DriverConfig,
) -> RunStats {
    drive_extents(workload, &mut ExtentIndexExecutor::new(index), cfg)
}

/// Drive a set-at-a-time technique through the intersection self-join of
/// [`run_intersect_join`]: the tick's whole query set goes to
/// [`crate::batch::BatchJoin::join_extents`] in one call. Panics up front
/// if the technique does not implement the predicate.
pub fn run_intersect_batch_join<W: ExtentWorkload + ?Sized, J: crate::batch::BatchJoin + ?Sized>(
    workload: &mut W,
    join: &mut J,
    cfg: DriverConfig,
) -> RunStats {
    drive_extents(workload, &mut ExtentBatchExecutor::new(join), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, Vec2};
    use crate::index::ScanIndex;
    use crate::table::PointTable;

    /// A deterministic toy workload: k fixed points, everybody queries
    /// every tick, nobody updates.
    struct ToyWorkload {
        n: u32,
    }

    impl Workload for ToyWorkload {
        fn space(&self) -> Rect {
            Rect::space(1000.0)
        }
        fn query_side(&self) -> f32 {
            100.0
        }
        fn init(&mut self) -> MovingSet {
            let mut set = MovingSet::default();
            for i in 0..self.n {
                let t = i as f32 * 37.0 % 1000.0;
                set.push(Point::new(t, (t * 7.0) % 1000.0), Vec2::new(1.0, 1.0));
            }
            set
        }
        fn plan_tick(&mut self, _tick: u32, set: &MovingSet, actions: &mut TickActions) {
            actions.queriers.extend(0..set.len() as EntryId);
        }
    }

    #[test]
    fn run_produces_one_timing_per_measured_tick() {
        let mut w = ToyWorkload { n: 50 };
        let mut idx = ScanIndex::new();
        let stats = run_join(&mut w, &mut idx, DriverConfig::new(5, 2));
        assert_eq!(stats.ticks.len(), 5);
        assert_eq!(stats.queries, 5 * 50);
    }

    #[test]
    fn every_querier_finds_itself() {
        // A query centred on a point always contains that point, so the
        // join must yield at least |queriers| pairs per tick.
        let mut w = ToyWorkload { n: 50 };
        let mut idx = ScanIndex::new();
        let stats = run_join(&mut w, &mut idx, DriverConfig::new(3, 0));
        assert!(
            stats.result_pairs >= 3 * 50,
            "pairs = {}",
            stats.result_pairs
        );
    }

    #[test]
    fn checksum_is_deterministic() {
        let run = || {
            let mut w = ToyWorkload { n: 30 };
            let mut idx = ScanIndex::new();
            run_join(&mut w, &mut idx, DriverConfig::new(4, 1))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.result_pairs, b.result_pairs);
    }

    #[test]
    fn fold_pair_is_order_independent() {
        let a = fold_pair(fold_pair(0, 1, 2), 3, 4);
        let b = fold_pair(fold_pair(0, 3, 4), 1, 2);
        assert_eq!(a, b);
        // ...but sensitive to the pair contents.
        assert_ne!(fold_pair(0, 1, 2), fold_pair(0, 2, 1));
    }

    #[test]
    fn velocity_updates_are_applied_end_of_tick() {
        struct UpdWorkload;
        impl Workload for UpdWorkload {
            fn space(&self) -> Rect {
                Rect::space(1000.0)
            }
            fn query_side(&self) -> f32 {
                10.0
            }
            fn init(&mut self) -> MovingSet {
                let mut s = MovingSet::default();
                s.push(Point::new(500.0, 500.0), Vec2::new(0.0, 0.0));
                s
            }
            fn plan_tick(&mut self, tick: u32, _set: &MovingSet, a: &mut TickActions) {
                if tick == 0 {
                    a.velocity_updates.push((0, 5.0, 0.0));
                }
            }
        }
        let mut w = UpdWorkload;
        let mut idx = ScanIndex::new();
        let _ = run_join(&mut w, &mut idx, DriverConfig::new(2, 0));
        // After 2 ticks with velocity 5 set in tick 0: moved 2 * 5 = 10.
        // (Update in tick 0 applies before tick 0's advance.)
    }

    #[test]
    fn results_survive_reuse_of_output_buffer() {
        // Two queriers at the same spot must each contribute pairs; the
        // shared `results` buffer is cleared between queries.
        struct TwinWorkload;
        impl Workload for TwinWorkload {
            fn space(&self) -> Rect {
                Rect::space(100.0)
            }
            fn query_side(&self) -> f32 {
                50.0
            }
            fn init(&mut self) -> MovingSet {
                let mut s = MovingSet::default();
                s.push(Point::new(50.0, 50.0), Vec2::default());
                s.push(Point::new(51.0, 50.0), Vec2::default());
                s
            }
            fn plan_tick(&mut self, _t: u32, _s: &MovingSet, a: &mut TickActions) {
                a.queriers.extend([0, 1]);
            }
        }
        let mut idx = ScanIndex::new();
        let stats = run_join(&mut TwinWorkload, &mut idx, DriverConfig::new(1, 0));
        // Each query sees both points: 4 pairs.
        assert_eq!(stats.result_pairs, 4);
    }

    #[test]
    fn batch_driver_matches_per_query_driver() {
        // The naive batch join and the scan index compute the same join,
        // so both drivers must produce identical pair counts and checksums
        // for the same workload.
        let cfg = DriverConfig::new(4, 1);
        let per_query = {
            let mut w = ToyWorkload { n: 40 };
            let mut idx = ScanIndex::new();
            run_join(&mut w, &mut idx, cfg)
        };
        let batch = {
            let mut w = ToyWorkload { n: 40 };
            let mut j = crate::batch::NaiveBatchJoin;
            run_batch_join(&mut w, &mut j, cfg)
        };
        assert_eq!(batch.result_pairs, per_query.result_pairs);
        assert_eq!(batch.checksum, per_query.checksum);
        assert_eq!(batch.queries, per_query.queries);
    }

    #[test]
    fn parallel_exec_mode_matches_sequential_for_both_categories() {
        let cfg = DriverConfig::new(3, 1);
        let seq_index = {
            let mut w = ToyWorkload { n: 60 };
            run_join(&mut w, &mut ScanIndex::new(), cfg)
        };
        let seq_batch = {
            let mut w = ToyWorkload { n: 60 };
            run_batch_join(&mut w, &mut crate::batch::NaiveBatchJoin, cfg)
        };
        for n in [1usize, 2, 5] {
            for mode in [
                ExecMode::parallel(n).unwrap(),
                ExecMode::partitioned(n).unwrap(),
            ] {
                let par_cfg = cfg.with_exec(mode);
                let par_index = {
                    let mut w = ToyWorkload { n: 60 };
                    run_join(&mut w, &mut ScanIndex::new(), par_cfg)
                };
                let par_batch = {
                    let mut w = ToyWorkload { n: 60 };
                    run_batch_join(&mut w, &mut crate::batch::NaiveBatchJoin, par_cfg)
                };
                for (seq, par) in [(&seq_index, &par_index), (&seq_batch, &par_batch)] {
                    assert_eq!(par.result_pairs, seq.result_pairs, "mode = {mode}");
                    assert_eq!(par.checksum, seq.checksum, "mode = {mode}");
                    assert_eq!(par.queries, seq.queries, "mode = {mode}");
                    assert_eq!(par.updates, seq.updates, "mode = {mode}");
                    assert_eq!(par.ticks.len(), seq.ticks.len(), "mode = {mode}");
                }
            }
        }
    }

    #[test]
    fn churn_is_applied_end_of_tick_and_counted() {
        // Tick 0: object 1 departs and one object arrives at (60, 50).
        // Both the departure and the arrival are invisible to tick 0's
        // queries (previous-tick semantics) and visible to tick 1's.
        struct ChurnToy;
        impl Workload for ChurnToy {
            fn space(&self) -> Rect {
                Rect::space(100.0)
            }
            fn query_side(&self) -> f32 {
                40.0
            }
            fn init(&mut self) -> MovingSet {
                let mut s = MovingSet::default();
                s.push(Point::new(50.0, 50.0), Vec2::default());
                s.push(Point::new(52.0, 50.0), Vec2::default());
                s
            }
            fn plan_tick(&mut self, tick: u32, set: &MovingSet, a: &mut TickActions) {
                a.queriers
                    .extend((0..set.len() as EntryId).filter(|&q| set.is_live(q)));
                if tick == 0 {
                    a.removals.push(1);
                    a.inserts.push((Point::new(60.0, 50.0), Vec2::default()));
                }
            }
        }
        let mut idx = ScanIndex::new();
        let stats = run_join(&mut ChurnToy, &mut idx, DriverConfig::new(2, 0));
        // Tick 0: queriers {0, 1} over live {0, 1} -> 4 pairs.
        // Tick 1: queriers {0, 2} over live {0, 2} -> 4 pairs (the new
        // object's slot is 2: tombstones never free handles).
        assert_eq!(stats.result_pairs, 8);
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.removals, 1);
        assert_eq!(stats.inserts, 1);
    }

    #[test]
    fn dead_rows_are_invisible_to_queries() {
        struct HalfDead;
        impl Workload for HalfDead {
            fn space(&self) -> Rect {
                Rect::space(100.0)
            }
            fn query_side(&self) -> f32 {
                200.0 // covers everything
            }
            fn init(&mut self) -> MovingSet {
                let mut s = MovingSet::default();
                for i in 0..10 {
                    s.push(Point::new(10.0 + i as f32, 50.0), Vec2::default());
                }
                for id in (1..10).step_by(2) {
                    s.remove(id);
                }
                s
            }
            fn plan_tick(&mut self, _t: u32, _s: &MovingSet, a: &mut TickActions) {
                a.queriers.push(0);
            }
        }
        let mut idx = ScanIndex::new();
        let stats = run_join(&mut HalfDead, &mut idx, DriverConfig::new(1, 0));
        assert_eq!(stats.result_pairs, 5, "only the 5 live rows match");
    }

    #[test]
    fn bipartite_with_identical_relations_matches_the_self_join() {
        // Two independent copies of the same deterministic workload give R
        // rows exactly the positions of S rows, so R ⋈ S degenerates to
        // the self-join: identical pairs, checksum, and query count.
        let cfg = DriverConfig::new(4, 1);
        let self_join = {
            let mut w = ToyWorkload { n: 40 };
            run_join(&mut w, &mut ScanIndex::new(), cfg)
        };
        let bipartite = {
            let mut r = ToyWorkload { n: 40 };
            let mut s = ToyWorkload { n: 40 };
            run_bipartite_join(&mut r, &mut s, &mut ScanIndex::new(), cfg)
        };
        assert_eq!(bipartite.result_pairs, self_join.result_pairs);
        assert_eq!(bipartite.checksum, self_join.checksum);
        assert_eq!(bipartite.queries, self_join.queries);
    }

    #[test]
    fn bipartite_join_probes_the_data_relation_only() {
        // R: one querier at (50, 50); S: two points nearby plus one far
        // away. Exactly the two nearby S rows match — R's own row count
        // never shows up on the result side.
        struct OneQuerier;
        impl Workload for OneQuerier {
            fn space(&self) -> Rect {
                Rect::space(100.0)
            }
            fn query_side(&self) -> f32 {
                10.0
            }
            fn init(&mut self) -> MovingSet {
                let mut s = MovingSet::default();
                s.push(Point::new(50.0, 50.0), Vec2::default());
                s
            }
            fn plan_tick(&mut self, _t: u32, _s: &MovingSet, a: &mut TickActions) {
                a.queriers.push(0);
            }
        }
        struct ThreeData;
        impl Workload for ThreeData {
            fn space(&self) -> Rect {
                Rect::space(100.0)
            }
            fn query_side(&self) -> f32 {
                10.0
            }
            fn init(&mut self) -> MovingSet {
                let mut s = MovingSet::default();
                s.push(Point::new(48.0, 50.0), Vec2::default());
                s.push(Point::new(52.0, 50.0), Vec2::default());
                s.push(Point::new(90.0, 90.0), Vec2::default());
                s
            }
            // Plans queriers to prove the driver drops them: the data
            // relation never queries in a bipartite join.
            fn plan_tick(&mut self, _t: u32, set: &MovingSet, a: &mut TickActions) {
                a.queriers.extend(0..set.len() as EntryId);
            }
        }
        let stats = run_bipartite_join(
            &mut OneQuerier,
            &mut ThreeData,
            &mut ScanIndex::new(),
            DriverConfig::new(2, 0),
        );
        assert_eq!(stats.queries, 2, "one R querier per tick");
        assert_eq!(stats.result_pairs, 4, "two S matches per tick");
    }

    #[test]
    fn bipartite_batch_driver_matches_bipartite_index_driver() {
        let cfg = DriverConfig::new(3, 1);
        let indexed = {
            let (mut r, mut s) = (ToyWorkload { n: 25 }, ToyWorkload { n: 60 });
            run_bipartite_join(&mut r, &mut s, &mut ScanIndex::new(), cfg)
        };
        let batch = {
            let (mut r, mut s) = (ToyWorkload { n: 25 }, ToyWorkload { n: 60 });
            run_bipartite_batch_join(&mut r, &mut s, &mut crate::batch::NaiveBatchJoin, cfg)
        };
        assert!(indexed.result_pairs > 0);
        assert_eq!(batch.result_pairs, indexed.result_pairs);
        assert_eq!(batch.checksum, indexed.checksum);
        assert_eq!(batch.queries, indexed.queries);
    }

    #[test]
    fn bipartite_parallel_exec_matches_sequential_for_both_categories() {
        let cfg = DriverConfig::new(3, 0);
        let seq_index = {
            let (mut r, mut s) = (ToyWorkload { n: 30 }, ToyWorkload { n: 70 });
            run_bipartite_join(&mut r, &mut s, &mut ScanIndex::new(), cfg)
        };
        let seq_batch = {
            let (mut r, mut s) = (ToyWorkload { n: 30 }, ToyWorkload { n: 70 });
            run_bipartite_batch_join(&mut r, &mut s, &mut crate::batch::NaiveBatchJoin, cfg)
        };
        for n in [2usize, 5] {
            for mode in [
                ExecMode::parallel(n).unwrap(),
                ExecMode::partitioned(n).unwrap(),
            ] {
                let par_cfg = cfg.with_exec(mode);
                let par_index = {
                    let (mut r, mut s) = (ToyWorkload { n: 30 }, ToyWorkload { n: 70 });
                    run_bipartite_join(&mut r, &mut s, &mut ScanIndex::new(), par_cfg)
                };
                let par_batch = {
                    let (mut r, mut s) = (ToyWorkload { n: 30 }, ToyWorkload { n: 70 });
                    run_bipartite_batch_join(
                        &mut r,
                        &mut s,
                        &mut crate::batch::NaiveBatchJoin,
                        par_cfg,
                    )
                };
                for (seq, par) in [(&seq_index, &par_index), (&seq_batch, &par_batch)] {
                    assert_eq!(par.result_pairs, seq.result_pairs, "mode = {mode}");
                    assert_eq!(par.checksum, seq.checksum, "mode = {mode}");
                    assert_eq!(par.queries, seq.queries, "mode = {mode}");
                }
            }
        }
    }

    #[test]
    fn warmup_only_runs_report_zero_averages_not_nan() {
        // ticks = 0 (warmup-only): no measured ticks, so every average is
        // defined as 0.0 — a NaN here would poison the JSON reporter.
        let mut w = ToyWorkload { n: 10 };
        let stats = run_join(&mut w, &mut ScanIndex::new(), DriverConfig::new(0, 2));
        assert!(stats.ticks.is_empty());
        assert_eq!(stats.result_pairs, 0, "warmup results are discarded");
        for avg in [
            stats.avg_tick_seconds(),
            stats.avg_build_seconds(),
            stats.avg_query_seconds(),
            stats.avg_update_seconds(),
        ] {
            assert_eq!(avg, 0.0);
            assert!(avg.is_finite());
        }
        let summary = stats.tick_summary();
        assert_eq!(summary.n, 0);
        assert_eq!(summary.mean, 0.0);
    }

    /// A deterministic toy extent workload: n fixed rectangles on a
    /// diagonal, everybody queries every tick, nobody updates.
    struct ToyExtents {
        n: u32,
    }

    impl ExtentWorkload for ToyExtents {
        fn space(&self) -> Rect {
            Rect::space(1000.0)
        }
        fn init(&mut self) -> MovingExtentSet {
            let mut set = MovingExtentSet::default();
            for i in 0..self.n {
                let t = (i as f32 * 37.0) % 900.0;
                let u = (t * 7.0) % 900.0;
                set.push(Rect::new(t, u, t + 60.0, u + 60.0), Vec2::new(1.0, -1.0));
            }
            set
        }
        fn plan_tick(
            &mut self,
            _tick: u32,
            set: &MovingExtentSet,
            actions: &mut ExtentTickActions,
        ) {
            actions
                .queriers
                .extend((0..set.extents.len() as EntryId).filter(|&q| set.is_live(q)));
        }
    }

    #[test]
    fn intersect_join_finds_self_pairs_and_is_deterministic() {
        let run = || {
            let mut w = ToyExtents { n: 40 };
            run_intersect_join(&mut w, &mut ScanIndex::new(), DriverConfig::new(4, 1))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.ticks.len(), 4);
        assert_eq!(a.queries, 4 * 40);
        // A rect always intersects itself: at least one pair per query.
        assert!(a.result_pairs >= a.queries, "pairs = {}", a.result_pairs);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.result_pairs, b.result_pairs);
    }

    #[test]
    fn intersect_batch_driver_matches_per_query_driver() {
        let cfg = DriverConfig::new(4, 1);
        let per_query = {
            let mut w = ToyExtents { n: 40 };
            run_intersect_join(&mut w, &mut ScanIndex::new(), cfg)
        };
        let batch = {
            let mut w = ToyExtents { n: 40 };
            run_intersect_batch_join(&mut w, &mut crate::batch::NaiveBatchJoin, cfg)
        };
        assert_eq!(batch.result_pairs, per_query.result_pairs);
        assert_eq!(batch.checksum, per_query.checksum);
        assert_eq!(batch.queries, per_query.queries);
    }

    #[test]
    fn intersect_parallel_exec_matches_sequential_for_both_categories() {
        let cfg = DriverConfig::new(3, 1);
        let seq_index = {
            let mut w = ToyExtents { n: 60 };
            run_intersect_join(&mut w, &mut ScanIndex::new(), cfg)
        };
        let seq_batch = {
            let mut w = ToyExtents { n: 60 };
            run_intersect_batch_join(&mut w, &mut crate::batch::NaiveBatchJoin, cfg)
        };
        assert_eq!(seq_batch.checksum, seq_index.checksum);
        for n in [1usize, 2, 5] {
            for mode in [
                ExecMode::parallel(n).unwrap(),
                ExecMode::partitioned(n).unwrap(),
                ExecMode::pooled(4 * n, n).unwrap(),
            ] {
                let par_cfg = cfg.with_exec(mode);
                let par_index = {
                    let mut w = ToyExtents { n: 60 };
                    run_intersect_join(&mut w, &mut ScanIndex::new(), par_cfg)
                };
                let par_batch = {
                    let mut w = ToyExtents { n: 60 };
                    run_intersect_batch_join(&mut w, &mut crate::batch::NaiveBatchJoin, par_cfg)
                };
                for (seq, par) in [(&seq_index, &par_index), (&seq_batch, &par_batch)] {
                    assert_eq!(par.result_pairs, seq.result_pairs, "mode = {mode}");
                    assert_eq!(par.checksum, seq.checksum, "mode = {mode}");
                    assert_eq!(par.queries, seq.queries, "mode = {mode}");
                }
            }
        }
    }

    #[test]
    fn extent_churn_is_applied_end_of_tick_and_counted() {
        // Tick 0: object 1 departs and one arrives overlapping object 0.
        // Previous-tick semantics: both invisible to tick 0's queries.
        struct ChurnExtents;
        impl ExtentWorkload for ChurnExtents {
            fn space(&self) -> Rect {
                Rect::space(100.0)
            }
            fn init(&mut self) -> MovingExtentSet {
                let mut s = MovingExtentSet::default();
                s.push(Rect::new(40.0, 40.0, 50.0, 50.0), Vec2::default());
                s.push(Rect::new(45.0, 45.0, 55.0, 55.0), Vec2::default());
                s
            }
            fn plan_tick(&mut self, tick: u32, set: &MovingExtentSet, a: &mut ExtentTickActions) {
                a.queriers
                    .extend((0..set.extents.len() as EntryId).filter(|&q| set.is_live(q)));
                if tick == 0 {
                    a.removals.push(1);
                    a.inserts
                        .push((Rect::new(48.0, 40.0, 58.0, 50.0), Vec2::default()));
                }
            }
        }
        let stats = run_intersect_join(
            &mut ChurnExtents,
            &mut ScanIndex::new(),
            DriverConfig::new(2, 0),
        );
        // Tick 0: queriers {0, 1}, both pairs both ways + self-pairs = 4.
        // Tick 1: queriers {0, 2} (slot 2 is the arrival; handles never
        // shift); rect 2 overlaps rect 0 → again 4 pairs.
        assert_eq!(stats.result_pairs, 8);
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.removals, 1);
        assert_eq!(stats.inserts, 1);
    }

    #[test]
    #[should_panic(expected = "no intersects-predicate support")]
    fn intersect_join_refuses_point_only_indexes() {
        // A point-only index must be rejected before the first tick, not
        // silently produce empty joins.
        struct PointOnly;
        impl SpatialIndex for PointOnly {
            fn name(&self) -> &str {
                "point-only"
            }
            fn build(&mut self, _: &PointTable) {}
            fn for_each_in(&self, _: &PointTable, _: &Rect, _: &mut dyn FnMut(EntryId)) {}
            fn memory_bytes(&self) -> usize {
                0
            }
            fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync> {
                Box::new(PointOnly)
            }
        }
        let mut w = ToyExtents { n: 4 };
        let _ = run_intersect_join(&mut w, &mut PointOnly, DriverConfig::new(1, 0));
    }

    #[test]
    fn scan_index_reports_zero_memory() {
        let mut t = PointTable::default();
        t.push(1.0, 1.0);
        let mut idx = ScanIndex::new();
        idx.build(&t);
        assert_eq!(idx.memory_bytes(), 0);
    }
}
