//@ path: crates/x/src/lib.rs
pub fn fan_out() -> u32 {
    let handle = std::thread::spawn(|| 1 + 1);
    handle.join().unwrap_or(0)
}

// A hand-rolled tile worker pool is just as illegal as a single spawn:
// detached per-tile threads bypass sj_base::par's scoped sharding and its
// commutative checksum merge.
pub fn join_tiles(tiles: Vec<u64>) -> u64 {
    let mut handles = Vec::new();
    for tile in tiles {
        handles.push(std::thread::spawn(move || tile ^ 0x9e37));
    }
    handles
        .into_iter()
        .map(|h| h.join().unwrap_or(0))
        .fold(0, u64::wrapping_add)
}

// Detached "pool" workers are the same violation dressed up as a queue
// drain: per-worker std::thread::spawn escapes the scope discipline the
// mini-join scheduler gets from thread::scope.
pub fn drain_pool(chunks: std::sync::Arc<Vec<u64>>, workers: usize) -> u64 {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = std::sync::Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..workers {
        let (chunks, cursor) = (chunks.clone(), cursor.clone());
        handles.push(std::thread::spawn(move || {
            let mut partial = 0u64;
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&c) = chunks.get(i) else { break };
                partial = partial.wrapping_add(c ^ 0x9e37);
            }
            partial
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().unwrap_or(0))
        .fold(0, u64::wrapping_add)
}
